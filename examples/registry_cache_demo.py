"""Tour of the registry substrate: MinIO, mirroring, caching, dedup.

Demonstrates the storage layer the paper builds on:

1. publish a multi-arch image to the simulated Docker Hub,
2. mirror it into the MinIO-backed regional registry (Table I),
3. pull under the paper's whole-image model vs the layered extension,
4. watch LRU eviction on a storage-constrained device, and
5. trip Docker Hub's pull rate limiter.

Run:  python examples/registry_cache_demo.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.model.device import Arch
from repro.registry import (
    DockerHub,
    ImageCache,
    ImageReference,
    MinioStore,
    OFFICIAL_BASES,
    PullPolicy,
    PullRateLimiter,
    RateLimitExceeded,
    RegionalRegistry,
    RegistryClient,
    build_image,
    mirror_image,
)


def main() -> None:
    # 1. Publish to the hub -----------------------------------------------
    hub = DockerHub()
    for repo, size in (("sina88/vp-ha-train", 5.78), ("sina88/vp-ha-infer", 3.53)):
        mlist, blobs = build_image(repo, size, base=OFFICIAL_BASES["python:3.9"])
        hub.push_image(repo, "latest", mlist, blobs)
    print("hub catalog:", hub.catalog())
    print(f"hub unique blob bytes: {hub.storage_bytes() / 1e9:.2f} GB")

    # 2. Mirror into the regional MinIO-backed registry -------------------
    regional = RegionalRegistry(store=MinioStore(capacity_gb=100.0))
    for repo in hub.catalog():
        mirror_image(hub, regional, repo, "latest", repo.replace("sina88/", "aau/"))
    print("\nregional catalog:", regional.catalog())
    print(f"regional MinIO used: {regional.persisted_bytes() / 1e9:.2f} GB "
          f"of {regional.store.capacity_bytes / 1e9:.0f} GB")
    print("sample MinIO keys:",
          [o.key for o in regional.store.list_objects(regional.bucket)][:3])

    # 3. Whole-image vs layered pulls -------------------------------------
    print("\n--- pull policies (train image then its infer sibling) ---")
    for policy in (PullPolicy.WHOLE_IMAGE, PullPolicy.LAYERED):
        client = RegistryClient(policy)
        cache = ImageCache(64.0, "medium")
        first = client.pull(
            hub, ImageReference("sina88/vp-ha-train"), Arch.AMD64, cache
        )
        second = client.pull(
            hub, ImageReference("sina88/vp-ha-infer"), Arch.AMD64, cache
        )
        print(
            f"{policy.value:12s}: train {first.bytes_transferred / 1e9:.2f} GB, "
            f"infer {second.bytes_transferred / 1e9:.2f} GB "
            f"(hit ratio {second.hit_ratio:.0%})"
        )

    # 4. LRU eviction on a tiny device ------------------------------------
    print("\n--- LRU eviction on an 8 GB device ---")
    client = RegistryClient(PullPolicy.WHOLE_IMAGE)
    tiny = ImageCache(8.0, "tiny")
    client.pull(hub, ImageReference("sina88/vp-ha-train"), Arch.AMD64, tiny)
    result = client.pull(hub, ImageReference("sina88/vp-ha-infer"), Arch.AMD64, tiny)
    print(f"evictions while admitting infer: {len(result.evictions)} "
          f"({sum(e.size_bytes for e in result.evictions) / 1e9:.2f} GB freed)")
    print(f"cache now holds {tiny.used_bytes / 1e9:.2f} GB in {len(tiny)} layers")

    # 5. Hub rate limiting --------------------------------------------------
    print("\n--- Docker Hub pull metering ---")
    metered = DockerHub(rate_limiter=PullRateLimiter(limit=3, window_s=21600))
    mlist, blobs = build_image("acme/app", 0.1, base=OFFICIAL_BASES["alpine:3"])
    metered.push_image("acme/app", "latest", mlist, blobs)
    client = RegistryClient(PullPolicy.WHOLE_IMAGE)
    for attempt in range(5):
        try:
            cache = ImageCache(16.0)  # fresh cache: every pull is cold
            client.pull(
                metered, ImageReference("acme/app"), Arch.AMD64, cache,
                client_name="edge-device", now_s=attempt * 60.0,
            )
            print(f"pull {attempt + 1}: ok")
        except RateLimitExceeded as exc:
            print(f"pull {attempt + 1}: RATE LIMITED ({exc})")


if __name__ == "__main__":
    main()
