"""Cloud–edge scheduling (the paper's future work, implemented).

Adds a cloud VM to the calibrated testbed and sweeps the static power
attributed to it, showing where DEEP's Nash scheduler starts offloading
the compute-heavy training stages — and why the text application never
leaves the edge.

Run:  python examples/cloud_edge.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DeepScheduler
from repro.workloads import build_testbed, text_processing, video_processing
from repro.workloads.cloud import (
    CLOUD_NAME,
    CloudConfig,
    cloud_environment,
    cloud_offload_report,
)


def main() -> None:
    testbed = build_testbed()

    # --- where does each microservice land with a cheap cloud? ----------
    cheap = CloudConfig(static_watts=2.0)
    env = cloud_environment(testbed, cheap)
    app = video_processing(testbed.calibration)
    result = DeepScheduler().schedule(app, env)
    print("Video placement with a cheap cloud (2 W attributed static):")
    for assignment in result.plan:
        marker = "  <-- offloaded" if assignment.device == CLOUD_NAME else ""
        print(
            f"  {assignment.service:16s} {assignment.registry:12s} "
            f"on {assignment.device}{marker}"
        )

    # --- the crossover sweep ---------------------------------------------
    print("\nOffload crossover (share of services DEEP places in the cloud):")
    print(f"{'static W':>9} | {'video share':>11} {'video E [J]':>12} "
          f"| {'text share':>10} {'text E [J]':>11}")
    video, text = video_processing(testbed.calibration), text_processing(
        testbed.calibration
    )
    grid = [1.0, 5.0, 10.0, 15.0, 25.0, 40.0]
    video_points = cloud_offload_report(testbed, video, grid)
    text_points = cloud_offload_report(testbed, text, grid)
    for vp, tp in zip(video_points, text_points):
        print(
            f"{vp.cloud_static_watts:>9.1f} | {vp.cloud_share:>10.0%} "
            f"{vp.total_energy_j:>12.1f} | {tp.cloud_share:>9.0%} "
            f"{tp.total_energy_j:>11.1f}"
        )
    print(
        "\nReading: the video inference stages (compute-heavy, modest "
        "dataflows) are worth shipping\nto a fast, hub-adjacent VM until "
        "the attributed static draw eats the gain; the trains'\nupstream "
        "frame data and text's small tasks never justify the WAN."
    )


if __name__ == "__main__":
    main()
