"""Text-processing case study: the paper's headline result.

The abstract's claim: "deploying 83% of text processing microservices
from the regional registry improves the energy consumption by 0.34%
(≈18 J) compared to microservice deployments exclusively from Docker
Hub."  This script reproduces that end to end, and also demonstrates
the stage-parallel execution mode (the DAG's two synchronisation
barriers across the fork-join stages).

Run:  python examples/text_processing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DeepScheduler, FixedRegistryScheduler
from repro.experiments.runner import deploy_and_run
from repro.orchestrator import ExecutionMode
from repro.workloads import build_testbed, text_processing
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


def main() -> None:
    testbed = build_testbed()
    app = text_processing(testbed.calibration)

    # --- the headline comparison ----------------------------------------
    deep_schedule = DeepScheduler().schedule(app, testbed.env)
    hub_plan = FixedRegistryScheduler(HUB_NAME).schedule(app, testbed.env).plan

    deep_report = deploy_and_run(testbed, app, deep_schedule.plan)
    hub_report = deploy_and_run(testbed, app, hub_plan)

    regional_share = deep_schedule.plan.registry_share(REGIONAL_NAME)
    saving_j = hub_report.total_energy_j - deep_report.total_energy_j
    saving_pct = 100.0 * saving_j / hub_report.total_energy_j

    print("Paper claim:  83% regional share, ≈18 J (0.34%) saved vs hub")
    print(
        f"Reproduced:   {100 * regional_share:.0f}% regional share, "
        f"{saving_j:.1f} J ({saving_pct:.2f}%) saved vs hub"
    )

    print("\nDEEP placement:")
    for assignment in deep_schedule.plan:
        print(
            f"  {assignment.service:16s} <- {assignment.registry:12s}"
            f" on {assignment.device}"
        )

    # --- sequential vs stage-parallel execution --------------------------
    parallel = deploy_and_run(
        testbed, app, deep_schedule.plan, mode=ExecutionMode.STAGE_PARALLEL
    )
    print("\nExecution modes (same plan, same energy, different makespan):")
    print(
        f"  sequential     makespan {deep_report.makespan_s:8.1f} s, "
        f"energy {deep_report.total_energy_j:8.1f} J"
    )
    print(
        f"  stage-parallel makespan {parallel.makespan_s:8.1f} s, "
        f"energy {parallel.total_energy_j:8.1f} J"
    )

    stages = app.stages()
    print(f"\nStages (barriers between consecutive stages): {stages}")
    for index, stage in enumerate(stages):
        ends = [parallel.record_of(s).end_s for s in stage]
        print(f"  stage {index}: done at t={max(ends):8.1f} s  ({stage})")


if __name__ == "__main__":
    main()
