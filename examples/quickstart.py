"""Quickstart: schedule and run one application with DEEP.

Builds the paper's simulated testbed (two edge devices, Docker Hub +
MinIO-backed regional registry), schedules the video-processing DAG
with the Nash-game scheduler, executes the plan through the
orchestrator, and prints what the paper's Tables/Figures report.

Run:  python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DeepScheduler
from repro.experiments.runner import deploy_and_run
from repro.workloads import build_testbed, video_processing


def main() -> None:
    # 1. The testbed: devices, network, registries — calibrated so the
    #    simulator reproduces the paper's Table II benchmarks.
    testbed = build_testbed()
    print("Testbed devices:", ", ".join(testbed.fleet.names()))
    print("Registries:", ", ".join(r.name for r in testbed.registries()))

    # 2. The application: Fig. 2a's six-microservice video pipeline.
    app = video_processing(testbed.calibration)
    print(f"\nApplication {app.name!r}: stages {app.stages()}")

    # 3. DEEP: per-microservice Nash game over (registry, device).
    schedule = DeepScheduler().schedule(app, testbed.env)
    print("\nDEEP placement:")
    for assignment in schedule.plan:
        print(
            f"  {assignment.service:16s} <- {assignment.registry:12s}"
            f" on {assignment.device}"
        )
    print(
        "Distribution (Table III):",
        {k: round(v, 1) for k, v in schedule.plan.distribution_percent().items()},
    )

    # 4. Execute on the simulated cluster and read the energy meters.
    report = deploy_and_run(testbed, app, schedule.plan)
    print(f"\nTotal energy: {report.total_energy_j:.1f} J "
          f"({report.total_energy_j / 1000:.2f} kJ)")
    print(f"Makespan: {report.makespan_s:.1f} s (sequential mode)")
    for reading in report.readings:
        print(
            f"  {reading.device}: {reading.meter} measured "
            f"{reading.measured_j:.1f} J (model {reading.analytic_j:.1f} J)"
        )


if __name__ == "__main__":
    main()
