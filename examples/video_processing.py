"""Video-processing case study: the paper's Fig. 3 for one application.

Compares the three deployment methods (DEEP hybrid, exclusively
regional, exclusively Docker Hub) on the video pipeline, printing the
per-microservice energy bars of Fig. 3a and the method totals of
Fig. 3b, plus the monitoring log of the DEEP rollout.

Run:  python examples/video_processing.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DeepScheduler, FixedRegistryScheduler
from repro.experiments.runner import deploy_and_run
from repro.model.units import j_to_kj
from repro.workloads import build_testbed, video_processing
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


def main() -> None:
    testbed = build_testbed()
    app = video_processing(testbed.calibration)

    methods = [
        DeepScheduler(),
        FixedRegistryScheduler(REGIONAL_NAME),
        FixedRegistryScheduler(HUB_NAME),
    ]

    reports = {}
    for scheduler in methods:
        plan = scheduler.schedule(app, testbed.env).plan
        reports[scheduler.name] = deploy_and_run(testbed, app, plan)

    # --- Fig. 3a: per-microservice energy under DEEP -------------------
    deep = reports["deep"]
    print("Figure 3a — energy per microservice (DEEP schedule):")
    peak = max(r.energy_j for r in deep.records)
    for record in deep.records:
        bar = "#" * int(40 * record.energy_j / peak)
        print(
            f"  {record.service:16s} {j_to_kj(record.energy_j):6.2f} kJ "
            f"[{record.device:6s}|{record.registry:10s}] {bar}"
        )

    # --- Fig. 3b: method totals ----------------------------------------
    print("\nFigure 3b — total energy by deployment method:")
    deep_j = deep.total_energy_j
    for name, report in reports.items():
        delta = report.total_energy_j - deep_j
        print(
            f"  {name:24s} {j_to_kj(report.total_energy_j):7.3f} kJ"
            f"  (DEEP {'+' if delta >= 0 else ''}{delta:.1f} J)"
        )

    # --- execution log ---------------------------------------------------
    print("\nMonitoring log (DEEP rollout, last 10 events):")
    print(deep.monitor.render(limit=10))

    # --- phase breakdown -------------------------------------------------
    print("\nPhase breakdown of the DEEP rollout:")
    ledger = deep.ledger
    print(f"  active energy Ea: {ledger.active_j():9.1f} J")
    print(f"  static energy Es: {ledger.static_j():9.1f} J")
    print(f"  per device: { {k: round(v, 1) for k, v in ledger.by_device().items()} }")
    print(f"  per registry: { {k: round(v, 1) for k, v in ledger.by_registry().items()} }")


if __name__ == "__main__":
    main()
