"""Scaling study on synthetic workloads (beyond the paper's testbed).

Generates layered random DAGs and heterogeneous fleets of growing
size, schedules them with DEEP and the baselines, and prints how the
energy gap and the hybrid registry split evolve — the A4 ablation as a
runnable scenario.

Run:  python examples/synthetic_sweep.py
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import (
    DeepScheduler,
    GreedyEnergyScheduler,
    GreedyTimeScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)


def main() -> None:
    rng = RngRegistry(2025)
    print(
        f"{'devices':>8} {'services':>9} {'scheduler':>14} "
        f"{'energy [kJ]':>12} {'regional %':>11} {'wall [ms]':>10}"
    )
    for n_devices in (2, 4, 8, 12):
        env = synthetic_environment(n_devices, rng)
        app = synthetic_application(
            f"sweep-{n_devices}",
            SyntheticConfig(layers=5, width=max(2, n_devices // 2)),
            rng,
        )
        schedulers = [
            DeepScheduler(),
            GreedyEnergyScheduler(),
            GreedyTimeScheduler(),
            RoundRobinScheduler(),
            RandomScheduler(rng),
        ]
        for scheduler in schedulers:
            start = time.perf_counter()
            result = scheduler.schedule(app, env)
            wall_ms = 1000 * (time.perf_counter() - start)
            regional = 100 * result.plan.registry_share("regional")
            print(
                f"{n_devices:>8} {len(app):>9} {scheduler.name:>14} "
                f"{result.total_energy_j / 1000:>12.2f} {regional:>10.0f}% "
                f"{wall_ms:>9.1f}"
            )
        print()


if __name__ == "__main__":
    main()
