"""Benchmark E4: regenerating Figure 3b (three deployment methods).

Times the 2-application × 3-method grid (six full scheduled rollouts)
and checks the figure's shape: DEEP never loses and the deltas are
sub-percent, as in the paper's 0.2 % / 0.34 % headline numbers.
"""

from repro.experiments import figure3b


def bench_figure3b_regeneration(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: figure3b.run(testbed), rounds=3, iterations=1
    )
    assert len(result.rows) == 6
    for row in result.rows:
        assert row["delta_vs_deep_j"] >= -1e-6
        if row["method"] != "deep":
            assert row["delta_vs_deep_j"] / (row["energy_kj"] * 1000) < 0.01


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
