"""Benchmark: telemetry overhead on the swarm-scale quick cell.

Measures what full observability (tracing + metrics + engine
profiling) costs on top of an untelemetered run of the
``p2p-swarm-scale`` preset, at a couple of swarm sizes.  The
acceptance bound itself lives in ``tests/telemetry/test_overhead.py``
(<= 25% on the 400-device quick cell); this script reports the actual
numbers per configuration so a creeping regression is visible as a
trend, not just as a test flip.

Run directly (``--quick`` keeps the smallest size only)::

    PYTHONPATH=src python benchmarks/bench_telemetry.py [--quick]

Methodology matches the overhead test: off/on runs interleave, each
side keeps its minimum, and the cyclic GC is excluded from the timing
window (the retained trace events otherwise attract collector pauses
into the traced side).
"""

import dataclasses
import gc
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import scenarios  # noqa: E402
from repro.scenarios import TelemetrySpec  # noqa: E402

FULL = TelemetrySpec(trace=True, metrics_period_s=300.0, profile=True)

#: (label, TelemetrySpec) configurations reported per swarm size.
CONFIGS = (
    ("trace", TelemetrySpec(trace=True)),
    ("metrics", TelemetrySpec(metrics_period_s=300.0)),
    ("profile", TelemetrySpec(profile=True)),
    ("full", FULL),
)


def _cell(n_devices: int, n_regions: int):
    spec = scenarios.get("p2p-swarm-scale")
    return dataclasses.replace(
        spec,
        topology=dataclasses.replace(
            spec.topology, n_devices=n_devices, n_regions=n_regions
        ),
    )


def _timed_run(spec) -> float:
    gc.collect()
    t0 = time.perf_counter()
    scenarios.SimulationSession(spec).run()
    return time.perf_counter() - t0


def run_overhead_sweep(n_devices: int, n_regions: int, rounds: int):
    """Interleaved min-of-N wall times for every configuration."""
    base = _cell(n_devices, n_regions)
    specs = {"off": base}
    for label, telemetry in CONFIGS:
        specs[label] = dataclasses.replace(base, telemetry=telemetry)
    best = {label: float("inf") for label in specs}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            for label, spec in specs.items():
                best[label] = min(best[label], _timed_run(spec))
    finally:
        if gc_was_enabled:
            gc.enable()
    rows = []
    for label, _ in (("off", None),) + CONFIGS:
        rows.append({
            "devices": n_devices,
            "config": label,
            "wall_s": best[label],
            "ratio": best[label] / best["off"],
        })
    return rows


def check_overhead(rows) -> None:
    by_config = {row["config"]: row for row in rows}
    # The hard acceptance bound is pinned (with retries) by
    # tests/telemetry/test_overhead.py; here a loose 2x sanity rail
    # keeps the bench honest without making it flaky.
    assert by_config["full"]["ratio"] < 2.0, by_config["full"]
    # A traced run records real events (probes actually engaged).
    assert by_config["off"]["wall_s"] > 0.0


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    sizes = ((200, 8),) if quick else ((200, 8), (400, 10))
    rounds = 2 if quick else 5
    print("== telemetry overhead (p2p-swarm-scale quick cells) ==")
    print(f"{'devices':>8} {'config':>8} {'wall s':>8} {'ratio':>7}")
    for n_devices, n_regions in sizes:
        rows = run_overhead_sweep(n_devices, n_regions, rounds)
        for row in rows:
            print(
                f"{row['devices']:>8} {row['config']:>8} "
                f"{row['wall_s']:>8.3f} {row['ratio']:>7.3f}"
            )
        check_overhead(rows)
    print("telemetry bench OK: full-telemetry ratio within the sanity rail")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
