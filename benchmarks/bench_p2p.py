"""P2P tier benchmarks: swarm-size sweep and hot-path micro-benches.

Run directly for the 10/100/1000-device sweep the acceptance criteria
ask for (``--quick`` shrinks it to 10 devices for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_p2p.py [--quick]

For every swarm size the sweep checks that hybrid+P2P pulls strictly
fewer bytes from hub+regional than plain hybrid on the layer-sharing
workload, and that in the 1000-device run the adaptive replicator
converges (its trailing cycles perform no actions, i.e. hot-layer
replica counts have stabilised).  The sweep then repeats under
``TransferModel.TIME_RESOLVED`` — every pull riding the shared-
bandwidth transfer engine — checking the peer tier still wins when
transfers contend for links and commit-at-completion hides in-flight
layers, and that the engine sustains the 1000-device run.

The ``bench_*`` functions are pytest-benchmark micro-benchmarks of the
planner and pull hot paths, matching the other ``benchmarks/`` modules.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from dataclasses import replace  # noqa: E402

from repro.model.device import Arch  # noqa: E402
from repro.model.units import BYTES_PER_GB  # noqa: E402
from repro.registry.cache import ImageCache  # noqa: E402
from repro.registry.p2p import P2PRegistry, PeerSwarm  # noqa: E402
from repro.scenarios import (  # noqa: E402
    ScenarioSpec,
    SimulationSession,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
    build_swarm_scenario,
)
from repro.sim.transfers import TransferModel  # noqa: E402

#: The sweep the acceptance criteria name.
SWEEP_SIZES = (10, 100, 1000)


def _scenario_spec(
    n_devices: int,
    transfer_model: TransferModel = TransferModel.ANALYTIC,
    **kwargs,
) -> ScenarioSpec:
    """The sweep's base spec: regions/catalogue scale with swarm size."""
    kwargs.setdefault("transfer", TransferSpec(model=transfer_model))
    return ScenarioSpec(
        mode="hybrid+p2p",
        topology=TopologySpec(
            n_devices=n_devices,
            n_regions=max(2, min(8, n_devices // 12)),
        ),
        workload=WorkloadSpec(
            kind="zipf",
            n_images=min(12, 4 + n_devices // 10),
            pulls_per_device=4,
        ),
        **kwargs,
    )


def run_sweep(
    sizes=SWEEP_SIZES, transfer_model=TransferModel.ANALYTIC
) -> list:
    """hybrid vs hybrid+p2p origin traffic across swarm sizes."""
    rows = []
    for n in sizes:
        base = _scenario_spec(n, transfer_model)
        # One scenario shared by both sessions: byte counts comparable.
        scenario = build_swarm_scenario(base)
        hybrid = SimulationSession(
            replace(base, mode="hybrid"), scenario=scenario
        ).run()
        p2p = SimulationSession(base, scenario=scenario).run()
        replicator = p2p.replicator
        rows.append(
            dict(
                devices=n,
                pulls=hybrid.pulls,
                hybrid_origin_gb=hybrid.origin_bytes / BYTES_PER_GB,
                p2p_origin_gb=p2p.origin_bytes / BYTES_PER_GB,
                saved_pct=100.0
                * (1.0 - p2p.origin_bytes / hybrid.origin_bytes),
                peer_gb=(p2p.bytes_from_peers + p2p.bytes_replicated)
                / BYTES_PER_GB,
                replica_copies=replicator.total_actions(),
                converged=replicator.converged(),
                unfinished=hybrid.unfinished_pulls + p2p.unfinished_pulls,
            )
        )
    return rows


def check_sweep(rows) -> None:
    """The acceptance assertions over a finished sweep."""
    for row in rows:
        assert row["p2p_origin_gb"] < row["hybrid_origin_gb"], (
            f"{row['devices']} devices: P2P did not reduce origin traffic "
            f"({row['p2p_origin_gb']:.2f} vs {row['hybrid_origin_gb']:.2f} GB)"
        )
    big = rows[-1]
    assert big["converged"], (
        "adaptive replicator did not converge in the largest run "
        f"({big['devices']} devices)"
    )


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (hot paths of the new tier)
# ----------------------------------------------------------------------
def _small_swarm():
    scenario = build_swarm_scenario(ScenarioSpec(
        topology=TopologySpec(n_devices=10, n_regions=2),
        workload=WorkloadSpec(kind="zipf", n_images=4),
    ))
    swarm = PeerSwarm(scenario.network)
    caches = {}
    for dev in scenario.devices:
        caches[dev.name] = ImageCache(dev.cache_gb, dev.name)
        swarm.add_device(dev.name, caches[dev.name], region=dev.region)
    facade = P2PRegistry(swarm, [scenario.regional, scenario.hub])
    return scenario, swarm, caches, facade


def bench_p2p_cold_pull(benchmark):
    scenario, _swarm, caches, facade = _small_swarm()
    ref = scenario.references[0]
    device = scenario.devices[0].name

    def cold_pull():
        # clear() keeps the peer index coherent via remove events, so
        # every round is a true cold pull.
        caches[device].clear()
        return facade.pull(ref, Arch.AMD64, device, caches[device])

    result = benchmark(cold_pull)
    assert result.bytes_total > 0


def bench_p2p_plan_warm_swarm(benchmark):
    scenario, _swarm, caches, facade = _small_swarm()
    seeder = scenario.devices[0].name
    for ref in scenario.references:
        facade.pull(ref, Arch.AMD64, seeder, caches[seeder])
    target = scenario.devices[1].name

    def plan():
        return facade.plan(
            scenario.references[0], Arch.AMD64, target, caches[target]
        )

    plan_result = benchmark(plan)
    assert plan_result.bytes_from_peers > 0


def bench_sweep_small(benchmark):
    """Full 10-device hybrid-vs-p2p comparison (the sweep's unit)."""
    rows = benchmark(lambda: run_sweep(sizes=(10,)))
    assert rows[0]["p2p_origin_gb"] < rows[0]["hybrid_origin_gb"]


def _print_rows(rows) -> None:
    header = (
        f"{'devices':>8} {'pulls':>6} {'hybrid GB':>10} {'p2p GB':>8} "
        f"{'saved %':>8} {'peer GB':>8} {'copies':>7} {'converged':>9}"
    )
    print(header)
    for row in rows:
        print(
            f"{row['devices']:>8} {row['pulls']:>6} "
            f"{row['hybrid_origin_gb']:>10.2f} {row['p2p_origin_gb']:>8.2f} "
            f"{row['saved_pct']:>8.1f} {row['peer_gb']:>8.2f} "
            f"{row['replica_copies']:>7} {str(row['converged']):>9}"
        )
        if row["unfinished"]:
            # Horizon truncation is deliberate but must never be
            # silent: these pulls' bytes are missing from the row.
            print(
                f"{'':>8} WARNING: {row['unfinished']} pull(s) did not "
                f"finish by the horizon; byte counters under-report"
            )


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    sizes = (10,) if quick else SWEEP_SIZES
    rows = run_sweep(sizes)
    print("== P2P swarm-size sweep (origin = hub+regional bytes) ==")
    _print_rows(rows)
    check_sweep(rows)
    print("sweep OK: P2P strictly reduces origin traffic at every size; "
          "replicator converged in the largest run")

    tr_rows = run_sweep(sizes, transfer_model=TransferModel.TIME_RESOLVED)
    print("== same sweep, TIME_RESOLVED transfers "
          "(shared links, commit-at-completion) ==")
    _print_rows(tr_rows)
    for analytic, tr in zip(rows, tr_rows):
        assert tr["p2p_origin_gb"] < tr["hybrid_origin_gb"], (
            f"{tr['devices']} devices: P2P stopped paying off once "
            f"transfers were time-resolved"
        )
        # Commit-at-completion can only hide replicas, never invent
        # them: time-resolved savings must not exceed analytic ones.
        assert tr["saved_pct"] <= analytic["saved_pct"] + 1e-9, (
            f"{tr['devices']} devices: time-resolved savings "
            f"({tr['saved_pct']:.1f}%) exceed analytic "
            f"({analytic['saved_pct']:.1f}%)"
        )
    print("engine sweep OK: P2P still wins under contention, and "
          "time-resolved savings never exceed analytic ones")
    if quick:
        # The CI smoke job must also exercise this module's bench_*
        # micro-benchmarks, like every other benchmark script.
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.exit(main())
