"""Benchmark E2: regenerating Table III (DEEP's Nash scheduling sweep).

Times one full DEEP schedule per application — the per-microservice
game construction + equilibrium computation loop — and checks the
resulting distribution against the paper.
"""

import pytest

from repro.core.scheduler import DeepScheduler
from repro.experiments import table3
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


def bench_table3_regeneration(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: table3.run(testbed), rounds=5, iterations=1
    )
    assert all(r["match"] for r in result.rows)


def bench_deep_schedule_video(benchmark, testbed, video_app):
    result = benchmark(lambda: DeepScheduler().schedule(video_app, testbed.env))
    pct = result.plan.distribution_percent()
    assert pct[("medium", HUB_NAME)] == pytest.approx(83.33, abs=0.5)


def bench_deep_schedule_text(benchmark, testbed, text_app):
    result = benchmark(lambda: DeepScheduler().schedule(text_app, testbed.env))
    assert result.plan.registry_share(REGIONAL_NAME) == pytest.approx(5 / 6)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
