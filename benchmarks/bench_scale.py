"""Benchmark A4: scheduling scalability on synthetic instances.

Times DEEP's Nash sweep as the device fleet and DAG grow — the knob
the paper's two-device testbed never exercises.
"""

import pytest

from repro.core.baselines import GreedyEnergyScheduler
from repro.core.scheduler import DeepScheduler
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)


def _instance(n_devices: int, width: int):
    rng = RngRegistry(99)
    env = synthetic_environment(n_devices, rng)
    app = synthetic_application(
        f"bench-{n_devices}x{width}",
        SyntheticConfig(layers=4, width=width),
        rng,
    )
    return env, app


@pytest.mark.parametrize("n_devices,width", [(2, 2), (4, 3), (8, 4)])
def bench_deep_scaling(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: DeepScheduler().schedule(app, env))
    result.plan.validate_against(app)


@pytest.mark.parametrize("n_devices,width", [(8, 4)])
def bench_greedy_scaling_reference(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: GreedyEnergyScheduler().schedule(app, env))
    result.plan.validate_against(app)
