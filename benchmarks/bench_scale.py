"""Benchmark A4: scheduling scalability on synthetic instances.

Times DEEP's Nash sweep as the device fleet and DAG grow — the knob
the paper's two-device testbed never exercises.

Run directly for the transfer-engine scaling sweeps (``--quick``
shrinks them for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick]

Two sweeps run:

* a steady pull stream through the bare :class:`TransferEngine` over
  fleets of 10/100/1000 devices (bounded concurrency, as real arrival
  processes have), checking wall time stays **sub-quadratic** in fleet
  size, and
* the ``p2p-swarm-scale`` preset's cold waves through the full
  scenario stack, comparing the ``full`` and ``incremental`` recompute
  modes at 1000 devices (same makespan, ≥10× fewer recompute-visited
  transfers) and sustaining a **10k-device** swarm interactively under
  a wall-time guard — the guard is what keeps the incremental-mode
  scaling win from silently regressing in CI, and
* the ``p2p-swarm-100k`` preset's trunk-sliced cold waves through the
  region-sharded engine: at 10k devices the trunk-sliced sharded
  topology is compared against the same total registry egress served
  as one monolithic uplink (≥5× fewer recompute-visited transfers —
  the co-design win: slicing keeps every registry closure regional),
  and the full **100k-device** swarm runs interactively under its own
  wall guard.  ``--quick`` runs a 25k-device sharded canary instead
  (the 100k build alone costs ~13 s; the wave ~190 s).
"""

import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro import scenarios  # noqa: E402
from repro.core.baselines import GreedyEnergyScheduler  # noqa: E402
from repro.core.scheduler import DeepScheduler  # noqa: E402
from repro.model.network import NetworkModel  # noqa: E402
from repro.scenarios.session import SimulationSession  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.rng import RngRegistry  # noqa: E402
from repro.sim.transfers import TransferEngine  # noqa: E402
from repro.workloads.synthetic import (  # noqa: E402
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)


def _instance(n_devices: int, width: int):
    rng = RngRegistry(99)
    env = synthetic_environment(n_devices, rng)
    app = synthetic_application(
        f"bench-{n_devices}x{width}",
        SyntheticConfig(layers=4, width=width),
        rng,
    )
    return env, app


@pytest.mark.parametrize("n_devices,width", [(2, 2), (4, 3), (8, 4)])
def bench_deep_scaling(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: DeepScheduler().schedule(app, env))
    result.plan.validate_against(app)


@pytest.mark.parametrize("n_devices,width", [(8, 4)])
def bench_greedy_scaling_reference(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: GreedyEnergyScheduler().schedule(app, env))
    result.plan.validate_against(app)


# ----------------------------------------------------------------------
# time-resolved transfer engine: fleet-size scaling
# ----------------------------------------------------------------------
#: Per-device channel bandwidth and shared origin uplink: ten transfers
#: run at full speed concurrently, so steady-state concurrency is set
#: by arrival spacing, not fleet size.
_ENGINE_CHANNEL_MBPS = 100.0
_ENGINE_UPLINK_MBPS = 1000.0
_ENGINE_PAYLOAD_BYTES = 250_000_000  # 20 s at channel speed
_ENGINE_SPACING_S = 2.0


def _engine_run(n_devices: int, recompute: str = "full") -> dict:
    """One steady pull stream through the engine; returns timings."""
    network = NetworkModel()
    for i in range(n_devices):
        name = f"edge-{i:04d}"
        network.connect_registry("origin", name, _ENGINE_CHANNEL_MBPS)
        network.set_downlink(name, _ENGINE_CHANNEL_MBPS * 2)
    network.set_uplink("origin", _ENGINE_UPLINK_MBPS)
    sim = Simulator()
    engine = TransferEngine(sim, network, incremental=(recompute == "incremental"))

    def one(i: int, name: str):
        yield sim.timeout(i * _ENGINE_SPACING_S)
        transfer = engine.start(
            "origin", name, _ENGINE_PAYLOAD_BYTES, src_is_registry=True
        )
        yield transfer.done

    for i in range(n_devices):
        sim.process(one(i, f"edge-{i:04d}"))
    wall_start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - wall_start
    assert engine.completed == n_devices
    assert engine.peak_oversubscription() <= 1.0 + 1e-9
    return dict(
        devices=n_devices,
        recompute=recompute,
        wall_s=wall_s,
        recomputes=engine.recomputes,
        visited=engine.transfers_visited,
        sim_end_s=sim.now,
    )


def run_engine_sweep(sizes=(10, 100, 1000), recompute: str = "full") -> list:
    """Wall time of the engine across fleet sizes (steady concurrency)."""
    return [_engine_run(n, recompute) for n in sizes]


def check_engine_sweep(rows) -> None:
    """Sub-quadratic check between consecutive sweep sizes.

    With bounded concurrency the expected growth is linear; quadratic
    growth (ratio ≈ size-ratio²) means recomputation started touching
    idle state.  The threshold sits at ``ratio^1.5`` with a wall-clock
    noise floor so CI jitter on the small runs cannot fail the check.
    """
    for small, big in zip(rows, rows[1:]):
        size_ratio = big["devices"] / small["devices"]
        time_ratio = big["wall_s"] / max(small["wall_s"], 1e-3)
        assert time_ratio < size_ratio**1.5, (
            f"engine wall time grew {time_ratio:.1f}x from "
            f"{small['devices']} to {big['devices']} devices "
            f"(sub-quadratic bound: {size_ratio ** 1.5:.1f}x)"
        )


def bench_engine_steady_stream(benchmark):
    """pytest-benchmark unit: the 100-device steady stream."""
    row = benchmark.pedantic(lambda: _engine_run(100), rounds=3, iterations=1)
    assert row["recomputes"] > 0


# ----------------------------------------------------------------------
# swarm-scale cold waves through the full scenario stack
# ----------------------------------------------------------------------
#: Wall-time guard per cold wave for the 10k-device incremental cell.
#: Interactive runs finish a wave in well under 10 s on a workstation;
#: the guard carries headroom for slower CI machines while still
#: catching a regression back to full-recompute scaling (which is
#: more than an order of magnitude off).
_SWARM_GUARD_WAVE_S = 45.0

#: Minimum full/incremental ratio of recompute-visited transfers on
#: the 1000-device cold-wave cell.
_SWARM_VISITED_RATIO_MIN = 10.0

#: The cold-waves workload schedules exactly two waves.
_SWARM_WAVES = 2


def _swarm_run(
    n_devices: int, n_regions: int, stagger_s: float, recompute: str
) -> dict:
    """The ``p2p-swarm-scale`` preset resized; returns timings.

    ``n_regions`` grows with the fleet because regions are full-mesh
    LAN islands — region size sets the per-device degree (and the
    channel count), not the fleet size.
    """
    spec = scenarios.get("p2p-swarm-scale")
    spec = dataclasses.replace(
        spec,
        topology=dataclasses.replace(
            spec.topology, n_devices=n_devices, n_regions=n_regions
        ),
        workload=dataclasses.replace(spec.workload, stagger_s=stagger_s),
        transfer=dataclasses.replace(spec.transfer, recompute=recompute),
    )
    build_start = time.perf_counter()
    session = SimulationSession(spec)
    build_s = time.perf_counter() - build_start
    engine = session.engine
    wall_start = time.perf_counter()
    outcome = session.run()
    wall_s = time.perf_counter() - wall_start
    assert outcome.unfinished_pulls == 0
    assert engine.peak_oversubscription() <= 1.0 + 1e-9
    return dict(
        devices=n_devices,
        recompute=recompute,
        build_s=build_s,
        wall_s=wall_s,
        wave_s=wall_s / _SWARM_WAVES,
        recomputes=engine.recomputes,
        visited=engine.transfers_visited,
        makespan_s=outcome.makespan_s,
    )


def run_swarm_sweep(quick: bool) -> list:
    """Cold waves at 1000 (both recompute modes) and 10k devices.

    ``--quick`` runs only the 10k incremental cell — the wall-guarded
    CI canary for the scaling win.
    """
    cells = [(10_000, 100, 0.05, "incremental")]
    if not quick:
        cells = [
            (1000, 20, 0.25, "full"),
            (1000, 20, 0.25, "incremental"),
        ] + cells
    return [_swarm_run(*cell) for cell in cells]


def check_swarm_sweep(rows) -> None:
    """Wall-time guard plus the incremental-vs-full work ratio."""
    for row in rows:
        if row["devices"] >= 10_000 and row["recompute"] == "incremental":
            assert row["wave_s"] < _SWARM_GUARD_WAVE_S, (
                f"10k-device cold wave took {row['wave_s']:.1f} s wall "
                f"(guard: {_SWARM_GUARD_WAVE_S:.0f} s) — incremental "
                f"recompute scaling has regressed"
            )
    by_mode = {
        row["recompute"]: row for row in rows if row["devices"] == 1000
    }
    if "full" in by_mode and "incremental" in by_mode:
        full, inc = by_mode["full"], by_mode["incremental"]
        ratio = full["visited"] / max(inc["visited"], 1)
        assert ratio >= _SWARM_VISITED_RATIO_MIN, (
            f"incremental recompute visited only {ratio:.1f}x fewer "
            f"transfers than full at 1000 devices "
            f"(required: {_SWARM_VISITED_RATIO_MIN:.0f}x)"
        )
        drift = abs(full["makespan_s"] - inc["makespan_s"]) / max(
            full["makespan_s"], 1e-9
        )
        assert drift < 1e-6, (
            f"recompute modes disagree on makespan: {full['makespan_s']} "
            f"vs {inc['makespan_s']}"
        )


# ----------------------------------------------------------------------
# region-sharded engine on the trunk-sliced 100k preset
# ----------------------------------------------------------------------
#: Wall guard per wave for the --quick 25k-device sharded canary
#: (measured ~22 s/wave; headroom for slower CI machines).
_SHARD_QUICK_GUARD_WAVE_S = 120.0

#: Wall guard per wave for the full 100k-device run (measured
#: ~190 s/wave on a workstation).
_SHARD_100K_GUARD_WAVE_S = 600.0

#: Minimum monolithic/trunk-sliced ratio of recompute-visited
#: transfers at 10k devices.  Sharded vs incremental on the *same*
#: topology is bit-identical (equal visited, asserted in the tier-1
#: differential tests); the benchmark win is topology+engine
#: co-design — per-region trunk slices keep each registry closure
#: regional, where a monolithic uplink couples every in-flight
#: registry pull on the planet into one component.
_SHARD_VISITED_RATIO_MIN = 5.0


def _swarm100k_run(
    n_devices: int,
    n_regions: int,
    stagger_s: float,
    recompute: str,
    trunked: bool = True,
) -> dict:
    """The ``p2p-swarm-100k`` preset resized; returns timings.

    ``trunked=False`` replaces the per-region trunk slices with one
    monolithic egress link of the *same total capacity* per registry —
    the coupling baseline the sharded topology exists to avoid.
    """
    spec = scenarios.get("p2p-swarm-100k")
    topology = dataclasses.replace(
        spec.topology, n_devices=n_devices, n_regions=n_regions
    )
    if not trunked:
        topology = dataclasses.replace(
            topology,
            hub_trunk_mbps=None,
            regional_trunk_mbps=None,
            hub_egress_mbps=spec.topology.hub_trunk_mbps * n_regions,
            regional_egress_mbps=(
                spec.topology.regional_trunk_mbps * n_regions
            ),
        )
    spec = dataclasses.replace(
        spec,
        topology=topology,
        workload=dataclasses.replace(spec.workload, stagger_s=stagger_s),
        transfer=dataclasses.replace(spec.transfer, recompute=recompute),
    )
    build_start = time.perf_counter()
    session = SimulationSession(spec)
    build_s = time.perf_counter() - build_start
    engine = session.engine
    wall_start = time.perf_counter()
    outcome = session.run()
    wall_s = time.perf_counter() - wall_start
    assert outcome.unfinished_pulls == 0
    assert engine.peak_oversubscription() <= 1.0 + 1e-9
    return dict(
        devices=n_devices,
        recompute=recompute,
        trunked=trunked,
        build_s=build_s,
        wall_s=wall_s,
        wave_s=wall_s / _SWARM_WAVES,
        recomputes=engine.recomputes,
        visited=engine.transfers_visited,
        makespan_s=outcome.makespan_s,
        shards=len(engine._shards) if engine.sharded else 0,
    )


def run_sharded_sweep(quick: bool) -> list:
    """Trunk-sliced sharded cold waves; see the module docstring.

    ``--quick`` runs only the 25k-device sharded canary.  The full run
    adds the 10k trunked-vs-monolithic comparison (the monolithic cell
    alone costs ~3.5 min wall: that is the point) and the 100k swarm.
    """
    if quick:
        cells = [(25_000, 1250, 0.02, "sharded", True)]
    else:
        cells = [
            (10_000, 500, 0.05, "sharded", True),
            (10_000, 500, 0.05, "incremental", False),
            (100_000, 5000, 0.01, "sharded", True),
        ]
    return [_swarm100k_run(*cell) for cell in cells]


def check_sharded_sweep(rows) -> None:
    """Wall guards plus the trunk-sliced-vs-monolithic work ratio."""
    for row in rows:
        if row["recompute"] != "sharded":
            continue
        guard = (
            _SHARD_100K_GUARD_WAVE_S
            if row["devices"] >= 100_000
            else _SHARD_QUICK_GUARD_WAVE_S
        )
        assert row["wave_s"] < guard, (
            f"{row['devices']}-device sharded cold wave took "
            f"{row['wave_s']:.1f} s wall (guard: {guard:.0f} s) — "
            f"per-shard recompute scaling has regressed"
        )
        assert row["shards"] > 0
    by_trunking = {
        row["trunked"]: row for row in rows if row["devices"] == 10_000
    }
    if len(by_trunking) == 2:
        trunked, mono = by_trunking[True], by_trunking[False]
        ratio = mono["visited"] / max(trunked["visited"], 1)
        assert ratio >= _SHARD_VISITED_RATIO_MIN, (
            f"trunk-sliced sharding visited only {ratio:.1f}x fewer "
            f"transfers than the monolithic-egress baseline at 10k "
            f"devices (required: {_SHARD_VISITED_RATIO_MIN:.0f}x)"
        )


def _write_sharded_record(rows) -> None:
    """Land the sharded-swarm throughput in ``BENCH_sweep.json``."""
    from repro.sweep import SweepStats, write_bench_record

    stats = SweepStats(
        cells=len(rows),
        executed=len(rows),
        wall_s=sum(row["wall_s"] for row in rows),
    )
    by_trunking = {
        row["trunked"]: row for row in rows if row["devices"] == 10_000
    }
    extra = {
        "rows": [
            {
                key: row[key]
                for key in ("devices", "recompute", "trunked", "build_s",
                            "wall_s", "wave_s", "visited", "makespan_s",
                            "shards")
            }
            for row in rows
        ],
    }
    if len(by_trunking) == 2:
        extra["visited_ratio_10k"] = (
            by_trunking[False]["visited"] / by_trunking[True]["visited"]
        )
    record = write_bench_record(
        "bench_scale[swarm-sharded]", stats, **extra
    )
    print(f"sharded swarm record: {record}")


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    sizes = (10, 100) if quick else (10, 100, 1000)
    print("== transfer-engine scaling (steady pull stream) ==")
    print(
        f"{'devices':>8} {'mode':>12} {'wall s':>8} {'recomputes':>11} "
        f"{'visited':>9} {'sim end s':>10}"
    )
    for recompute in ("full", "incremental"):
        rows = run_engine_sweep(sizes, recompute)
        for row in rows:
            print(
                f"{row['devices']:>8} {row['recompute']:>12} "
                f"{row['wall_s']:>8.3f} {row['recomputes']:>11} "
                f"{row['visited']:>9} {row['sim_end_s']:>10.1f}"
            )
        check_engine_sweep(rows)
    print("engine sweep OK: wall time is sub-quadratic in fleet size")
    print()
    print("== swarm-scale cold waves (p2p-swarm-scale preset) ==")
    swarm_rows = run_swarm_sweep(quick)
    print(
        f"{'devices':>8} {'mode':>12} {'build s':>8} {'wall s':>8} "
        f"{'s/wave':>7} {'recomputes':>11} {'visited':>9} {'makespan':>9}"
    )
    for row in swarm_rows:
        print(
            f"{row['devices']:>8} {row['recompute']:>12} "
            f"{row['build_s']:>8.1f} {row['wall_s']:>8.1f} "
            f"{row['wave_s']:>7.1f} {row['recomputes']:>11} "
            f"{row['visited']:>9} {row['makespan_s']:>9.1f}"
        )
    check_swarm_sweep(swarm_rows)
    print(
        f"swarm sweep OK: 10k-device waves under {_SWARM_GUARD_WAVE_S:.0f} s"
        + (
            ""
            if quick
            else (
                f", incremental visits >={_SWARM_VISITED_RATIO_MIN:.0f}x "
                f"fewer transfers at 1000 devices"
            )
        )
    )
    print()
    print("== region-sharded cold waves (p2p-swarm-100k preset) ==")
    sharded_rows = run_sharded_sweep(quick)
    print(
        f"{'devices':>8} {'mode':>12} {'trunked':>8} {'build s':>8} "
        f"{'wall s':>8} {'s/wave':>7} {'visited':>9} {'shards':>7} "
        f"{'makespan':>9}"
    )
    for row in sharded_rows:
        print(
            f"{row['devices']:>8} {row['recompute']:>12} "
            f"{str(row['trunked']):>8} {row['build_s']:>8.1f} "
            f"{row['wall_s']:>8.1f} {row['wave_s']:>7.1f} "
            f"{row['visited']:>9} {row['shards']:>7} "
            f"{row['makespan_s']:>9.1f}"
        )
    check_sharded_sweep(sharded_rows)
    if quick:
        print(
            f"sharded sweep OK: 25k-device waves under "
            f"{_SHARD_QUICK_GUARD_WAVE_S:.0f} s"
        )
    else:
        _write_sharded_record(sharded_rows)
        print(
            f"sharded sweep OK: 100k-device waves under "
            f"{_SHARD_100K_GUARD_WAVE_S:.0f} s, trunk slicing visits "
            f">={_SHARD_VISITED_RATIO_MIN:.0f}x fewer transfers than "
            f"monolithic egress at 10k devices"
        )
    if quick:
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
