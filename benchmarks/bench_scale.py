"""Benchmark A4: scheduling scalability on synthetic instances.

Times DEEP's Nash sweep as the device fleet and DAG grow — the knob
the paper's two-device testbed never exercises.

Run directly for the transfer-engine scaling sweep (``--quick``
shrinks it for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--quick]

The sweep drives the time-resolved :class:`TransferEngine` with a
steady pull stream over fleets of 10/100/1000 devices (bounded
concurrency, as real arrival processes have) and checks wall time
stays **sub-quadratic** in fleet size: fair-share recomputation costs
``O(active transfers + involved links)`` per event, so with bounded
concurrency the total is near-linear — a quadratic blow-up would mean
the recompute started scanning idle state.
"""

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import pytest  # noqa: E402

from repro.core.baselines import GreedyEnergyScheduler  # noqa: E402
from repro.core.scheduler import DeepScheduler  # noqa: E402
from repro.model.network import NetworkModel  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.sim.rng import RngRegistry  # noqa: E402
from repro.sim.transfers import TransferEngine  # noqa: E402
from repro.workloads.synthetic import (  # noqa: E402
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)


def _instance(n_devices: int, width: int):
    rng = RngRegistry(99)
    env = synthetic_environment(n_devices, rng)
    app = synthetic_application(
        f"bench-{n_devices}x{width}",
        SyntheticConfig(layers=4, width=width),
        rng,
    )
    return env, app


@pytest.mark.parametrize("n_devices,width", [(2, 2), (4, 3), (8, 4)])
def bench_deep_scaling(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: DeepScheduler().schedule(app, env))
    result.plan.validate_against(app)


@pytest.mark.parametrize("n_devices,width", [(8, 4)])
def bench_greedy_scaling_reference(benchmark, n_devices, width):
    env, app = _instance(n_devices, width)
    result = benchmark(lambda: GreedyEnergyScheduler().schedule(app, env))
    result.plan.validate_against(app)


# ----------------------------------------------------------------------
# time-resolved transfer engine: fleet-size scaling
# ----------------------------------------------------------------------
#: Per-device channel bandwidth and shared origin uplink: ten transfers
#: run at full speed concurrently, so steady-state concurrency is set
#: by arrival spacing, not fleet size.
_ENGINE_CHANNEL_MBPS = 100.0
_ENGINE_UPLINK_MBPS = 1000.0
_ENGINE_PAYLOAD_BYTES = 250_000_000  # 20 s at channel speed
_ENGINE_SPACING_S = 2.0


def _engine_run(n_devices: int) -> dict:
    """One steady pull stream through the engine; returns timings."""
    network = NetworkModel()
    for i in range(n_devices):
        name = f"edge-{i:04d}"
        network.connect_registry("origin", name, _ENGINE_CHANNEL_MBPS)
        network.set_downlink(name, _ENGINE_CHANNEL_MBPS * 2)
    network.set_uplink("origin", _ENGINE_UPLINK_MBPS)
    sim = Simulator()
    engine = TransferEngine(sim, network)

    def one(i: int, name: str):
        yield sim.timeout(i * _ENGINE_SPACING_S)
        transfer = engine.start(
            "origin", name, _ENGINE_PAYLOAD_BYTES, src_is_registry=True
        )
        yield transfer.done

    for i in range(n_devices):
        sim.process(one(i, f"edge-{i:04d}"))
    wall_start = time.perf_counter()
    sim.run()
    wall_s = time.perf_counter() - wall_start
    assert engine.completed == n_devices
    assert engine.peak_oversubscription() <= 1.0 + 1e-9
    return dict(
        devices=n_devices,
        wall_s=wall_s,
        recomputes=engine.recomputes,
        sim_end_s=sim.now,
    )


def run_engine_sweep(sizes=(10, 100, 1000)) -> list:
    """Wall time of the engine across fleet sizes (steady concurrency)."""
    return [_engine_run(n) for n in sizes]


def check_engine_sweep(rows) -> None:
    """Sub-quadratic check between consecutive sweep sizes.

    With bounded concurrency the expected growth is linear; quadratic
    growth (ratio ≈ size-ratio²) means recomputation started touching
    idle state.  The threshold sits at ``ratio^1.5`` with a wall-clock
    noise floor so CI jitter on the small runs cannot fail the check.
    """
    for small, big in zip(rows, rows[1:]):
        size_ratio = big["devices"] / small["devices"]
        time_ratio = big["wall_s"] / max(small["wall_s"], 1e-3)
        assert time_ratio < size_ratio**1.5, (
            f"engine wall time grew {time_ratio:.1f}x from "
            f"{small['devices']} to {big['devices']} devices "
            f"(sub-quadratic bound: {size_ratio ** 1.5:.1f}x)"
        )


def bench_engine_steady_stream(benchmark):
    """pytest-benchmark unit: the 100-device steady stream."""
    row = benchmark.pedantic(lambda: _engine_run(100), rounds=3, iterations=1)
    assert row["recomputes"] > 0


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    sizes = (10, 100) if quick else (10, 100, 1000)
    rows = run_engine_sweep(sizes)
    print("== transfer-engine scaling (steady pull stream) ==")
    print(f"{'devices':>8} {'wall s':>8} {'recomputes':>11} {'sim end s':>10}")
    for row in rows:
        print(
            f"{row['devices']:>8} {row['wall_s']:>8.3f} "
            f"{row['recomputes']:>11} {row['sim_end_s']:>10.1f}"
        )
    check_engine_sweep(rows)
    print("engine sweep OK: wall time is sub-quadratic in fleet size")
    if quick:
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    raise SystemExit(main())
