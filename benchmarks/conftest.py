"""Benchmark fixtures: one calibrated testbed per session.

Benchmarks measure the *reproduction pipeline itself* — calibration,
Nash scheduling, orchestrated rollout, experiment regeneration — since
the simulated workloads complete in simulated (not wall-clock) time.
"""

import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.workloads.apps import text_processing, video_processing  # noqa: E402
from repro.workloads.calibration import calibrate  # noqa: E402
from repro.workloads.testbed import build_testbed  # noqa: E402


@pytest.fixture(scope="session")
def cal():
    return calibrate()


@pytest.fixture(scope="session")
def testbed(cal):
    return build_testbed(cal)


@pytest.fixture(scope="session")
def video_app(cal):
    return video_processing(cal)


@pytest.fixture(scope="session")
def text_app(cal):
    return text_processing(cal)
