"""``--quick`` smoke runner shared by every ``bench_*.py`` script.

Benchmarks rot silently: they are not collected by tier-1 pytest (their
functions are ``bench_*``, not ``test_*``) and pytest-benchmark is not
part of the CI image.  This module makes each benchmark script directly
executable —

    PYTHONPATH=src python benchmarks/bench_registry.py --quick

— by running every ``bench_*`` function in the module exactly once with
a pass-through stand-in for the pytest-benchmark fixture.  Assertions
inside the benchmarks still run, so a benchmark whose hot path broke
fails the smoke job even though no timing is recorded.

Fixtures are resolved the same way pytest would, but minimally: from
``benchmarks/conftest.py`` and the module's own ``@pytest.fixture``
functions, dependencies recursively, every value cached per run.
Parametrised benchmarks run with their *first* parameter set only (the
smallest instance, by repo convention — smoke wants cheap, not broad).
"""

from __future__ import annotations

import importlib.util
import inspect
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Tuple

BENCH_DIR = Path(__file__).resolve().parent
SRC = BENCH_DIR.parent / "src"
for _p in (str(SRC), str(BENCH_DIR)):
    if _p not in sys.path:
        sys.path.insert(0, _p)


class SmokeBenchmark:
    """Pass-through stand-in for the pytest-benchmark fixture."""

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return fn(*args, **kwargs)

    def pedantic(
        self,
        target: Callable,
        args: Tuple = (),
        kwargs: Dict[str, Any] = None,
        **_options: Any,
    ) -> Any:
        return target(*args, **(kwargs or {}))


def _fixture_function(obj: Any) -> Callable:
    """The raw function behind a ``@pytest.fixture`` object.

    pytest >= 8 wraps fixtures in ``FixtureFunctionDefinition`` (raw
    function at ``_fixture_function``); older versions return the
    function itself, possibly wrapped.
    """
    raw = getattr(obj, "_fixture_function", None)
    if raw is not None:
        return raw
    return inspect.unwrap(obj)


def _is_fixture(obj: Any) -> bool:
    return (
        hasattr(obj, "_fixture_function")
        or hasattr(obj, "_pytestfixturefunction")
    )


def _conftest_namespace() -> Dict[str, Any]:
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", BENCH_DIR / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return vars(module)


def _first_paramset(fn: Callable) -> Dict[str, Any]:
    """First value set of the function's ``parametrize`` marks."""
    params: Dict[str, Any] = {}
    for mark in getattr(fn, "pytestmark", []):
        if getattr(mark, "name", "") != "parametrize":
            continue
        argnames, argvalues = mark.args[0], mark.args[1]
        names = (
            [n.strip() for n in argnames.split(",")]
            if isinstance(argnames, str)
            else list(argnames)
        )
        first = list(argvalues)[0]
        values = getattr(first, "values", first)  # unwrap pytest.param
        if len(names) == 1 and not isinstance(values, (tuple, list)):
            values = (values,)
        params.update(zip(names, values))
    return params


def parse_quick(argv: List[str]) -> bool:
    """The shared ``--quick``-only CLI contract of every bench script.

    Returns whether ``--quick`` was passed; any other argument exits
    with status 2 so typos in CI don't silently run the wrong thing.
    """
    leftover = [a for a in argv if a != "--quick"]
    if leftover:
        print(f"unknown arguments: {leftover}", file=sys.stderr)
        raise SystemExit(2)
    return "--quick" in argv


def smoke_main(namespace: Dict[str, Any], argv: List[str] = ()) -> int:
    """Run every ``bench_*`` function of ``namespace`` once.

    ``--quick`` is accepted (and is the only mode: one pass, first
    paramset, no timing).
    """
    parse_quick(list(argv))
    providers: Dict[str, Any] = {}
    for ns in (_conftest_namespace(), namespace):
        for name, obj in ns.items():
            if _is_fixture(obj):
                providers[name] = obj
    resolved: Dict[str, Any] = {}
    finalizers: List[Any] = []

    def resolve(name: str) -> Any:
        if name in resolved:
            return resolved[name]
        if name not in providers:
            raise LookupError(f"no fixture {name!r} for the smoke run")
        fn = _fixture_function(providers[name])
        deps = list(inspect.signature(fn).parameters)
        value = fn(*[resolve(dep) for dep in deps])
        if inspect.isgenerator(value):  # yield-style fixture
            generator = value
            value = next(generator)
            finalizers.append(generator)
        resolved[name] = value
        return value

    module_name = namespace.get("__file__", "benchmarks")
    benches = sorted(
        (name, fn)
        for name, fn in namespace.items()
        if name.startswith("bench_") and inspect.isfunction(fn)
    )
    if not benches:
        print(f"{module_name}: no bench_* functions found", file=sys.stderr)
        return 1
    for name, fn in benches:
        params = _first_paramset(fn)
        kwargs: Dict[str, Any] = {}
        for param in inspect.signature(fn).parameters:
            if param in params:
                kwargs[param] = params[param]
            elif param == "benchmark":
                kwargs[param] = SmokeBenchmark()
            else:
                kwargs[param] = resolve(param)
        label = "".join(f" {k}={v!r}" for k, v in sorted(params.items()))
        print(f"smoke {Path(module_name).name}::{name}{label}")
        fn(**kwargs)
    # Tear yield-style fixtures down (code after their yield), newest
    # first, as pytest would.
    for generator in reversed(finalizers):
        next(generator, None)
    print(f"smoke OK: {len(benches)} benchmark(s) ran once")
    return 0
