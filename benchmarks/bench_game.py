"""Benchmark A3: Nash solver micro-benchmarks.

Times each solver on the exact game shapes DEEP constructs (registries
× devices — 2×2 on the paper's testbed, larger for the scaling
ablation) and on classic references.
"""

import numpy as np
import pytest

from repro.game import (
    NormalFormGame,
    all_equilibria,
    fictitious_play,
    lemke_howson,
    matching_pennies,
    pure_equilibria,
    solve_zero_sum,
    vertex_enumeration,
)


@pytest.fixture(scope="module")
def deep_shaped_game():
    """A 2×2 negated-energy coordination game like DEEP's."""
    energy = np.array([[857.5, 390.2], [857.3, 387.2]])
    return NormalFormGame(-energy, -energy)


@pytest.fixture(scope="module")
def larger_game():
    rng = np.random.default_rng(42)
    return NormalFormGame(rng.normal(size=(4, 6)), rng.normal(size=(4, 6)))


def bench_pure_equilibria_2x2(benchmark, deep_shaped_game):
    eqs = benchmark(lambda: pure_equilibria(deep_shaped_game))
    assert len(eqs) >= 1


def bench_support_enumeration_2x2(benchmark, deep_shaped_game):
    eqs = benchmark(lambda: all_equilibria(deep_shaped_game))
    assert len(eqs) >= 1


def bench_support_enumeration_4x6(benchmark, larger_game):
    eqs = benchmark(lambda: all_equilibria(larger_game))
    assert all(
        larger_game.is_nash(e.row_strategy, e.col_strategy) for e in eqs
    )


def bench_lemke_howson_4x6(benchmark, larger_game):
    eq = benchmark(lambda: lemke_howson(larger_game, 0))
    assert larger_game.is_nash(eq.row_strategy, eq.col_strategy, tol=1e-6)


def bench_vertex_enumeration_3x3(benchmark):
    rng = np.random.default_rng(7)
    game = NormalFormGame(rng.normal(size=(3, 3)), rng.normal(size=(3, 3)))
    eqs = benchmark(lambda: vertex_enumeration(game))
    assert all(game.is_nash(e.row_strategy, e.col_strategy) for e in eqs)


def bench_fictitious_play_1k_rounds(benchmark):
    game = matching_pennies()
    result = benchmark(lambda: fictitious_play(game, iterations=1000))
    assert result.exploitability < 0.1


def bench_zero_sum_lp_10x10(benchmark):
    rng = np.random.default_rng(13)
    game = NormalFormGame(rng.normal(size=(10, 10)))
    sol = benchmark(lambda: solve_zero_sum(game))
    assert game.is_nash(sol.row_strategy, sol.col_strategy, tol=1e-6)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
