"""Gossip-discovery benchmarks: fanout/period × churn sweeps.

Run directly for the discovery-realism sweep (``--quick`` shrinks it
to a 10-device swarm for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_gossip.py [--quick]

Three sweeps, all comparing ``hybrid+p2p`` origin-traffic savings
(vs the peer-less ``hybrid`` baseline) under omniscient vs gossip
discovery:

* **fanout × period grid** at a fixed churn rate — how much anti-
  entropy budget the views need before the swarm stops leaving peer
  bytes on the table;
* **churn-rate sweep** at fixed gossip parameters — how view staleness
  (metered as stale-miss fallbacks) grows with membership volatility,
  the axis the omniscient model hides entirely (it meters zero misses
  at any churn rate);
* **scale run** to 1000 devices (full mode only) — the anti-entropy
  loop must sustain four-digit swarms.

The ``bench_*`` functions are pytest-benchmark micro-benchmarks of the
gossip hot paths (round execution, view lookup), matching the other
``benchmarks/`` modules.
"""

import sys
import time
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _p in (str(_HERE.parent / "src"), str(_HERE)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from dataclasses import replace  # noqa: E402

from bench_p2p import _scenario_spec  # noqa: E402 - shared scaling rule
from repro.model.units import BYTES_PER_GB  # noqa: E402
from repro.registry.cache import ImageCache  # noqa: E402
from repro.registry.digest import digest_text  # noqa: E402
from repro.registry.discovery import GossipDiscovery  # noqa: E402
from repro.registry.p2p import PeerSwarm  # noqa: E402
from repro.model.network import NetworkModel  # noqa: E402
from repro.scenarios import (  # noqa: E402
    ChurnSpec,
    DiscoverySpec,
    SimulationSession,
    build_swarm_scenario,
)

#: Churn regimes swept (label, spec).  min_online is scaled down for
#: --quick swarms in ``_churn_for``.
CHURN_RATES = (
    ("none", None),
    ("moderate", ChurnSpec(mean_uptime_s=1500.0, mean_downtime_s=300.0,
                           min_online=8)),
    ("heavy", ChurnSpec(mean_uptime_s=500.0, mean_downtime_s=300.0,
                        min_online=8)),
)

FANOUTS = (1, 2, 4)
PERIODS_S = (30.0, 120.0, 480.0)


def _churn_for(spec, n_devices: int):
    if spec is None:
        return None
    return replace(
        spec, min_online=min(spec.min_online, max(2, n_devices // 3))
    )


def _compare(n_devices: int, churn, fanout: int, period_s: float) -> dict:
    """One cell: hybrid baseline vs p2p under both discovery backends."""
    base = _scenario_spec(n_devices, churn=_churn_for(churn, n_devices))
    scenario = build_swarm_scenario(base)
    hybrid = SimulationSession(
        replace(base, mode="hybrid"), scenario=scenario
    ).run()
    omni = SimulationSession(base, scenario=scenario).run()
    started = time.perf_counter()
    gossip = SimulationSession(
        replace(base, discovery=DiscoverySpec(
            backend="gossip",
            gossip_fanout=fanout,
            gossip_period_s=period_s,
        )),
        scenario=scenario,
    ).run()
    gossip_wall_s = time.perf_counter() - started
    origin = hybrid.origin_bytes
    return dict(
        churned=base.churn is not None,
        devices=n_devices,
        fanout=fanout,
        period_s=period_s,
        pulls=gossip.pulls,
        skipped=gossip.skipped_pulls,
        omni_saved_pct=100.0 * (origin - omni.origin_bytes) / origin,
        gossip_saved_pct=100.0 * (origin - gossip.origin_bytes) / origin,
        gap_gb=(gossip.origin_bytes - omni.origin_bytes) / BYTES_PER_GB,
        stale_misses=gossip.stale_peer_misses,
        omni_stale=omni.stale_peer_misses,
        rounds=gossip.gossip_rounds,
        departures=gossip.departures,
        gossip_wall_s=gossip_wall_s,
    )


def run_grid(n_devices: int, churn=CHURN_RATES[1][1]) -> list:
    """Fanout × period sweep at one churn rate."""
    rows = []
    for fanout in FANOUTS:
        for period_s in PERIODS_S:
            rows.append(_compare(n_devices, churn, fanout, period_s))
    return rows


def run_churn_sweep(n_devices: int, fanout: int = 2, period_s: float = 60.0):
    """Churn-rate sweep at one gossip configuration."""
    rows = []
    for label, churn in CHURN_RATES:
        row = _compare(n_devices, churn, fanout, period_s)
        row["churn"] = label
        rows.append(row)
    return rows


def check_rows(rows) -> None:
    """Acceptance assertions over any finished sweep."""
    for row in rows:
        assert row["omni_stale"] == 0, (
            f"omniscient discovery metered stale misses: {row}"
        )
        # Partial views can only hide committed replicas, never invent
        # them, so gossip must not *beat* omniscient discovery by more
        # than incidental eviction-order noise.
        assert row["gossip_saved_pct"] <= row["omni_saved_pct"] + 5.0, (
            f"gossip savings exceed omniscient: {row}"
        )


def check_staleness_exercised(all_rows) -> None:
    """Across every churned cell of the run, somebody must have
    tripped over a stale entry — otherwise the axis this bench exists
    to measure silently stopped being exercised.  (Checked over the
    union, not per sweep: a single small low-churn grid can
    legitimately meter zero misses.)"""
    churned = [r for r in all_rows if r["churned"]]
    assert churned, "no churned cells in the run"
    assert sum(r["stale_misses"] for r in churned) > 0, (
        "churn produced no stale-view misses anywhere — staleness is "
        "not being exercised"
    )


def _print_rows(rows, extra=()) -> None:
    cols = ["devices", "fanout", "period_s", "pulls", "skipped",
            "omni_saved_pct", "gossip_saved_pct", "gap_gb",
            "stale_misses", "rounds", "departures", "gossip_wall_s"]
    cols = list(extra) + cols
    print(" ".join(f"{c:>12}" for c in cols))
    for row in rows:
        cells = []
        for c in cols:
            v = row.get(c, "")
            cells.append(f"{v:>12.2f}" if isinstance(v, float) else f"{v:>12}")
        print(" ".join(cells))


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (gossip hot paths)
# ----------------------------------------------------------------------
def _gossiping_swarm(n_devices: int = 64, layers_per_device: int = 6):
    network = NetworkModel()
    names = [f"edge-{i:04d}" for i in range(n_devices)]
    network.connect_device_mesh(names, 800.0)
    discovery = GossipDiscovery(fanout=2, period_s=30.0, seed=11)
    swarm = PeerSwarm(network, discovery=discovery)
    for i, name in enumerate(names):
        cache = ImageCache(4.0, name)
        swarm.add_device(name, cache, region=f"region-{i % 4}")
        for j in range(layers_per_device):
            digest = digest_text(f"layer-{(i + j) % (n_devices // 2)}")
            cache.add(digest, 50_000_000)
    return swarm, discovery


def bench_gossip_round(benchmark):
    """One full anti-entropy round over a 64-device swarm."""
    _swarm, discovery = _gossiping_swarm()
    benchmark(discovery.run_round)
    assert discovery.rounds > 0


def bench_gossip_view_lookup(benchmark):
    """The planner-facing view query after views have converged."""
    swarm, discovery = _gossiping_swarm()
    for _ in range(8):
        discovery.run_round()
    digest = digest_text("layer-1")
    viewer = "edge-0010"

    holders = benchmark(lambda: discovery.view(viewer, digest))
    assert holders  # converged views must know a popular layer


def bench_best_peer_under_gossip(benchmark):
    """Swarm peer selection through the gossip view."""
    swarm, discovery = _gossiping_swarm()
    for _ in range(8):
        discovery.run_round()
    digest = digest_text("layer-1")

    peer = benchmark(lambda: swarm.best_peer(digest, "edge-0010"))
    assert peer is not None


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    grid_n = 10 if quick else 100
    global FANOUTS, PERIODS_S
    if quick:
        FANOUTS = (1, 2)
        PERIODS_S = (60.0, 480.0)

    print(f"== gossip fanout × period grid ({grid_n} devices, "
          f"moderate churn) ==")
    all_rows = []
    grid = run_grid(grid_n)
    all_rows += grid
    _print_rows(grid)
    check_rows(grid)
    # More anti-entropy budget must not hurt: the best-provisioned
    # cell's savings are at least the worst-provisioned cell's.
    best = max(r["gossip_saved_pct"] for r in grid)
    worst = min(r["gossip_saved_pct"] for r in grid)
    print(f"grid OK: gossip savings span {worst:.1f}%..{best:.1f}% "
          f"(omniscient {grid[0]['omni_saved_pct']:.1f}%)")

    print(f"== churn sweep ({grid_n} devices, fanout=2, period=60 s) ==")
    churn_rows = run_churn_sweep(grid_n)
    all_rows += churn_rows
    _print_rows(churn_rows, extra=("churn",))
    check_rows(churn_rows)
    print("churn sweep OK: omniscient meters zero misses at every rate; "
          "gossip misses are the realism gap")

    if not quick:
        print("== scale run (1000 devices, fanout=2, period=300 s, "
              "moderate churn) ==")
        scale = [_compare(1000, CHURN_RATES[1][1], 2, 300.0)]
        all_rows += scale
        _print_rows(scale)
        check_rows(scale)
        print("scale OK: anti-entropy sustained a 1000-device swarm")

    check_staleness_exercised(all_rows)
    print("staleness OK: stale-view misses were metered under churn")

    if quick:
        # The CI smoke job must also exercise this module's bench_*
        # micro-benchmarks, like every other benchmark script.
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.exit(main())
