"""Gossip-discovery benchmarks: fanout/period × churn sweeps.

Run directly for the discovery-realism sweep (``--quick`` shrinks it
to a 10-device swarm for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_gossip.py [--quick]

The grids are **sweep declarations** — one :class:`repro.sweep.SweepSpec`
whose variants cover the hybrid / omniscient / gossip comparison cells,
executed by :func:`repro.sweep.run_sweep` (worker pool, content-
addressed cell cache) — and the comparison rows are derived from the
sweep's tidy aggregate:

* **fanout × period grid** at a fixed churn rate — how much anti-
  entropy budget the views need before the swarm stops leaving peer
  bytes on the table;
* **churn-rate sweep** at fixed gossip parameters — how view staleness
  (metered as stale-miss fallbacks) grows with membership volatility,
  the axis the omniscient model hides entirely (it meters zero misses
  at any churn rate);
* **scale run** to 1000 devices (full mode only) — the anti-entropy
  loop must sustain four-digit swarms.

``--quick`` also re-runs the grid through a 2-process pool against a
fresh cache and asserts the parallel aggregate is byte-identical to
the serial one; the run's throughput lands in ``BENCH_sweep.json``
(:func:`repro.sweep.write_bench_record`).

The ``bench_*`` functions are pytest-benchmark micro-benchmarks of the
gossip hot paths (round execution, view lookup), matching the other
``benchmarks/`` modules.
"""

import os
import sys
import tempfile
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _p in (str(_HERE.parent / "src"), str(_HERE)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from dataclasses import asdict, replace  # noqa: E402

from bench_p2p import _scenario_spec  # noqa: E402 - shared scaling rule
from repro.model.units import BYTES_PER_GB  # noqa: E402
from repro.registry.cache import ImageCache  # noqa: E402
from repro.registry.digest import digest_text  # noqa: E402
from repro.registry.discovery import GossipDiscovery  # noqa: E402
from repro.registry.p2p import PeerSwarm  # noqa: E402
from repro.model.network import NetworkModel  # noqa: E402
from repro.scenarios import ChurnSpec  # noqa: E402
from repro.sweep import SweepSpec, run_sweep, write_bench_record  # noqa: E402

#: Churn regimes swept (label, spec).  min_online is scaled down for
#: --quick swarms in ``_churn_for``.
CHURN_RATES = (
    ("none", None),
    ("moderate", ChurnSpec(mean_uptime_s=1500.0, mean_downtime_s=300.0,
                           min_online=8)),
    ("heavy", ChurnSpec(mean_uptime_s=500.0, mean_downtime_s=300.0,
                        min_online=8)),
)

FANOUTS = (1, 2, 4)
PERIODS_S = (30.0, 120.0, 480.0)


def _churn_for(spec, n_devices: int):
    if spec is None:
        return None
    return replace(
        spec, min_online=min(spec.min_online, max(2, n_devices // 3))
    )


def _churn_value(spec, n_devices: int) -> dict:
    """The churn overrides a variant bundle carries.

    ``churn.<field>`` paths materialise a churn section on the
    churn-free base; ``churn=None`` keeps it churn-free.
    """
    scaled = _churn_for(spec, n_devices)
    if scaled is None:
        return {"churn": None}
    return {f"churn.{name}": value for name, value in asdict(scaled).items()}


def _gossip_bundle(churn: dict, fanout: int, period_s: float) -> dict:
    return dict(churn, **{
        "discovery.backend": "gossip",
        "discovery.gossip_fanout": fanout,
        "discovery.gossip_period_s": period_s,
    })


def realism_sweep(
    n_devices: int,
    grid: bool = True,
    churn_rates=CHURN_RATES,
    fanout: int = 2,
    period_s: float = 60.0,
) -> SweepSpec:
    """The discovery-realism matrix as one declarative sweep.

    Per churn regime: a ``hybrid`` baseline (no peer tier), an
    omniscient ``hybrid+p2p`` run, and one gossip run at the reference
    (fanout, period).  With ``grid=True`` the moderate-churn regime
    additionally gets every ``FANOUTS × PERIODS_S`` gossip cell.  The
    hybrid/omniscient baselines are *shared* between the grid and the
    churn sweep — the content-addressed cells make reuse free.
    """
    variants = {}
    for label, churn in churn_rates:
        value = _churn_value(churn, n_devices)
        variants[f"{label}/hybrid"] = dict(value, mode="hybrid")
        variants[f"{label}/omniscient"] = dict(value)
        variants[f"{label}/gossip-f{fanout}-p{period_s:g}"] = (
            _gossip_bundle(value, fanout, period_s)
        )
    if grid:
        moderate = _churn_value(dict(churn_rates)["moderate"], n_devices)
        for grid_fanout in FANOUTS:
            for grid_period in PERIODS_S:
                variants[f"moderate/gossip-f{grid_fanout}-p{grid_period:g}"] = (
                    _gossip_bundle(moderate, grid_fanout, grid_period)
                )
    base = _scenario_spec(n_devices)
    return SweepSpec(
        name=f"gossip-realism-{n_devices}",
        description=(
            "hybrid / omniscient / gossip origin traffic per churn "
            "regime, plus the fanout × period grid under moderate churn"
        ),
        base=base,
        variants=variants,
        seeds=(base.seed,),
    )


def _derive(by_variant: dict, n_devices: int, label: str,
            fanout: int, period_s: float) -> dict:
    """One comparison row (the bench's historical row shape) from the
    sweep aggregate's hybrid / omniscient / gossip variant rows."""
    hybrid = by_variant[f"{label}/hybrid"]
    omni = by_variant[f"{label}/omniscient"]
    gossip = by_variant[f"{label}/gossip-f{fanout}-p{period_s:g}"]
    origin = hybrid["origin_bytes"]
    return dict(
        churned=label != "none",
        churn=label,
        devices=n_devices,
        fanout=fanout,
        period_s=period_s,
        pulls=gossip["pulls"],
        skipped=gossip["skipped_pulls"],
        omni_saved_pct=100.0 * (origin - omni["origin_bytes"]) / origin,
        gossip_saved_pct=100.0 * (origin - gossip["origin_bytes"]) / origin,
        gap_gb=(gossip["origin_bytes"] - omni["origin_bytes"])
        / BYTES_PER_GB,
        stale_misses=gossip["stale_peer_misses"],
        omni_stale=omni["stale_peer_misses"],
        rounds=gossip["gossip_rounds"],
        departures=gossip["departures"],
    )


def derive_rows(result, n_devices: int, grid: bool = True,
                churn_rates=CHURN_RATES,
                fanout: int = 2, period_s: float = 60.0):
    """(grid_rows, churn_rows) derived from one realism-sweep result."""
    by_variant = {row["variant"]: row for row in result.rows}
    grid_rows = []
    if grid:
        for grid_fanout in FANOUTS:
            for grid_period in PERIODS_S:
                grid_rows.append(_derive(
                    by_variant, n_devices, "moderate",
                    grid_fanout, grid_period,
                ))
    churn_rows = [
        _derive(by_variant, n_devices, label, fanout, period_s)
        for label, _churn in churn_rates
    ]
    return grid_rows, churn_rows


def check_rows(rows) -> None:
    """Acceptance assertions over any finished sweep."""
    for row in rows:
        assert row["omni_stale"] == 0, (
            f"omniscient discovery metered stale misses: {row}"
        )
        # Partial views can only hide committed replicas, never invent
        # them, so gossip must not *beat* omniscient discovery by more
        # than incidental eviction-order noise.
        assert row["gossip_saved_pct"] <= row["omni_saved_pct"] + 5.0, (
            f"gossip savings exceed omniscient: {row}"
        )


def check_staleness_exercised(all_rows) -> None:
    """Across every churned cell of the run, somebody must have
    tripped over a stale entry — otherwise the axis this bench exists
    to measure silently stopped being exercised.  (Checked over the
    union, not per sweep: a single small low-churn grid can
    legitimately meter zero misses.)"""
    churned = [r for r in all_rows if r["churned"]]
    assert churned, "no churned cells in the run"
    assert sum(r["stale_misses"] for r in churned) > 0, (
        "churn produced no stale-view misses anywhere — staleness is "
        "not being exercised"
    )


def _print_rows(rows, extra=()) -> None:
    cols = ["devices", "fanout", "period_s", "pulls", "skipped",
            "omni_saved_pct", "gossip_saved_pct", "gap_gb",
            "stale_misses", "rounds", "departures"]
    cols = list(extra) + cols
    print(" ".join(f"{c:>12}" for c in cols))
    for row in rows:
        cells = []
        for c in cols:
            v = row.get(c, "")
            cells.append(f"{v:>12.2f}" if isinstance(v, float) else f"{v:>12}")
        print(" ".join(cells))


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (gossip hot paths)
# ----------------------------------------------------------------------
def _gossiping_swarm(n_devices: int = 64, layers_per_device: int = 6):
    network = NetworkModel()
    names = [f"edge-{i:04d}" for i in range(n_devices)]
    network.connect_device_mesh(names, 800.0)
    discovery = GossipDiscovery(fanout=2, period_s=30.0, seed=11)
    swarm = PeerSwarm(network, discovery=discovery)
    for i, name in enumerate(names):
        cache = ImageCache(4.0, name)
        swarm.add_device(name, cache, region=f"region-{i % 4}")
        for j in range(layers_per_device):
            digest = digest_text(f"layer-{(i + j) % (n_devices // 2)}")
            cache.add(digest, 50_000_000)
    return swarm, discovery


def bench_gossip_round(benchmark):
    """One full anti-entropy round over a 64-device swarm."""
    _swarm, discovery = _gossiping_swarm()
    benchmark(discovery.run_round)
    assert discovery.rounds > 0


def bench_gossip_view_lookup(benchmark):
    """The planner-facing view query after views have converged."""
    swarm, discovery = _gossiping_swarm()
    for _ in range(8):
        discovery.run_round()
    digest = digest_text("layer-1")
    viewer = "edge-0010"

    holders = benchmark(lambda: discovery.view(viewer, digest))
    assert holders  # converged views must know a popular layer


def bench_best_peer_under_gossip(benchmark):
    """Swarm peer selection through the gossip view."""
    swarm, discovery = _gossiping_swarm()
    for _ in range(8):
        discovery.run_round()
    digest = digest_text("layer-1")

    peer = benchmark(lambda: swarm.best_peer(digest, "edge-0010"))
    assert peer is not None


def main(argv=None) -> int:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    grid_n = 10 if quick else 100
    global FANOUTS, PERIODS_S
    if quick:
        FANOUTS = (1, 2)
        PERIODS_S = (60.0, 480.0)
    # Quick mode runs serial first so the determinism check below is a
    # true serial-vs-parallel comparison; the full run uses the pool.
    workers = 1 if quick else min(4, os.cpu_count() or 1)

    sweep = realism_sweep(grid_n)
    with tempfile.TemporaryDirectory() as cache_dir:
        result = run_sweep(sweep, cache_dir=cache_dir, workers=workers)
    record = write_bench_record(
        "bench_gossip", result.stats, devices=grid_n, quick=quick
    )
    print(f"sweep {sweep.name}: {record}")
    grid, churn_rows = derive_rows(result, grid_n)
    all_rows = []

    print(f"== gossip fanout × period grid ({grid_n} devices, "
          f"moderate churn) ==")
    all_rows += grid
    _print_rows(grid)
    check_rows(grid)
    # More anti-entropy budget must not hurt: the best-provisioned
    # cell's savings are at least the worst-provisioned cell's.
    best = max(r["gossip_saved_pct"] for r in grid)
    worst = min(r["gossip_saved_pct"] for r in grid)
    print(f"grid OK: gossip savings span {worst:.1f}%..{best:.1f}% "
          f"(omniscient {grid[0]['omni_saved_pct']:.1f}%)")

    print(f"== churn sweep ({grid_n} devices, fanout=2, period=60 s) ==")
    all_rows += churn_rows
    _print_rows(churn_rows, extra=("churn",))
    check_rows(churn_rows)
    print("churn sweep OK: omniscient meters zero misses at every rate; "
          "gossip misses are the realism gap")

    if not quick:
        print("== scale run (1000 devices, fanout=2, period=300 s, "
              "moderate churn) ==")
        moderate = (("moderate", CHURN_RATES[1][1]),)
        scale_sweep = realism_sweep(
            1000, grid=False, churn_rates=moderate,
            fanout=2, period_s=300.0,
        )
        scale_result = run_sweep(scale_sweep, workers=workers)
        write_bench_record(
            "bench_gossip_scale", scale_result.stats, devices=1000
        )
        _grid, scale = derive_rows(
            scale_result, 1000, grid=False, churn_rates=moderate,
            fanout=2, period_s=300.0,
        )
        all_rows += scale
        _print_rows(scale)
        check_rows(scale)
        print("scale OK: anti-entropy sustained a 1000-device swarm")

    check_staleness_exercised(all_rows)
    print("staleness OK: stale-view misses were metered under churn")

    if quick:
        # The sweep engine's determinism contract, proven on every CI
        # smoke run: a 2-process pool against a fresh cache produces
        # byte-for-byte the aggregate the serial run produced.
        with tempfile.TemporaryDirectory() as cache_dir:
            parallel = run_sweep(sweep, cache_dir=cache_dir, workers=2)
        assert parallel.aggregate_json() == result.aggregate_json(), (
            "parallel sweep aggregate diverged from the serial one"
        )
        print("determinism OK: 2-worker aggregate byte-identical")

        # The CI smoke job must also exercise this module's bench_*
        # micro-benchmarks, like every other benchmark script.
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.exit(main())
