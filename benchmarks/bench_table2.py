"""Benchmark E1: regenerating Table II.

Times the full Table II regeneration (24 standalone rollouts through
scheduler + orchestrator + meters) and the single-service path, and
asserts the regenerated cells stay inside the published ranges — a
benchmark that silently drifted out of range would be meaningless.
"""

import pytest

from repro.experiments import table2
from repro.experiments.table2 import benchmark_service
from repro.workloads.table2 import row as table_row


def bench_table2_full_regeneration(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: table2.run(testbed), rounds=3, iterations=1
    )
    assert len(result.rows) == 24
    assert all(r["in_range"] for r in result.rows)


def bench_table2_single_service_medium(benchmark, testbed):
    tp, ct, ec = benchmark.pedantic(
        lambda: benchmark_service(testbed, "vp-ha-train", "medium"),
        rounds=5,
        iterations=1,
    )
    published = table_row("video-processing", "ha-train")
    assert published.ct_s.contains(ct, slack=0.05)
    assert published.ec_medium_j.contains(ec, slack=0.05)


def bench_table2_single_service_small(benchmark, testbed):
    tp, ct, ec = benchmark.pedantic(
        lambda: benchmark_service(testbed, "tp-ha-train", "small"),
        rounds=5,
        iterations=1,
    )
    published = table_row("text-processing", "ha-train")
    assert published.ec_small_j.contains(ec, slack=0.05)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
