"""Benchmark E3: regenerating Figure 3a (per-microservice energy).

Times the DEEP rollout + per-service energy aggregation and checks the
figure's qualitative claim (training dominates).
"""

from repro.experiments import figure3a


def bench_figure3a_regeneration(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: figure3a.run(testbed), rounds=3, iterations=1
    )
    assert len(result.rows) == 12
    assert "yes" in result.notes[0]


def bench_figure3a_training_dominance(benchmark, testbed):
    def series():
        result = figure3a.run(testbed)
        return {
            (r["application"], r["service"]): r["energy_kj"]
            for r in result.rows
        }

    energies = benchmark.pedantic(series, rounds=3, iterations=1)
    for app in ("video-processing", "text-processing"):
        trains = [v for (a, s), v in energies.items() if a == app and "train" in s]
        others = [
            v for (a, s), v in energies.items() if a == app and "train" not in s
        ]
        assert max(trains) > max(others)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
