"""Benchmark E5 (extension): cloud-edge offload sweep."""

from repro.experiments import cloud as cloud_experiment
from repro.workloads.cloud import CloudConfig, cloud_environment
from repro.core.scheduler import DeepScheduler


def bench_cloud_sweep(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: cloud_experiment.run(testbed, static_watts_grid=[1.0, 40.0]),
        rounds=3,
        iterations=1,
    )
    video_rows = [
        r for r in result.rows if r["application"] == "video-processing"
    ]
    assert video_rows[0]["cloud_share"] > 0.0
    assert video_rows[-1]["cloud_share"] == 0.0


def bench_deep_schedule_three_devices(benchmark, testbed, video_app):
    env = cloud_environment(testbed, CloudConfig(static_watts=2.0))
    result = benchmark(lambda: DeepScheduler().schedule(video_app, env))
    result.plan.validate_against(video_app)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
