"""Benchmarks A1/A2 (bandwidth sweep, cache/dedup ablations) plus the
two sweep-preset ablation studies the ROADMAP deferred to the sweep
engine.

Run directly for the studies (``--quick`` shrinks each grid to a
2 × 2 × 1-seed corner for the CI smoke job)::

    PYTHONPATH=src python benchmarks/bench_ablations.py [--quick]

* **replicator-policy** — demand-decay swept across two hotness-scope
  arms (global absolute threshold vs per-region auto-scaled
  ``hot_fraction``); the per-region arm must never replicate *more*
  bytes than global on the same cell (it only narrows where copies
  go).
* **gossip-transport** — per-pair metadata latency × exchange mode ×
  payload loss; the digest-summary exchange must reproduce the
  push-pull outcome *exactly* (it is a semantics-preserving delta
  encoding) while shipping strictly fewer view records over the wire,
  at every loss rate.

Both run through :func:`repro.sweep.run_sweep` (worker pool, fresh
content-addressed cache) and land their throughput in
``BENCH_sweep.json``.  The ``bench_*`` functions are pytest-benchmark
micro-benchmarks of the paper-ablation experiments, matching the other
``benchmarks/`` modules.
"""

import os
import sys
import tempfile
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _p in (str(_HERE.parent / "src"), str(_HERE)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from dataclasses import replace  # noqa: E402

from repro.experiments import ablations  # noqa: E402
from repro.sweep import get_sweep, run_sweep, write_bench_record  # noqa: E402


def bench_ablation_cache_dedup(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: ablations.cache_and_dedup(testbed), rounds=3, iterations=1
    )
    by_name = {row["scenario"]: row for row in result.rows}
    assert by_name["whole-image warm"]["bytes_pulled_gb"] == 0.0
    assert (
        by_name["layered cold"]["bytes_pulled_gb"]
        < by_name["whole-image cold"]["bytes_pulled_gb"]
    )


def bench_ablation_solver_comparison(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: ablations.solver_comparison(testbed), rounds=3, iterations=1
    )
    assert all(row["plan_equals_support"] for row in result.rows)


def bench_ablation_bandwidth_point(benchmark):
    """One sweep point (including recalibration + testbed rebuild)."""
    result = benchmark.pedantic(
        lambda: ablations.bandwidth_sweep(multipliers=[1.0]),
        rounds=3,
        iterations=1,
    )
    assert len(result.rows) == 1


# ----------------------------------------------------------------------
# the sweep-preset studies
# ----------------------------------------------------------------------
def _cell_groups(rows, group_by, within):
    """rows → {group key: {within value: row}} for pairwise checks."""
    groups = {}
    for row in rows:
        key = tuple(row[column] for column in group_by)
        groups.setdefault(key, {})[row[within]] = row
    return groups


def check_replicator_policy(rows) -> None:
    """Per-region hotness only narrows *where* copies go, so on every
    (decay, seed) cell it must not replicate more bytes than global
    hotness — and somewhere on the grid it must replicate strictly
    fewer (otherwise the scope knob is dead).  The scopes ride the
    sweep's *variants* (each arm carries its own threshold knob:
    ``hot_threshold`` for global, auto-scaled ``hot_fraction`` for
    per-region), so rows are grouped by the ``variant`` column."""
    groups = _cell_groups(
        rows, ("replication.decay", "seed"), "variant"
    )
    strictly_fewer = 0
    for key, pair in groups.items():
        per_region = pair["per-region"]["bytes_replicated"]
        global_scope = pair["global"]["bytes_replicated"]
        assert per_region <= global_scope, (
            f"per-region hotness replicated more than global on {key}: "
            f"{per_region} > {global_scope}"
        )
        strictly_fewer += per_region < global_scope
    assert strictly_fewer > 0, (
        "per-region hotness never changed replication volume — the "
        "scope knob is not being exercised"
    )


def check_gossip_transport(rows) -> None:
    """Digest-summary is a delta encoding of the same anti-entropy
    exchange: on every (latency, loss, seed) cell its traffic outcome
    must match push-pull exactly while shipping strictly fewer
    records — payload loss drops the same seeded (receiver, sender)
    pairs in both modes, so it cannot perturb the equivalence."""
    groups = _cell_groups(
        rows,
        ("discovery.gossip_latency_s", "discovery.gossip_loss_rate",
         "seed"),
        "discovery.gossip_exchange",
    )
    for key, pair in groups.items():
        full, summary = pair["push-pull"], pair["digest-summary"]
        for column in ("pulls", "origin_bytes", "bytes_from_peers",
                       "stale_peer_misses", "makespan_s"):
            assert full[column] == summary[column], (
                f"digest-summary changed {column} on {key}: "
                f"{full[column]} vs {summary[column]}"
            )
        assert summary["gossip_records_sent"] < full["gossip_records_sent"], (
            f"digest-summary did not reduce wire records on {key}: "
            f"{summary['gossip_records_sent']} vs "
            f"{full['gossip_records_sent']}"
        )


def _shrink(sweep_spec):
    """The 2 × 2 × 1-seed corner of a study grid (--quick)."""
    axes = [
        (path, (values[0], values[-1]) if len(values) > 2 else values)
        for path, values in sweep_spec.axes
    ]
    return replace(sweep_spec, axes=axes, seeds=sweep_spec.seeds[:1])


def _print_rows(rows, columns) -> None:
    print(" ".join(f"{c:>26}" for c in columns))
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            cells.append(f"{v:>26.2f}" if isinstance(v, float) else f"{v:>26}")
        print(" ".join(cells))


def run_study(name: str, quick: bool, workers: int):
    """One registered sweep preset, executed and recorded."""
    spec = get_sweep(name)
    if quick:
        spec = _shrink(spec)
    with tempfile.TemporaryDirectory() as cache_dir:
        result = run_sweep(spec, cache_dir=cache_dir, workers=workers)
    record = write_bench_record(
        f"bench_ablations[{name}]", result.stats, quick=quick
    )
    print(f"sweep {name}: {record}")
    return result


def main(argv=None) -> int:
    from _smoke import parse_quick, smoke_main

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    workers = min(4, os.cpu_count() or 1)

    print("== replicator-policy study (demand-decay × hotness scope) ==")
    policy = run_study("replicator-policy", quick, workers)
    _print_rows(policy.rows, [
        "variant", "replication.decay", "seed",
        "origin_bytes", "bytes_replicated", "stale_peer_misses",
    ])
    check_replicator_policy(policy.rows)
    print("replicator-policy OK: per-region hotness only narrows "
          "replication, never inflates it")

    print("== gossip-transport study (metadata latency × exchange) ==")
    transport = run_study("gossip-transport", quick, workers)
    _print_rows(transport.rows, [
        "discovery.gossip_latency_s", "discovery.gossip_exchange",
        "discovery.gossip_loss_rate", "seed", "origin_bytes",
        "gossip_payloads_lost", "gossip_records_sent",
    ])
    check_gossip_transport(transport.rows)
    print("gossip-transport OK: digest-summary converges identically "
          "with strictly fewer wire records")

    # The paper-ablation micro-benchmarks, as before.
    return smoke_main(globals(), [])


if __name__ == "__main__":
    sys.exit(main())
