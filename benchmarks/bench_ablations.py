"""Benchmarks A1/A2: bandwidth sweep and cache/dedup ablations."""

from repro.experiments import ablations


def bench_ablation_cache_dedup(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: ablations.cache_and_dedup(testbed), rounds=3, iterations=1
    )
    by_name = {row["scenario"]: row for row in result.rows}
    assert by_name["whole-image warm"]["bytes_pulled_gb"] == 0.0
    assert (
        by_name["layered cold"]["bytes_pulled_gb"]
        < by_name["whole-image cold"]["bytes_pulled_gb"]
    )


def bench_ablation_solver_comparison(benchmark, testbed):
    result = benchmark.pedantic(
        lambda: ablations.solver_comparison(testbed), rounds=3, iterations=1
    )
    assert all(row["plan_equals_support"] for row in result.rows)


def bench_ablation_bandwidth_point(benchmark):
    """One sweep point (including recalibration + testbed rebuild)."""
    result = benchmark.pedantic(
        lambda: ablations.bandwidth_sweep(multipliers=[1.0]),
        rounds=3,
        iterations=1,
    )
    assert len(result.rows) == 1


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
