"""Registry substrate micro-benchmarks: publish, mirror, pull paths."""

import pytest

from repro.model.device import Arch
from repro.registry.base import ImageReference, mirror_image
from repro.registry.cache import ImageCache
from repro.registry.client import PullPolicy, RegistryClient
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.minio import MinioStore
from repro.registry.regional import RegionalRegistry


def bench_build_and_push_image(benchmark):
    def publish():
        hub = DockerHub()
        mlist, blobs = build_image(
            "acme/app", 5.78, base=OFFICIAL_BASES["python:3.9"]
        )
        hub.push_image("acme/app", "latest", mlist, blobs)
        return hub

    hub = benchmark(publish)
    assert hub.has_image(ImageReference("acme/app"), Arch.AMD64)


def bench_mirror_to_regional(benchmark):
    hub = DockerHub()
    mlist, blobs = build_image("acme/app", 2.36, base=OFFICIAL_BASES["python:3.9"])
    hub.push_image("acme/app", "latest", mlist, blobs)

    def mirror():
        regional = RegionalRegistry(store=MinioStore(capacity_gb=50.0))
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        return regional

    regional = benchmark(mirror)
    assert regional.has_image(ImageReference("aau/app"), Arch.ARM64)


def bench_cold_pull_whole_image(benchmark):
    hub = DockerHub()
    mlist, blobs = build_image("acme/app", 1.0, base=OFFICIAL_BASES["alpine:3"])
    hub.push_image("acme/app", "latest", mlist, blobs)
    client = RegistryClient(PullPolicy.WHOLE_IMAGE)

    def pull():
        cache = ImageCache(64.0)
        return client.pull(hub, ImageReference("acme/app"), Arch.AMD64, cache)

    result = benchmark(pull)
    assert result.bytes_transferred == result.bytes_total


def bench_warm_pull_cache_hit(benchmark):
    hub = DockerHub()
    mlist, blobs = build_image("acme/app", 1.0, base=OFFICIAL_BASES["alpine:3"])
    hub.push_image("acme/app", "latest", mlist, blobs)
    client = RegistryClient(PullPolicy.WHOLE_IMAGE)
    cache = ImageCache(64.0)
    client.pull(hub, ImageReference("acme/app"), Arch.AMD64, cache)

    result = benchmark(
        lambda: client.pull(hub, ImageReference("acme/app"), Arch.AMD64, cache)
    )
    assert result.cache_hit


def bench_layered_sibling_pull(benchmark):
    hub = DockerHub()
    for repo in ("acme/a", "acme/b"):
        mlist, blobs = build_image(repo, 1.0, base=OFFICIAL_BASES["python:3.9"])
        hub.push_image(repo, "latest", mlist, blobs)
    client = RegistryClient(PullPolicy.LAYERED)
    cache = ImageCache(64.0)
    client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)

    def sibling_pull():
        # Fresh copy of the cache per round so dedup state is identical.
        import copy

        local = copy.deepcopy(cache)
        return client.pull(hub, ImageReference("acme/b"), Arch.AMD64, local)

    result = benchmark(sibling_pull)
    assert result.bytes_transferred < result.bytes_total


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from _smoke import smoke_main

    raise SystemExit(smoke_main(globals(), sys.argv[1:]))
