"""Chunked-transfer benchmarks: chunk size × swarm size sweeps.

Run directly for the sweep (``--quick`` shrinks the grid but *keeps*
the 1000-device cell — sustaining four-digit swarms is the acceptance
criterion)::

    PYTHONPATH=src python benchmarks/bench_chunks.py [--quick]

Three parts:

* **chunk size × swarm size grid** — ``hybrid+p2p`` under the
  time-resolved engine, single-source vs chunked, on the standard
  layer-sharing workload.  The whole grid (plus the recompute twins
  below) is ONE declarative :class:`repro.sweep.SweepSpec` — variant
  bundles carry the swarm-size scaling rule — executed by
  :func:`repro.sweep.run_sweep` through a worker pool with a fresh
  content-addressed cell cache; throughput lands in
  ``BENCH_sweep.json``.  Checks the chunked planner never pulls *more*
  origin bytes than single-source; small chunks × large swarms is
  where the engine's rate recomputation cost shows (the chunk-size
  floor at scale).
* **recompute-mode comparison** — the fine-chunk (8 MB) cell in both
  ``full`` and ``incremental`` fair-share recompute modes: outcomes
  must match exactly while incremental visits ≥10× fewer transfers at
  1000 devices (the chunked-load acceptance check for the incremental
  engine; ``--quick`` checks outcome equality on the small cell).
* **contended cold-wave makespan** — the headline effect: every device
  pulls the same image nearly at once; chunked rarest-first scheduling
  over full + partial holders must beat the single-source makespan.
* **pytest-benchmark micro-benchmarks** of the chunk hot paths
  (map construction, rarest-first ordering, ledger updates), matching
  the other ``benchmarks/`` modules.
"""

import os
import sys
import tempfile
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for _p in (str(_HERE.parent / "src"), str(_HERE)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from dataclasses import replace  # noqa: E402

from bench_p2p import _scenario_spec  # noqa: E402 - shared scaling rule
from repro.model.network import NetworkModel  # noqa: E402
from repro.model.units import BYTES_PER_GB  # noqa: E402
from repro.registry.cache import ImageCache  # noqa: E402
from repro.registry.chunks import (  # noqa: E402
    ChunkLedger,
    ChunkMap,
    ChunkSwarmPlanner,
)
from repro.registry.digest import digest_text  # noqa: E402
from repro.registry.hub import DockerHub  # noqa: E402
from repro.registry.p2p import PeerSwarm  # noqa: E402
from repro import scenarios  # noqa: E402
from repro.scenarios import TransferSpec  # noqa: E402
from repro.sim.transfers import TransferModel  # noqa: E402
from repro.sweep import SweepSpec, run_sweep, write_bench_record  # noqa: E402

MB = 1_000_000

#: The grid.  --quick keeps 10 devices × two chunk sizes plus the
#: 1000-device cell at the coarsest chunking (the cheap end of the
#: engine's recompute cost — see the chunk-size-floor note below).
SWEEP_SIZES = (10, 100, 1000)
CHUNK_SIZES = (8 * MB, 32 * MB, 128 * MB)


def _variant_name(n: int, chunk_size, recompute: str) -> str:
    suffix = "single" if chunk_size is None else f"c{chunk_size // MB}"
    if recompute != "full":
        suffix += f"/{recompute}"
    return f"n{n}/{suffix}"


def _variant_bundle(n: int, chunk_size, recompute: str) -> dict:
    """One grid cell as a dotted-override bundle.

    The swarm-size scaling rule (regions and catalogue growing with the
    swarm) is ``bench_p2p._scenario_spec``'s — re-read from it so the
    two benches can never drift apart.
    """
    sized = _scenario_spec(n)
    bundle = {
        "topology.n_devices": sized.topology.n_devices,
        "topology.n_regions": sized.topology.n_regions,
        "workload.n_images": sized.workload.n_images,
        "transfer.recompute": recompute,
    }
    if chunk_size is not None:
        bundle["chunks.enabled"] = True
        bundle["chunks.size_bytes"] = chunk_size
    return bundle


def chunk_sweep(
    grid_sizes, grid_chunks, scale_chunks, recompute_cell
) -> SweepSpec:
    """The whole bench as one declarative sweep.

    Variants: per grid size, a single-source baseline plus one chunked
    cell per chunk size; the 1000-device scale cells; and the
    ``recompute_cell`` (n, chunk_size) twinned under incremental
    fair-share recompute (baseline included — the comparison also
    checks incremental recompute leaves the *single-source* outcome
    untouched).
    """
    variants = {}
    for n, chunks in [(n, grid_chunks) for n in grid_sizes] + [
        (1000, scale_chunks)
    ]:
        variants[_variant_name(n, None, "full")] = (
            _variant_bundle(n, None, "full")
        )
        for chunk_size in chunks:
            variants[_variant_name(n, chunk_size, "full")] = (
                _variant_bundle(n, chunk_size, "full")
            )
    inc_n, inc_chunk = recompute_cell
    for chunk_size in (None, inc_chunk):
        variants[_variant_name(inc_n, chunk_size, "incremental")] = (
            _variant_bundle(inc_n, chunk_size, "incremental")
        )
    base = _scenario_spec(
        grid_sizes[0],
        transfer=TransferSpec(
            model=TransferModel.TIME_RESOLVED, upload_budget=4
        ),
    )
    return SweepSpec(
        name="chunk-grid",
        description=(
            "single-source vs chunked origin traffic across chunk size "
            "× swarm size, plus the recompute-mode twin cells"
        ),
        base=base,
        variants=variants,
        seeds=(base.seed,),
    )


def derive_row(by_variant: dict, n: int, chunk_size: int,
               recompute: str = "full") -> dict:
    """One single-vs-chunked comparison row off the sweep aggregate."""
    single = by_variant[_variant_name(n, None, recompute)]
    chunked = by_variant[_variant_name(n, chunk_size, recompute)]
    return dict(
        devices=n,
        chunk_mb=chunk_size // MB,
        recompute=recompute,
        pulls=chunked["pulls"],
        single_origin_gb=single["origin_bytes"] / BYTES_PER_GB,
        chunked_origin_gb=chunked["origin_bytes"] / BYTES_PER_GB,
        single_peer_gb=single["bytes_from_peers"] / BYTES_PER_GB,
        chunked_peer_gb=chunked["bytes_from_peers"] / BYTES_PER_GB,
        endgame_dupes=chunked["chunk_endgame_dupes"],
        wasted_mb=chunked["bytes_wasted"] / MB,
        visited=chunked["engine_transfers_visited"],
    )


def makespan_sweep(
    n_devices: int = 8, chunk_size_bytes: int = 16 * MB
) -> SweepSpec:
    """Contended cold wave: the makespan headline, as a 2-cell sweep.

    The base is the ``p2p-contended`` preset (time-resolved engine,
    upload budget 2, NIC/egress shaping) resized to ``n_devices``.
    """
    preset = scenarios.get("p2p-contended")
    return SweepSpec(
        name="chunk-makespan",
        description="single-source vs chunked cold-wave makespan",
        base=preset,
        variants={
            "single": {"topology.n_devices": n_devices},
            "chunked": {
                "topology.n_devices": n_devices,
                "chunks.enabled": True,
                "chunks.size_bytes": chunk_size_bytes,
            },
        },
        seeds=(preset.seed,),
    )


def derive_makespan(by_variant: dict, n_devices: int = 8) -> dict:
    single, chunked = by_variant["single"], by_variant["chunked"]
    return dict(
        devices=n_devices,
        single_makespan_s=single["longest_pull_s"],
        chunked_makespan_s=chunked["longest_pull_s"],
        speedup_pct=100.0
        * (1.0 - chunked["longest_pull_s"] / single["longest_pull_s"]),
        single_origin_gb=single["origin_bytes"] / BYTES_PER_GB,
        chunked_origin_gb=chunked["origin_bytes"] / BYTES_PER_GB,
    )


def check_grid(rows) -> None:
    """Acceptance assertions over any finished grid."""
    for row in rows:
        # Chunked scheduling draws on strictly more sources (partial
        # holders, per-chunk re-resolution), so it must never need
        # *more* origin bytes than single-source on the same workload
        # (2% tolerance for eviction-order noise at small scale).
        assert row["chunked_origin_gb"] <= row["single_origin_gb"] * 1.02, (
            f"chunked pulled more from the origin: {row}"
        )
        # every pull finished: wasted bytes only appear under churn,
        # and this grid runs churn-free
        assert row["wasted_mb"] == 0, f"waste without churn: {row}"


#: Minimum full/incremental ratio of recompute-visited transfers on
#: the 1000-device fine-chunk cell — chunked pulls multiply transfer
#: starts/finishes, so this is where closure-local recompute matters
#: most (the acceptance criterion for the incremental engine).
VISITED_RATIO_MIN = 10.0


def check_recompute_modes(full_row, inc_row, min_ratio: float) -> None:
    """Incremental recompute must do less work and change nothing else.

    The two rows come from identical scenarios differing only in the
    engine's recompute mode; incremental fair-share rates are
    bit-identical to the full solve, so every outcome column must match
    *exactly* while the engine visits ``min_ratio``× fewer transfers.
    """
    for key in (
        "pulls",
        "single_origin_gb",
        "chunked_origin_gb",
        "single_peer_gb",
        "chunked_peer_gb",
        "endgame_dupes",
        "wasted_mb",
    ):
        assert full_row[key] == inc_row[key], (
            f"recompute modes disagree on {key}: "
            f"{full_row[key]} vs {inc_row[key]}"
        )
    ratio = full_row["visited"] / max(inc_row["visited"], 1)
    assert ratio >= min_ratio, (
        f"incremental recompute visited only {ratio:.1f}x fewer "
        f"transfers than full on the {full_row['devices']}-device "
        f"{full_row['chunk_mb']} MB cell (required: {min_ratio:.0f}x)"
    )


def check_makespan(row) -> None:
    assert row["chunked_makespan_s"] < row["single_makespan_s"], (
        f"chunked wave no faster than single-source: {row}"
    )


def _print_rows(rows) -> None:
    cols = list(rows[0])
    print(" ".join(f"{c:>17}" for c in cols))
    for row in rows:
        cells = []
        for c in cols:
            v = row[c]
            cells.append(f"{v:>17.2f}" if isinstance(v, float) else f"{v:>17}")
        print(" ".join(cells))


# ----------------------------------------------------------------------
# pytest-benchmark micro-benchmarks (chunk hot paths)
# ----------------------------------------------------------------------
LAYER = digest_text("bench-layer")


def _planner(n_devices: int = 32, full_holders: int = 8, partial_holders: int = 8):
    hub = DockerHub(name="docker-hub")
    network = NetworkModel()
    names = [f"edge-{i:03d}" for i in range(n_devices)]
    network.connect_device_mesh(names, 800.0)
    for name in names:
        network.connect_registry(hub.name, name, 60.0)
    swarm = PeerSwarm(network)
    caches = {}
    for name in names:
        caches[name] = ImageCache(4.0, name)
        swarm.add_device(name, caches[name], region="lab")
    planner = ChunkSwarmPlanner(swarm, [hub], chunk_size_bytes=8 * MB, seed=11)
    cmap = ChunkMap(LAYER, 1000 * MB, 8 * MB)  # 125 chunks
    for name in names[:full_holders]:
        caches[name].add(LAYER, 1000 * MB)
    for i, name in enumerate(names[full_holders:full_holders + partial_holders]):
        store = planner.store_for(name, caches[name])
        store.begin_layer(cmap)
        for index in range(0, cmap.n_chunks, i + 2):
            store.commit_chunk(LAYER, index)
    return planner, cmap


def bench_chunk_map_build(benchmark):
    """Chunking a 1 GB layer into 125 digest-addressed chunks."""
    cmap = benchmark(lambda: ChunkMap(LAYER, 1000 * MB, 8 * MB))
    assert cmap.n_chunks == 125


def bench_rarest_first_order(benchmark):
    """Rarest-first ordering over 125 chunks × 16 visible holders."""
    planner, cmap = _planner()
    order = benchmark(lambda: planner.rarest_first("edge-031", cmap))
    assert len(order) == cmap.n_chunks


def bench_availability_lookup(benchmark):
    """The per-chunk holder count the scheduler calls in its loop."""
    planner, cmap = _planner()
    count = benchmark(lambda: planner.availability("edge-031", LAYER, 0))
    assert count > 0


def bench_ledger_churn(benchmark):
    """Partial-holding bookkeeping under constant chunk turnover."""
    ledger = ChunkLedger()

    def cycle():
        for index in range(64):
            ledger.add_chunk("edge-000", LAYER, index)
        ledger.drop_layer("edge-000", LAYER)
        return ledger.chunk_holders(LAYER, 0)

    holders = benchmark(cycle)
    assert holders == frozenset()


def main(argv=None) -> int:
    from _smoke import parse_quick

    quick = parse_quick(sys.argv[1:] if argv is None else list(argv))
    if quick:
        grid_sizes = (10,)
        grid_chunks = (8 * MB, 32 * MB)
        scale_chunks = (128 * MB,)
        recompute_cell, ratio_min = (10, 8 * MB), 1.0
    else:
        grid_sizes = (10, 100)
        grid_chunks = CHUNK_SIZES
        scale_chunks = CHUNK_SIZES
        recompute_cell, ratio_min = (1000, 8 * MB), VISITED_RATIO_MIN
    workers = min(4, os.cpu_count() or 1)

    print("== contended cold wave: single-source vs chunked makespan ==")
    wave_result = run_sweep(makespan_sweep(), workers=workers)
    wave = derive_makespan(
        {row["variant"]: row for row in wave_result.rows}
    )
    _print_rows([wave])
    check_makespan(wave)
    print(f"makespan OK: chunked wave {wave['speedup_pct']:.1f}% faster")

    # One sweep covers the grid, the 1000-device scale cells (kept even
    # under --quick: sustaining four-digit swarms is the acceptance
    # criterion; only the coarsest chunking, whose engine cost is
    # lowest — finer chunks multiply transfer starts/finishes and the
    # fair-share recompute behind them, the chunk-size floor at scale)
    # and the incremental-recompute twin cells.
    sweep = chunk_sweep(grid_sizes, grid_chunks, scale_chunks,
                        recompute_cell)
    with tempfile.TemporaryDirectory() as cache_dir:
        result = run_sweep(sweep, cache_dir=cache_dir, workers=workers)
    record = write_bench_record("bench_chunks", result.stats, quick=quick)
    print(f"sweep {sweep.name}: {record}")
    by_variant = {row["variant"]: row for row in result.rows}

    print("== chunk size × swarm size grid ==")
    grid = [
        derive_row(by_variant, n, chunk_size)
        for n in grid_sizes for chunk_size in grid_chunks
    ]
    _print_rows(grid)
    check_grid(grid)
    print("grid OK: chunked origin traffic never exceeds single-source")

    print(f"== scale sweep (1000 devices × {len(scale_chunks)} chunk size(s)) ==")
    scale = [
        derive_row(by_variant, 1000, chunk_size)
        for chunk_size in scale_chunks
    ]
    _print_rows(scale)
    check_grid(scale)
    print("scale OK: chunked swarm scheduling sustained 1000 devices")

    # Recompute-mode differential on the fine-chunk (8 MB) cell.
    # --quick compares the small grid cell (outcome equality is the
    # cheap CI sanity); the full run compares the 1000-device cell and
    # requires the >=10x visited-work ratio.
    inc_n, inc_chunk = recompute_cell
    full_row = derive_row(by_variant, inc_n, inc_chunk)
    inc_row = derive_row(by_variant, inc_n, inc_chunk, "incremental")
    print("== recompute-mode comparison (fine-chunk cell) ==")
    _print_rows([full_row, inc_row])
    check_recompute_modes(full_row, inc_row, ratio_min)
    print(
        "recompute OK: identical outcomes, incremental visited "
        f"{full_row['visited'] / max(inc_row['visited'], 1):.0f}x "
        "fewer transfers"
    )

    if quick:
        # The CI smoke job must also exercise this module's bench_*
        # micro-benchmarks, like every other benchmark script.
        from _smoke import smoke_main

        return smoke_main(globals(), [])
    return 0


if __name__ == "__main__":
    sys.exit(main())
