"""Determinism of the DES engine under seeded scenarios.

The adaptive replicator (and every benchmark) relies on the engine
being a pure function of its inputs: two runs of the same seeded
scenario must produce identical event orderings and final clocks —
including through ``AllOf`` barriers and ``Interrupt`` delivery, where
tie-breaking by insertion sequence is what keeps traces stable.
"""

from typing import List, Tuple

from repro.sim.engine import Interrupt, Simulator
from repro.sim.rng import RngRegistry


def scripted_scenario(seed: int) -> Tuple[List[Tuple[float, str]], float]:
    """A scenario exercising timeouts, barriers, and interrupts.

    Returns the (time, label) trace and the final clock.
    """
    rng = RngRegistry(seed)
    sim = Simulator()
    trace: List[Tuple[float, str]] = []

    def worker(name: str, stream):
        for step in range(4):
            yield sim.timeout(float(stream.uniform(0.1, 5.0)))
            trace.append((sim.now, f"{name}:step{step}"))
        return name

    workers = [
        sim.process(worker(f"w{i}", rng.stream(f"worker.{i}"))) for i in range(5)
    ]

    def barrier_watcher():
        results = yield sim.all_of(workers)
        trace.append((sim.now, f"barrier:{','.join(results)}"))

    sim.process(barrier_watcher())

    def sleeper():
        try:
            yield sim.timeout(1000.0)
            trace.append((sim.now, "sleeper:uninterrupted"))
        except Interrupt as interrupt:
            trace.append((sim.now, f"sleeper:interrupted:{interrupt.cause}"))
            yield sim.timeout(float(rng.stream("sleeper").uniform(0.5, 2.0)))
            trace.append((sim.now, "sleeper:recovered"))

    sleeping = sim.process(sleeper())

    def interrupter():
        yield sim.timeout(float(rng.stream("interrupter").uniform(1.0, 3.0)))
        sleeping.interrupt("poke")

    sim.process(interrupter())

    final = sim.run()
    return trace, final


def test_same_seed_same_trace_and_clock():
    first_trace, first_clock = scripted_scenario(seed=1234)
    second_trace, second_clock = scripted_scenario(seed=1234)
    assert first_trace == second_trace
    assert first_clock == second_clock
    # The barrier fired exactly once, after every worker step.
    barriers = [label for _, label in first_trace if label.startswith("barrier")]
    assert len(barriers) == 1
    interrupted = [l for _, l in first_trace if "interrupted" in l]
    assert interrupted == ["sleeper:interrupted:poke"]


def test_rng_streams_are_stable_across_registries():
    a = RngRegistry(42)
    b = RngRegistry(42)
    assert a.stream("x").uniform(0, 1) == b.stream("x").uniform(0, 1)
    # Adding a new consumer must not perturb existing streams: a fresh
    # registry that first draws from another stream still produces the
    # same first draw on "x" as an untouched registry does.
    c = RngRegistry(42)
    c.stream("brand-new-consumer").uniform(0, 1)
    d = RngRegistry(42)
    assert c.stream("x").uniform(0, 1) == d.stream("x").uniform(0, 1)


def test_run_until_is_deterministic():
    def run_once():
        trace, _ = [], None
        rng = RngRegistry(7)
        sim = Simulator()
        log: List[Tuple[float, str]] = []

        def ticker(name, stream):
            while True:
                yield sim.timeout(float(stream.exponential(2.0)))
                log.append((sim.now, name))

        for i in range(3):
            sim.process(ticker(f"t{i}", rng.stream(f"tick.{i}")))
        clock = sim.run(until=25.0)
        return log, clock

    first_log, first_clock = run_once()
    second_log, second_clock = run_once()
    assert first_log == second_log
    assert first_clock == second_clock == 25.0


def test_caught_interrupt_does_not_reraise_from_run():
    sim = Simulator()
    seen = []

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            seen.append(interrupt.cause)

    target = sim.process(sleeper())

    def poker():
        yield sim.timeout(1.0)
        target.interrupt("poke")

    sim.process(poker())
    sim.run()  # must not re-raise the handled Interrupt
    assert seen == ["poke"]


def test_handled_barrier_failure_does_not_reraise_from_run():
    sim = Simulator()
    seen = []
    failing = sim.event()

    def waiter():
        try:
            yield sim.all_of([failing, sim.timeout(1.0)])
        except RuntimeError as exc:
            seen.append(str(exc))

    def breaker():
        yield sim.timeout(0.5)
        failing.fail(RuntimeError("child failed"))

    sim.process(waiter())
    sim.process(breaker())
    sim.run()  # the barrier adopted the failure and the waiter caught it
    assert seen == ["child failed"]


def test_interrupt_racing_with_completion_does_not_crash_run():
    # The interrupter acts first in the same tick the target finishes:
    # the target is still alive when interrupted, but its own timeout
    # is already queued ahead of the poke, so the poke lands on an
    # already-finished process and must be swallowed.
    sim = Simulator()
    done = []
    handoff = []

    def interrupter():
        yield sim.timeout(3.0)
        handoff[0].interrupt("race")

    sim.process(interrupter())

    def target():
        yield sim.timeout(3.0)
        done.append("target")

    handoff.append(sim.process(target()))
    sim.run()  # must not re-raise the undeliverable Interrupt
    assert done == ["target"]


def test_second_barrier_child_failure_is_also_consumed():
    sim = Simulator()
    caught = []
    first, second = sim.event(), sim.event()

    def waiter():
        try:
            yield sim.all_of([first, second])
        except RuntimeError as exc:
            caught.append(str(exc))

    def breaker():
        yield sim.timeout(0.5)
        first.fail(RuntimeError("first"))
        yield sim.timeout(0.5)
        second.fail(RuntimeError("second"))

    sim.process(waiter())
    sim.process(breaker())
    sim.run()  # the second failure is adopted by the fired barrier too
    assert caught == ["first"]


def test_seeded_replicator_schedules_are_reproducible():
    """Two identical seeded P2P experiment runs agree byte-for-byte."""
    from repro.experiments.p2p import build_scenario, run_mode

    outcomes = []
    for _ in range(2):
        scenario = build_scenario(n_devices=6, n_images=4, n_regions=2, seed=99)
        outcome = run_mode(scenario, "hybrid+p2p")
        replicator = outcome.replicator
        outcomes.append(
            (
                outcome.bytes_by_registry,
                outcome.bytes_from_peers,
                outcome.bytes_replicated,
                [
                    (c.time_s, c.hot_digests, tuple(a.target for a in c.actions))
                    for c in replicator.history
                ],
            )
        )
    assert outcomes[0] == outcomes[1]
