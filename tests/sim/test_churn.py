"""The stochastic churn process: seeded, idle-only, floor-respecting."""

import pytest

from repro.model.network import NetworkModel
from repro.model.units import BYTES_PER_GB
from repro.registry.cache import ImageCache
from repro.registry.digest import digest_text
from repro.registry.p2p import PeerSwarm
from repro.sim.churn import ChurnConfig, ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry

D = digest_text("churn-layer")


def build(n=6, seed=11, config=None, is_busy=None):
    sim = Simulator()
    network = NetworkModel()
    names = [f"d{i}" for i in range(n)]
    network.connect_device_mesh(names, 800.0)
    swarm = PeerSwarm(network)
    caches = {}
    for name in names:
        caches[name] = ImageCache(1000 / BYTES_PER_GB, name)
        swarm.add_device(name, caches[name], region="r0")
    churn = ChurnProcess(
        sim,
        swarm,
        RngRegistry(seed),
        config=config or ChurnConfig(mean_uptime_s=100.0, mean_downtime_s=50.0),
        is_busy=is_busy,
    )
    return sim, swarm, caches, churn


class TestChurnConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(mean_uptime_s=0.0)
        with pytest.raises(ValueError):
            ChurnConfig(mean_downtime_s=-1.0)
        with pytest.raises(ValueError):
            ChurnConfig(min_online=0)


class TestChurnProcess:
    def test_devices_depart_and_rejoin(self):
        sim, swarm, _caches, churn = build()
        churn.start()
        sim.run(until=2000.0)
        assert churn.departures > 0
        assert churn.rejoins > 0
        assert churn.departures - churn.rejoins == len(churn.offline_devices())
        # Event log is time-ordered and alternates per device.
        last_kind = {}
        for event in churn.events:
            assert event.kind != last_kind.get(event.device)
            last_kind[event.device] = event.kind

    def test_same_seed_same_timeline(self):
        events_a = []
        events_b = []
        for bucket in (events_a, events_b):
            sim, _swarm, _caches, churn = build(seed=23)
            churn.start()
            sim.run(until=1500.0)
            bucket.extend(churn.events)
        assert events_a == events_b

    def test_different_seed_different_timeline(self):
        timelines = []
        for seed in (1, 2):
            sim, _swarm, _caches, churn = build(seed=seed)
            churn.start()
            sim.run(until=1500.0)
            timelines.append(churn.events)
        assert timelines[0] != timelines[1]

    def test_min_online_floor_is_respected(self):
        config = ChurnConfig(
            mean_uptime_s=20.0, mean_downtime_s=500.0, min_online=3
        )
        sim, swarm, _caches, churn = build(n=5, config=config)
        churn.start()
        # Step through the whole run and check the floor at every event.
        for horizon in range(100, 3001, 100):
            sim.run(until=float(horizon))
            assert len(swarm.devices()) >= 3
        assert churn.departures > 0

    def test_busy_devices_do_not_depart(self):
        sim, _swarm, _caches, churn = build(is_busy=lambda device: True)
        churn.start()
        sim.run(until=3000.0)
        assert churn.departures == 0
        assert churn.blocked_departures > 0

    def test_rejoin_restores_the_stale_cache(self):
        sim, swarm, caches, churn = build(seed=5)
        caches["d0"].add(D, 10)
        churn.start()
        # Run until d0 has departed and rejoined at least once.
        while not any(
            e.kind == "rejoin" and e.device == "d0" for e in churn.events
        ):
            if sim.run(until=sim.now + 500.0) > 50_000:
                pytest.fail("d0 never cycled")
        while not churn.is_online("d0"):  # it may have departed again
            sim.run(until=sim.now + 100.0)
        assert "d0" in swarm.devices()
        # The cache object (and its contents) survived the offline gap.
        assert swarm.index.cache_of("d0") is caches["d0"]
        assert swarm.index.holds("d0", D)

    def test_double_start_rejected(self):
        _sim, _swarm, _caches, churn = build()
        churn.start()
        with pytest.raises(RuntimeError):
            churn.start()


class TestSessionStatistics:
    def test_session_lengths_match_the_event_log(self):
        sim, _swarm, _caches, churn = build(seed=11)
        churn.start()
        sim.run(until=3000.0)
        assert churn.departures > 0
        for device in {e.device for e in churn.events}:
            events = [e for e in churn.events if e.device == device]
            # reconstruct completed online sessions from the log
            expected = []
            online_since = 0.0
            for event in events:
                if event.kind == "depart":
                    expected.append(event.time_s - online_since)
                else:
                    online_since = event.time_s
            assert churn.session_lengths(device) == pytest.approx(expected)

    def test_availability_defaults_to_one_without_observations(self):
        _sim, _swarm, _caches, churn = build()
        assert churn.availability("d0") == 1.0
        assert churn.mean_session_s("d0") is None

    def test_availability_reflects_observed_uptime_fraction(self):
        config = ChurnConfig(mean_uptime_s=100.0, mean_downtime_s=100.0)
        sim, _swarm, _caches, churn = build(seed=3, config=config)
        churn.start()
        sim.run(until=20_000.0)
        cycled = [
            d for d in (f"d{i}" for i in range(6))
            if churn.mean_session_s(d) is not None
            and churn.mean_downtime_s(d) is not None
        ]
        assert cycled
        for device in cycled:
            up = churn.mean_session_s(device)
            down = churn.mean_downtime_s(device)
            assert churn.availability(device) == pytest.approx(up / (up + down))
            assert 0.0 < churn.availability(device) < 1.0
