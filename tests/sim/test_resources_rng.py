"""Counted resources and seeded RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Resource, RngRegistry, Simulator, default_registry


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)

    def test_grant_when_available(self):
        sim = Simulator()
        res = Resource(sim, 2)
        log = []

        def proc():
            yield res.request(2)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [0.0]
        assert res.in_use == 2

    def test_fifo_queueing(self):
        sim = Simulator()
        res = Resource(sim, 1)
        log = []

        def holder():
            yield res.request()
            yield sim.timeout(5.0)
            res.release()

        def waiter(name):
            yield res.request()
            log.append((name, sim.now))
            res.release()

        sim.process(holder())
        sim.process(waiter("a"))
        sim.process(waiter("b"))
        sim.run()
        assert log == [("a", 5.0), ("b", 5.0)]

    def test_head_of_line_blocking(self):
        """A big request at the head blocks later small ones (no starvation)."""
        sim = Simulator()
        res = Resource(sim, 2)
        log = []

        def holder():
            yield res.request(2)
            yield sim.timeout(3.0)
            res.release(2)

        def big():
            yield res.request(2)
            log.append(("big", sim.now))
            res.release(2)

        def small():
            yield res.request(1)
            log.append(("small", sim.now))
            res.release(1)

        sim.process(holder())
        sim.process(big())
        sim.process(small())
        sim.run()
        assert log[0][0] == "big"

    def test_over_capacity_request_rejected(self):
        sim = Simulator()
        res = Resource(sim, 2)
        with pytest.raises(ValueError):
            res.request(3)

    def test_over_release_rejected(self):
        sim = Simulator()
        res = Resource(sim, 2)
        with pytest.raises(RuntimeError):
            res.release(1)

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, 1)
        res.request()  # granted
        res.request()  # queued
        assert res.queue_length == 1


class TestRng:
    def test_same_name_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_deterministic_across_registries(self):
        a = RngRegistry(7).stream("x").integers(0, 1_000_000, 10)
        b = RngRegistry(7).stream("x").integers(0, 1_000_000, 10)
        assert list(a) == list(b)

    def test_different_names_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").integers(0, 1_000_000, 10)
        b = reg.stream("b").integers(0, 1_000_000, 10)
        assert list(a) != list(b)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(7)
        first = list(reg1.stream("x").integers(0, 10**6, 5))
        reg2 = RngRegistry(7)
        reg2.stream("unrelated")  # extra consumer
        second = list(reg2.stream("x").integers(0, 10**6, 5))
        assert first == second

    def test_fork_independent(self):
        reg = RngRegistry(7)
        fork = reg.fork("child")
        a = list(reg.stream("x").integers(0, 10**6, 5))
        b = list(fork.stream("x").integers(0, 10**6, 5))
        assert a != b

    def test_reset_restarts_streams(self):
        reg = RngRegistry(7)
        first = list(reg.stream("x").integers(0, 10**6, 5))
        reg.reset()
        again = list(reg.stream("x").integers(0, 10**6, 5))
        assert first == again

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_default_registry_stable(self):
        assert default_registry().root_seed == default_registry().root_seed

    @given(seed=st.integers(0, 2**32), name=st.text(min_size=1, max_size=20))
    def test_derive_seed_in_64_bit_range(self, seed, name):
        derived = RngRegistry(seed).derive_seed(name)
        assert 0 <= derived < 2**64
