"""Differential tests for the incremental fair-share recompute.

The incremental engine's contract is **bit-identical rates**: on every
start/finish/cancel it re-solves only the dirty closure — the
connected component(s) of the transfer–link graph the event perturbed
— and because max-min fairness decomposes exactly over components,
the closure solution must equal the full solve.  ``self_check=True``
re-derives the full scalar solution after every recompute and raises
on any mismatch, so the Hypothesis traces here fail loudly on the
first divergent rate instead of on a downstream timing drift.

Completion *times* are compared with a tight relative tolerance, not
exactly: the two modes settle progress in different chunkings (full
mode advances every active transfer at every event, incremental mode
advances a transfer only when its closure is touched), so the
accumulated ``remaining_mb`` values can differ by float rounding even
though every instantaneous rate is identical.
"""

import pytest
from dataclasses import replace
from hypothesis import given, settings
from hypothesis import strategies as st

from test_transfers import MB, run_transfer, star_network

from repro import scenarios
from repro.scenarios import SimulationSession
from repro.sim import transfers as transfers_mod
from repro.sim.engine import Simulator
from repro.sim.transfers import TransferEngine


# ----------------------------------------------------------------------
# trace machinery
# ----------------------------------------------------------------------
trace_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),  # source device index
        st.integers(min_value=0, max_value=4),  # destination device index
        st.integers(min_value=1, max_value=400 * MB),  # size
        st.floats(min_value=0.0, max_value=25.0),  # start time
    ),
    min_size=1,
    max_size=14,
)

#: (victim index into the started list, cancel time, use cancel_many)
cancel_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=13),
        st.floats(min_value=0.1, max_value=40.0),
        st.booleans(),
    ),
    max_size=4,
)


def _run_trace(specs, cancels, uplink, downlink, **engine_kw):
    """Replay one start/cancel trace; returns (engine, run records)."""
    network = star_network(
        n_devices=5, uplink_mbps=uplink, downlink_mbps=downlink
    )
    sim = Simulator()
    engine = TransferEngine(sim, network, **engine_kw)
    runs = []

    def launch(at_s, src, dst, size):
        yield sim.timeout(at_s)
        record = run_transfer(
            sim, engine, src, dst, size, src_is_registry=(src == "origin")
        )
        record["requested"] = sim.now
        runs.append(record)

    def axe(at_s, index, many):
        yield sim.timeout(at_s)
        if index >= len(runs):
            return
        # A launch resumed at this same instant has appended its record
        # but its transfer process hasn't called start() yet — nothing
        # to cancel, skip (deterministically: event order is seeded).
        victim = runs[index].get("transfer")
        if victim is None:
            return
        if many:
            engine.cancel_many([victim], "trace")
        else:
            engine.cancel(victim, "trace")

    for src_i, dst_i, size, at_s in specs:
        src = "origin" if src_i == dst_i else f"d{src_i}"
        sim.process(launch(at_s, src, f"d{dst_i}", size))
    for index, at_s, many in cancels:
        sim.process(axe(at_s, index, many))
    sim.run()
    return engine, runs


# ----------------------------------------------------------------------
# the differential properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    specs=trace_specs,
    uplink=st.sampled_from([None, 60.0, 150.0]),
    downlink=st.sampled_from([None, 90.0, 300.0]),
)
def test_incremental_rates_match_full_on_random_traces(
    specs, uplink, downlink
):
    """self_check re-solves the whole system after every incremental
    recompute and asserts rate-for-rate equality."""
    engine, runs = _run_trace(
        specs, [], uplink, downlink, incremental=True, self_check=True
    )
    assert engine.completed == len(specs)
    assert not engine.active_transfers
    assert engine.peak_oversubscription() <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    specs=trace_specs,
    cancels=cancel_specs,
    uplink=st.sampled_from([None, 60.0, 150.0]),
)
def test_incremental_rates_match_full_under_cancellation(
    specs, cancels, uplink
):
    engine, runs = _run_trace(
        specs, cancels, uplink, None, incremental=True, self_check=True
    )
    assert engine.completed + engine.cancellations == len(specs)
    assert not engine.active_transfers
    assert engine.peak_oversubscription() <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    specs=trace_specs,
    uplink=st.sampled_from([None, 60.0, 150.0]),
    downlink=st.sampled_from([None, 90.0, 300.0]),
)
def test_full_and_incremental_timelines_agree(specs, uplink, downlink):
    """Same trace through both modes: every transfer completes at the
    same instant up to settling-order float noise."""
    full, full_runs = _run_trace(specs, [], uplink, downlink)
    inc, inc_runs = _run_trace(
        specs, [], uplink, downlink, incremental=True
    )
    assert full.completed == inc.completed == len(specs)
    for a, b in zip(full_runs, inc_runs):
        assert a["requested"] == b["requested"]
        assert b["end"] == pytest.approx(a["end"], rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    specs=trace_specs,
    uplink=st.sampled_from([60.0, 150.0]),
)
def test_incremental_never_visits_more_transfers(specs, uplink):
    """The dirty closure is a subset of the active set, so the visited
    counter — the work metric the scale benchmarks compare — can never
    exceed full mode's on the same trace."""
    full, _ = _run_trace(specs, [], uplink, None)
    inc, _ = _run_trace(specs, [], uplink, None, incremental=True)
    assert inc.transfers_visited <= full.transfers_visited


def test_independent_components_stay_untouched():
    """Three disjoint peer pairs: each event's closure is exactly one
    transfer, so incremental work stays linear while full mode
    re-rates every active transfer per event."""
    def build(incremental):
        network = star_network(n_devices=6)
        sim = Simulator()
        engine = TransferEngine(sim, network, incremental=incremental)
        runs = []

        def launch(at_s, src, dst):
            yield sim.timeout(at_s)
            runs.append(run_transfer(sim, engine, src, dst, 100 * MB))

        for i, (src, dst) in enumerate(
            [("d0", "d1"), ("d2", "d3"), ("d4", "d5")]
        ):
            sim.process(launch(0.5 * i, src, dst))
        sim.run()
        return engine, runs

    full, full_runs = build(incremental=False)
    inc, inc_runs = build(incremental=True)
    assert full.completed == inc.completed == 3
    for a, b in zip(full_runs, inc_runs):
        assert b["end"] == pytest.approx(a["end"], rel=1e-12)
    # Each start re-rates exactly the new singleton; each finish
    # leaves an *empty* closure (the component dies with the
    # transfer), so only 3 visits total.  Full mode re-rates the
    # whole active set on every one of the 6 events.
    assert inc.transfers_visited == 3
    assert full.transfers_visited > inc.transfers_visited


# ----------------------------------------------------------------------
# pinned timelines: the exact numbers of the full-mode unit tests
# ----------------------------------------------------------------------
class TestKnownTimelines:
    def test_late_arrival_shares_then_survivor_speeds_up(self):
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network, incremental=True)
        a = run_transfer(
            sim, engine, "origin", "d0", 100 * MB, src_is_registry=True
        )
        b = {}

        def late():
            yield sim.timeout(5.0)
            transfer = engine.start(
                "origin", "d1", 100 * MB, src_is_registry=True
            )
            yield transfer.done
            b["end"] = sim.now

        sim.process(late())
        sim.run()
        assert a["end"] == pytest.approx(13.0)
        assert b["end"] == pytest.approx(18.0)

    def test_cancel_releases_bandwidth_immediately(self):
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network, incremental=True)
        a = run_transfer(
            sim, engine, "origin", "d0", 100 * MB, src_is_registry=True
        )
        b = run_transfer(
            sim, engine, "origin", "d1", 100 * MB, src_is_registry=True
        )

        def axe():
            yield sim.timeout(4.0)
            engine.cancel(b["transfer"], "test")

        sim.process(axe())
        sim.run()
        assert b["ok"] is False and b["end"] == pytest.approx(4.0)
        assert a["end"] == pytest.approx(11.5)

    def test_cancel_does_not_drag_the_clock_to_the_stale_prediction(self):
        from repro.model.network import NetworkModel

        network = NetworkModel()
        network.connect_registry("origin", "d0", 1.0)  # finish at t=800
        sim = Simulator()
        engine = TransferEngine(sim, network, incremental=True)
        r = run_transfer(
            sim, engine, "origin", "d0", 100 * MB, src_is_registry=True
        )

        def axe():
            yield sim.timeout(1.0)
            engine.cancel(r["transfer"], "churn")

        sim.process(axe())
        end = sim.run()
        assert end == pytest.approx(1.0)  # not 800.0

    def test_zero_size_and_rtt_unchanged(self):
        network = star_network(rtt_s=1.5)
        sim = Simulator()
        engine = TransferEngine(sim, network, incremental=True)
        zero = run_transfer(
            sim, engine, "origin", "d0", 0, src_is_registry=True
        )
        payload = run_transfer(
            sim, engine, "origin", "d1", 100 * MB, src_is_registry=True
        )
        sim.run()
        assert zero["end"] == pytest.approx(1.5)
        assert payload["end"] == pytest.approx(11.5)  # 1.5 rtt + 10 s


# ----------------------------------------------------------------------
# the numpy bottleneck search must be bit-identical to the scalar one
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    transfers_mod._np is None, reason="numpy unavailable"
)
@settings(max_examples=40, deadline=None)
@given(
    specs=trace_specs,
    uplink=st.sampled_from([60.0, 150.0]),
    downlink=st.sampled_from([90.0, 300.0]),
)
def test_vector_fill_matches_scalar_exactly(specs, uplink, downlink):
    """``vector_min_links=1`` forces the numpy path for every fill;
    self_check compares each solution against the scalar reference, so
    any ordering or rounding divergence raises immediately.  The end
    times must then be *exactly* equal, not approximately: identical
    rates feed identical settling arithmetic."""
    def run(vector_min_links):
        network = star_network(
            n_devices=5, uplink_mbps=uplink, downlink_mbps=downlink
        )
        sim = Simulator()
        engine = TransferEngine(
            sim, network, incremental=True, self_check=True
        )
        engine.vector_min_links = vector_min_links
        runs = []

        def launch(at_s, src, dst, size):
            yield sim.timeout(at_s)
            runs.append(run_transfer(
                sim, engine, src, dst, size,
                src_is_registry=(src == "origin"),
            ))

        for src_i, dst_i, size, at_s in specs:
            src = "origin" if src_i == dst_i else f"d{src_i}"
            sim.process(launch(at_s, src, f"d{dst_i}", size))
        sim.run()
        return engine, runs

    vector_engine, vector_runs = run(vector_min_links=1)
    scalar_engine, scalar_runs = run(vector_min_links=10**9)
    assert vector_engine.completed == scalar_engine.completed == len(specs)
    for v, s in zip(vector_runs, scalar_runs):
        assert v["end"] == s["end"]


# ----------------------------------------------------------------------
# the pinned presets are bit-for-bit preserved (default path) and
# outcome-equivalent under the incremental engine
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset", ["p2p-contended", "p2p-chunked"])
def test_preset_outcomes_match_full_engine(preset):
    """The two time-resolved experiment presets replayed through the
    incremental engine (with self_check on) must reproduce the pinned
    full-mode outcomes: counts and byte totals exactly, clock-derived
    floats to within settling noise."""
    base = scenarios.get(preset)
    assert base.transfer.recompute == "full"  # the pinned default path
    full = SimulationSession(base).run()
    spec = replace(
        base, transfer=replace(base.transfer, recompute="incremental")
    )
    session = SimulationSession(spec)
    session.engine.self_check = True
    inc = session.run()
    # Compare the deterministic surface; wall-clock fields differ
    # between any two runs by nature.
    reference = scenarios.deterministic_outcome_dict(full.to_dict())
    candidate = scenarios.deterministic_outcome_dict(inc.to_dict())
    assert set(reference) == set(candidate)
    for key, expected in reference.items():
        actual = candidate[key]
        if key == "engine_transfers_visited":
            # The recompute work counter is the one field the two
            # modes *must* disagree on: visiting fewer transfers per
            # event is the incremental engine's reason to exist.
            assert 0 < actual <= expected, key
        elif isinstance(expected, float):
            assert actual == pytest.approx(expected, rel=1e-9, abs=1e-9), key
        else:
            assert actual == expected, key
