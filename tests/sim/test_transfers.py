"""Unit and property tests for the time-resolved transfer engine.

The Hypothesis invariants here are the acceptance bar of the engine:

(a) the sum of fair-share rates on any link never exceeds its
    capacity (max-min fairness never oversubscribes),
(b) no transfer completes faster than its uncontended ``size/BW``
    lower bound over the narrowest link of its path (plus RTT),
(c) cancelling a transfer releases its bandwidth immediately — the
    survivors speed up exactly as if the victim had never competed
    from that instant on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.network import NetworkModel
from repro.model.units import MBIT_PER_MB, bytes_to_mb
from repro.sim.engine import Simulator
from repro.sim.transfers import (
    InflightCollision,
    TransferCancelled,
    TransferEngine,
    TransferModel,
    UploadBudgetExceeded,
)

MB = 1_000_000


def star_network(
    n_devices: int = 4,
    channel_mbps: float = 80.0,
    uplink_mbps: float = None,
    downlink_mbps: float = None,
    rtt_s: float = 0.0,
) -> NetworkModel:
    """``origin`` registry fanned out to ``d0..dN`` plus a device mesh."""
    network = NetworkModel()
    names = [f"d{i}" for i in range(n_devices)]
    for name in names:
        network.connect_registry("origin", name, channel_mbps, rtt_s=rtt_s)
        if downlink_mbps is not None:
            network.set_downlink(name, downlink_mbps)
        if uplink_mbps is not None:
            network.set_uplink(name, uplink_mbps)
    network.connect_device_mesh(names, 800.0)
    if uplink_mbps is not None:
        network.set_uplink("origin", uplink_mbps)
    return network


def run_transfer(sim, engine, src, dst, size, **kw):
    """Start a transfer inside a process; record (end_time, ok)."""
    result = {}

    def proc():
        transfer = engine.start(src, dst, size, **kw)
        result["transfer"] = transfer
        try:
            yield transfer.done
            result["end"] = sim.now
            result["ok"] = True
        except TransferCancelled as exc:
            result["end"] = sim.now
            result["ok"] = False
            result["reason"] = exc.reason

    sim.process(proc())
    return result


class TestTransferModel:
    def test_two_models_exist(self):
        assert TransferModel.ANALYTIC.value == "analytic"
        assert TransferModel.TIME_RESOLVED.value == "time-resolved"


class TestSingleTransfer:
    def test_uncontended_matches_analytic_time(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        sim.run()
        # 100 MB over 80 Mbit/s = 10 s, same as the analytic model.
        assert r["end"] == pytest.approx(10.0)
        assert r["transfer"].seconds == pytest.approx(10.0)

    def test_rtt_charged_once(self):
        network = star_network(rtt_s=2.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        sim.run()
        assert r["end"] == pytest.approx(12.0)

    def test_zero_size_completes_after_latency_only(self):
        network = star_network(rtt_s=1.5)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "origin", "d0", 0, src_is_registry=True)
        sim.run()
        assert r["end"] == pytest.approx(1.5)
        assert engine.completed == 1

    def test_loopback_is_instant(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "d0", "d0", 100 * MB)
        sim.run()
        assert r["end"] == 0.0

    def test_negative_size_rejected(self):
        network = star_network()
        engine = TransferEngine(Simulator(), network)
        with pytest.raises(ValueError):
            engine.start("origin", "d0", -1, src_is_registry=True)


class TestFairSharing:
    def test_two_equal_transfers_halve_the_shared_uplink(self):
        # Channels are 80 apiece but the shared origin uplink is 100:
        # two concurrent transfers get 50 each, not 80.
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        a = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        b = run_transfer(sim, engine, "origin", "d1", 100 * MB, src_is_registry=True)
        sim.run()
        assert a["end"] == pytest.approx(16.0)
        assert b["end"] == pytest.approx(16.0)

    def test_late_arrival_shares_then_survivor_speeds_up(self):
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        a = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        b = {}

        def late():
            yield sim.timeout(5.0)
            transfer = engine.start("origin", "d1", 100 * MB, src_is_registry=True)
            yield transfer.done
            b["end"] = sim.now

        sim.process(late())
        sim.run()
        # a: 5 s alone at 80 (channel-limited; 50 MB), then shares the
        # uplink at 50 → 8 s more.  b: 8 s at 50 (50 MB), then alone at
        # 80 for the rest.
        assert a["end"] == pytest.approx(13.0)
        assert b["end"] == pytest.approx(18.0)

    def test_bottleneck_is_max_min_not_equal_split(self):
        # d0's private channel (20) is tighter than its uplink share:
        # max-min gives the other transfer the leftover 80, an equal
        # split would waste 30.
        network = NetworkModel()
        network.connect_registry("origin", "slow", 20.0)
        network.connect_registry("origin", "fast", 200.0)
        network.set_uplink("origin", 100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        slow = run_transfer(
            sim, engine, "origin", "slow", 100 * MB, src_is_registry=True
        )
        fast = run_transfer(
            sim, engine, "origin", "fast", 100 * MB, src_is_registry=True
        )
        sim.run()
        assert slow["end"] == pytest.approx(40.0)  # 20 Mbit/s throughout
        assert fast["end"] == pytest.approx(10.0)  # leftover 80 Mbit/s

    def test_downlink_contention_between_different_sources(self):
        network = star_network(downlink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        a = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        b = run_transfer(sim, engine, "d1", "d0", 100 * MB)
        sim.run()
        # Peer channel is 800 but d0's NIC admits 100 total: the
        # registry pull is channel-limited at 80 for a while, the peer
        # transfer takes what the NIC leaves.
        assert engine.link("down:d0").peak_utilisation_mbps <= 100.0 + 1e-9
        assert max(a["end"], b["end"]) >= 16.0  # 200 MB through a 100 NIC


class TestUploadBudgets:
    def test_budget_exhaustion_raises_and_slot_frees_on_completion(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network, default_upload_budget=1)
        t = engine.start("d0", "d1", 10 * MB)
        assert not engine.can_upload("d0")
        with pytest.raises(UploadBudgetExceeded):
            engine.start("d0", "d2", 10 * MB)
        sim.run()
        assert t.completed_s is not None
        assert engine.can_upload("d0")
        engine.start("d0", "d2", 10 * MB)  # slot is free again

    def test_per_device_override_beats_default(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network, default_upload_budget=1)
        engine.set_upload_budget("d0", 2)
        engine.start("d0", "d1", 10 * MB)
        engine.start("d0", "d2", 10 * MB)
        with pytest.raises(UploadBudgetExceeded):
            engine.start("d0", "d3", 10 * MB)

    def test_registries_are_exempt(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network, default_upload_budget=0)
        engine.start("origin", "d0", 10 * MB, src_is_registry=True)
        engine.start("origin", "d1", 10 * MB, src_is_registry=True)
        sim.run()
        assert engine.completed == 2


class TestInflightCollision:
    def test_same_digest_to_same_device_collides(self):
        """Regression: a second start for an in-flight ``(dst, digest)``
        used to silently overwrite the join-bookkeeping entry, so the
        first transfer kept moving bytes but became unjoinable — two
        payloads on the wire for one layer."""
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        first = engine.start(
            "origin", "d0", 100 * MB, src_is_registry=True, digest="sha:aa"
        )
        with pytest.raises(InflightCollision):
            engine.start("d1", "d0", 100 * MB, digest="sha:aa")
        assert engine.inflight_to("d0", "sha:aa") is first
        # The refused start consumed no upload slot on its source.
        assert engine.uploads_in_flight("d1") == 0

    def test_distinct_device_or_digest_does_not_collide(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        engine.start(
            "origin", "d0", 10 * MB, src_is_registry=True, digest="sha:aa"
        )
        engine.start(
            "origin", "d1", 10 * MB, src_is_registry=True, digest="sha:aa"
        )
        engine.start(
            "origin", "d0", 10 * MB, src_is_registry=True, digest="sha:bb"
        )
        # Undigested transfers never participate in join bookkeeping.
        engine.start("origin", "d0", 10 * MB, src_is_registry=True)
        engine.start("origin", "d0", 10 * MB, src_is_registry=True)
        sim.run()
        assert engine.completed == 5

    def test_slot_frees_on_completion_and_on_cancel(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(
            sim, engine, "origin", "d0", 10 * MB,
            src_is_registry=True, digest="sha:aa",
        )
        sim.run()
        assert r["ok"] is True
        assert engine.inflight_to("d0", "sha:aa") is None
        again = engine.start(
            "origin", "d0", 10 * MB, src_is_registry=True, digest="sha:aa"
        )
        engine.cancel(again, "test")
        assert engine.inflight_to("d0", "sha:aa") is None
        engine.start(
            "origin", "d0", 10 * MB, src_is_registry=True, digest="sha:aa"
        )


class TestPeakAccounting:
    def test_peak_reflects_allocated_rate_sum(self):
        """Regression: link utilisation was derived from the fill's
        ``capacity_left`` residue, whose ``max(0.0, ...)`` clamp made
        ``peak_oversubscription() <= 1.0`` true by construction — a
        broken fill could never be flagged.  Utilisation is now the sum
        of allocated rates over the link's transfers, so an
        over-allocation is visible."""
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        engine.start("origin", "d0", 100 * MB, src_is_registry=True)
        engine.start("origin", "d1", 100 * MB, src_is_registry=True)
        uplink = engine.link("up:origin")
        # The correct fill halves the shared uplink: utilisation 100.
        assert uplink.peak_utilisation_mbps == pytest.approx(100.0)
        assert engine.peak_oversubscription() <= 1.0 + 1e-9
        # A (deliberately broken) allocation handing both transfers the
        # full capacity must now register as 2x oversubscription.
        for transfer in engine.active_transfers:
            transfer.rate_mbps = 100.0
        engine._record_peaks([uplink])
        assert engine.peak_oversubscription() == pytest.approx(2.0)


class TestCancellation:
    def test_cancel_fails_waiter_and_survivor_speeds_up(self):
        network = star_network(uplink_mbps=100.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        a = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)
        b = run_transfer(sim, engine, "origin", "d1", 100 * MB, src_is_registry=True)

        def axe():
            yield sim.timeout(4.0)
            engine.cancel(b["transfer"], "test")

        sim.process(axe())
        sim.run()
        assert b["ok"] is False and b["reason"] == "test"
        assert b["end"] == pytest.approx(4.0)
        # a: 4 s at 50 (25 MB), then alone at 80: 75 MB → 7.5 s more.
        assert a["end"] == pytest.approx(11.5)

    def test_cancel_after_completion_is_noop(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "origin", "d0", 10 * MB, src_is_registry=True)
        sim.run()
        assert engine.cancel(r["transfer"]) is False

    def test_cancel_does_not_drag_the_clock_to_the_stale_prediction(self):
        """Regression: the wake-up armed for the old completion time
        must be retracted, not merely ignored — otherwise sim.run()
        advances the clock to a prediction that no longer exists and
        every sim.now-derived metric (makespan!) is inflated."""
        network = NetworkModel()
        network.connect_registry("origin", "d0", 1.0)  # finish at t=800
        sim = Simulator()
        engine = TransferEngine(sim, network)
        r = run_transfer(sim, engine, "origin", "d0", 100 * MB, src_is_registry=True)

        def axe():
            yield sim.timeout(1.0)
            engine.cancel(r["transfer"], "churn")

        sim.process(axe())
        end = sim.run()
        assert end == pytest.approx(1.0)  # not 800.0

    def test_cancel_uploads_from_device(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        a = run_transfer(sim, engine, "d0", "d1", 100 * MB)
        b = run_transfer(sim, engine, "d0", "d2", 100 * MB)
        c = run_transfer(sim, engine, "d1", "d3", 1 * MB)

        def axe():
            yield sim.timeout(0.1)
            assert engine.cancel_uploads_from("d0", "churn") == 2

        sim.process(axe())
        sim.run()
        assert a["ok"] is False and b["ok"] is False
        assert c["ok"] is True

    def test_cancel_many_skips_finished_and_counts_the_rest(self):
        network = star_network()
        sim = Simulator()
        engine = TransferEngine(sim, network)
        fast = run_transfer(
            sim, engine, "origin", "d0", 1 * MB, src_is_registry=True
        )
        slow_a = run_transfer(
            sim, engine, "origin", "d1", 500 * MB, src_is_registry=True
        )
        slow_b = run_transfer(sim, engine, "d2", "d3", 500 * MB)

        def axe():
            yield sim.timeout(5.0)  # fast finished long ago (0.1 s)
            n = engine.cancel_many(
                [t["transfer"] for t in (fast, slow_a, slow_b)], "batch"
            )
            assert n == 2

        sim.process(axe())
        sim.run()
        assert fast["ok"] is True
        assert slow_a["ok"] is False and slow_a["reason"] == "batch"
        assert slow_b["ok"] is False
        assert slow_a["end"] == pytest.approx(5.0)

    def test_cancel_uploads_from_batches_into_one_recompute(self):
        """Regression: a departing seeder with k uploads used to run
        the settle + detach + recompute cycle k times.  The batch must
        recompute exactly once — and the survivors' timelines must be
        indistinguishable from the old sequential path (the cancels
        all land at one instant, so no progress accrues between them).
        """
        def build():
            network = star_network(n_devices=6, uplink_mbps=100.0)
            sim = Simulator()
            engine = TransferEngine(sim, network)
            runs = [
                run_transfer(sim, engine, "d0", "d1", 50 * MB),
                run_transfer(sim, engine, "d0", "d2", 80 * MB),
                run_transfer(sim, engine, "d0", "d3", 120 * MB),
                run_transfer(
                    sim, engine, "origin", "d1", 100 * MB,
                    src_is_registry=True,
                ),
                run_transfer(sim, engine, "d4", "d5", 90 * MB),
            ]
            return sim, engine, runs

        sim_a, engine_a, runs_a = build()

        def axe_batched():
            yield sim_a.timeout(2.0)
            before = engine_a.recomputes
            assert engine_a.cancel_uploads_from("d0", "churn") == 3
            assert engine_a.recomputes == before + 1

        sim_a.process(axe_batched())
        sim_a.run()

        sim_b, engine_b, runs_b = build()

        def axe_sequential():
            yield sim_b.timeout(2.0)
            before = engine_b.recomputes
            for record in runs_b[:3]:
                assert engine_b.cancel(record["transfer"], "churn")
            assert engine_b.recomputes == before + 3

        sim_b.process(axe_sequential())
        sim_b.run()

        for batched, sequential in zip(runs_a, runs_b):
            assert batched["ok"] == sequential["ok"]
            assert batched["end"] == sequential["end"]


# ----------------------------------------------------------------------
# Hypothesis invariants (satellite: engine property tests)
# ----------------------------------------------------------------------
transfer_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # source device index
        st.integers(min_value=0, max_value=3),  # destination device index
        st.integers(min_value=1, max_value=500 * MB),  # size
        st.floats(min_value=0.0, max_value=30.0),  # start time
    ),
    min_size=1,
    max_size=12,
)


def _topology_and_runs(specs, uplink, downlink):
    network = star_network(
        n_devices=4, uplink_mbps=uplink, downlink_mbps=downlink
    )
    sim = Simulator()
    engine = TransferEngine(sim, network)
    runs = []

    def launch(at_s, src, dst, size):
        yield sim.timeout(at_s)
        record = run_transfer(
            sim, engine, src, dst, size, src_is_registry=(src == "origin")
        )
        record["requested"] = sim.now
        runs.append(record)

    for src_i, dst_i, size, at_s in specs:
        src = "origin" if src_i == dst_i else f"d{src_i}"
        sim.process(launch(at_s, src, f"d{dst_i}", size))
    sim.run()
    return engine, runs


@settings(max_examples=60, deadline=None)
@given(
    specs=transfer_specs,
    uplink=st.sampled_from([None, 60.0, 150.0]),
    downlink=st.sampled_from([None, 90.0, 300.0]),
)
def test_fair_shares_never_oversubscribe_any_link(specs, uplink, downlink):
    engine, runs = _topology_and_runs(specs, uplink, downlink)
    assert engine.peak_oversubscription() <= 1.0 + 1e-9
    assert len(runs) == len(specs)
    assert engine.completed == len(specs)


@settings(max_examples=60, deadline=None)
@given(
    specs=transfer_specs,
    uplink=st.sampled_from([None, 60.0, 150.0]),
    downlink=st.sampled_from([None, 90.0, 300.0]),
)
def test_completion_never_beats_uncontended_lower_bound(specs, uplink, downlink):
    _engine, runs = _topology_and_runs(specs, uplink, downlink)
    for record in runs:
        transfer = record["transfer"]
        elapsed = record["end"] - record["requested"]
        # Relative tolerance for settling drift plus an absolute one:
        # `end - requested` is a difference of O(10 s) clock readings,
        # so its ulp noise (~1e-15 s) can exceed the *relative* bound
        # of a near-instant transfer (a 1-byte payload's bound is 1e-7 s).
        assert elapsed >= transfer.lower_bound_s * (1.0 - 1e-9) - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    size_a=st.integers(min_value=10 * MB, max_value=400 * MB),
    size_b=st.integers(min_value=10 * MB, max_value=400 * MB),
    cancel_frac=st.floats(min_value=0.05, max_value=0.9),
    uplink=st.sampled_from([50.0, 100.0, 120.0]),
)
def test_cancellation_releases_bandwidth_immediately(
    size_a, size_b, cancel_frac, uplink
):
    """After the cancel, the survivor finishes exactly when a fresh
    uncontended transfer of its settled remainder would."""
    network = star_network(uplink_mbps=uplink)
    channel = 80.0
    shared = min(channel, uplink / 2.0)
    solo = min(channel, uplink)
    # Cancel somewhere strictly inside the contended phase.
    contended_end = min(
        size_a, size_b
    ) / MB * MBIT_PER_MB / shared
    cancel_at = cancel_frac * contended_end
    sim = Simulator()
    engine = TransferEngine(sim, network)
    a = run_transfer(sim, engine, "origin", "d0", size_a, src_is_registry=True)
    b = run_transfer(sim, engine, "origin", "d1", size_b, src_is_registry=True)

    def axe():
        yield sim.timeout(cancel_at)
        engine.cancel(b["transfer"])

    sim.process(axe())
    sim.run()
    moved_mb = shared / MBIT_PER_MB * cancel_at
    left_mb = bytes_to_mb(size_a) - moved_mb
    expected = cancel_at + left_mb * MBIT_PER_MB / solo
    assert a["end"] == pytest.approx(expected, rel=1e-9)
    assert b["end"] == pytest.approx(cancel_at)
