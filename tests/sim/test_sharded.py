"""Differential tests for the region-sharded recompute mode.

``sharded=True`` keeps the incremental engine's closure-local rate
solve untouched and shards only the *deadline index*: per-region
heaps under a lazy shard-front heap, one global wake armed at the
minimum front.  Its contract is therefore strictly stronger than the
incremental mode's: the event sequence — every wake instant, every
settle, every recompute — must be **bit-identical** to the
incremental engine's on the same trace, because the front heap's
minimum valid deadline always equals the monolithic heap's.  The
tests here assert exact (``==``, not approx) end times and exact
``transfers_visited`` equality against incremental mode, plus the
usual self-checked rate identity against the full solve.

Cross-shard transfers (paths mixing links owned by different regions
and the trunk) need no special merge machinery — the dirty-closure
walk already crosses shard boundaries by following the shared links —
so the traces here deliberately route traffic across regions.
"""

import math

import pytest
from dataclasses import replace
from hypothesis import given, settings
from hypothesis import strategies as st

from test_transfers import MB, run_transfer, star_network

from repro import scenarios
from repro.model.network import TRUNK, NetworkModel
from repro.scenarios import SimulationSession
from repro.sim.engine import Simulator
from repro.sim.transfers import TransferEngine


# ----------------------------------------------------------------------
# a regioned topology: LAN islands + per-region trunk slices
# ----------------------------------------------------------------------
def regioned_network(
    n_regions: int = 3,
    per_region: int = 2,
    trunk_mbps: float = 120.0,
    cross_mbps: float = 60.0,
) -> NetworkModel:
    """``origin`` fanned out over ``n_regions`` LAN islands.

    Devices are ``r{R}d{i}``; each island is a full LAN mesh, the
    registry reaches every device through that region's trunk slice
    (``up:origin@R*``), and every cross-region device pair is bridged
    by a slower WAN channel — a trunk-shard link — so traces can
    route transfers whose paths mix shard owners.
    """
    network = NetworkModel()
    regions = [f"R{r}" for r in range(n_regions)]
    members = {}
    for region in regions:
        names = [f"{region.lower()}d{i}" for i in range(per_region)]
        members[region] = names
        for name in names:
            network.set_region(name, region)
            network.connect_registry("origin", name, 90.0, rtt_s=0.01)
        network.connect_device_mesh(names, 400.0)
        network.set_regional_uplink("origin", region, trunk_mbps)
    for r, region in enumerate(regions):
        for other in regions[r + 1:]:
            for here in members[region]:
                for there in members[other]:
                    network.connect_devices(here, there, cross_mbps)
    return network


def _device_names(n_regions=3, per_region=2):
    return [
        f"r{r}d{i}" for r in range(n_regions) for i in range(per_region)
    ]


#: (source index, destination index, size, start) over the regioned
#: device list — index collisions mean "pull from the registry", like
#: the incremental suite, so registry trunk slices stay exercised.
region_trace_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=400 * MB),
        st.floats(min_value=0.0, max_value=25.0),
    ),
    min_size=1,
    max_size=14,
)

cancel_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=13),
        st.floats(min_value=0.1, max_value=40.0),
        st.booleans(),
    ),
    max_size=4,
)


def _run_regioned_trace(specs, cancels, **engine_kw):
    """Replay one start/cancel trace over the regioned topology."""
    network = regioned_network()
    names = _device_names()
    sim = Simulator()
    engine = TransferEngine(sim, network, **engine_kw)
    runs = []

    def launch(at_s, src, dst, size):
        yield sim.timeout(at_s)
        record = run_transfer(
            sim, engine, src, dst, size, src_is_registry=(src == "origin")
        )
        record["requested"] = sim.now
        runs.append(record)

    def axe(at_s, index, many):
        yield sim.timeout(at_s)
        if index >= len(runs):
            return
        victim = runs[index].get("transfer")
        if victim is None:
            return
        if many:
            engine.cancel_many([victim], "trace")
        else:
            engine.cancel(victim, "trace")

    for src_i, dst_i, size, at_s in specs:
        src = "origin" if src_i == dst_i else names[src_i]
        sim.process(launch(at_s, src, names[dst_i], size))
    for index, at_s, many in cancels:
        sim.process(axe(at_s, index, many))
    sim.run()
    return engine, runs


# ----------------------------------------------------------------------
# the differential properties
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(specs=region_trace_specs)
def test_sharded_rates_match_full_on_cross_region_traces(specs):
    """self_check re-solves the whole system after every recompute and
    asserts rate-for-rate equality — including closures that span
    several region shards plus the trunk."""
    engine, _ = _run_regioned_trace(
        specs, [], sharded=True, self_check=True
    )
    assert engine.completed == len(specs)
    assert not engine.active_transfers
    assert engine.peak_oversubscription() <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(specs=region_trace_specs, cancels=cancel_specs)
def test_sharded_rates_match_full_under_churn_cancellation(specs, cancels):
    engine, _ = _run_regioned_trace(
        specs, cancels, sharded=True, self_check=True
    )
    assert engine.completed + engine.cancellations == len(specs)
    assert not engine.active_transfers
    assert engine.peak_oversubscription() <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(specs=region_trace_specs, cancels=cancel_specs)
def test_sharded_is_bit_identical_to_incremental(specs, cancels):
    """The tentpole contract: same trace through both modes must give
    *exactly* equal completion instants (no approx — the sharded wake
    fires at the same instants, settling the same chunkings) and
    exactly equal recompute work."""
    inc, inc_runs = _run_regioned_trace(specs, cancels, incremental=True)
    sh, sh_runs = _run_regioned_trace(specs, cancels, sharded=True)
    assert sh.completed == inc.completed
    assert sh.cancellations == inc.cancellations
    assert sh.transfers_visited == inc.transfers_visited
    for a, b in zip(inc_runs, sh_runs):
        assert a["requested"] == b["requested"]
        assert b["end"] == a["end"]  # exact, not approx
        assert b["ok"] == a["ok"]


@settings(max_examples=40, deadline=None)
@given(specs=region_trace_specs)
def test_full_and_sharded_timelines_agree(specs):
    """Against the full engine the usual settling-noise tolerance
    applies (different chunking), like the incremental suite."""
    full, full_runs = _run_regioned_trace(specs, [])
    sh, sh_runs = _run_regioned_trace(specs, [], sharded=True)
    assert full.completed == sh.completed == len(specs)
    assert sh.transfers_visited <= full.transfers_visited
    for a, b in zip(full_runs, sh_runs):
        assert b["end"] == pytest.approx(a["end"], rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(  # duplicate-heavy endgame: many pulls of one size
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=5),
            st.floats(min_value=0.0, max_value=2.0),
        ),
        min_size=2,
        max_size=10,
    ),
)
def test_endgame_duplicate_finishes_stay_identical(specs):
    """Same-size transfers finishing at the same instant exercise the
    multi-finish wake path (ties broken by transfer id in both modes);
    the traces must still agree exactly."""
    trace = [(s, d, 64 * MB, at) for s, d, at in specs]
    inc, inc_runs = _run_regioned_trace(trace, [], incremental=True)
    sh, sh_runs = _run_regioned_trace(trace, [], sharded=True)
    assert sh.completed == inc.completed == len(trace)
    assert sh.transfers_visited == inc.transfers_visited
    for a, b in zip(inc_runs, sh_runs):
        assert b["end"] == a["end"]


@settings(max_examples=40, deadline=None)
@given(
    specs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=1, max_value=400 * MB),
            st.floats(min_value=0.0, max_value=25.0),
        ),
        min_size=1,
        max_size=14,
    ),
    uplink=st.sampled_from([None, 60.0, 150.0]),
)
def test_sharded_on_unsharded_topology_matches_incremental(specs, uplink):
    """A topology with no regions at all degenerates to one trunk
    shard; the engine must still replay the incremental traces
    exactly (the star network is the incremental suite's fixture)."""
    def run(**kw):
        network = star_network(n_devices=5, uplink_mbps=uplink)
        sim = Simulator()
        engine = TransferEngine(sim, network, **kw)
        runs = []

        def launch(at_s, src, dst, size):
            yield sim.timeout(at_s)
            runs.append(run_transfer(
                sim, engine, src, dst, size,
                src_is_registry=(src == "origin"),
            ))

        for src_i, dst_i, size, at_s in specs:
            src = "origin" if src_i == dst_i else f"d{src_i}"
            sim.process(launch(at_s, src, f"d{dst_i}", size))
        sim.run()
        return engine, runs

    inc, inc_runs = run(incremental=True)
    sh, sh_runs = run(sharded=True)
    assert sh.completed == inc.completed == len(specs)
    assert sh.transfers_visited == inc.transfers_visited
    assert set(sh.shard_fronts()) <= {TRUNK}
    for a, b in zip(inc_runs, sh_runs):
        assert b["end"] == a["end"]


# ----------------------------------------------------------------------
# shard bookkeeping
# ----------------------------------------------------------------------
class TestShardIndex:
    def test_shards_materialise_per_region_plus_trunk(self):
        network = regioned_network(n_regions=3)
        names = _device_names()
        sim = Simulator()
        engine = TransferEngine(sim, network, sharded=True)
        # registry pull into each region + one cross-region pull
        for name in names:
            run_transfer(
                sim, engine, "origin", name, 64 * MB, src_is_registry=True
            )
        run_transfer(sim, engine, "r0d1", "r1d0", 64 * MB)
        fronts = {}

        def probe():
            # past the handshake RTT, before anything completes: every
            # transfer is active and indexed.
            yield sim.timeout(0.1)
            fronts.update(engine.shard_fronts())

        sim.process(probe())
        sim.run()
        assert {"R0", "R1", "R2"} <= set(fronts)
        # the cross-region pull's path is all trunk-owned (WAN channel,
        # no region in common), so a trunk heap exists with a live
        # front at probe time.
        assert TRUNK in fronts
        assert all(front < math.inf for front in fronts.values())
        assert engine.completed == len(names) + 1
        assert all(
            front == math.inf for front in engine.shard_fronts().values()
        )

    def test_sharded_implies_incremental(self):
        engine = TransferEngine(
            Simulator(), NetworkModel(), sharded=True
        )
        assert engine.incremental
        assert engine.sharded

    def test_link_shard_reassignment_is_loud(self):
        network = regioned_network()
        sim = Simulator()
        engine = TransferEngine(sim, network, sharded=True)
        engine._link("up:origin@R0", 120.0, shard="R0")
        with pytest.raises(ValueError, match="shard"):
            engine._link("up:origin@R0", 120.0, shard="R1")


# ----------------------------------------------------------------------
# preset-level outcome identity: sharded is a drop-in for incremental
# ----------------------------------------------------------------------
_TIME_RESOLVED_PRESETS = [
    name
    for name in scenarios.names()
    if scenarios.get(name).transfer.model.value == "time-resolved"
]


@pytest.mark.parametrize("preset", _TIME_RESOLVED_PRESETS)
def test_preset_outcomes_match_incremental_engine(preset):
    """Every registered time-resolved preset replayed through the
    sharded engine must reproduce the incremental outcome dict
    *exactly* — including ``engine_transfers_visited``, the work
    counter the two modes share by construction (the swarm presets
    are downsized so the comparison stays test-sized)."""
    base = scenarios.get(preset)
    if base.topology.n_devices > 200:
        base = replace(
            base,
            topology=replace(
                base.topology,
                n_devices=120,
                n_regions=min(base.topology.n_regions, 6),
            ),
        )
    inc_spec = replace(
        base, transfer=replace(base.transfer, recompute="incremental")
    )
    sh_spec = replace(
        base, transfer=replace(base.transfer, recompute="sharded")
    )
    inc = SimulationSession(inc_spec).run()
    session = SimulationSession(sh_spec)
    assert session.engine.sharded
    session.engine.self_check = True
    sh = session.run()
    # Deterministic surface only: wall-clock fields differ per run.
    assert scenarios.deterministic_outcome_dict(sh.to_dict()) == (
        scenarios.deterministic_outcome_dict(inc.to_dict())
    )
