"""DES kernel: events, clock, processes, barriers."""

import pytest

from repro.sim import AllOf, Event, EventQueue, Interrupt, Simulator, Timeout


class TestEventQueue:
    def test_clock_starts_at_zero(self):
        assert EventQueue().now == 0.0

    def test_step_advances_clock(self):
        q = EventQueue()
        Timeout(q, 5.0)
        q.step()
        assert q.now == 5.0

    def test_tie_break_is_fifo(self):
        q = EventQueue()
        order = []
        for tag in ("first", "second"):
            event = Event(q)
            event.add_callback(lambda e, t=tag: order.append(t))
            event.succeed(t := None, delay=1.0)
        q.step()
        q.step()
        assert order == ["first", "second"]

    def test_empty_step_raises(self):
        with pytest.raises(RuntimeError):
            EventQueue().step()

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() == float("inf")
        Timeout(q, 3.0)
        assert q.peek_time() == 3.0

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            Event(q).succeed(delay=-1.0)


class TestEvent:
    def test_double_trigger_rejected(self):
        q = EventQueue()
        e = Event(q)
        e.succeed(1)
        with pytest.raises(RuntimeError):
            e.succeed(2)

    def test_value_before_trigger_raises(self):
        e = Event(EventQueue())
        with pytest.raises(RuntimeError):
            _ = e.value

    def test_late_callback_fires_immediately(self):
        q = EventQueue()
        e = Event(q)
        e.succeed("v")
        q.step()
        seen = []
        e.add_callback(lambda ev: seen.append(ev.value))
        assert seen == ["v"]

    def test_fail_requires_exception(self):
        e = Event(EventQueue())
        with pytest.raises(TypeError):
            e.fail("not an exception")


class TestProcesses:
    def test_sequential_timeouts(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.timeout(1.0)
            log.append(sim.now)
            yield sim.timeout(2.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [1.0, 3.0]

    def test_interleaving_deterministic(self):
        sim = Simulator()
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append(name)

        sim.process(worker("slow", 2.0))
        sim.process(worker("fast", 1.0))
        sim.run()
        assert log == ["fast", "slow"]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return 42

        p = sim.process(proc())
        sim.run()
        assert p.value == 42

    def test_yield_from_composition(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return "inner-result"

        def outer():
            result = yield from inner()
            return result + "!"

        p = sim.process(outer())
        sim.run()
        assert p.value == "inner-result!"

    def test_crash_propagates_to_run(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.process(proc())
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(100.0)

        sim.process(proc())
        assert sim.run(until=10.0) == 10.0
        assert sim.now == 10.0

    def test_daemon_timeouts_do_not_keep_run_alive(self):
        sim = Simulator()
        ticks = []

        def background():
            while True:
                yield sim.timeout(5.0, daemon=True)
                ticks.append(sim.now)

        def worker():
            yield sim.timeout(12.0)

        sim.process(background())
        sim.process(worker())
        # A horizonless run terminates once only daemon wake-ups
        # remain — at the worker's end, having processed the daemon
        # ticks that came before it.
        assert sim.run() == 12.0
        assert ticks == [5.0, 10.0]

    def test_daemon_timeouts_fire_under_a_horizon(self):
        sim = Simulator()
        ticks = []

        def background():
            while True:
                yield sim.timeout(5.0, daemon=True)
                ticks.append(sim.now)

        sim.process(background())
        sim.run(until=22.0)
        assert ticks == [5.0, 10.0, 15.0, 20.0]
        assert sim.now == 22.0

    def test_daemon_only_run_does_not_advance_the_clock(self):
        sim = Simulator()

        def background():
            while True:
                yield sim.timeout(5.0, daemon=True)

        sim.process(background())
        assert sim.run() == 0.0
        assert sim.now == 0.0

    def test_voided_foreground_event_does_not_block_daemon_exit(self):
        sim = Simulator()
        wake = sim.timeout(50.0)

        def background():
            while True:
                yield sim.timeout(5.0, daemon=True)

        sim.process(background())
        wake.void()
        # The only foreground event was retracted: run() must stop
        # immediately instead of chasing daemon ticks to the void.
        assert sim.run() == 0.0

    def test_non_event_yield_rejected(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_waiting_on_another_process(self):
        sim = Simulator()
        log = []

        def child():
            yield sim.timeout(2.0)
            return "done"

        def parent():
            result = yield sim.process(child())
            log.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert log == [(2.0, "done")]


class TestAllOf:
    def test_barrier_waits_for_all(self):
        sim = Simulator()
        log = []

        def worker(delay):
            yield sim.timeout(delay)
            return delay

        def driver():
            values = yield sim.all_of(
                [sim.process(worker(d)) for d in (3.0, 1.0, 2.0)]
            )
            log.append((sim.now, values))

        sim.process(driver())
        sim.run()
        assert log == [(3.0, [3.0, 1.0, 2.0])]

    def test_empty_barrier_fires_immediately(self):
        sim = Simulator()
        barrier = sim.all_of([])
        sim.run()
        assert barrier.triggered and barrier.value == []

    def test_barrier_fails_on_child_failure(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("child failed")

        def driver():
            yield sim.all_of([sim.process(bad())])

        sim.process(driver())
        with pytest.raises(ValueError, match="child failed"):
            sim.run()
