"""Experiment harness: each table/figure module produces sound results."""

import pytest

from repro.experiments import ablations, figure3a, figure3b, table2, table3
from repro.experiments.runner import ExperimentResult


class TestRunner:
    def test_row_columns_enforced(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(a=1)

    def test_to_text_renders_all_rows(self):
        result = ExperimentResult("x", "t", ["a", "b"])
        result.add_row(a=1, b=2.5)
        result.add_row(a=10, b=0.25)
        result.note("hello")
        text = result.to_text()
        assert "2.50" in text and "10" in text and "note: hello" in text

    def test_column_extraction(self):
        result = ExperimentResult("x", "t", ["a"])
        result.add_row(a=1)
        result.add_row(a=2)
        assert result.column("a") == [1, 2]


class TestTable2Experiment:
    def test_all_cells_in_range(self, testbed):
        result = table2.run(testbed)
        assert len(result.rows) == 24  # 12 services x 2 devices
        assert all(row["in_range"] for row in result.rows), [
            (r["service"], r["device"]) for r in result.rows if not r["in_range"]
        ]

    def test_tp_reported_only_on_bench_device(self, testbed):
        result = table2.run(testbed)
        video_rows = [r for r in result.rows if r["service"].startswith("vp-")]
        for row in video_rows:
            if row["device"] == "medium":
                assert row["tp_paper"] != "-"
            else:
                assert row["tp_paper"] == "-"


class TestTable3Experiment:
    def test_distribution_matches_paper(self, testbed):
        result = table3.run(testbed)
        assert all(row["match"] for row in result.rows), result.to_text()

    def test_five_paper_cells_present(self, testbed):
        result = table3.run(testbed)
        nonzero_paper = [r for r in result.rows if r["paper_percent"] > 0]
        assert len(nonzero_paper) == 5


class TestFigure3a:
    def test_training_dominates(self, testbed):
        result = figure3a.run(testbed)
        assert "yes" in result.notes[0]

    def test_twelve_bars(self, testbed):
        result = figure3a.run(testbed)
        assert len(result.rows) == 12

    def test_energies_positive_kj(self, testbed):
        result = figure3a.run(testbed)
        assert all(0 < row["energy_kj"] < 10 for row in result.rows)


class TestFigure3b:
    def test_deep_never_loses(self, testbed):
        result = figure3b.run(testbed)
        for row in result.rows:
            assert row["delta_vs_deep_j"] >= -1e-6, row

    def test_savings_are_subpercent_scale(self, testbed):
        """Paper's key reading: registry choice matters little (<1%)."""
        result = figure3b.run(testbed)
        for row in result.rows:
            if row["method"] == "deep":
                continue
            energy_j = row["energy_kj"] * 1000.0
            assert row["delta_vs_deep_j"] / energy_j < 0.01

    def test_six_rows(self, testbed):
        result = figure3b.run(testbed)
        assert len(result.rows) == 6  # 2 apps x 3 methods


class TestAblations:
    def test_cache_and_dedup(self, testbed):
        result = ablations.cache_and_dedup(testbed)
        by_name = {row["scenario"]: row for row in result.rows}
        assert by_name["whole-image warm"]["bytes_pulled_gb"] == 0.0
        assert (
            by_name["layered cold"]["bytes_pulled_gb"]
            < by_name["whole-image cold"]["bytes_pulled_gb"]
        )

    def test_solver_comparison_all_agree(self, testbed):
        result = ablations.solver_comparison(testbed)
        assert all(row["plan_equals_support"] for row in result.rows), (
            result.to_text()
        )

    def test_scaling_deep_tracks_greedy(self):
        result = ablations.scaling(sizes=[2, 4])
        assert all(row["deep_within_greedy"] for row in result.rows)

    def test_bandwidth_sweep_monotone_share(self):
        result = ablations.bandwidth_sweep(multipliers=[0.6, 1.0, 1.6])
        shares = result.column("deep_regional_share")
        assert shares[0] <= shares[-1]
        # At very poor regional bandwidth the hub wins; at very good,
        # the regional registry wins.
        assert result.rows[0]["winner"] == "hub"
        assert result.rows[-1]["winner"] == "regional"

    def test_bandwidth_sweep_deep_tracks_best(self):
        result = ablations.bandwidth_sweep(multipliers=[0.6, 1.6])
        for row in result.rows:
            best = min(row["hub_j"], row["regional_j"])
            assert row["deep_j"] <= best * 1.001
