"""Replicator dynamics: fixed points vs the exact solvers."""

import numpy as np
import pytest

from repro.game import (
    NormalFormGame,
    coordination_game,
    matching_pennies,
    prisoners_dilemma,
    replicator_dynamics,
)


class TestReplicator:
    def test_pd_converges_to_defection(self):
        result = replicator_dynamics(prisoners_dilemma(), iterations=2000)
        assert result.row_mix[1] > 0.99
        assert result.col_mix[1] > 0.99

    def test_coordination_converges_to_pure(self):
        result = replicator_dynamics(coordination_game(2.0, 1.0))
        game = coordination_game(2.0, 1.0)
        # The reached state must be (near) one of the pure equilibria.
        profile = (int(np.argmax(result.row_mix)), int(np.argmax(result.col_mix)))
        assert profile in [(0, 0), (1, 1)]
        assert game.is_nash(
            np.round(result.row_mix), np.round(result.col_mix)
        )

    def test_dominated_strategy_dies_out(self):
        A = np.array([[3.0, 3.0], [1.0, 1.0]])  # row 0 dominates
        result = replicator_dynamics(NormalFormGame(A, A.T), iterations=3000)
        assert result.row_mix[0] > 0.999

    def test_matching_pennies_does_not_converge(self):
        """Discrete-time replicator spirals outward on matching pennies
        (only the continuous-time flow cycles); the run must report
        non-convergence while keeping valid simplex points."""
        result = replicator_dynamics(matching_pennies(), iterations=500)
        assert not result.converged
        assert result.row_mix.sum() == pytest.approx(1.0)
        assert result.col_mix.sum() == pytest.approx(1.0)
        assert np.all(result.row_mix >= 0)

    def test_fixed_point_of_energy_game(self):
        from repro.game import energy_game

        energy = np.array([[100.0, 500.0], [400.0, 450.0]])
        game = energy_game(energy)
        result = replicator_dynamics(game, iterations=5000)
        assert (
            int(np.argmax(result.row_mix)),
            int(np.argmax(result.col_mix)),
        ) == (0, 0)  # the energy minimum

    def test_custom_start_preserved_simplex(self):
        result = replicator_dynamics(
            prisoners_dilemma(),
            initial_row=np.array([0.9, 0.1]),
            initial_col=np.array([0.1, 0.9]),
            iterations=500,
        )
        assert result.row_mix.sum() == pytest.approx(1.0)
        assert result.col_mix.sum() == pytest.approx(1.0)

    def test_convergence_flag(self):
        result = replicator_dynamics(prisoners_dilemma(), iterations=10_000)
        assert result.converged
        assert result.final_step_norm < 1e-10

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            replicator_dynamics(prisoners_dilemma(), iterations=0)
        with pytest.raises(ValueError):
            replicator_dynamics(
                prisoners_dilemma(), initial_row=np.array([-1.0, 2.0])
            )
