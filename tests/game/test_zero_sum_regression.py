"""Regression tests for :func:`repro.game.zero_sum.solve_zero_sum`.

The Hypothesis database surfaced a matrix of tiny positive payoffs
(~6.7e-133) on which the maximin LP was handed to HiGHS unshifted: the
constraint ``shiftedᵀu >= 1`` then needs astronomically large ``u`` and
the solver reports infeasibility.  The fix normalises every matrix so
its minimum entry is 1 before solving and subtracts the shift back.
"""

import numpy as np
import pytest

from repro.game import NormalFormGame, solve_zero_sum

#: The falsifying example recorded by Hypothesis (2026-07-26 run).
TINY = 6.66637074e-133


def test_all_tiny_positive_matrix_is_solvable():
    g = NormalFormGame(np.full((3, 3), TINY))
    sol = solve_zero_sum(g)
    assert np.isclose(sol.row_strategy.sum(), 1.0)
    assert np.isclose(sol.col_strategy.sum(), 1.0)
    # Constant game: the value is the constant itself (to fp precision).
    assert sol.value == pytest.approx(TINY, abs=1e-9)


@pytest.mark.parametrize("scale", [1.0, 1e3, 1e6])
def test_scaled_matching_pennies_value_zero(scale):
    pennies = scale * np.array([[1.0, -1.0], [-1.0, 1.0]])
    sol = solve_zero_sum(NormalFormGame(pennies))
    assert sol.value == pytest.approx(0.0, abs=scale * 1e-6)
    np.testing.assert_allclose(sol.row_strategy, [0.5, 0.5], atol=1e-6)


@pytest.mark.parametrize("scale", [1e-300, 1e-133, 1e-9])
def test_tiny_scale_games_stay_solvable(scale):
    # Below LP precision the payoffs are indistinguishable from a
    # constant game after the shift; all we require is that the LP
    # stays feasible and the value collapses to ~0 in absolute terms.
    pennies = scale * np.array([[1.0, -1.0], [-1.0, 1.0]])
    sol = solve_zero_sum(NormalFormGame(pennies))
    assert sol.value == pytest.approx(0.0, abs=1e-6)
    assert np.isclose(sol.row_strategy.sum(), 1.0)


def test_small_positive_constant_shift_round_trip():
    # min < 1 but positive: the shift must be applied and removed.
    g = NormalFormGame(np.array([[0.25, 0.75], [0.5, 0.25]]))
    sol = solve_zero_sum(g)
    worst = min(float(sol.row_strategy @ g.A[:, j]) for j in range(g.n_cols))
    assert worst >= sol.value - 1e-7
