"""NormalFormGame primitives: payoffs, best responses, Nash test."""

import numpy as np
import pytest

from repro.game import NormalFormGame, as_strategy, support
from repro.game.normal_form import Equilibrium, dedupe_equilibria


@pytest.fixture
def pd():
    A = np.array([[3.0, 0.0], [5.0, 1.0]])
    return NormalFormGame(A, A.T)


class TestConstruction:
    def test_zero_sum_default(self):
        g = NormalFormGame([[1.0, -1.0], [-1.0, 1.0]])
        assert g.is_zero_sum

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NormalFormGame([[1.0, 2.0]], [[1.0], [2.0]])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            NormalFormGame([[np.inf, 1.0], [0.0, 1.0]])

    def test_labels_default_to_indices(self, pd):
        assert pd.row_labels == ["0", "1"]

    def test_label_count_checked(self):
        with pytest.raises(ValueError):
            NormalFormGame([[1.0, 2.0]], row_labels=["a", "b"])


class TestStrategies:
    def test_pure_index_to_one_hot(self):
        s = as_strategy(1, 3)
        assert list(s) == [0.0, 1.0, 0.0]

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            as_strategy(3, 3)

    def test_mixed_validated(self):
        s = as_strategy([0.25, 0.75], 2)
        assert s.sum() == pytest.approx(1.0)

    def test_non_normalised_rejected(self):
        with pytest.raises(ValueError):
            as_strategy([0.5, 0.2], 2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            as_strategy([1.5, -0.5], 2)

    def test_support(self):
        assert support(np.array([0.5, 0.0, 0.5])) == (0, 2)


class TestPayoffs:
    def test_pure_payoffs(self, pd):
        assert pd.payoffs(0, 1) == (0.0, 5.0)
        assert pd.payoffs(1, 1) == (1.0, 1.0)

    def test_mixed_payoffs(self, pd):
        u, v = pd.payoffs([0.5, 0.5], [0.5, 0.5])
        assert u == pytest.approx((3 + 0 + 5 + 1) / 4)
        assert v == pytest.approx((3 + 5 + 0 + 1) / 4)

    def test_payoff_vectors(self, pd):
        np.testing.assert_allclose(pd.row_payoff_vector(0), [3.0, 5.0])
        np.testing.assert_allclose(pd.col_payoff_vector(0), [3.0, 5.0])


class TestBestResponse:
    def test_defect_dominates(self, pd):
        assert pd.row_best_responses(0) == [1]
        assert pd.row_best_responses(1) == [1]

    def test_ties_reported(self):
        g = NormalFormGame([[1.0, 1.0], [1.0, 1.0]])
        assert g.row_best_responses(0) == [0, 1]

    def test_is_nash_on_pd(self, pd):
        assert pd.is_nash(1, 1)
        assert not pd.is_nash(0, 0)  # mutual cooperation is not Nash

    def test_mixed_nash_matching_pennies(self):
        g = NormalFormGame([[1.0, -1.0], [-1.0, 1.0]])
        assert g.is_nash([0.5, 0.5], [0.5, 0.5])
        # Against a biased row, the column player strictly prefers one
        # side, so the profile fails the mutual-best-response test.
        assert not g.is_nash([0.6, 0.4], [0.5, 0.5])


class TestTransformations:
    def test_shift_preserves_equilibria(self, pd):
        shifted = pd.shifted_positive()
        assert shifted.A.min() > 0 and shifted.B.min() > 0
        assert shifted.is_nash(1, 1)
        assert not shifted.is_nash(0, 0)

    def test_restrict(self, pd):
        sub = pd.restrict([1], [0, 1])
        assert sub.shape == (1, 2)
        assert sub.A[0, 0] == 5.0

    def test_restrict_empty_rejected(self, pd):
        with pytest.raises(ValueError):
            pd.restrict([], [0])

    def test_transpose_swaps_players(self, pd):
        t = pd.transpose()
        assert t.shape == (2, 2)
        np.testing.assert_allclose(t.A, pd.B.T)
        np.testing.assert_allclose(t.B, pd.A.T)


class TestEquilibriumObject:
    def test_of_computes_payoffs(self, pd):
        eq = Equilibrium.of(pd, 1, 1)
        assert eq.row_payoff == 1.0 and eq.col_payoff == 1.0
        assert eq.is_pure
        assert eq.pure_profile() == (1, 1)

    def test_mixed_not_pure(self, pd):
        eq = Equilibrium.of(pd, [0.5, 0.5], 1)
        assert not eq.is_pure

    def test_dedupe(self, pd):
        a = Equilibrium.of(pd, 1, 1)
        b = Equilibrium.of(pd, 1, 1)
        c = Equilibrium.of(pd, 0, 0)
        assert len(dedupe_equilibria([a, b, c])) == 2
