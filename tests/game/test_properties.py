"""Property-based cross-validation of the Nash solvers (hypothesis).

These are the library's strongest correctness guarantees: on random
games, every solver's output must satisfy the best-response conditions,
and the independent algorithms must agree with each other.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, example, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.game import (
    NormalFormGame,
    all_equilibria,
    energy_game,
    fictitious_play,
    lemke_howson,
    lemke_howson_all,
    pure_equilibria,
    solve_zero_sum,
    vertex_enumeration,
)
from repro.game.lemke_howson import DegenerateGameError

payoff_entries = st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False)


def games(max_rows=4, max_cols=4):
    return st.integers(2, max_rows).flatmap(
        lambda m: st.integers(2, max_cols).flatmap(
            lambda n: st.tuples(
                arrays(np.float64, (m, n), elements=payoff_entries),
                arrays(np.float64, (m, n), elements=payoff_entries),
            )
        )
    )


@settings(max_examples=60, deadline=None)
@given(payoffs=games())
def test_support_enumeration_outputs_are_nash(payoffs):
    g = NormalFormGame(*payoffs)
    for eq in all_equilibria(g):
        assert g.is_nash(eq.row_strategy, eq.col_strategy, tol=1e-7)


@settings(max_examples=60, deadline=None)
@given(payoffs=games())
def test_pure_equilibria_are_nash_and_complete(payoffs):
    g = NormalFormGame(*payoffs)
    pure = {e.pure_profile() for e in pure_equilibria(g)}
    for eq in pure_equilibria(g):
        assert g.is_nash(eq.row_strategy, eq.col_strategy)
    # Completeness: every cell that passes the Nash test is found.
    for i in range(g.n_rows):
        for j in range(g.n_cols):
            if g.is_nash(i, j, tol=1e-12):
                assert (i, j) in pure


@settings(max_examples=40, deadline=None)
@given(payoffs=games(3, 3))
def test_lemke_howson_agrees_with_nash_test(payoffs):
    g = NormalFormGame(*payoffs)
    try:
        eq = lemke_howson(g, 0, max_pivots=500)
    except DegenerateGameError:
        assume(False)  # degenerate instances are out of LH's contract
    assert g.is_nash(eq.row_strategy, eq.col_strategy, tol=1e-5)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
@given(payoffs=games(3, 3))
def test_vertex_and_support_enumeration_agree(payoffs):
    A, B = payoffs
    # The agreement guarantee holds for nondegenerate games only;
    # ties — and near-ties within solver tolerance (e.g. 0 vs 6.5e-9)
    # — in the payoff entries create equilibrium continua where the
    # two enumerations may pick different extreme points, so require
    # the entries to be well separated, not merely unique.
    def well_separated(matrix, eps=1e-4):
        flat = np.sort(matrix.ravel())
        return bool(np.all(np.diff(flat) > eps))

    assume(well_separated(A) and well_separated(B))
    g = NormalFormGame(A, B)
    se = all_equilibria(g)
    ve = vertex_enumeration(g)
    for eq in se:
        assert any(eq.close_to(other, tol=1e-5) for other in ve)


@settings(max_examples=40, deadline=None)
@given(matrix=arrays(np.float64, (3, 3), elements=payoff_entries))
@example(
    # Hypothesis-found regression: all-tiny-positive payoffs used to
    # skip the positive shift and make the HiGHS LP infeasible.
    matrix=np.full((3, 3), 6.66637074e-133),
).via("discovered failure")
def test_zero_sum_lp_value_consistent_with_equilibria(matrix):
    g = NormalFormGame(matrix)
    sol = solve_zero_sum(g)
    # Guaranteed-value property: the maximin strategy earns >= value
    # against every pure column.
    worst = min(
        float(sol.row_strategy @ g.A[:, j]) for j in range(g.n_cols)
    )
    assert worst >= sol.value - 1e-7


@settings(max_examples=30, deadline=None)
@given(matrix=arrays(np.float64, (2, 2), elements=payoff_entries))
def test_fictitious_play_low_exploitability_zero_sum(matrix):
    g = NormalFormGame(matrix)  # zero-sum: FP converges
    result = fictitious_play(g, iterations=3000)
    # Robinson's theorem: empirical play converges; allow loose epsilon.
    span = float(np.ptp(matrix)) or 1.0
    assert result.exploitability <= 0.15 * span + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    energy=arrays(
        np.float64,
        (2, 2),
        elements=st.floats(1.0, 1e4, allow_nan=False, allow_infinity=False),
    )
)
def test_energy_game_min_cell_is_always_an_equilibrium(energy):
    """DEEP's key invariant: without penalties the joint energy minimum
    is a Nash equilibrium of the constructed game."""
    g = energy_game(energy)
    i, j = np.unravel_index(int(np.argmin(energy)), energy.shape)
    assert g.is_nash(int(i), int(j))


@settings(max_examples=40, deadline=None)
@given(
    energy=arrays(
        np.float64,
        (2, 3),
        elements=st.floats(1.0, 1e4, allow_nan=False, allow_infinity=False),
    ),
    infeasible_row=st.integers(0, 1),
)
def test_energy_game_infeasible_cells_never_chosen(energy, infeasible_row):
    cost = energy.copy()
    cost[infeasible_row, :] = np.inf
    g = energy_game(cost)
    for eq in pure_equilibria(g):
        i, j = eq.pure_profile()
        assert i != infeasible_row
