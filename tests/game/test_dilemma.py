"""Game constructors: prisoner's dilemma and DEEP's energy game."""

import numpy as np
import pytest

from repro.game import (
    coordination_game,
    energy_game,
    matching_pennies,
    prisoners_dilemma,
    pure_equilibria,
)


class TestPrisonersDilemma:
    def test_defection_is_unique_equilibrium(self):
        eqs = pure_equilibria(prisoners_dilemma())
        assert [e.pure_profile() for e in eqs] == [(1, 1)]

    def test_dilemma_structure(self):
        pd = prisoners_dilemma()
        # Mutual cooperation Pareto-dominates mutual defection...
        assert pd.A[0, 0] > pd.A[1, 1] and pd.B[0, 0] > pd.B[1, 1]
        # ...yet defection strictly dominates for both players.
        assert np.all(pd.A[1] > pd.A[0])
        assert np.all(pd.B[:, 1] > pd.B[:, 0])

    def test_ordering_enforced(self):
        with pytest.raises(ValueError):
            prisoners_dilemma(reward=5.0, temptation=3.0)

    def test_symmetry(self):
        pd = prisoners_dilemma()
        np.testing.assert_allclose(pd.B, pd.A.T)


class TestClassics:
    def test_matching_pennies_zero_sum(self):
        assert matching_pennies().is_zero_sum

    def test_coordination_validation(self):
        with pytest.raises(ValueError):
            coordination_game(a=0.0)


class TestEnergyGame:
    def test_payoffs_are_negated_energy(self):
        energy = np.array([[10.0, 20.0], [30.0, 40.0]])
        g = energy_game(energy)
        np.testing.assert_allclose(g.A, -energy)
        np.testing.assert_allclose(g.B, -energy)

    def test_labels_carried(self):
        g = energy_game(
            np.ones((2, 2)),
            row_labels=["hub", "regional"],
            col_labels=["medium", "small"],
        )
        assert g.row_labels == ["hub", "regional"]
        assert g.col_labels == ["medium", "small"]

    def test_penalties_split_players(self):
        energy = np.array([[10.0, 20.0], [30.0, 40.0]])
        row_pen = np.full((2, 2), 5.0)
        g = energy_game(energy, row_penalty=row_pen)
        np.testing.assert_allclose(g.A, -(energy + 5.0))
        np.testing.assert_allclose(g.B, -energy)

    def test_infeasible_sentinel_is_finite_but_bad(self):
        energy = np.array([[10.0, np.inf], [30.0, 40.0]])
        g = energy_game(energy)
        assert np.isfinite(g.A).all()
        assert g.A[0, 1] < g.A.min(where=np.isfinite(-energy), initial=0) \
            or g.A[0, 1] < -40.0

    def test_all_infeasible_rejected(self):
        with pytest.raises(ValueError):
            energy_game(np.full((2, 2), np.inf))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            energy_game(np.array([[np.nan, 1.0], [1.0, 1.0]]))

    def test_penalty_shape_checked(self):
        with pytest.raises(ValueError):
            energy_game(np.ones((2, 2)), row_penalty=np.ones((3, 2)))

    def test_penalty_can_create_dilemma(self):
        """With a big enough row penalty on the cheap registry, the
        equilibrium moves off the joint energy minimum — the
        cooperate/defect tension of Sec. III-E."""
        energy = np.array([[100.0, 200.0], [110.0, 210.0]])  # row 0 cheaper
        penalty = np.array([[50.0, 50.0], [0.0, 0.0]])  # row 0 congested
        g = energy_game(energy, row_penalty=penalty)
        profiles = [e.pure_profile() for e in pure_equilibria(g)]
        assert (1, 0) in profiles  # row player defects to registry 1
