"""Individual solver behaviour on classic games."""

import numpy as np
import pytest

from repro.game import (
    NormalFormGame,
    all_equilibria,
    best_pure_outcome,
    coordination_game,
    exploitability,
    fictitious_play,
    iterated_elimination,
    lemke_howson,
    lemke_howson_all,
    matching_pennies,
    minimax_pure,
    prisoners_dilemma,
    pure_equilibria,
    solve_zero_sum,
    strictly_dominated_cols,
    strictly_dominated_rows,
    vertex_enumeration,
)


class TestPure:
    def test_pd_unique_pure_ne(self):
        eqs = pure_equilibria(prisoners_dilemma())
        assert len(eqs) == 1 and eqs[0].pure_profile() == (1, 1)

    def test_matching_pennies_no_pure(self):
        assert pure_equilibria(matching_pennies()) == []

    def test_coordination_two_pure(self):
        profiles = {e.pure_profile() for e in pure_equilibria(coordination_game())}
        assert profiles == {(0, 0), (1, 1)}

    def test_best_pure_outcome_welfare(self):
        # PD welfare max is mutual cooperation.
        assert best_pure_outcome(prisoners_dilemma(), "welfare") == (0, 0)

    def test_dominance_in_pd(self):
        pd = prisoners_dilemma()
        assert strictly_dominated_rows(pd) == [0]
        assert strictly_dominated_cols(pd) == [0]

    def test_iterated_elimination_solves_pd(self):
        reduced, rows, cols = iterated_elimination(prisoners_dilemma())
        assert (rows, cols) == ([1], [1])
        assert reduced.shape == (1, 1)

    def test_elimination_preserves_ne(self):
        g = NormalFormGame(
            [[3.0, 1.0, 0.0], [2.0, 2.0, 5.0]],
            [[1.0, 2.0, 0.0], [1.0, 3.0, 2.0]],
        )
        reduced, rows, cols = iterated_elimination(g)
        for eq in all_equilibria(reduced):
            # Lift back and verify in the original game.
            x = np.zeros(g.n_rows)
            y = np.zeros(g.n_cols)
            x[rows] = eq.row_strategy
            y[cols] = eq.col_strategy
            assert g.is_nash(x, y)

    def test_minimax_pure(self):
        row, value = minimax_pure(matching_pennies())
        assert value == -1.0  # any pure row can be exploited


class TestSupportEnumeration:
    def test_matching_pennies_mixed(self):
        eqs = all_equilibria(matching_pennies())
        assert len(eqs) == 1
        np.testing.assert_allclose(eqs[0].row_strategy, [0.5, 0.5])

    def test_coordination_three_equilibria(self):
        eqs = all_equilibria(coordination_game(2.0, 1.0))
        assert len(eqs) == 3
        mixed = [e for e in eqs if not e.is_pure]
        assert len(mixed) == 1
        # Mixed equilibrium of a 2x2 coordination game: p = b/(a+b).
        np.testing.assert_allclose(mixed[0].row_strategy, [1 / 3, 2 / 3])

    def test_asymmetric_shapes(self):
        g = NormalFormGame(np.arange(6.0).reshape(2, 3))
        for eq in all_equilibria(g):
            assert g.is_nash(eq.row_strategy, eq.col_strategy)

    def test_all_returned_are_nash(self):
        rng = np.random.default_rng(3)
        g = NormalFormGame(rng.normal(size=(4, 4)), rng.normal(size=(4, 4)))
        eqs = all_equilibria(g)
        assert eqs, "random nondegenerate game must have >= 1 NE"
        for eq in eqs:
            assert g.is_nash(eq.row_strategy, eq.col_strategy)


class TestLemkeHowson:
    def test_pd(self):
        assert lemke_howson(prisoners_dilemma(), 0).pure_profile() == (1, 1)

    def test_matching_pennies_all_labels(self):
        g = matching_pennies()
        for label in range(4):
            eq = lemke_howson(g, label)
            np.testing.assert_allclose(eq.row_strategy, [0.5, 0.5], atol=1e-9)

    def test_label_out_of_range(self):
        with pytest.raises(ValueError):
            lemke_howson(matching_pennies(), 4)

    def test_all_labels_dedup(self):
        eqs = lemke_howson_all(coordination_game())
        assert 1 <= len(eqs) <= 3
        g = coordination_game()
        for eq in eqs:
            assert g.is_nash(eq.row_strategy, eq.col_strategy)

    def test_bigger_game_is_nash(self):
        rng = np.random.default_rng(11)
        g = NormalFormGame(rng.normal(size=(5, 4)), rng.normal(size=(5, 4)))
        eq = lemke_howson(g, 0)
        assert g.is_nash(eq.row_strategy, eq.col_strategy, tol=1e-6)


class TestVertexEnumeration:
    def test_matches_support_enumeration(self):
        rng = np.random.default_rng(5)
        for _ in range(6):
            g = NormalFormGame(rng.normal(size=(3, 3)), rng.normal(size=(3, 3)))
            se = all_equilibria(g)
            ve = vertex_enumeration(g)
            assert len(se) == len(ve)
            for eq in ve:
                assert any(eq.close_to(other, tol=1e-6) for other in se)


class TestZeroSum:
    def test_matching_pennies_value_zero(self):
        sol = solve_zero_sum(matching_pennies())
        assert sol.value == pytest.approx(0.0, abs=1e-9)
        np.testing.assert_allclose(sol.row_strategy, [0.5, 0.5], atol=1e-9)

    def test_biased_game_value(self):
        A = np.array([[2.0, -1.0], [-1.0, 1.0]])
        sol = solve_zero_sum(NormalFormGame(A))
        # value = (2*1 - 1*1)/(2+1+1+1) = 1/5
        assert sol.value == pytest.approx(0.2)

    def test_solution_is_nash(self):
        rng = np.random.default_rng(17)
        A = rng.normal(size=(4, 5))
        g = NormalFormGame(A)
        sol = solve_zero_sum(g)
        assert g.is_nash(sol.row_strategy, sol.col_strategy, tol=1e-6)

    def test_non_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            solve_zero_sum(prisoners_dilemma())

    def test_dominant_strategy_game(self):
        A = np.array([[5.0, 4.0], [1.0, 0.0]])  # row 0 dominates
        sol = solve_zero_sum(NormalFormGame(A))
        assert sol.row_strategy[0] == pytest.approx(1.0)
        assert sol.value == pytest.approx(4.0)


class TestFictitiousPlay:
    def test_converges_on_matching_pennies(self):
        result = fictitious_play(matching_pennies(), iterations=5000)
        np.testing.assert_allclose(result.row_empirical, [0.5, 0.5], atol=0.05)
        assert result.exploitability < 0.05

    def test_converges_on_pd(self):
        result = fictitious_play(prisoners_dilemma(), iterations=500)
        assert result.row_empirical[1] > 0.95  # defect

    def test_early_out_on_tolerance(self):
        result = fictitious_play(
            prisoners_dilemma(), iterations=100_000, tolerance=0.05
        )
        assert result.iterations < 100_000
        assert result.converged

    def test_exploitability_zero_at_nash(self):
        g = matching_pennies()
        assert exploitability(
            g, np.array([0.5, 0.5]), np.array([0.5, 0.5])
        ) == pytest.approx(0.0, abs=1e-12)

    def test_deterministic(self):
        a = fictitious_play(coordination_game(), iterations=200)
        b = fictitious_play(coordination_game(), iterations=200)
        np.testing.assert_array_equal(a.row_empirical, b.row_empirical)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            fictitious_play(matching_pennies(), iterations=0)
