"""Telemetry must never perturb simulation outcomes.

Every probe is read-only and consumes no shared randomness, so a run
with full telemetry (tracing + metrics + profiling) must produce an
outcome **bit-identical** to the same spec with telemetry off — after
stripping the wall-clock / profile keys that are nondeterministic by
nature (``NONDETERMINISTIC_OUTCOME_KEYS``).
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import scenarios
from repro.scenarios import TelemetrySpec, deterministic_outcome_dict

FULL_TELEMETRY = TelemetrySpec(trace=True, metrics_period_s=300.0, profile=True)

EXPERIMENT_PRESETS = ("p2p", "p2p-contended", "p2p-gossip", "p2p-chunked")


def _outcome(spec):
    session = scenarios.SimulationSession(spec)
    return session.run(), session


@pytest.mark.parametrize("preset", EXPERIMENT_PRESETS)
def test_full_telemetry_is_bit_identical(preset):
    spec = scenarios.get(preset)
    off, _ = _outcome(spec)
    on, session = _outcome(
        dataclasses.replace(spec, telemetry=FULL_TELEMETRY)
    )
    assert deterministic_outcome_dict(on.to_dict()) == (
        deterministic_outcome_dict(off.to_dict())
    )
    # The telemetry side actually engaged: the traced run owns a
    # recorder and a sampler (otherwise this test proves nothing).
    assert session.trace is not None
    assert session.metrics is not None


def test_quick_swarm_cell_is_bit_identical(quick_swarm_spec):
    off, _ = _outcome(quick_swarm_spec)
    on, session = _outcome(
        dataclasses.replace(quick_swarm_spec, telemetry=FULL_TELEMETRY)
    )
    assert deterministic_outcome_dict(on.to_dict()) == (
        deterministic_outcome_dict(off.to_dict())
    )
    assert len(session.trace) > 0
    assert on.engine_profile is not None
    assert on.engine_profile["recomputes"] > 0


def test_default_spec_keeps_telemetry_off(quick_swarm_spec):
    _, session = _outcome(quick_swarm_spec)
    assert session.trace is None
    assert session.metrics is None
    assert session.engine_profile is None


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_trace_timestamps_monotone_per_device(seed):
    """Per device, traced event timestamps never run backwards.

    The recorder appends in simulation order, so the subsequence of
    events belonging to any one device must carry non-decreasing
    sim-time stamps — for every seed.
    """
    spec = scenarios.get("p2p-swarm-scale")
    spec = dataclasses.replace(
        spec,
        seed=seed,
        topology=dataclasses.replace(
            spec.topology, n_devices=120, n_regions=6
        ),
        telemetry=TelemetrySpec(trace=True),
    )
    session = scenarios.SimulationSession(spec)
    session.run()
    assert len(session.trace) > 0
    last = {}
    for event in session.trace.events:
        assert event.t_s >= last.get(event.device, 0.0)
        last[event.device] = event.t_s
