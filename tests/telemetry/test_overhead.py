"""Acceptance: full telemetry costs <= 25% wall time on the quick cell.

Timing methodology: wall-clock comparisons between separately-run
blocks are dominated by allocator and frequency noise, so the off/on
runs are *interleaved* and each side keeps its minimum — the minimum
is the least-noise estimate of the true cost.  The cyclic GC is
disabled inside the timing window (with an explicit collect between
runs): the ~16k retained trace events otherwise attract collector
pauses into the traced runs and the measurement becomes a GC
benchmark, not a telemetry one.  If an attempt lands over the bar the
measurement retries with more rounds before failing, which keeps the
test meaningful on loaded CI workers without letting a real regression
through.
"""

import dataclasses
import gc
import json
import time

from repro import scenarios
from repro.scenarios import TelemetrySpec

FULL_TELEMETRY = TelemetrySpec(trace=True, metrics_period_s=300.0, profile=True)

MAX_OVERHEAD = 0.25


def test_full_telemetry_overhead_within_bound(quick_swarm_spec):
    spec_on = dataclasses.replace(quick_swarm_spec, telemetry=FULL_TELEMETRY)
    best_off = best_on = float("inf")
    ratios = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        # Minimums accumulate across attempts, so extra rounds can
        # only sharpen the estimate — a noisy early round never sticks.
        for rounds in (3, 4, 5):
            for _ in range(rounds):
                gc.collect()
                t0 = time.perf_counter()
                scenarios.SimulationSession(quick_swarm_spec).run()
                best_off = min(best_off, time.perf_counter() - t0)
                gc.collect()
                t0 = time.perf_counter()
                scenarios.SimulationSession(spec_on).run()
                best_on = min(best_on, time.perf_counter() - t0)
            ratio = best_on / best_off
            ratios.append(round(ratio, 3))
            if ratio <= 1.0 + MAX_OVERHEAD:
                return
    finally:
        if gc_was_enabled:
            gc.enable()
    raise AssertionError(
        f"telemetry overhead exceeded {MAX_OVERHEAD:.0%} after "
        f"{sum((3, 4, 5))} interleaved rounds: ratios={ratios}"
    )


def test_traced_quick_cell_yields_valid_chrome_trace(
    quick_swarm_spec, tmp_path
):
    spec = dataclasses.replace(
        quick_swarm_spec, telemetry=TelemetrySpec(trace=True)
    )
    session = scenarios.SimulationSession(spec)
    session.run()
    path = tmp_path / "trace.json"
    session.trace.write_chrome(path)

    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert events, "traced quick cell produced an empty Chrome trace"
    for event in events:
        assert event["ph"] in {"X", "i", "M"}
        assert isinstance(event["pid"], int)
        if event["ph"] != "M":
            assert event["ts"] >= 0.0
        if event["ph"] == "X":
            assert event["dur"] >= 0.0

    spans = [e for e in events if e["ph"] == "X"]
    assert spans, "quick cell ran transfers, so spans must exist"
    process_names = {
        e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    # Every span's pid resolves to a named device process.
    named_pids = {
        e["pid"]
        for e in events
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert {s["pid"] for s in spans} <= named_pids
    assert "@sim" in process_names
