"""Shared fixtures for the telemetry suite."""

import dataclasses

import pytest

from repro import scenarios


@pytest.fixture
def quick_swarm_spec():
    """The ``p2p-swarm-scale`` preset shrunk to a quick cell.

    400 devices across 10 regions keeps the incremental sharded engine,
    cold waves, churn, and replication all exercised while a full run
    stays well under a second.
    """
    spec = scenarios.get("p2p-swarm-scale")
    return dataclasses.replace(
        spec,
        topology=dataclasses.replace(
            spec.topology, n_devices=400, n_regions=10
        ),
    )
