"""Unit behaviour of the trace recorder and its exports."""

import json

import pytest

from repro.telemetry import TraceRecorder, chrome_trace, merged_jsonl


def _spanful_recorder(label: str = "") -> TraceRecorder:
    trace = TraceRecorder(label=label)
    trace.record(
        0.0, "transfer.start", "dev-a",
        id=1, src="registry:hub", size_bytes=100, digest="sha:1",
        registry=True,
    )
    trace.record(
        1.0, "transfer.start", "dev-b",
        id=2, src="dev-a", size_bytes=50, digest="sha:1", registry=False,
    )
    trace.record(2.5, "transfer.finish", "dev-a", id=1, duration_s=2.5)
    trace.record(
        3.0, "transfer.cancel", "dev-b", id=2, reason="seeder departed",
        moved_bytes=10,
    )
    trace.record(4.0, "gossip.round", "", round=1, records_sent=8)
    return trace


class TestTraceRecorder:
    def test_records_accumulate_in_order(self):
        trace = _spanful_recorder()
        assert [e.kind for e in trace.events] == [
            "transfer.start", "transfer.start", "transfer.finish",
            "transfer.cancel", "gossip.round",
        ]
        assert trace.events_of("transfer.start")[0].detail["id"] == 1
        assert trace.devices() == ["dev-a", "dev-b"]

    def test_jsonl_round_trips(self):
        trace = _spanful_recorder()
        lines = [json.loads(line) for line in trace.jsonl().splitlines()]
        assert len(lines) == len(trace.events)
        assert lines[0]["kind"] == "transfer.start"
        assert lines[0]["t_s"] == 0.0
        assert lines[0]["device"] == "dev-a"
        assert lines[0]["registry"] is True

    def test_write_exports(self, tmp_path):
        trace = _spanful_recorder()
        jsonl_path = tmp_path / "t.jsonl"
        chrome_path = tmp_path / "t.json"
        trace.write_jsonl(jsonl_path)
        trace.write_chrome(chrome_path)
        assert len(jsonl_path.read_text().splitlines()) == len(trace.events)
        doc = json.loads(chrome_path.read_text())
        assert isinstance(doc["traceEvents"], list)


class TestChromeTrace:
    def test_matched_spans_become_complete_events(self):
        doc = _spanful_recorder().chrome_trace()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        finished = next(s for s in spans if not s["args"].get("cancelled"))
        # ts/dur are microseconds of the sim clock.
        assert finished["ts"] == 0.0
        assert finished["dur"] == pytest.approx(2.5e6)
        cancelled = next(s for s in spans if s["args"].get("cancelled"))
        assert cancelled["dur"] == pytest.approx(2.0e6)

    def test_devices_are_processes_with_metadata(self):
        doc = _spanful_recorder().chrome_trace()
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # Device processes plus the synthetic process for device-less
        # records (the gossip round).
        assert {"dev-a", "dev-b", "@sim"} <= names

    def test_unmatched_start_closes_at_horizon_as_unfinished(self):
        trace = TraceRecorder()
        trace.record(
            0.0, "transfer.start", "dev-a",
            id=7, src="hub", size_bytes=1, digest="d", registry=True,
        )
        trace.record(9.0, "gossip.round", "", round=1)
        doc = trace.chrome_trace()
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["args"]["unfinished"] is True
        assert span["dur"] == pytest.approx(9.0e6)

    def test_non_span_kinds_become_instants(self):
        doc = _spanful_recorder().chrome_trace()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "gossip.round" for e in instants)

    def test_merged_trace_prefixes_session_labels(self):
        doc = chrome_trace([_spanful_recorder("s0"), _spanful_recorder("s1")])
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {"s0/dev-a", "s1/dev-a"} <= names


def test_merged_jsonl_carries_session_field():
    text = merged_jsonl([_spanful_recorder("s0"), _spanful_recorder("s1")])
    sessions = {json.loads(line)["session"] for line in text.splitlines()}
    assert sessions == {"s0", "s1"}
