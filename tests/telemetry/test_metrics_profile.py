"""Unit behaviour of the metrics sampler, engine profile, and capture."""

import csv
import io

import pytest

from repro.telemetry import (
    ALL_SCOPE,
    METRICS_SCHEMA,
    EngineProfile,
    FRONT_HEAP,
    GLOBAL_HEAP,
    MetricsSampler,
    TelemetryCapture,
    TraceRecorder,
    active_capture,
    closure_bucket,
    merged_csv,
)


class TestMetricsSampler:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            MetricsSampler(0.0)
        with pytest.raises(ValueError):
            MetricsSampler(-5.0)

    def test_rows_follow_schema(self):
        sampler = MetricsSampler(10.0)
        sampler.record(0.0, "inflight_transfers", ALL_SCOPE, 3)
        (row,) = sampler.rows()
        assert tuple(row) == METRICS_SCHEMA
        assert row["value"] == 3.0

    def test_cache_probe(self):
        class Cache:
            def __init__(self, used, cap):
                self.used_bytes = used
                self.capacity_bytes = cap

        sampler = MetricsSampler(10.0)
        sampler.sample(5.0, caches={"a": Cache(10, 100), "b": Cache(30, 100)})
        assert sampler.series("cache_used_bytes") == [(5.0, 40.0)]
        assert sampler.series("cache_occupancy") == [(5.0, 0.2)]

    def test_csv_header_is_schema(self):
        sampler = MetricsSampler(10.0)
        sampler.record(0.0, "inflight_transfers", ALL_SCOPE, 1)
        rows = list(csv.reader(io.StringIO(sampler.csv_text())))
        assert rows[0] == list(METRICS_SCHEMA)
        assert len(rows) == 2

    def test_merged_csv_adds_session_column(self):
        a, b = MetricsSampler(1.0, label="s0"), MetricsSampler(1.0, label="s1")
        a.record(0.0, "m", ALL_SCOPE, 1)
        b.record(0.0, "m", ALL_SCOPE, 2)
        rows = list(csv.reader(io.StringIO(merged_csv([a, b]))))
        assert rows[0] == ["session"] + list(METRICS_SCHEMA)
        assert [row[0] for row in rows[1:]] == ["s0", "s1"]


class TestEngineProfile:
    def test_closure_bucket_powers_of_two(self):
        assert closure_bucket(0) == "0"
        assert closure_bucket(1) == "1"
        assert closure_bucket(3) == "4"
        assert closure_bucket(4) == "4"
        assert closure_bucket(5) == "8"
        assert closure_bucket(1000) == "1024"

    def test_recompute_accounting(self):
        prof = EngineProfile()
        prof.note_recompute(100, 3)
        prof.note_recompute(300, 5)
        summary = prof.summary()
        assert summary["recomputes"] == 2
        assert summary["recompute_ns_total"] == 400
        assert summary["recompute_ns_max"] == 300
        assert summary["transfers_rerated"] == 8
        assert summary["closure_size_hist"] == {"4": 1, "8": 1}

    def test_heap_counters_per_shard(self):
        prof = EngineProfile()
        prof.heap_push(GLOBAL_HEAP)
        prof.heap_push("region-1")
        prof.heap_pop("region-1")
        prof.heap_invalidate(FRONT_HEAP)
        heaps = prof.summary()["heaps"]
        assert heaps[GLOBAL_HEAP] == {
            "pushes": 1, "pops": 0, "invalidations": 0,
        }
        assert heaps["region-1"]["pops"] == 1
        assert heaps[FRONT_HEAP]["invalidations"] == 1


class TestTelemetryCapture:
    def test_activation_scope(self):
        assert active_capture() is None
        with TelemetryCapture(trace=True) as capture:
            assert active_capture() is capture
        assert active_capture() is None

    def test_nesting_rejected(self):
        with TelemetryCapture(trace=True):
            with pytest.raises(RuntimeError):
                TelemetryCapture(trace=True).__enter__()

    def test_labels_and_adoption(self):
        with TelemetryCapture(trace=True, profile=True) as capture:
            assert capture.next_label() == "s0"
            assert capture.next_label() == "s1"
            trace = TraceRecorder(label="s0")
            prof = EngineProfile()
            capture.adopt(trace, None, prof, "s0")
        assert capture.traces == [trace]
        assert capture.samplers == []
        assert capture.profile_summaries() == {"s0": prof.summary()}

    def test_rejects_nonpositive_metrics_period(self):
        with pytest.raises(ValueError):
            TelemetryCapture(metrics_period_s=0.0)
