"""Environment feasibility and cache-aware cost matrices."""

import numpy as np
import pytest

from repro.core.costs import CostTable, SchedulerState
from repro.core.environment import Environment
from repro.model.application import (
    Application,
    Dataflow,
    Microservice,
    ResourceRequirements,
)
from repro.model.device import Arch, Device, DeviceFleet, DeviceSpec, PowerModel
from repro.model.network import NetworkModel
from repro.model.registry import RegistryCatalog, RegistryInfo, RegistryKind
from repro.model.units import gb_to_bytes


def make_env(big_storage=64.0, small_storage=4.0):
    power = PowerModel(static_watts=1.0, compute_watts=10.0, pull_watts=1.0,
                       transfer_watts=0.5)
    fleet = DeviceFleet.of(
        Device(DeviceSpec("big", Arch.AMD64, 8, 1000.0, 16.0, big_storage), power),
        Device(DeviceSpec("tiny", Arch.ARM64, 2, 500.0, 2.0, small_storage), power),
    )
    network = NetworkModel()
    for dev in ("big", "tiny"):
        network.connect_registry("hub", dev, 80.0)
        network.connect_registry("regional", dev, 160.0)
        network.connect_ingress(dev, 80.0)
    network.connect_devices("big", "tiny", 80.0)
    catalog = RegistryCatalog.of(
        RegistryInfo("hub", RegistryKind.HUB),
        RegistryInfo("regional", RegistryKind.REGIONAL),
    )
    return Environment(fleet=fleet, network=network, registries=catalog)


def make_app():
    return Application(
        "app",
        [
            Microservice(
                name="a", image="a", size_gb=1.0,
                requirements=ResourceRequirements(cores=1, cpu_mi=1000.0),
            ),
            Microservice(
                name="b", image="b", size_gb=2.0,
                requirements=ResourceRequirements(
                    cores=4, cpu_mi=2000.0, memory_gb=8.0
                ),
            ),
        ],
        [Dataflow("a", "b", 100.0)],
    )


class TestEnvironmentFeasibility:
    def test_cores_and_memory_filter(self):
        env = make_env()
        app = make_app()
        assert env.feasible_devices(app.service("a")) == ["big", "tiny"]
        # b needs 4 cores + 8 GB: only big qualifies.
        assert env.feasible_devices(app.service("b")) == ["big"]

    def test_storage_headroom_injected(self):
        env = make_env()
        app = make_app()
        headroom = {"big": gb_to_bytes(0.5), "tiny": gb_to_bytes(16.0)}
        assert env.feasible_devices(app.service("a"), headroom) == ["tiny"]

    def test_feasible_registries_respects_availability(self):
        env = make_env()
        env.availability = lambda reg, img: reg == "regional"
        app = make_app()
        assert env.feasible_registries(app.service("a"), "big") == ["regional"]


class TestSchedulerState:
    def test_commit_tracks_cache_and_storage(self):
        state = SchedulerState()
        app = make_app()
        state.commit(app.service("a"), "hub", "big", 100.0)
        assert state.is_cached("big", "a")
        assert not state.is_cached("tiny", "a")
        assert state.storage_used_bytes["big"] == gb_to_bytes(1.0)
        assert state.busy_s["big"] == 100.0
        assert state.registry_bytes["hub"] == gb_to_bytes(1.0)
        assert state.upstream_devices["a"] == "big"

    def test_recommit_same_image_no_double_count(self):
        state = SchedulerState()
        app = make_app()
        state.commit(app.service("a"), "hub", "big", 10.0)
        state.commit(app.service("a"), "hub", "big", 10.0)
        assert state.storage_used_bytes["big"] == gb_to_bytes(1.0)
        assert state.busy_s["big"] == 20.0


class TestCostTable:
    def test_matrix_shape_and_labels(self):
        env = make_env()
        table = CostTable(make_app(), env)
        costs = table.matrix("a")
        assert costs.registries == ["hub", "regional"]
        assert costs.devices == ["big", "tiny"]
        assert costs.energy_j.shape == (2, 2)
        assert costs.feasible.all()

    def test_infeasible_device_masked(self):
        env = make_env()
        table = CostTable(make_app(), env)
        costs = table.matrix("b")
        assert not costs.feasible[:, 1].any()  # tiny infeasible for b
        assert np.isinf(costs.energy_j[:, 1]).all()

    def test_faster_registry_cheaper(self):
        env = make_env()
        table = CostTable(make_app(), env)
        costs = table.matrix("a")
        # regional at 160 Mbit/s beats hub at 80 on both devices.
        assert (costs.energy_j[1] < costs.energy_j[0]).all()
        assert costs.best_cell()[0] == 1

    def test_cached_image_free_deploy(self):
        env = make_env()
        app = make_app()
        table = CostTable(app, env)
        state = SchedulerState()
        state.commit(app.service("a"), "hub", "big", 10.0)
        costs = table.matrix("a", state)
        e_cached, ct_cached = costs.cell("hub", "big")
        e_cold, ct_cold = costs.cell("hub", "tiny")
        assert ct_cached < ct_cold

        record = table.record("a", "hub", "big", state)
        assert record.times.deploy_s == 0.0

    def test_upstream_transfer_in_costs(self):
        env = make_env()
        app = make_app()
        table = CostTable(app, env)
        state = SchedulerState()
        state.commit(app.service("a"), "hub", "tiny", 10.0)
        record_remote = table.record("b", "hub", "big", state)
        assert record_remote.times.transfer_s == pytest.approx(10.0)
        state2 = SchedulerState()
        state2.commit(app.service("a"), "hub", "big", 10.0)
        record_local = table.record("b", "hub", "big", state2)
        assert record_local.times.transfer_s == 0.0

    def test_cached_device_stays_feasible_when_storage_full(self):
        """An image already on a device is not re-downloaded, so the
        device remains feasible even with zero free storage."""
        env = make_env(big_storage=2.2)
        app = make_app()
        table = CostTable(app, env)
        state = SchedulerState()
        state.commit(app.service("b"), "hub", "big", 10.0)  # fills 2/2.2 GB
        costs = table.matrix("b", state)
        assert costs.feasible[:, costs.devices.index("big")].any()

    def test_no_feasible_cell_reported(self):
        env = make_env(big_storage=0.5, small_storage=0.5)
        table = CostTable(make_app(), env)
        costs = table.matrix("a")
        assert not costs.any_feasible()
        with pytest.raises(ValueError):
            costs.best_cell()
