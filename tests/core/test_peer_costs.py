"""Peer-transfer deployment term and cache-affinity scheduling."""

import pytest

from repro.core.costs import CostTable, SchedulerState
from repro.core.environment import Environment
from repro.core.scheduler import CacheAffinityScheduler, DeepScheduler
from repro.devices.specs import MEDIUM_POWER, medium_device, small_device
from repro.model.application import Application, Dataflow, Microservice
from repro.model.device import DeviceFleet
from repro.model.network import NetworkModel
from repro.model.registry import RegistryCatalog, RegistryInfo, RegistryKind


def tiny_env(device_bw_mbps: float = 800.0, registry_bw_mbps: float = 80.0):
    medium = medium_device(region="edge")
    small = small_device(region="edge")
    fleet = DeviceFleet.of(medium, small)
    network = NetworkModel()
    network.connect_devices(medium.name, small.name, device_bw_mbps)
    for device in (medium, small):
        network.connect_registry("hub", device.name, registry_bw_mbps)
    catalog = RegistryCatalog.of(
        RegistryInfo("hub", RegistryKind.HUB, "https://hub.docker.com")
    )
    return Environment(fleet=fleet, network=network, registries=catalog)


def one_service_app(size_gb: float = 1.0) -> Application:
    app = Application(name="solo")
    app.add_microservice(Microservice(name="svc", image="acme/app", size_gb=size_gb))
    return app


class TestPeerDeployTerm:
    def test_peer_term_beats_registry_when_lan_is_faster(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        record = table.record("svc", "hub", "small", state)
        # Hand-computed: 1 GB = 1000 MB = 8000 Mbit; peer at 800 Mbps
        # → 10 s; hub at 80 Mbps would be 100 s.
        assert record.times.deploy_s == pytest.approx(10.0)
        assert table.transfer_source("svc", "hub", "small", state) == "peer:medium"

    def test_registry_wins_when_lan_is_slow(self):
        env = tiny_env(device_bw_mbps=8.0, registry_bw_mbps=80.0)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        record = table.record("svc", "hub", "small", state)
        assert record.times.deploy_s == pytest.approx(100.0)
        assert (
            table.transfer_source("svc", "hub", "small", state) == "registry:hub"
        )

    def test_peer_term_off_by_default(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env)  # paper-faithful two-tier costing
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        record = table.record("svc", "hub", "small", state)
        assert record.times.deploy_s == pytest.approx(100.0)

    def test_cached_device_still_reports_cached(self):
        env = tiny_env()
        app = one_service_app()
        table = CostTable(app, env, peer_transfers=True)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        assert table.transfer_source("svc", "hub", "medium", state) == "cached"

    def test_peer_served_commits_do_not_charge_the_registry(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        app = one_service_app(size_gb=1.0)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", 1.0)
        assert state.registry_bytes.get("hub", 0) > 0
        before = state.registry_bytes["hub"]
        # A second device gets the image from the first, not the hub.
        state.commit(app.service("svc"), "hub", "small", 1.0, via="peer:medium")
        assert state.registry_bytes["hub"] == before
        assert state.is_cached("small", "acme/app")

    def test_peer_holders_sorted_and_excludes_self(self):
        state = SchedulerState()
        state.cached_images = {"b": {"img"}, "a": {"img"}, "c": {"other"}}
        assert state.peer_holders("img") == ["a", "b"]
        assert state.peer_holders("img", exclude="a") == ["b"]


class TestCacheAffinityScheduler:
    def shared_image_app(self) -> Application:
        app = Application(name="pair")
        app.add_microservice(
            Microservice(name="first", image="acme/shared", size_gb=1.0)
        )
        app.add_microservice(
            Microservice(name="second", image="acme/shared", size_gb=1.0)
        )
        app.add_dataflow(Dataflow(src="first", dst="second", size_mb=1.0))
        return app

    def test_second_service_follows_the_image(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        app = self.shared_image_app()
        result = CacheAffinityScheduler().schedule(app, env)
        first_device = result.plan.device_of("first")
        # The image landed with "first"; affinity keeps "second" local
        # (zero deploy) instead of paying a fresh 100 s registry pull.
        assert result.plan.device_of("second") == first_device
        assert result.plan.assignments["second"].via == "cached"
        assert result.records[1].times.deploy_s == 0.0

    def test_plan_records_sources_and_peer_share(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        app = self.shared_image_app()
        result = CacheAffinityScheduler().schedule(app, env)
        counts = result.plan.source_counts()
        assert counts.get("registry", 0) == 1  # first pull is cold
        assert counts.get("cached", 0) == 1
        assert 0.0 <= result.plan.peer_share() <= 1.0

    def test_deep_scheduler_unaffected_by_new_fields(self):
        env = tiny_env()
        app = self.shared_image_app()
        result = DeepScheduler().schedule(app, env)
        assert result.plan.covers(app)
        # DeepScheduler runs without the peer term; via labels never
        # claim a peer source.
        assert all(
            not a.via.startswith("peer:") for a in result.plan.assignments.values()
        )

    def test_affinity_weights_validated(self):
        with pytest.raises(ValueError):
            CacheAffinityScheduler(local_weight=1.5)
        with pytest.raises(ValueError):
            CacheAffinityScheduler(peer_weight=-0.1)


class TestMultiSourceDeployTerm:
    def three_device_env(self, bw_a=100.0, bw_b=100.0, registry_bw=80.0):
        import dataclasses

        from repro.devices.specs import MEDIUM_SPEC
        from repro.model.device import Device

        holder_a = Device(
            spec=dataclasses.replace(MEDIUM_SPEC, name="holder-a"),
            power=MEDIUM_POWER,
        )
        holder_b = Device(
            spec=dataclasses.replace(MEDIUM_SPEC, name="holder-b"),
            power=MEDIUM_POWER,
        )
        target = small_device()
        fleet = DeviceFleet.of(holder_a, holder_b, target)
        network = NetworkModel()
        network.connect_devices("holder-a", "small", bw_a)
        network.connect_devices("holder-b", "small", bw_b)
        network.connect_devices("holder-a", "holder-b", 800.0)
        for name in ("holder-a", "holder-b", "small"):
            network.connect_registry("hub", name, registry_bw)
        catalog = RegistryCatalog.of(
            RegistryInfo("hub", RegistryKind.HUB, "https://hub.docker.com")
        )
        return Environment(fleet=fleet, network=network, registries=catalog)

    def warm_state(self, app):
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "holder-a", completion_s=1.0)
        state.commit(app.service("svc"), "hub", "holder-b", completion_s=1.0)
        return state

    def test_single_source_td_is_the_fastest_holder(self):
        env = self.three_device_env()
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True)  # chunk_sources=1
        state = self.warm_state(app)
        record = table.record("svc", "hub", "small", state)
        # one 100 Mbit holder: 8000 Mbit / 100 = 80 s
        assert record.times.deploy_s == pytest.approx(80.0)

    def test_chunked_td_aggregates_the_k_best_holders(self):
        env = self.three_device_env()
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True, chunk_sources=2)
        state = self.warm_state(app)
        record = table.record("svc", "hub", "small", state)
        # two 100 Mbit holders streamed in parallel: 8000 / 200 = 40 s
        assert record.times.deploy_s == pytest.approx(40.0)
        # the transfer source label still names the fastest holder
        assert table.transfer_source("svc", "hub", "small", state).startswith(
            "peer:"
        )

    def test_k_larger_than_holder_count_uses_all_holders(self):
        env = self.three_device_env()
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True, chunk_sources=8)
        state = self.warm_state(app)
        peer_s, peer = table.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        assert peer_s == pytest.approx(40.0)
        assert peer == "holder-a"  # fastest holder, stable tie-break

    def test_aggregate_never_slower_than_single_source(self):
        env = self.three_device_env(bw_a=100.0, bw_b=10.0)
        app = one_service_app(size_gb=1.0)
        single = CostTable(app, env, peer_transfers=True)
        multi = CostTable(app, env, peer_transfers=True, chunk_sources=2)
        state = self.warm_state(app)
        single_s, _ = single.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        multi_s, _ = multi.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        assert multi_s < single_s
        assert multi_s == pytest.approx(8000.0 / 110.0)

    def test_chunk_sources_validation(self):
        env = self.three_device_env()
        app = one_service_app()
        with pytest.raises(ValueError):
            CostTable(app, env, chunk_sources=0)
        with pytest.raises(ValueError):
            CacheAffinityScheduler(chunk_sources=0)

    def test_cache_affinity_scheduler_threads_chunk_sources(self):
        env = self.three_device_env()
        app = one_service_app(size_gb=1.0)
        scheduler = CacheAffinityScheduler(chunk_sources=4)
        result = scheduler.schedule(app, env)
        assert result.plan.covers(app)

    def test_aggregate_rate_capped_by_the_destination_downlink(self):
        env = self.three_device_env()
        env.network.set_downlink("small", 100.0)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True, chunk_sources=2)
        state = self.warm_state(app)
        peer_s, _ = table.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        # two 100 Mbit holders sum to 200, but the NIC admits 100:
        # 8000 Mbit / 100 = 80 s, not 40
        assert peer_s == pytest.approx(80.0)
