"""DEEP's per-microservice game construction and equilibrium selection."""

import numpy as np
import pytest

from repro.core.costs import CostMatrix, SchedulerState
from repro.core.games import (
    NO_PENALTIES,
    PenaltyWeights,
    build_penalties,
    microservice_game,
    select_equilibrium,
)
from repro.game import Equilibrium, all_equilibria
from repro.model.units import gb_to_bytes


def make_costs(energy, feasible=None):
    energy = np.asarray(energy, dtype=float)
    if feasible is None:
        feasible = np.isfinite(energy)
    return CostMatrix(
        service="svc",
        registries=["hub", "regional"][: energy.shape[0]],
        devices=["medium", "small"][: energy.shape[1]],
        energy_j=energy,
        completion_s=energy / 10.0,
        feasible=np.asarray(feasible, dtype=bool),
    )


class TestPenaltyWeights:
    def test_defaults_are_mild(self):
        weights = PenaltyWeights()
        assert 0 < weights.registry_contention_j_per_gb < 1.0
        assert 0 < weights.device_occupancy_factor < 0.1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PenaltyWeights(registry_contention_j_per_gb=-1.0)
        with pytest.raises(ValueError):
            PenaltyWeights(device_occupancy_factor=-0.1)


class TestBuildPenalties:
    def test_registry_penalty_scales_with_served_bytes(self, env):
        costs = make_costs([[100.0, 200.0], [110.0, 190.0]])
        state = SchedulerState()
        state.registry_bytes["hub"] = gb_to_bytes(10.0)
        row, col = build_penalties(
            costs, state, env, PenaltyWeights(2.0, 0.0)
        )
        assert row[0, 0] == pytest.approx(20.0)  # hub row, 10 GB * 2 J/GB
        assert row[1, 0] == 0.0  # regional served nothing yet
        assert np.all(col == 0.0)

    def test_device_penalty_scales_with_busy_time(self, env):
        costs = make_costs([[100.0, 200.0], [110.0, 190.0]])
        state = SchedulerState()
        state.busy_s["medium"] = 100.0
        row, col = build_penalties(
            costs, state, env, PenaltyWeights(0.0, 0.5)
        )
        static = env.device("medium").power.static_watts
        assert col[0, 0] == pytest.approx(0.5 * 100.0 * static)
        assert col[0, 1] == 0.0


class TestMicroserviceGame:
    def test_no_penalty_game_is_symmetric(self):
        costs = make_costs([[100.0, 200.0], [110.0, 190.0]])
        game = microservice_game(costs)
        np.testing.assert_allclose(game.A, game.B)
        np.testing.assert_allclose(game.A, -costs.energy_j)

    def test_labels_are_registry_device_names(self):
        costs = make_costs([[1.0, 2.0], [3.0, 4.0]])
        game = microservice_game(costs)
        assert game.row_labels == ["hub", "regional"]
        assert game.col_labels == ["medium", "small"]

    def test_penalties_require_context(self):
        costs = make_costs([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            microservice_game(costs, weights=PenaltyWeights(1.0, 1.0))

    def test_min_energy_cell_is_equilibrium(self):
        costs = make_costs([[100.0, 200.0], [110.0, 190.0]])
        game = microservice_game(costs)
        assert game.is_nash(0, 0)  # (hub, medium) = 100 J minimum


class TestSelectEquilibrium:
    def test_picks_min_energy_equilibrium(self):
        costs = make_costs([[100.0, 200.0], [110.0, 190.0]])
        game = microservice_game(costs)
        choice = select_equilibrium(game, all_equilibria(game), costs)
        assert choice == (0, 0)

    def test_empty_equilibria_falls_back_to_best_cell(self):
        costs = make_costs([[100.0, 50.0], [110.0, 190.0]])
        game = microservice_game(costs)
        assert select_equilibrium(game, [], costs) == (0, 1)

    def test_infeasible_modal_profile_redirected(self):
        # Feasible only on the diagonal; craft a mixed equilibrium whose
        # modal profile is infeasible.
        energy = np.array([[100.0, np.inf], [np.inf, 120.0]])
        costs = make_costs(energy)
        game = microservice_game(costs)
        mixed = Equilibrium.of(game, [0.4, 0.6], [0.9, 0.1])
        g, d = select_equilibrium(game, [mixed], costs)
        assert costs.feasible[g, d]

    def test_among_two_pure_equilibria_lower_energy_wins(self):
        # Coordination structure with two pure equilibria.
        energy = np.array([[100.0, 500.0], [500.0, 150.0]])
        costs = make_costs(energy)
        game = microservice_game(costs)
        equilibria = all_equilibria(game)
        assert len(equilibria) >= 2
        assert select_equilibrium(game, equilibria, costs) == (0, 0)
