"""DEEP and the baseline schedulers on the calibrated testbed."""

import pytest

from repro.core.baselines import (
    FixedRegistryScheduler,
    GreedyEnergyScheduler,
    GreedyTimeScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.core.games import PenaltyWeights
from repro.core.pipeline import (
    analyze_dependencies,
    analyze_requirements,
    plan_deployment,
)
from repro.core.placement import PlacementError
from repro.core.scheduler import DeepScheduler, NashSolver
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


class TestDeepScheduler:
    def test_full_coverage(self, video_app, env):
        result = DeepScheduler().schedule(video_app, env)
        result.plan.validate_against(video_app)
        assert len(result.records) == 6

    def test_energy_is_sum_of_records(self, video_app, env):
        result = DeepScheduler().schedule(video_app, env)
        assert result.total_energy_j == pytest.approx(
            sum(r.energy.total_j for r in result.records)
        )

    def test_deterministic(self, text_app, env):
        a = DeepScheduler().schedule(text_app, env)
        b = DeepScheduler().schedule(text_app, env)
        assert {x.service: (x.registry, x.device) for x in a.plan} == {
            x.service: (x.registry, x.device) for x in b.plan
        }

    def test_equilibria_found_everywhere(self, video_app, env):
        result = DeepScheduler().schedule(video_app, env)
        assert all(n >= 1 for n in result.equilibria_found.values())

    @pytest.mark.parametrize("solver", list(NashSolver))
    def test_all_solvers_cover_app(self, solver, text_app, env):
        result = DeepScheduler(solver).schedule(text_app, env)
        result.plan.validate_against(text_app)

    def test_zero_penalties_matches_greedy(self, video_app, env):
        deep = DeepScheduler(penalties=PenaltyWeights(0.0, 0.0)).schedule(
            video_app, env
        )
        greedy = GreedyEnergyScheduler().schedule(video_app, env)
        assert deep.total_energy_j == pytest.approx(greedy.total_energy_j)

    def test_deep_close_to_greedy_with_default_penalties(self, text_app, env):
        deep = DeepScheduler().schedule(text_app, env)
        greedy = GreedyEnergyScheduler().schedule(text_app, env)
        assert deep.total_energy_j <= greedy.total_energy_j * 1.02


class TestBaselines:
    def test_fixed_registry_pins_all(self, video_app, env):
        for registry in (HUB_NAME, REGIONAL_NAME):
            result = FixedRegistryScheduler(registry).schedule(video_app, env)
            assert all(a.registry == registry for a in result.plan)

    def test_unknown_registry_raises(self, video_app, env):
        with pytest.raises(PlacementError):
            FixedRegistryScheduler("ghost").schedule(video_app, env)

    def test_greedy_energy_never_worse_than_fixed(self, text_app, env):
        greedy = GreedyEnergyScheduler().schedule(text_app, env)
        for registry in (HUB_NAME, REGIONAL_NAME):
            fixed = FixedRegistryScheduler(registry).schedule(text_app, env)
            assert greedy.total_energy_j <= fixed.total_energy_j + 1e-9

    def test_greedy_time_minimises_completion(self, text_app, env):
        fast = GreedyTimeScheduler().schedule(text_app, env)
        slow = GreedyEnergyScheduler().schedule(text_app, env)
        assert fast.total_completion_s <= slow.total_completion_s + 1e-9

    def test_round_robin_spreads_devices(self, video_app, env):
        result = RoundRobinScheduler().schedule(video_app, env)
        devices = {a.device for a in result.plan}
        assert devices == {"medium", "small"}

    def test_random_is_seeded(self, video_app, env):
        from repro.sim.rng import RngRegistry

        a = RandomScheduler(RngRegistry(1)).schedule(video_app, env)
        b = RandomScheduler(RngRegistry(1)).schedule(video_app, env)
        assert {x.service: x.device for x in a.plan} == {
            x.service: x.device for x in b.plan
        }

    def test_random_is_feasible(self, video_app, env):
        result = RandomScheduler().schedule(video_app, env)
        result.plan.validate_against(video_app)


class TestPipeline:
    def test_requirement_analysis_passes_testbed(self, video_app, env):
        reports = analyze_requirements(video_app, env)
        assert len(reports) == 6
        assert all(r.satisfiable for r in reports)

    def test_requirement_analysis_fails_loudly(self, video_app, env):
        broken = type(env)(
            fleet=env.fleet,
            network=env.network,
            registries=env.registries,
            availability=lambda reg, img: False,  # nothing hosted anywhere
            intensity=env.intensity,
        )
        with pytest.raises(PlacementError, match="unsatisfiable"):
            analyze_requirements(video_app, broken)

    def test_dependency_analysis(self, video_app):
        report = analyze_dependencies(video_app)
        assert report.order[0] == "vp-transcode"
        assert report.barrier_count == 3
        assert len(report.stages) == 4

    def test_plan_deployment_bundle(self, text_app, env):
        bundle = plan_deployment(text_app, env)
        assert bundle.schedule.plan.covers(text_app)
        assert bundle.dependencies.barrier_count == 3
        assert len(bundle.requirements) == 6

    def test_plan_deployment_custom_scheduler(self, text_app, env):
        bundle = plan_deployment(
            text_app, env, FixedRegistryScheduler(HUB_NAME)
        )
        assert all(a.registry == HUB_NAME for a in bundle.schedule.plan)
