"""Contention-aware scheduling: cost estimates fed by live link state.

The analytic cost table prices transfers at nominal ``size/BW``; with
a live :class:`TransferEngine` attached, estimates reflect the fair
share a transfer would get *right now*, and the cache-affinity
scheduler stops courting saturated seeders.
"""

import numpy as np
import pytest

from repro.core.costs import CostMatrix, CostTable, SchedulerState
from repro.core.environment import Environment
from repro.core.scheduler import CacheAffinityScheduler
from repro.devices.specs import medium_device, small_device
from repro.model.application import Application, Microservice
from repro.model.device import DeviceFleet
from repro.model.network import NetworkModel
from repro.model.registry import RegistryCatalog, RegistryInfo, RegistryKind
from repro.sim.engine import Simulator
from repro.sim.transfers import TransferEngine


def tiny_env(device_bw_mbps: float = 800.0, registry_bw_mbps: float = 80.0):
    medium = medium_device(region="edge")
    small = small_device(region="edge")
    fleet = DeviceFleet.of(medium, small)
    network = NetworkModel()
    network.connect_devices(medium.name, small.name, device_bw_mbps)
    for device in (medium, small):
        network.connect_registry("hub", device.name, registry_bw_mbps)
    catalog = RegistryCatalog.of(
        RegistryInfo("hub", RegistryKind.HUB, "https://hub.docker.com")
    )
    return Environment(fleet=fleet, network=network, registries=catalog)


def one_service_app(size_gb: float = 1.0) -> Application:
    app = Application(name="solo")
    app.add_microservice(
        Microservice(name="svc", image="acme/app", size_gb=size_gb)
    )
    return app


class TestEstimatedRates:
    def test_idle_path_estimates_nominal(self):
        env = tiny_env()
        engine = TransferEngine(Simulator(), env.network)
        assert engine.estimated_rate_mbps("medium", "small") == 800.0
        assert engine.estimated_transfer_s("medium", "small", 1000.0) == (
            pytest.approx(10.0)
        )

    def test_each_occupant_halves_the_newcomers_share(self):
        env = tiny_env()
        engine = TransferEngine(Simulator(), env.network)
        engine.start("medium", "small", 500_000_000)
        assert engine.estimated_rate_mbps("medium", "small") == 400.0
        engine.start("medium", "small", 500_000_000)
        assert engine.estimated_rate_mbps("medium", "small") == pytest.approx(
            800.0 / 3
        )

    def test_loopback_is_free(self):
        env = tiny_env()
        engine = TransferEngine(Simulator(), env.network)
        assert engine.estimated_rate_mbps("small", "small") == float("inf")
        assert engine.estimated_transfer_s("small", "small", 1000.0) == 0.0

    def test_registry_paths_are_estimated_too(self):
        env = tiny_env()
        engine = TransferEngine(Simulator(), env.network)
        assert engine.estimated_rate_mbps(
            "hub", "small", src_is_registry=True
        ) == 80.0
        engine.start("hub", "small", 500_000_000, src_is_registry=True)
        assert engine.estimated_rate_mbps(
            "hub", "small", src_is_registry=True
        ) == 40.0


class TestContentionAwareCostTable:
    def test_busy_peer_channel_raises_the_peer_term(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        engine = TransferEngine(Simulator(), env.network)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True, engine=engine)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        # Idle: identical to the analytic estimate (10 s at 800 Mbps).
        seconds, peer = table.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        assert peer == "medium" and seconds == pytest.approx(10.0)
        # One transfer already on the channel: the newcomer gets half.
        engine.start("medium", "small", 100_000_000)
        seconds, _ = table.peer_deploy_seconds(
            state, app.service("svc"), "small"
        )
        assert seconds == pytest.approx(20.0)

    def test_transfer_source_flips_to_registry_under_congestion(self):
        env = tiny_env(device_bw_mbps=800.0, registry_bw_mbps=80.0)
        engine = TransferEngine(Simulator(), env.network)
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True, engine=engine)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        assert (
            table.transfer_source("svc", "hub", "small", state)
            == "peer:medium"
        )
        # 19 occupants drop the peer share to 40 Mbps (200 s) — worse
        # than the idle 80 Mbps registry channel (100 s).
        for _ in range(19):
            engine.start("medium", "small", 1_000_000)
        assert (
            table.transfer_source("svc", "hub", "small", state)
            == "registry:hub"
        )
        record = table.record("svc", "hub", "small", state)
        assert record.times.deploy_s == pytest.approx(100.0)

    def test_without_engine_estimates_stay_analytic(self):
        env = tiny_env()
        app = one_service_app(size_gb=1.0)
        table = CostTable(app, env, peer_transfers=True)
        state = SchedulerState()
        state.commit(app.service("svc"), "hub", "medium", completion_s=1.0)
        record = table.record("svc", "hub", "small", state)
        assert record.times.deploy_s == pytest.approx(10.0)


class TestSaturatedSeederDiscount:
    def make_matrix(self):
        return CostMatrix(
            service="svc",
            registries=["hub"],
            devices=["warm", "cold"],
            energy_j=np.array([[100.0, 90.0]]),
            completion_s=np.array([[100.0, 90.0]]),
            feasible=np.ones((1, 2), dtype=bool),
            image="acme/app",
        )

    def make_env_with_seed_channel(self):
        env = tiny_env()
        # "seed" holds the image and reaches only "warm".
        env.network.connect_devices("seed", "warm", 800.0)
        return env

    def seeded_state(self):
        state = SchedulerState()
        state.cached_images["seed"] = {"acme/app"}
        return state

    def test_peer_discount_wins_placement_when_seeder_is_free(self):
        env = self.make_env_with_seed_channel()
        scheduler = CacheAffinityScheduler()
        g, d = scheduler.choose(self.make_matrix(), self.seeded_state(), env)
        # 100 * 0.85 = 85 beats 90: the peer-adjacent device wins.
        assert (g, d) == (0, 0)

    def test_saturated_seeder_loses_the_discount(self):
        env = self.make_env_with_seed_channel()
        engine = TransferEngine(Simulator(), env.network)
        engine.set_upload_budget("seed", 0)
        scheduler = CacheAffinityScheduler(engine=engine)
        g, d = scheduler.choose(self.make_matrix(), self.seeded_state(), env)
        # No discount: 100 vs 90 — the undiscounted faster cell wins.
        assert (g, d) == (0, 1)

    def test_engine_threads_through_schedule(self):
        env = tiny_env()
        engine = TransferEngine(Simulator(), env.network)
        scheduler = CacheAffinityScheduler(engine=engine)
        app = one_service_app(size_gb=0.5)
        result = scheduler.schedule(app, env)
        assert len(result.records) == 1  # engine-aware table, same plan
