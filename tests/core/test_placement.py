"""Placement plans and the Table III distribution views."""

import pytest

from repro.core.placement import Assignment, PlacementError, PlacementPlan
from repro.model.application import Application, Dataflow, Microservice


def two_service_app():
    return Application(
        "app",
        [
            Microservice(name="a", image="a", size_gb=1.0),
            Microservice(name="b", image="b", size_gb=1.0),
        ],
        [Dataflow("a", "b", 10.0)],
    )


class TestPlan:
    def test_assign_and_lookup(self):
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        assert plan.device_of("a") == "medium"
        assert plan.registry_of("a") == "hub"
        assert "a" in plan and len(plan) == 1

    def test_double_assign_rejected(self):
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        with pytest.raises(PlacementError):
            plan.assign("a", "regional", "small")

    def test_missing_lookup_raises(self):
        with pytest.raises(PlacementError):
            PlacementPlan("app").device_of("ghost")

    def test_devices_mapping(self):
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        plan.assign("b", "regional", "small")
        assert plan.devices() == {"a": "medium", "b": "small"}

    def test_covers_and_validate(self):
        app = two_service_app()
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        assert not plan.covers(app)
        with pytest.raises(PlacementError, match="missing"):
            plan.validate_against(app)
        plan.assign("b", "hub", "medium")
        plan.validate_against(app)

    def test_extra_assignment_rejected(self):
        app = two_service_app()
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        plan.assign("b", "hub", "medium")
        plan.assign("ghost", "hub", "medium")
        with pytest.raises(PlacementError, match="extra"):
            plan.validate_against(app)


class TestDistribution:
    def test_counts(self):
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        plan.assign("b", "hub", "medium")
        plan.assign("c", "regional", "small")
        assert plan.distribution() == {
            ("medium", "hub"): 2,
            ("small", "regional"): 1,
        }

    def test_percent_sums_to_100(self):
        plan = PlacementPlan("app")
        for i, (reg, dev) in enumerate(
            [("hub", "medium")] * 5 + [("regional", "small")]
        ):
            plan.assign(f"s{i}", reg, dev)
        pct = plan.distribution_percent()
        assert sum(pct.values()) == pytest.approx(100.0)
        assert pct[("medium", "hub")] == pytest.approx(83.333, rel=1e-3)

    def test_registry_share(self):
        plan = PlacementPlan("app")
        plan.assign("a", "hub", "medium")
        plan.assign("b", "regional", "small")
        assert plan.registry_share("regional") == 0.5
        assert plan.registry_share("ghost") == 0.0

    def test_empty_plan(self):
        plan = PlacementPlan("app")
        assert plan.distribution_percent() == {}
        assert plan.registry_share("hub") == 0.0
