"""EnergyLedger aggregation over execution records."""

import pytest

from repro.devices.executor import ExecutionRecord
from repro.energy.accounting import EnergyLedger, ServiceEnergy
from repro.model.metrics import EnergyBreakdown, PhaseTimes
from repro.registry.base import ImageReference
from repro.registry.client import PullResult
from repro.registry.images import build_image
from repro.model.device import Arch


def record(service, device, registry, start, deploy=10.0, compute=5.0):
    mlist, _ = build_image(service, 0.1)
    manifest = mlist.for_arch(Arch.AMD64)
    times = PhaseTimes(deploy, 2.0, compute)
    energy = EnergyBreakdown(
        pull_j=deploy * 1.0, transfer_j=2.0 * 0.5,
        compute_j=compute * 10.0, static_j=times.completion_s * 1.0,
    )
    return ExecutionRecord(
        service=service,
        device=device,
        registry=registry,
        start_s=start,
        times=times,
        energy=energy,
        pull=PullResult(
            reference=ImageReference(service),
            registry=registry,
            manifest=manifest,
            bytes_total=manifest.total_layer_bytes,
            bytes_transferred=manifest.total_layer_bytes,
            layers_total=len(manifest.layers),
            layers_transferred=len(manifest.layers),
        ),
        intensity=1.0,
    )


@pytest.fixture
def ledger():
    l = EnergyLedger()
    l.add(record("a", "medium", "hub", 0.0))
    l.add(record("b", "small", "regional", 20.0))
    l.add(record("c", "medium", "regional", 40.0, compute=20.0))
    return l


class TestLedger:
    def test_total_is_sum(self, ledger):
        assert ledger.total_j() == pytest.approx(
            sum(r.energy_j for r in ledger.records)
        )
        assert ledger.total_kj() == pytest.approx(ledger.total_j() / 1000)

    def test_active_plus_static(self, ledger):
        assert ledger.total_j() == pytest.approx(
            ledger.active_j() + ledger.static_j()
        )

    def test_by_device(self, ledger):
        by_device = ledger.by_device()
        assert set(by_device) == {"medium", "small"}
        assert sum(by_device.values()) == pytest.approx(ledger.total_j())

    def test_by_registry(self, ledger):
        by_registry = ledger.by_registry()
        assert set(by_registry) == {"hub", "regional"}
        assert sum(by_registry.values()) == pytest.approx(ledger.total_j())

    def test_per_service_lines(self, ledger):
        lines = ledger.per_service()
        assert [l.service for l in lines] == ["a", "b", "c"]
        assert all(isinstance(l, ServiceEnergy) for l in lines)
        assert lines[0].total_kj == pytest.approx(lines[0].total_j / 1000)

    def test_completion_vs_makespan(self, ledger):
        # Records at t=0 and t=20 last 17 s; the one at t=40 lasts 32 s.
        assert ledger.completion_s() == pytest.approx(17.0 + 17.0 + 32.0)
        assert ledger.makespan_s() == pytest.approx(72.0)

    def test_empty_ledger(self):
        empty = EnergyLedger()
        assert empty.total_j() == 0.0
        assert empty.makespan_s() == 0.0
        assert len(empty) == 0

    def test_extend(self):
        l = EnergyLedger()
        l.extend([record("a", "m", "h", 0.0), record("b", "m", "h", 1.0)])
        assert len(l) == 2
