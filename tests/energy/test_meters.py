"""Energy meters: RAPL counters and the sampled wall-plug meter."""

import pytest

from repro.devices.power import PowerTrace
from repro.devices.specs import medium_device, small_device
from repro.energy.accounting import EnergyLedger, reconcile
from repro.energy.powermeter import PowerMeter
from repro.energy.rapl import COUNTER_WRAP_UJ, MeasurementError, RaplMeter
from repro.model.device import Phase


@pytest.fixture
def trace():
    t = PowerTrace(medium_device())
    t.record(0.0, 100.0, Phase.PULL)
    t.record(100.0, 50.0, Phase.COMPUTE)
    return t


class TestRaplMeter:
    def test_counter_monotone_modulo_wrap(self, trace):
        meter = RaplMeter(trace)
        assert meter.counter_uj(10.0) < meter.counter_uj(50.0)

    def test_window_matches_exact_integral(self, trace):
        meter = RaplMeter(trace)
        result = meter.measure_window(0.0, 150.0, "svc")
        assert result.energy_j == pytest.approx(
            trace.energy_between_j(0.0, 150.0), rel=1e-6
        )
        assert result.label == "svc"

    def test_average_watts(self, trace):
        meter = RaplMeter(trace)
        result = meter.measure_window(100.0, 150.0)
        expected = trace.energy_between_j(100.0, 150.0) / 50.0
        assert result.average_watts == pytest.approx(expected, rel=1e-6)

    def test_begin_end_protocol(self, trace):
        meter = RaplMeter(trace)
        meter.begin(0.0)
        with pytest.raises(MeasurementError):
            meter.begin(1.0)
        meter.end(10.0)
        with pytest.raises(MeasurementError):
            meter.end(20.0)

    def test_inverted_window_rejected(self, trace):
        meter = RaplMeter(trace)
        meter.begin(10.0)
        with pytest.raises(MeasurementError):
            meter.end(5.0)

    def test_results_accumulate(self, trace):
        meter = RaplMeter(trace)
        meter.measure_window(0.0, 10.0, "a")
        meter.measure_window(10.0, 20.0, "b")
        assert [r.label for r in meter.results] == ["a", "b"]

    def test_single_counter_wrap_unwrapped(self):
        """A window spanning one counter wrap still measures correctly."""
        device = medium_device()
        trace = PowerTrace(device)
        # ~26.4 W compute; wrap at 4294.97 J → ~163 s to wrap.  Put the
        # window right across the wrap boundary.
        trace.record(0.0, 400.0, Phase.COMPUTE)
        meter = RaplMeter(trace)
        watts = device.power.total_watts(Phase.COMPUTE)
        wrap_t = (COUNTER_WRAP_UJ / 1e6) / watts
        window = meter.measure_window(wrap_t - 10.0, wrap_t + 10.0)
        assert window.energy_j == pytest.approx(watts * 20.0, rel=1e-3)


class TestPowerMeter:
    def test_constant_power_is_exact(self):
        trace = PowerTrace(small_device())
        trace.record(0.0, 100.0, Phase.COMPUTE)
        meter = PowerMeter(trace, sample_hz=1.0)
        reading = meter.measure(10.0, 90.0)
        assert reading.energy_j == pytest.approx(
            trace.energy_between_j(10.0, 90.0), rel=1e-9
        )

    def test_sampling_error_shrinks_with_rate(self):
        trace = PowerTrace(small_device())
        # Power changes mid-window: discretisation error appears.
        trace.record(0.0, 10.3, Phase.PULL)
        trace.record(10.3, 9.4, Phase.COMPUTE)
        exact = trace.energy_between_j(0.0, 19.7)
        coarse = abs(PowerMeter(trace, 1.0).measure(0.0, 19.7).energy_j - exact)
        fine = abs(PowerMeter(trace, 100.0).measure(0.0, 19.7).energy_j - exact)
        assert fine <= coarse

    def test_sample_grid_includes_endpoints(self):
        trace = PowerTrace(small_device())
        samples = PowerMeter(trace, 1.0).sample_window(0.0, 2.5)
        assert samples[0].t_s == 0.0
        assert samples[-1].t_s == 2.5

    def test_peak_and_average(self):
        trace = PowerTrace(small_device())
        trace.record(0.0, 10.0, Phase.COMPUTE)
        reading = PowerMeter(trace, 10.0).measure(0.0, 10.0)
        assert reading.peak_watts == pytest.approx(
            small_device().power.total_watts(Phase.COMPUTE)
        )
        assert reading.average_watts <= reading.peak_watts

    def test_zero_window(self):
        trace = PowerTrace(small_device())
        reading = PowerMeter(trace, 1.0).measure(5.0, 5.0)
        assert reading.energy_j == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PowerMeter(PowerTrace(small_device()), 0.0)


class TestReconciliation:
    def test_exact_match(self):
        r = reconcile(100.0, 100.0)
        assert r.relative_error == 0.0
        assert r.within(0.01)

    def test_relative_error(self):
        r = reconcile(100.0, 103.0)
        assert r.relative_error == pytest.approx(0.03)
        assert not r.within(0.01)
        assert r.within(0.05)

    def test_zero_analytic(self):
        assert reconcile(0.0, 0.0).relative_error == 0.0
        assert reconcile(0.0, 1.0).relative_error == float("inf")
