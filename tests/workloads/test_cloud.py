"""Cloud–edge extension (the paper's future work)."""

import pytest

from repro.core.scheduler import DeepScheduler
from repro.experiments import cloud as cloud_experiment
from repro.workloads.apps import text_processing, video_processing
from repro.workloads.cloud import (
    CLOUD_NAME,
    CloudConfig,
    cloud_device,
    cloud_environment,
    cloud_offload_report,
)
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


class TestCloudEnvironment:
    def test_fleet_extended_not_mutated(self, testbed):
        env = cloud_environment(testbed)
        assert env.fleet.names() == ["medium", "small", CLOUD_NAME]
        assert testbed.fleet.names() == ["medium", "small"]  # untouched

    def test_cloud_reaches_hub_only(self, testbed):
        env = cloud_environment(testbed)
        assert env.network.has_registry_channel(HUB_NAME, CLOUD_NAME)
        assert not env.network.has_registry_channel(REGIONAL_NAME, CLOUD_NAME)

    def test_wan_channels_wired(self, testbed):
        env = cloud_environment(testbed, CloudConfig(wan_bw_mbps=30.0))
        assert env.network.device_bandwidth_mbps("medium", CLOUD_NAME) == 30.0
        assert env.network.device_bandwidth_mbps("small", CLOUD_NAME) == 30.0

    def test_cloud_intensity_mirrors_medium(self, testbed):
        env = cloud_environment(testbed)
        assert env.intensity("vp-ha-train", CLOUD_NAME) == testbed.env.intensity(
            "vp-ha-train", "medium"
        )

    def test_cloud_device_spec(self):
        device = cloud_device(CloudConfig(speed_mips=100_000.0))
        assert device.name == CLOUD_NAME
        assert device.spec.speed_mips == 100_000.0


class TestOffloading:
    def test_cheap_cloud_attracts_video_work(self, testbed):
        env = cloud_environment(testbed, CloudConfig(static_watts=1.0))
        app = video_processing(testbed.calibration)
        result = DeepScheduler().schedule(app, env)
        assert any(a.device == CLOUD_NAME for a in result.plan)
        # Offloading must beat the edge-only schedule.
        edge_only = DeepScheduler().schedule(app, testbed.env)
        assert result.total_energy_j < edge_only.total_energy_j

    def test_expensive_cloud_stays_on_edge(self, testbed):
        env = cloud_environment(testbed, CloudConfig(static_watts=200.0))
        app = video_processing(testbed.calibration)
        result = DeepScheduler().schedule(app, env)
        assert all(a.device != CLOUD_NAME for a in result.plan)

    def test_cloud_pulls_come_from_hub(self, testbed):
        env = cloud_environment(testbed, CloudConfig(static_watts=1.0))
        app = video_processing(testbed.calibration)
        result = DeepScheduler().schedule(app, env)
        for assignment in result.plan:
            if assignment.device == CLOUD_NAME:
                assert assignment.registry == HUB_NAME

    def test_offload_share_monotone_in_static_power(self, testbed):
        app = video_processing(testbed.calibration)
        points = cloud_offload_report(
            testbed, app, static_watts_grid=[1.0, 15.0, 60.0]
        )
        shares = [p.cloud_share for p in points]
        assert shares[0] >= shares[1] >= shares[2]
        assert shares[0] > 0.0
        assert shares[-1] == 0.0

    def test_text_never_offloads_at_default_grid(self, testbed):
        app = text_processing(testbed.calibration)
        points = cloud_offload_report(
            testbed, app, static_watts_grid=[1.0, 10.0]
        )
        assert all(not p.offloads for p in points)

    def test_offload_never_hurts(self, testbed):
        """With the cloud option available, DEEP's energy can only
        improve or stay equal relative to edge-only."""
        app = video_processing(testbed.calibration)
        for point in cloud_offload_report(
            testbed, app, static_watts_grid=[2.0, 40.0]
        ):
            assert point.total_energy_j <= point.edge_only_energy_j + 1e-6


class TestCloudExperiment:
    def test_experiment_runs_and_notes_crossover(self, testbed):
        result = cloud_experiment.run(testbed, static_watts_grid=[1.0, 40.0])
        assert len(result.rows) == 4  # 2 apps x 2 grid points
        video_rows = [
            r for r in result.rows if r["application"] == "video-processing"
        ]
        assert video_rows[0]["cloud_share"] > 0
        assert video_rows[-1]["cloud_share"] == 0
        assert any("offloads" in note for note in result.notes)
