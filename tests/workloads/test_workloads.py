"""Workloads: Table II data, calibration quality, apps, testbed wiring."""

import pytest

from repro.model.device import Arch
from repro.registry.base import ImageReference
from repro.workloads.calibration import CalibrationConfig, calibrate
from repro.workloads.synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
    synthetic_fleet,
)
from repro.workloads.table2 import (
    ALL_ROWS,
    TEXT,
    TEXT_ROWS,
    VIDEO,
    VIDEO_ROWS,
    Range,
    hub_repository,
    logical_image,
    regional_repository,
    row,
    rows_for,
)


class TestTable2Data:
    def test_twelve_services(self):
        assert len(ALL_ROWS) == 12
        assert len(VIDEO_ROWS) == len(TEXT_ROWS) == 6

    def test_row_lookup(self):
        r = row(VIDEO, "ha-train")
        assert r.size_gb == 5.78
        assert r.ec_medium_j.lo == 3240

    def test_unknown_row(self):
        with pytest.raises(KeyError):
            row(VIDEO, "ghost")
        with pytest.raises(KeyError):
            rows_for("ghost-app")

    def test_range_helpers(self):
        r = Range(10.0, 20.0)
        assert r.mid == 15.0 and r.width == 10.0
        assert r.contains(10.0) and r.contains(20.0)
        assert not r.contains(21.0)
        assert r.contains(21.0, slack=0.10)
        assert r.deviation(15.0) == 0.0
        assert r.deviation(22.0) == pytest.approx(0.1)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            Range(2.0, 1.0)

    def test_table1_repositories(self):
        assert hub_repository(VIDEO, "transcode") == "sina88/vp-transcode"
        assert regional_repository(TEXT, "ha-score") == "aau/tp-ha-score"
        assert logical_image(TEXT, "retrieve") == "tp-retrieve"

    def test_ec_for_device(self):
        r = row(TEXT, "retrieve")
        assert r.ec_for("small").lo == 1136
        with pytest.raises(KeyError):
            r.ec_for("huge")


class TestCalibration:
    def test_all_ec_cells_within_ranges(self, cal):
        for r in ALL_ROWS:
            name = logical_image(r.application, r.service)
            for device in ("medium", "small"):
                predicted = cal.predicted_energy_j(name, device)
                assert r.ec_for(device).contains(predicted, slack=0.05), (
                    name, device, predicted,
                )

    def test_ct_on_bench_device_within_ranges(self, cal):
        for r in ALL_ROWS:
            name = logical_image(r.application, r.service)
            bench = cal.config.bench_device[r.application]
            td, tc, tp = cal.predicted_times(name, bench)
            assert r.ct_s.contains(td + tc + tp, slack=0.05), (name, td + tc + tp)

    def test_tp_matches_midpoints(self, cal):
        for r in ALL_ROWS:
            name = logical_image(r.application, r.service)
            bench = cal.config.bench_device[r.application]
            _, _, tp = cal.predicted_times(name, bench)
            assert tp == pytest.approx(r.tp_s.mid)

    def test_warm_fraction_only_when_needed(self, cal):
        # Services whose published CT exceeds a cold pull have no warm
        # fraction; the infer/score/text-train services do.
        assert cal.services["vp-ha-train"].warm_fraction == 0.0
        assert cal.services["vp-ha-infer"].warm_fraction > 0.3
        assert cal.services["tp-la-train"].warm_fraction > 0.3

    def test_power_floors_respected(self, cal):
        for device, power in cal.power.items():
            floors = cal.config.power_floors_w
            assert power.static_watts >= floors[0]
            assert power.pull_watts >= floors[1]
            assert power.transfer_watts >= floors[2]

    def test_medium_ceilings_respected(self, cal):
        ceiling = cal.config.power_ceilings_w["medium"]
        power = cal.power["medium"]
        assert power.static_watts <= ceiling[0] + 1e-9
        assert power.pull_watts <= ceiling[1] + 1e-9

    def test_intensities_unclamped(self, cal):
        lo, hi = cal.config.intensity_bounds
        for (name, device), k in cal.intensities.items():
            assert lo < k < hi, (name, device, k)

    def test_custom_config_flows_through(self):
        cfg = CalibrationConfig(hub_startup_s=2.5)
        cal = calibrate(cfg)
        assert cal.config.hub_startup_s == 2.5

    def test_intensity_default_for_unknown(self, cal):
        assert cal.intensity("ghost", "medium") == 1.0


class TestApps:
    def test_six_services_each(self, video_app, text_app):
        assert len(video_app) == 6 and len(text_app) == 6

    def test_names_match_table1(self, video_app):
        assert set(video_app.microservices) == {
            "vp-transcode", "vp-frame", "vp-ha-train", "vp-la-train",
            "vp-ha-infer", "vp-la-infer",
        }

    def test_fork_join_shape(self, text_app):
        assert text_app.stages() == [
            ["tp-retrieve"],
            ["tp-decompress"],
            ["tp-ha-train", "tp-la-train"],
            ["tp-ha-score", "tp-la-score"],
        ]

    def test_only_sources_have_ingress(self, video_app, text_app):
        for app, source in ((video_app, "vp-transcode"), (text_app, "tp-retrieve")):
            for service in app:
                if service.name == source:
                    assert service.ingress_mb > 0
                else:
                    assert service.ingress_mb == 0

    def test_sizes_match_table2(self, video_app, cal):
        for service in video_app:
            svc = cal.services[service.name]
            assert service.size_gb == svc.size_gb

    def test_edge_sizes_are_downstream_inputs(self, video_app, cal):
        flow = video_app.flow("vp-frame", "vp-ha-train")
        assert flow.size_mb == pytest.approx(cal.services["vp-ha-train"].input_mb)


class TestTestbed:
    def test_devices(self, testbed):
        assert testbed.fleet.names() == ["medium", "small"]
        assert testbed.fleet["medium"].arch is Arch.AMD64
        assert testbed.fleet["small"].arch is Arch.ARM64

    def test_both_registries_host_all_images(self, testbed):
        for r in ALL_ROWS:
            image = logical_image(r.application, r.service)
            for registry_name in ("docker-hub", "regional"):
                ref = testbed.reference(registry_name, image)
                registry = testbed.registry(registry_name)
                for arch in (Arch.AMD64, Arch.ARM64):
                    assert registry.has_image(ref, arch), (registry_name, image)

    def test_table1_naming(self, testbed):
        assert testbed.reference("docker-hub", "vp-frame").repository == (
            "sina88/vp-frame"
        )
        assert testbed.reference("regional", "vp-frame").repository == (
            "aau/vp-frame"
        )

    def test_unknown_reference(self, testbed):
        with pytest.raises(KeyError):
            testbed.reference("docker-hub", "ghost")
        with pytest.raises(KeyError):
            testbed.registry("ghost")

    def test_network_channels_wired(self, testbed, cal):
        for device in ("medium", "small"):
            assert testbed.network.registry_bandwidth_mbps(
                "docker-hub", device
            ) == pytest.approx(cal.config.hub_bw_mbps[device])
            assert testbed.network.registry_bandwidth_mbps(
                "regional", device
            ) == pytest.approx(cal.config.regional_bw_mbps[device])

    def test_regional_store_within_capacity(self, testbed):
        assert testbed.regional.free_bytes() > 0

    def test_availability_fn(self, testbed):
        assert testbed.env.availability("docker-hub", "vp-frame")
        assert not testbed.env.availability("docker-hub", "ghost")


class TestSynthetic:
    def test_application_is_dag(self):
        app = synthetic_application("s", SyntheticConfig(layers=5, width=3))
        assert len(app) == 15
        app.topological_order()  # no cycle
        assert len(app.stages()) == 5

    def test_deterministic_generation(self):
        a = synthetic_application("same")
        b = synthetic_application("same")
        assert [s.name for s in a] == [s.name for s in b]
        assert [f.size_mb for f in a.dataflows] == [f.size_mb for f in b.dataflows]

    def test_every_inner_node_has_parent(self):
        app = synthetic_application("conn", SyntheticConfig(layers=6, width=4))
        for stage_idx, stage in enumerate(app.stages()):
            for name in stage:
                if stage_idx > 0:
                    assert app.predecessors(name)

    def test_fleet_heterogeneous(self):
        fleet = synthetic_fleet(4)
        archs = {d.arch for d in fleet}
        assert archs == {Arch.AMD64, Arch.ARM64}

    def test_environment_schedulable(self):
        from repro.core.scheduler import DeepScheduler

        env = synthetic_environment(3)
        app = synthetic_application("sched-check")
        result = DeepScheduler().schedule(app, env)
        result.plan.validate_against(app)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SyntheticConfig(layers=0)
        with pytest.raises(ValueError):
            SyntheticConfig(edge_density=0.0)
        with pytest.raises(ValueError):
            synthetic_fleet(0)
