"""Device image caches and the pull client's two policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.device import Arch
from repro.registry.base import ImageReference
from repro.registry.cache import CacheFull, ImageCache
from repro.registry.client import PullPolicy, RegistryClient
from repro.registry.digest import digest_text
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image


@pytest.fixture
def hub():
    registry = DockerHub()
    for repo, size in (("acme/a", 0.4), ("acme/b", 0.5)):
        mlist, blobs = build_image(
            repo, size, base=OFFICIAL_BASES["python:3.9-slim"]
        )
        registry.push_image(repo, "latest", mlist, blobs)
    return registry


class TestImageCache:
    def test_add_and_touch(self):
        cache = ImageCache(1.0)
        cache.add("sha256:" + "a" * 64, 100)
        assert cache.touch("sha256:" + "a" * 64)
        assert not cache.touch("sha256:" + "b" * 64)

    def test_lru_eviction_order(self):
        cache = ImageCache(3e-7)  # 300 bytes
        d = [f"sha256:{c * 64}" for c in "abc"]
        cache.add(d[0], 100)
        cache.add(d[1], 100)
        cache.touch(d[0])  # a becomes MRU
        evicted = cache.add(d[2], 150)  # must evict b (LRU), not a
        assert [e.digest for e in evicted] == [d[1]]
        assert d[0] in cache and d[2] in cache

    def test_oversized_entry_rejected(self):
        cache = ImageCache(1e-7)  # 100 bytes
        with pytest.raises(CacheFull):
            cache.add("sha256:" + "a" * 64, 200)

    def test_re_add_updates_size(self):
        cache = ImageCache(1.0)
        d = "sha256:" + "a" * 64
        cache.add(d, 100)
        cache.add(d, 250)
        assert cache.used_bytes == 250

    def test_remove(self):
        cache = ImageCache(1.0)
        d = "sha256:" + "a" * 64
        cache.add(d, 100)
        assert cache.remove(d)
        assert not cache.remove(d)
        assert cache.used_bytes == 0

    def test_image_completeness_tracks_layers(self, hub):
        manifest = hub.resolve(ImageReference("acme/a"), Arch.AMD64)
        cache = ImageCache(64.0)
        cache.admit_image(manifest)
        assert cache.has_image(manifest)
        cache.remove(manifest.layer_digests()[0])
        assert not cache.has_image(manifest)
        assert manifest.layer_digests()[0] in cache.missing_layers(manifest)

    def test_admit_never_evicts_own_layers(self, hub):
        manifest = hub.resolve(ImageReference("acme/a"), Arch.AMD64)
        # Cache exactly the image size: admission fills it completely.
        cache = ImageCache(manifest.total_layer_bytes / 1e9 + 1e-6)
        cache.admit_image(manifest)
        assert cache.has_image(manifest)

    @given(sizes=st.lists(st.integers(1, 1000), min_size=1, max_size=30))
    def test_used_never_exceeds_capacity(self, sizes):
        cache = ImageCache(2e-6)  # 2000 bytes
        for i, size in enumerate(sizes):
            if size > cache.capacity_bytes:
                continue
            cache.add(digest_text(f"blob{i}"), size)
            assert cache.used_bytes <= cache.capacity_bytes


class TestWholeImagePolicy:
    def test_cold_pull_transfers_everything(self, hub):
        client = RegistryClient(PullPolicy.WHOLE_IMAGE)
        cache = ImageCache(64.0)
        result = client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        assert result.bytes_transferred == result.bytes_total
        assert not result.cache_hit

    def test_warm_pull_free(self, hub):
        client = RegistryClient(PullPolicy.WHOLE_IMAGE)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        again = client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        assert again.cache_hit
        assert again.bytes_transferred == 0
        assert again.hit_ratio == 1.0

    def test_shared_base_not_deduped(self, hub):
        """The paper's model: image b pays full price despite shared base."""
        client = RegistryClient(PullPolicy.WHOLE_IMAGE)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        result = client.pull(hub, ImageReference("acme/b"), Arch.AMD64, cache)
        assert result.bytes_transferred == result.bytes_total


class TestLayeredPolicy:
    def test_shared_base_deduped(self, hub):
        client = RegistryClient(PullPolicy.LAYERED)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        result = client.pull(hub, ImageReference("acme/b"), Arch.AMD64, cache)
        assert 0 < result.bytes_transferred < result.bytes_total
        assert result.layers_transferred < result.layers_total

    def test_dedup_matches_shared_layer_bytes(self, hub):
        a = hub.resolve(ImageReference("acme/a"), Arch.AMD64)
        b = hub.resolve(ImageReference("acme/b"), Arch.AMD64)
        shared = set(a.layer_digests()) & set(b.layer_digests())
        shared_bytes = sum(
            l.size_bytes for l in b.layers if l.digest in shared
        )
        client = RegistryClient(PullPolicy.LAYERED)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        result = client.pull(hub, ImageReference("acme/b"), Arch.AMD64, cache)
        assert result.bytes_transferred == result.bytes_total - shared_bytes

    def test_arch_specific_layers(self, hub):
        """arm64 and amd64 manifests do not share layers."""
        client = RegistryClient(PullPolicy.LAYERED)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache)
        result = client.pull(hub, ImageReference("acme/a"), Arch.ARM64, cache)
        assert result.bytes_transferred == result.bytes_total


class TestPullAccounting:
    def test_cache_hit_not_metered(self, hub):
        from repro.registry.hub import PullRateLimiter

        hub.rate_limiter = PullRateLimiter(limit=1, window_s=1e6)
        client = RegistryClient(PullPolicy.WHOLE_IMAGE)
        cache = ImageCache(64.0)
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache, "dev", 0.0)
        # Second pull hits the cache and must not consume allowance.
        client.pull(hub, ImageReference("acme/a"), Arch.AMD64, cache, "dev", 1.0)
