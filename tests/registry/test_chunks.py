"""Chunked multi-source transfers: maps, stores, swarm scheduling.

Covers the chunk subsystem end to end: deterministic chunking, the
reserve→commit-at-chunk-granularity lifecycle (partial layers hold
capacity and seed chunk-by-chunk), rarest-first scheduling with seeded
stable tie-breaks, per-chunk re-resolution on departure/saturation,
the registry endgame, and the waste-accounting comparison against the
single-source path's whole-layer restarts.
"""

import pytest

from repro.model.device import Arch
from repro.model.network import NetworkModel
from repro.registry.base import ImageReference, RegistryError
from repro.registry.cache import ImageCache
from repro.registry.chunks import (
    ChunkLedger,
    ChunkMap,
    ChunkStore,
    ChunkSwarmPlanner,
)
from repro.registry.digest import digest_text, is_digest
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.p2p import P2PRegistry, PeerIndex, PeerSwarm, SourceKind
from repro.sim.engine import Simulator
from repro.sim.transfers import TransferEngine

LAYER = digest_text("layer-under-test")
MB = 1_000_000


# ----------------------------------------------------------------------
# ChunkMap
# ----------------------------------------------------------------------
class TestChunkMap:
    def test_chunks_tile_the_layer_exactly(self):
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        assert cmap.n_chunks == 4
        assert [c.size_bytes for c in cmap] == [32 * MB, 32 * MB, 32 * MB, 4 * MB]
        offset = 0
        for chunk in cmap:
            assert chunk.offset == offset
            offset = chunk.end
        assert offset == 100 * MB

    def test_exact_multiple_has_no_remainder_chunk(self):
        cmap = ChunkMap(LAYER, 64 * MB, 32 * MB)
        assert [c.size_bytes for c in cmap] == [32 * MB, 32 * MB]

    def test_small_and_zero_layers_map_to_one_chunk(self):
        assert ChunkMap(LAYER, 5, 32 * MB).n_chunks == 1
        empty = ChunkMap(LAYER, 0, 32 * MB)
        assert empty.n_chunks == 1
        assert empty.chunk(0).size_bytes == 0

    def test_chunk_digests_are_valid_unique_and_deterministic(self):
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        digests = [c.digest for c in cmap]
        assert all(is_digest(d) for d in digests)
        assert len(set(digests)) == cmap.n_chunks
        again = ChunkMap(LAYER, 100 * MB, 32 * MB)
        assert [c.digest for c in again] == digests
        other_layer = ChunkMap(digest_text("other"), 100 * MB, 32 * MB)
        assert set(c.digest for c in other_layer).isdisjoint(digests)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkMap(LAYER, -1, 32 * MB)
        with pytest.raises(ValueError):
            ChunkMap(LAYER, 100, 0)


# ----------------------------------------------------------------------
# ChunkStore / ChunkLedger lifecycle
# ----------------------------------------------------------------------
def make_store(capacity_gb: float = 1.0, device: str = "dev-a"):
    ledger = ChunkLedger()
    cache = ImageCache(capacity_gb, device)
    index = PeerIndex()
    index.register_cache(device, cache)
    return ChunkStore(device, cache, ledger), cache, ledger, index


class TestChunkStoreLifecycle:
    def test_begin_reserves_without_publishing(self):
        store, cache, ledger, index = make_store()
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        store.begin_layer(cmap)
        assert cache.is_reserved(LAYER)
        assert LAYER not in cache
        assert cache.reserved_bytes == 100 * MB
        assert not index.holds("dev-a", LAYER)
        assert ledger.chunk_holders(LAYER, 0) == frozenset()

    def test_committed_chunks_become_seedable_before_the_layer_lands(self):
        store, cache, ledger, index = make_store()
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        store.begin_layer(cmap)
        store.commit_chunk(LAYER, 2)
        store.commit_chunk(LAYER, 0)
        # Partial chunks are in the ledger (seedable) but the layer is
        # still invisible to the peer index — reserve→commit intact.
        assert ledger.chunk_holders(LAYER, 2) == frozenset({"dev-a"})
        assert ledger.chunk_holders(LAYER, 0) == frozenset({"dev-a"})
        assert ledger.chunk_holders(LAYER, 1) == frozenset()
        assert LAYER not in cache
        assert not index.holds("dev-a", LAYER)
        assert store.missing_chunks(LAYER) == [1, 3]

    def test_finish_commits_cache_and_clears_partial_state(self):
        store, cache, ledger, index = make_store()
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        store.begin_layer(cmap)
        for i in range(cmap.n_chunks):
            store.commit_chunk(LAYER, i)
        assert store.finish_layer(LAYER) is True
        assert LAYER in cache
        assert cache.used_bytes == 100 * MB
        assert cache.reserved_bytes == 0
        assert index.holds("dev-a", LAYER)
        # the ledger stops advertising partials the instant the full
        # replica becomes visible
        assert ledger.chunk_holders(LAYER, 0) == frozenset()
        assert not store.is_partial(LAYER)

    def test_finish_with_missing_chunks_raises(self):
        store, _cache, _ledger, _index = make_store()
        cmap = ChunkMap(LAYER, 100 * MB, 32 * MB)
        store.begin_layer(cmap)
        store.commit_chunk(LAYER, 0)
        with pytest.raises(RegistryError, match="missing"):
            store.finish_layer(LAYER)

    def test_double_commit_of_a_chunk_raises(self):
        store, _cache, _ledger, _index = make_store()
        store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))
        store.commit_chunk(LAYER, 1)
        with pytest.raises(RegistryError, match="twice"):
            store.commit_chunk(LAYER, 1)

    def test_begin_twice_raises(self):
        store, _cache, _ledger, _index = make_store()
        store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))
        with pytest.raises(RegistryError, match="already in"):
            store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))

    def test_abort_releases_bytes_and_ledger_entries(self):
        store, cache, ledger, index = make_store()
        store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))
        store.commit_chunk(LAYER, 0)
        store.abort_layer(LAYER)
        assert cache.reserved_bytes == 0
        assert LAYER not in cache
        assert ledger.chunk_holders(LAYER, 0) == frozenset()
        # a fresh download can start over
        store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))
        store.commit_chunk(LAYER, 0)

    def test_out_of_band_insert_absorbs_the_partial_record(self):
        store, cache, ledger, _index = make_store()
        store.begin_layer(ChunkMap(LAYER, 100 * MB, 32 * MB))
        store.commit_chunk(LAYER, 0)
        # An instant add (analytic replicator copy) lands the layer and
        # absorbs the reservation; the partial record must evaporate.
        cache.add(LAYER, 100 * MB)
        assert not store.is_partial(LAYER)
        assert ledger.chunk_holders(LAYER, 0) == frozenset()
        # late chunk completions and the finish degrade to no-ops
        assert store.commit_chunk(LAYER, 1) is False
        assert store.finish_layer(LAYER) is False
        assert LAYER in cache

    def test_ledger_drop_device_forgets_all_partials(self):
        ledger = ChunkLedger()
        ledger.add_chunk("dev-a", LAYER, 0)
        ledger.add_chunk("dev-a", LAYER, 3)
        ledger.add_chunk("dev-b", LAYER, 0)
        ledger.drop_device("dev-a")
        assert ledger.chunk_holders(LAYER, 0) == frozenset({"dev-b"})
        assert ledger.chunk_holders(LAYER, 3) == frozenset()
        assert ledger.partial_layers("dev-a") == frozenset()


# ----------------------------------------------------------------------
# rarest-first ordering
# ----------------------------------------------------------------------
def planner_on_lan(n_devices: int = 4, seed: int = 0):
    hub = DockerHub(name="docker-hub")
    network = NetworkModel()
    names = [f"edge-{i}" for i in range(n_devices)]
    network.connect_device_mesh(names, 800.0)
    for name in names:
        network.connect_registry(hub.name, name, 60.0)
    swarm = PeerSwarm(network)
    caches = {}
    for name in names:
        caches[name] = ImageCache(4.0, name)
        swarm.add_device(name, caches[name], region="lab")
    planner = ChunkSwarmPlanner(swarm, [hub], chunk_size_bytes=10 * MB, seed=seed)
    return planner, swarm, caches, hub


class TestRarestFirst:
    def test_availability_counts_full_and_partial_holders(self):
        planner, swarm, caches, _hub = planner_on_lan()
        cmap = ChunkMap(LAYER, 40 * MB, 10 * MB)
        # edge-1 holds the full layer; edge-2 holds only chunk 0.
        caches["edge-1"].add(LAYER, 40 * MB)
        store2 = planner.store_for("edge-2", caches["edge-2"])
        store2.begin_layer(cmap)
        store2.commit_chunk(LAYER, 0)
        assert planner.availability("edge-0", LAYER, 0) == 2
        assert planner.availability("edge-0", LAYER, 1) == 1
        # the viewer itself never counts
        assert planner.availability("edge-2", LAYER, 0) == 1

    def test_rarer_chunks_order_first(self):
        planner, swarm, caches, _hub = planner_on_lan()
        cmap = ChunkMap(LAYER, 40 * MB, 10 * MB)
        caches["edge-1"].add(LAYER, 40 * MB)
        store2 = planner.store_for("edge-2", caches["edge-2"])
        store2.begin_layer(cmap)
        store2.commit_chunk(LAYER, 0)
        store2.commit_chunk(LAYER, 1)
        order = planner.rarest_first("edge-0", cmap)
        # chunks 2/3 have one holder, chunks 0/1 have two
        assert set(order[:2]) == {2, 3}
        assert set(order[2:]) == {0, 1}

    def test_tiebreak_is_seeded_and_stable(self):
        cmap = ChunkMap(LAYER, 320 * MB, 10 * MB)
        planner_a, *_ = planner_on_lan(seed=7)
        planner_b, *_ = planner_on_lan(seed=7)
        planner_c, *_ = planner_on_lan(seed=8)
        order_a = planner_a.rarest_first("edge-0", cmap)
        order_b = planner_b.rarest_first("edge-0", cmap)
        order_c = planner_c.rarest_first("edge-0", cmap)
        assert order_a == order_b  # same seed → identical schedule
        assert order_a != order_c  # different seed → different ties
        # repeated calls are stable
        assert planner_a.rarest_first("edge-0", cmap) == order_a
        # and a restricted pending set preserves the relative order
        pending = set(order_a[:10])
        assert planner_a.rarest_first("edge-0", cmap, pending) == order_a[:10]

    def test_tiebreak_disperses_across_devices(self):
        # Equal-rarity chunks must be claimed in different orders on
        # different devices, else a cold wave moves in lockstep and
        # partial seeding never gets a chunk the neighbours lack.
        cmap = ChunkMap(LAYER, 320 * MB, 10 * MB)
        planner, *_ = planner_on_lan()
        order_0 = planner.rarest_first("edge-0", cmap)
        order_1 = planner.rarest_first("edge-1", cmap)
        assert order_0 != order_1


# ----------------------------------------------------------------------
# chunked pulls through the facade (integration)
# ----------------------------------------------------------------------
def make_chunked_swarm(
    n_devices=4,
    hub_bw=80.0,
    lan_bw=800.0,
    upload_budget=None,
    chunk_size_bytes=16 * MB,
    chunk_parallel=4,
    repo_size_gb=0.5,
    endgame=True,
):
    hub = DockerHub(name="docker-hub")
    mlist, blobs = build_image("acme/mono", repo_size_gb, base=None, app_layers=1)
    hub.push_image("acme/mono", "latest", mlist, blobs)
    mlist2, blobs2 = build_image(
        "acme/app", repo_size_gb, base=OFFICIAL_BASES["python:3.9-slim"]
    )
    hub.push_image("acme/app", "latest", mlist2, blobs2)
    network = NetworkModel()
    names = [f"edge-{i}" for i in range(n_devices)]
    network.connect_device_mesh(names, lan_bw)
    for name in names:
        network.connect_registry(hub.name, name, hub_bw)
    sim = Simulator()
    engine = TransferEngine(sim, network, default_upload_budget=upload_budget)
    swarm = PeerSwarm(network)
    caches = {}
    for name in names:
        caches[name] = ImageCache(12.0, name)
        swarm.add_device(name, caches[name], region="lab")
    facade = P2PRegistry(
        swarm,
        [hub],
        chunked=True,
        chunk_size_bytes=chunk_size_bytes,
        chunk_parallel=chunk_parallel,
        chunk_endgame=endgame,
    )
    return sim, engine, swarm, caches, facade, hub, network


def pull_at(sim, engine, facade, caches, at_s, device, repo="acme/mono"):
    out = {}

    def proc():
        yield sim.timeout(at_s)
        result = yield from facade.pull_process(
            ImageReference(repo), Arch.AMD64, device, caches[device], engine
        )
        out["result"] = result
        out["end"] = sim.now

    sim.process(proc())
    return out


class TestChunkedPull:
    def test_cold_pull_lands_exact_bytes_and_stays_coherent(self):
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm()
        out = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        sim.run()
        result = out["result"]
        manifest = result.manifest
        assert caches["edge-0"].has_image(manifest)
        assert caches["edge-0"].used_bytes == manifest.total_layer_bytes
        assert caches["edge-0"].reserved_bytes == 0
        assert result.bytes_transferred == manifest.total_layer_bytes
        # per-source plan entries sum exactly to the layer bytes
        assert result.plan.bytes_total == manifest.total_layer_bytes
        assert swarm.index.coherence_violations() == []
        # nothing partial lingers
        assert facade.chunks.ledger.tracked_layers() == []

    def test_partial_seeding_serves_chunks_before_the_layer_commits(self):
        # acme/mono is a single layer, so the leader commits nothing
        # until its pull completes — any peer bytes the follower gets
        # can only come from the leader's *partial* chunk store.
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm()
        lead = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        follow = pull_at(sim, engine, facade, caches, 5.0, "edge-1")
        sim.run()
        assert follow["result"].bytes_from_peers > 0
        # the follower overlapped the leader (started before it ended)
        assert follow["end"] >= 5.0 and lead["end"] > 5.0
        assert caches["edge-1"].has_image(follow["result"].manifest)

    def test_single_source_follower_gets_no_peer_bytes_in_same_overlap(self):
        # The control for the partial-seeding test: same topology and
        # timing, single-source planner — the follower resolves while
        # nothing is committed and must go to the registry.
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm()
        single = P2PRegistry(swarm, [hub])  # chunked=False default
        lead = pull_at(sim, engine, single, caches, 0.0, "edge-0")
        follow = pull_at(sim, engine, single, caches, 5.0, "edge-1")
        sim.run()
        assert follow["result"].bytes_from_peers == 0

    def test_chunked_beats_single_source_on_a_contended_cold_wave(self):
        def wave(chunked):
            sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm(
                n_devices=6, upload_budget=2
            )
            registry = (
                facade if chunked else P2PRegistry(swarm, [hub])
            )
            outs = [
                pull_at(sim, engine, registry, caches, float(i), f"edge-{i}")
                for i in range(6)
            ]
            sim.run()
            return max(o["end"] for o in outs), sum(
                o["result"].bytes_from_peers for o in outs
            )

        single_makespan, single_peer = wave(chunked=False)
        chunked_makespan, chunked_peer = wave(chunked=True)
        assert chunked_makespan < single_makespan
        assert chunked_peer > single_peer

    def test_multi_source_spread_respects_upload_budgets(self):
        # Two full holders with budget 1 each: a chunked pull must
        # spread chunks across both (and may top up from the hub), but
        # can never hold two concurrent uploads from one seeder.
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm(
            upload_budget=1
        )
        warm = pull_at(sim, engine, facade, caches, 0.0, "edge-1")
        warm2 = pull_at(sim, engine, facade, caches, 40.0, "edge-2")
        cold = pull_at(sim, engine, facade, caches, 80.0, "edge-0")
        sim.run()
        result = cold["result"]
        peer_sources = {
            layer.source
            for layer in result.plan.layers
            if layer.kind is SourceKind.PEER
        }
        assert len(peer_sources) >= 2  # chunks drawn from both holders

    def test_seeder_departure_loses_one_chunk_not_the_layer(self):
        # edge-1 seeds the whole (single-layer) image to edge-0, then
        # departs mid-transfer.  The chunked pull re-resolves the
        # in-flight chunk and keeps every chunk already landed.
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm(
            hub_bw=80.0, lan_bw=100.0, chunk_parallel=1, endgame=False
        )
        warm = pull_at(sim, engine, facade, caches, 0.0, "edge-1")
        cold = pull_at(sim, engine, facade, caches, 100.0, "edge-0")

        def departure():
            yield sim.timeout(130.0)  # mid-way through edge-0's pull
            swarm.remove_device("edge-1", engine=engine)

        sim.process(departure())
        sim.run()
        result = cold["result"]
        manifest = result.manifest
        assert caches["edge-0"].has_image(manifest)
        # waste is bounded by one chunk (the one in flight at departure)
        assert 0 < result.bytes_wasted <= 16 * MB
        # and the pull mixed peer chunks (before departure) with
        # registry chunks (after)
        kinds = {layer.kind for layer in result.plan.layers}
        assert kinds == {SourceKind.PEER, SourceKind.REGISTRY}

    def test_single_source_departure_wastes_more_than_chunked(self):
        # The satellite assertion: same departure scenario, whole-layer
        # restart vs chunk re-resolution — chunking must reduce
        # bytes_wasted.
        def run(chunked):
            sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm(
                hub_bw=80.0, lan_bw=100.0, chunk_parallel=1, endgame=False
            )
            registry = facade if chunked else P2PRegistry(swarm, [hub])
            pull_at(sim, engine, registry, caches, 0.0, "edge-1")
            cold = pull_at(sim, engine, registry, caches, 100.0, "edge-0")

            def departure():
                yield sim.timeout(130.0)
                swarm.remove_device("edge-1", engine=engine)

            sim.process(departure())
            sim.run()
            return cold["result"]

        single = run(chunked=False)
        chunked = run(chunked=True)
        assert single.bytes_wasted > 0
        assert chunked.bytes_wasted > 0
        assert chunked.bytes_wasted < single.bytes_wasted

    def test_endgame_duplicates_a_straggler_from_the_registry(self):
        # One slow seeder (capped uplink) vs a fast hub: the last
        # chunks straggle on the peer path and the endgame re-requests
        # them from the registry, metering the duplicates.
        sim, engine, swarm, caches, facade, hub, network = make_chunked_swarm(
            hub_bw=80.0, lan_bw=100.0, chunk_parallel=2
        )
        network.set_uplink("edge-1", 10.0)  # the seeder crawls
        warm = pull_at(sim, engine, facade, caches, 0.0, "edge-1")
        cold = pull_at(sim, engine, facade, caches, 100.0, "edge-0")
        sim.run()
        result = cold["result"]
        assert result.chunk_endgame_dupes > 0
        assert result.bytes_wasted > 0  # the losing copy is metered
        assert caches["edge-0"].has_image(result.manifest)

    def test_concurrent_same_image_pulls_join_one_chunked_fetch(self):
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm()
        first = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        second = pull_at(sim, engine, facade, caches, 1.0, "edge-0")
        sim.run()
        n_chunks = len(
            ChunkMap(
                first["result"].manifest.layers[0].digest,
                first["result"].manifest.layers[0].size_bytes,
                16 * MB,
            )
        )
        # the joiner waited for the in-flight fetch instead of
        # re-fetching: exactly one chunk set moved for the layer
        assert facade.chunks.chunk_transfers == n_chunks
        assert second["result"].bytes_transferred == 0  # all LOCAL
        assert second["end"] == pytest.approx(first["end"])

    def test_chunked_facade_requires_engine_path(self):
        # the analytic pull() is untouched by chunking: it still works
        # and reports no waste/dupes
        sim, engine, swarm, caches, facade, hub, _net = make_chunked_swarm()
        result = facade.pull(
            ImageReference("acme/mono"), Arch.AMD64, "edge-0", caches["edge-0"]
        )
        assert result.bytes_wasted == 0
        assert result.chunk_endgame_dupes == 0
        assert caches["edge-0"].has_image(result.manifest)


class TestEndgameMeteringFailure:
    def test_speculative_duplicate_never_sinks_the_pull(self):
        # Same slow-seeder topology as the endgame test, but registry
        # metering always fails (hub rate limit exhausted).  Every
        # required chunk resolves from the peer, so the only metering
        # calls are for speculative endgame duplicates — which must be
        # abandoned, not allowed to abort a pull the peer path is
        # already completing.
        sim, engine, swarm, caches, facade, hub, network = make_chunked_swarm(
            hub_bw=80.0, lan_bw=100.0, chunk_parallel=2
        )
        network.set_uplink("edge-1", 10.0)  # the seeder crawls
        pull_at(sim, engine, facade, caches, 0.0, "edge-1")

        meter_calls = []

        def exhausted(registry_name):
            meter_calls.append(registry_name)
            raise RegistryError("toomanyrequests: pull rate limit exceeded")

        out = {}

        def proc():
            yield sim.timeout(100.0)
            layer = hub.resolve(
                ImageReference("acme/mono"), Arch.AMD64
            ).layers[0]
            outcome = yield from facade.chunks.fetch_layer(
                "edge-0",
                caches["edge-0"],
                layer.digest,
                layer.size_bytes,
                engine,
                meter_registry=exhausted,
            )
            out["outcome"] = outcome

        sim.process(proc())
        sim.run()
        outcome = out["outcome"]
        # the endgame tried the registry, hit the limit, gave up the
        # duplicate — and the layer still assembled entirely from peers
        assert meter_calls
        assert outcome.endgame_dupes == 0
        assert all(kind == "peer" for kind, _ in outcome.bytes_by_source)
        assert sum(outcome.bytes_by_source.values()) == 500_000_000
