"""Unit tests for the pluggable discovery backends.

Omniscient discovery must be indistinguishable from querying the peer
index directly; gossip discovery must converge via anti-entropy, keep
views partial, treat staleness as a metered failure mode, and survive
departure / re-join-with-stale-cache without resurrecting dead info.
"""

import pytest

from repro.model.device import Arch
from repro.model.network import NetworkModel
from repro.model.units import BYTES_PER_GB
from repro.registry.base import ImageReference, RegistryError
from repro.registry.cache import ImageCache
from repro.registry.digest import digest_text
from repro.registry.discovery import (
    GossipDiscovery,
    OmniscientDiscovery,
    ViewRecord,
    _newer,
)
from repro.registry.hub import DockerHub
from repro.registry.images import build_image
from repro.registry.p2p import AdaptiveReplicator, P2PRegistry, PeerSwarm, SourceKind
from repro.sim.engine import Simulator

D = [digest_text(f"disc-layer-{i}") for i in range(6)]


def small_cache(capacity_bytes: int, device: str) -> ImageCache:
    return ImageCache(capacity_bytes / BYTES_PER_GB, device)


def mesh_swarm(n=4, discovery=None, capacity=1000):
    network = NetworkModel()
    names = [f"d{i}" for i in range(n)]
    network.connect_device_mesh(names, 800.0)
    swarm = PeerSwarm(network, discovery=discovery)
    caches = {}
    for name in names:
        caches[name] = small_cache(capacity, name)
        swarm.add_device(name, caches[name], region="r0")
    return swarm, caches


# ----------------------------------------------------------------------
# omniscient backend
# ----------------------------------------------------------------------
class TestOmniscientDiscovery:
    def test_view_mirrors_index_for_every_viewer(self):
        swarm, caches = mesh_swarm()
        caches["d0"].add(D[0], 10)
        caches["d2"].add(D[0], 10)
        for viewer in swarm.devices():
            assert swarm.discovery.view(viewer, D[0]) == {"d0", "d2"}
        assert swarm.discovery.management_view(D[0]) == {"d0", "d2"}
        assert swarm.discovery.size_of(D[0]) == 10

    def test_default_backend_is_omniscient_and_authoritative(self):
        swarm, _ = mesh_swarm()
        assert isinstance(swarm.discovery, OmniscientDiscovery)
        assert swarm.discovery.authoritative
        assert swarm.stale_peer_misses == 0

    def test_verify_holder_raises_on_incoherence(self):
        swarm, caches = mesh_swarm()
        caches["d0"].add(D[0], 10)
        assert swarm.verify_holder("d1", "d0", D[0]) is True
        with pytest.raises(RegistryError, match="incoherent"):
            swarm.verify_holder("d1", "d3", D[0])


# ----------------------------------------------------------------------
# gossip backend: convergence and partial views
# ----------------------------------------------------------------------
class TestGossipConvergence:
    def test_views_start_empty_and_converge(self):
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=3)
        swarm, caches = mesh_swarm(n=6, discovery=disc)
        caches["d0"].add(D[0], 10)
        caches["d4"].add(D[0], 10)
        assert disc.view("d2", D[0]) == frozenset()
        for _ in range(3 * 6):
            disc.run_round()
        for viewer in swarm.devices():
            expected = {"d0", "d4"} - {viewer}
            assert disc.view(viewer, D[0]) == expected
        assert disc.management_view(D[0]) == {"d0", "d4"}
        assert disc.coverage(swarm.index) == pytest.approx(1.0)

    def test_view_never_contains_viewer(self):
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=3)
        _swarm, caches = mesh_swarm(n=4, discovery=disc)
        caches["d1"].add(D[0], 10)
        for _ in range(12):
            disc.run_round()
        assert "d1" not in disc.view("d1", D[0])

    def test_view_cap_bounds_present_entries(self):
        disc = GossipDiscovery(fanout=3, period_s=30.0, view_cap=2, seed=5)
        _swarm, caches = mesh_swarm(n=8, discovery=disc)
        for name, cache in caches.items():
            cache.add(D[0], 10)
        for _ in range(24):
            disc.run_round()
        for viewer in caches:
            holders = disc.view(viewer, D[0])
            assert 0 < len(holders) <= 2
            assert viewer not in holders

    def test_size_learned_from_firsthand_adds(self):
        disc = GossipDiscovery(seed=1)
        _swarm, caches = mesh_swarm(n=3, discovery=disc)
        assert disc.size_of(D[0]) is None
        caches["d0"].add(D[0], 77)
        assert disc.size_of(D[0]) == 77

    def test_bound_simulator_runs_rounds_on_the_clock(self):
        sim = Simulator()
        disc = GossipDiscovery(sim=sim, fanout=1, period_s=10.0, seed=2)
        _swarm, caches = mesh_swarm(n=3, discovery=disc)
        caches["d0"].add(D[0], 10)
        sim.run(until=55.0)
        assert disc.rounds == 5
        assert disc.view("d1", D[0]) == {"d0"}

    def test_bind_after_construction(self):
        disc = GossipDiscovery(fanout=1, period_s=10.0, seed=2)
        _swarm, caches = mesh_swarm(n=3, discovery=disc)
        sim = Simulator()
        disc.bind(sim)
        sim.run(until=25.0)
        assert disc.rounds == 2


# ----------------------------------------------------------------------
# gossip backend: staleness as a failure mode
# ----------------------------------------------------------------------
class TestGossipStaleness:
    def converged(self, n=5, seed=7):
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=seed)
        swarm, caches = mesh_swarm(n=n, discovery=disc)
        caches["d0"].add(D[0], 10)
        caches["d3"].add(D[0], 10)
        for _ in range(3 * n):
            disc.run_round()
        return disc, swarm, caches

    def test_eviction_leaves_stale_entries_until_verified(self):
        disc, swarm, caches = self.converged()
        caches["d0"].remove(D[0])
        # d0's own firsthand flips instantly, but d2's view is stale.
        assert "d0" in disc.view("d2", D[0])
        assert swarm.verify_holder("d2", "d0", D[0]) is False
        assert disc.stale_misses == 1
        assert "d0" not in disc.view("d2", D[0])
        assert swarm.stale_peer_misses == 1

    def test_drop_propagates_through_gossip_without_verification(self):
        disc, swarm, caches = self.converged()
        caches["d0"].remove(D[0])
        for _ in range(3 * 5):
            disc.run_round()
        for viewer in swarm.devices():
            assert "d0" not in disc.view(viewer, D[0])
        assert disc.stale_misses == 0  # nobody had to trip over it

    def test_departed_holder_is_served_stale_then_metered(self):
        disc, swarm, caches = self.converged()
        swarm.remove_device("d3")
        assert "d3" in disc.view("d1", D[0])  # the departure is unseen
        assert swarm.best_peer(D[0], "d1") in {"d0", "d3"}
        assert swarm.verify_holder("d1", "d3", D[0]) is False
        assert "d3" not in disc.view("d1", D[0])

    def test_rejoin_with_stale_cache_bumps_incarnation(self):
        disc, swarm, caches = self.converged()
        swarm.remove_device("d3")
        # Everyone learns d3 is gone the hard way.
        for viewer in ("d1", "d2", "d4"):
            swarm.verify_holder(viewer, "d3", D[0])
        swarm.add_device("d3", caches["d3"], region="r0")
        for _ in range(3 * 5):
            disc.run_round()
        # The fresh incarnation's announcement outranks the old
        # suppressions: d3 is a holder again in every view.
        for viewer in ("d1", "d2", "d4"):
            assert "d3" in disc.view(viewer, D[0])

    def test_double_join_rejected(self):
        disc = GossipDiscovery(seed=1)
        _swarm, caches = mesh_swarm(n=3, discovery=disc)
        with pytest.raises(ValueError):
            disc.on_join("d0", caches["d0"], "r0")

    def test_leave_unknown_rejected(self):
        disc = GossipDiscovery(seed=1)
        with pytest.raises(ValueError):
            disc.on_leave("ghost")


# ----------------------------------------------------------------------
# gossip backend: transport knobs (latency, exchange mode)
# ----------------------------------------------------------------------
class TestGossipTransport:
    def test_latency_defers_payload_delivery(self):
        sim = Simulator()
        disc = GossipDiscovery(
            sim=sim, fanout=1, period_s=10.0, latency_s=4.0, seed=2
        )
        _swarm, caches = mesh_swarm(n=3, discovery=disc)
        caches["d0"].add(D[0], 10)
        sim.run(until=12.0)
        # The round fired at t=10, but its payloads are on the wire
        # until t=14: nobody has learned of d0's copy yet.
        assert disc.rounds == 1
        assert disc.view("d1", D[0]) == frozenset()
        assert disc.view("d2", D[0]) == frozenset()
        sim.run(until=15.0)
        # d0 initiated one exchange, so at least one peer now knows.
        assert disc.view("d1", D[0]) | disc.view("d2", D[0]) == {"d0"}

    def test_latency_only_delays_convergence(self):
        sim = Simulator()
        disc = GossipDiscovery(
            sim=sim, fanout=2, period_s=10.0, latency_s=5.0, seed=3
        )
        swarm, caches = mesh_swarm(n=5, discovery=disc)
        caches["d0"].add(D[0], 10)
        sim.run(until=200.0)
        for viewer in swarm.devices():
            expected = {"d0"} - {viewer}
            assert disc.view(viewer, D[0]) == expected

    def run_transport(self, exchange, rounds=15, n=5):
        disc = GossipDiscovery(
            fanout=2, period_s=30.0, seed=11, exchange=exchange
        )
        swarm, caches = mesh_swarm(n=n, discovery=disc)
        caches["d0"].add(D[0], 10)
        caches["d3"].add(D[1], 20)
        for _ in range(rounds):
            disc.run_round()
        views = {
            (viewer, digest): disc.view(viewer, digest)
            for viewer in swarm.devices()
            for digest in (D[0], D[1])
        }
        return views, disc.records_sent

    def test_digest_summary_converges_identically_with_fewer_records(self):
        # Same seed, same partner schedule: the delta encoding must
        # land every view push-pull lands while metering strictly
        # fewer records over the wire.
        full_views, full_records = self.run_transport("push-pull")
        summary_views, summary_records = self.run_transport(
            "digest-summary"
        )
        assert summary_views == full_views
        assert 0 < summary_records < full_records

    def test_digest_summary_repeat_exchange_ships_nothing(self):
        disc = GossipDiscovery(seed=1, exchange="digest-summary")
        _swarm, caches = mesh_swarm(n=2, discovery=disc)
        caches["d0"].add(D[0], 10)
        disc._exchange("d0", "d1")
        sent = disc.records_sent
        assert sent > 0
        disc._exchange("d0", "d1")  # both sides already know everything
        assert disc.records_sent == sent

    def test_bad_transport_knobs_rejected(self):
        with pytest.raises(ValueError, match="latency_s"):
            GossipDiscovery(latency_s=-1.0)
        with pytest.raises(ValueError, match="exchange"):
            GossipDiscovery(exchange="telepathy")


# ----------------------------------------------------------------------
# merge rule
# ----------------------------------------------------------------------
class TestMergeRule:
    def test_strictly_newer_wins(self):
        old = ViewRecord(1, 2, True)
        assert _newer(ViewRecord(1, 3, False), old)
        assert _newer(ViewRecord(2, 0, True), old)
        assert not _newer(ViewRecord(1, 1, False), old)

    def test_tie_prefers_absent(self):
        assert _newer(ViewRecord(1, 2, False), ViewRecord(1, 2, True))
        assert not _newer(ViewRecord(1, 2, True), ViewRecord(1, 2, False))
        assert not _newer(ViewRecord(1, 2, True), ViewRecord(1, 2, True))


# ----------------------------------------------------------------------
# the pull path falls back through the registry chain on stale views
# ----------------------------------------------------------------------
class TestPullFallback:
    def build(self):
        hub = DockerHub(name="hub")
        mlist, blobs = build_image("acme/app", 0.00000005)  # 50 B image
        hub.push_image("acme/app", "latest", mlist, blobs)
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=9)
        network = NetworkModel()
        names = ["d0", "d1", "d2"]
        network.connect_device_mesh(names, 800.0)
        for name in names:
            network.connect_registry("hub", name, 50.0)
        swarm = PeerSwarm(network, discovery=disc)
        caches = {n: small_cache(10_000, n) for n in names}
        for n in names:
            swarm.add_device(n, caches[n], region="r0")
        facade = P2PRegistry(swarm, [hub])
        return facade, swarm, caches, disc

    def test_stale_peer_falls_back_to_registry_and_meters(self):
        facade, swarm, caches, disc = self.build()
        ref = ImageReference("acme/app")
        # Seed d0, converge views, then silently gut d0's cache.
        r0 = facade.pull(ref, Arch.AMD64, "d0", caches["d0"])
        layer_digests = [l.digest for l in r0.plan.layers]
        for _ in range(9):
            disc.run_round()
        assert swarm.best_peer(layer_digests[0], "d1") == "d0"
        caches["d0"].clear()
        result = facade.pull(ref, Arch.AMD64, "d1", caches["d1"])
        # Every layer fell back to the hub; each stale entry metered.
        assert result.stale_peer_misses == len(layer_digests)
        assert all(
            layer.kind is SourceKind.REGISTRY for layer in result.plan.layers
        )
        assert disc.stale_misses == len(layer_digests)

    def test_verified_peer_serves_normally(self):
        facade, swarm, caches, disc = self.build()
        ref = ImageReference("acme/app")
        facade.pull(ref, Arch.AMD64, "d0", caches["d0"])
        for _ in range(9):
            disc.run_round()
        result = facade.pull(ref, Arch.AMD64, "d1", caches["d1"])
        assert result.stale_peer_misses == 0
        assert result.bytes_from_peers > 0


# ----------------------------------------------------------------------
# the replicator reasons over the management view
# ----------------------------------------------------------------------
class TestReplicatorUnderGossip:
    def test_replicator_blind_until_observer_view_converges(self):
        sim = Simulator()
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=4)
        network = NetworkModel()
        names = ["a0", "a1", "b0", "b1"]
        network.connect_device_mesh(names, 800.0)
        swarm = PeerSwarm(network, discovery=disc)
        caches = {n: small_cache(1000, n) for n in names}
        for n in names:
            swarm.add_device(n, caches[n], region=n[0])
        caches["a0"].add(D[0], 10)
        for _ in range(8):
            swarm.record_demand(D[0], "b0")
        replicator = AdaptiveReplicator(
            sim, swarm, interval_s=60.0, hot_threshold=3.0, target_replicas=1
        )
        # Management view is empty pre-gossip: hot but unreplicable.
        cycle = replicator.run_cycle()
        assert cycle.hot_digests == (D[0],)
        assert cycle.actions == ()
        for _ in range(12):
            disc.run_round()
        for _ in range(8):
            swarm.record_demand(D[0], "b0")
        cycle = replicator.run_cycle()
        assert any(a.digest == D[0] for a in cycle.actions)

    def test_stale_management_entry_is_pruned_and_metered(self):
        sim = Simulator()
        disc = GossipDiscovery(fanout=2, period_s=30.0, seed=4)
        network = NetworkModel()
        names = ["a0", "b0"]
        network.connect_device_mesh(names, 800.0)
        swarm = PeerSwarm(network, discovery=disc)
        caches = {n: small_cache(1000, n) for n in names}
        for n in names:
            swarm.add_device(n, caches[n], region=n[0])
        caches["a0"].add(D[0], 10)
        for _ in range(6):
            disc.run_round()
        assert disc.management_view(D[0]) == {"a0"}
        caches["a0"].remove(D[0])  # view now stale
        for _ in range(6):
            swarm.record_demand(D[0], "b0")
        replicator = AdaptiveReplicator(
            sim, swarm, interval_s=60.0, hot_threshold=3.0, target_replicas=1
        )
        cycle = replicator.run_cycle()
        assert cycle.actions == ()
        assert disc.stale_misses >= 1
        assert "a0" not in disc.management_view(D[0])


# ----------------------------------------------------------------------
# gossip backend: lossy transport
# ----------------------------------------------------------------------
class TestGossipLoss:
    def test_invalid_loss_rate_rejected(self):
        with pytest.raises(ValueError, match="loss_rate"):
            GossipDiscovery(loss_rate=1.0)
        with pytest.raises(ValueError, match="loss_rate"):
            GossipDiscovery(loss_rate=-0.1)

    def test_zero_loss_is_the_exact_lossless_stream(self):
        """``loss_rate=0`` must not draw from the RNG at all, so its
        view evolution is byte-identical to a backend built before the
        knob existed (same seed, same partner choices, same views)."""
        baseline = GossipDiscovery(fanout=2, period_s=30.0, seed=3)
        lossless = GossipDiscovery(
            fanout=2, period_s=30.0, seed=3, loss_rate=0.0
        )
        _s1, caches1 = mesh_swarm(n=6, discovery=baseline)
        _s2, caches2 = mesh_swarm(n=6, discovery=lossless)
        caches1["d0"].add(D[0], 10)
        caches2["d0"].add(D[0], 10)
        for _ in range(12):
            baseline.run_round()
            lossless.run_round()
        assert lossless.payloads_lost == 0
        assert lossless.records_sent == baseline.records_sent
        for viewer in caches1:
            assert lossless.view(viewer, D[0]) == baseline.view(viewer, D[0])

    def test_drops_are_metered_and_seeded(self):
        def run(seed):
            disc = GossipDiscovery(
                fanout=2, period_s=30.0, seed=seed, loss_rate=0.5
            )
            _swarm, caches = mesh_swarm(n=6, discovery=disc)
            caches["d0"].add(D[0], 10)
            for _ in range(12):
                disc.run_round()
            return disc

        first, second = run(seed=3), run(seed=3)
        assert first.payloads_lost > 0
        # same seed, same drops: the loss process is part of the
        # deterministic replay surface
        assert first.payloads_lost == second.payloads_lost
        assert first.records_sent == second.records_sent

    def test_lossy_rounds_still_converge(self):
        disc = GossipDiscovery(
            fanout=2, period_s=30.0, seed=3, loss_rate=0.3
        )
        swarm, caches = mesh_swarm(n=6, discovery=disc)
        caches["d0"].add(D[0], 10)
        caches["d4"].add(D[0], 10)
        for _ in range(3 * 6 * 4):  # extra anti-entropy rounds
            disc.run_round()
        assert disc.payloads_lost > 0
        for viewer in swarm.devices():
            expected = {"d0", "d4"} - {viewer}
            assert disc.view(viewer, D[0]) == expected

    def test_loss_ships_fewer_records_than_lossless(self):
        def run(loss_rate):
            disc = GossipDiscovery(
                fanout=2, period_s=30.0, seed=3, loss_rate=loss_rate
            )
            _swarm, caches = mesh_swarm(n=6, discovery=disc)
            caches["d0"].add(D[0], 10)
            for _ in range(12):
                disc.run_round()
            return disc

        assert run(0.6).records_sent < run(0.0).records_sent
