"""Hypothesis properties of gossip discovery.

Two load-bearing invariants:

* **Bounded convergence** — absent churn, every member's view of every
  digest converges to the committed replica set within a bounded
  number of anti-entropy rounds (bound ``3·n`` is generous: push-pull
  gossip disseminates in ``O(log n)`` rounds with overwhelming
  probability, and the draws here are seeded).
* **Monotone staleness** — a device's local view never reports a
  ``(holder, digest)`` entry it has itself observed dropped: once a
  drop is known at some version, merging any record at or below that
  version cannot resurrect the entry.  (A *strictly newer* presence —
  a re-add or a new incarnation — legitimately revives it.)
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.network import NetworkModel
from repro.model.units import BYTES_PER_GB
from repro.registry.cache import ImageCache
from repro.registry.digest import digest_text
from repro.registry.discovery import GossipDiscovery, ViewRecord
from repro.registry.p2p import PeerSwarm

DIGESTS = [digest_text(f"gossip-prop-{i}") for i in range(4)]


def build_swarm(n: int, fanout: int, seed: int):
    network = NetworkModel()
    names = [f"d{i}" for i in range(n)]
    network.connect_device_mesh(names, 800.0)
    # view_cap >= n so convergence can be *exact* (partiality off).
    discovery = GossipDiscovery(fanout=fanout, view_cap=n, seed=seed)
    swarm = PeerSwarm(network, discovery=discovery)
    caches = {}
    for name in names:
        caches[name] = ImageCache(1000 / BYTES_PER_GB, name)
        swarm.add_device(name, caches[name], region="r0")
    return swarm, caches, discovery


def fully_converged(swarm, discovery) -> bool:
    for viewer in swarm.devices():
        for digest in DIGESTS:
            truth = swarm.index.holders(digest) - {viewer}
            if discovery.view(viewer, digest) != truth:
                return False
    return True


class TestBoundedConvergence:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=10),
        fanout=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        placement=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.sampled_from(DIGESTS),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_views_converge_within_3n_rounds(self, n, fanout, seed, placement):
        swarm, caches, discovery = build_swarm(n, fanout, seed)
        for device_idx, digest in placement:
            caches[f"d{device_idx % n}"].add(digest, 10)
        rounds = 0
        while not fully_converged(swarm, discovery):
            discovery.run_round()
            rounds += 1
            assert rounds <= 3 * n, (
                f"views not converged after {rounds} rounds "
                f"(n={n}, fanout={fanout}, seed={seed})"
            )
        # And convergence is stable: more rounds change nothing.
        discovery.run_round()
        assert fully_converged(swarm, discovery)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_drops_also_converge(self, n, seed):
        swarm, caches, discovery = build_swarm(n, fanout=2, seed=seed)
        for name in list(caches)[: max(2, n // 2)]:
            caches[name].add(DIGESTS[0], 10)
        for _ in range(3 * n):
            discovery.run_round()
        caches["d0"].remove(DIGESTS[0])
        rounds = 0
        while not fully_converged(swarm, discovery):
            discovery.run_round()
            rounds += 1
            assert rounds <= 3 * n
        for viewer in swarm.devices():
            assert "d0" not in discovery.view(viewer, DIGESTS[0])


#: Version-ordered events a viewer can observe about one (holder,
#: digest) pair, as (incarnation, seq, present) triples.
records = st.builds(
    ViewRecord,
    incarnation=st.integers(min_value=1, max_value=3),
    seq=st.integers(min_value=0, max_value=6),
    present=st.booleans(),
)


class TestMonotoneStaleness:
    @settings(max_examples=100, deadline=None)
    @given(
        drop=st.tuples(
            st.integers(min_value=1, max_value=3),
            st.integers(min_value=0, max_value=6),
        ),
        merges=st.lists(records, max_size=12),
    )
    def test_observed_drop_is_never_resurrected_by_older_records(
        self, drop, merges
    ):
        """After observing holder h drop a digest at version v, no
        sequence of merges with records of version <= v makes the view
        report h again."""
        swarm, caches, discovery = build_swarm(3, fanout=1, seed=0)
        holder, viewer, digest = "d1", "d0", DIGESTS[0]
        inc, seq = drop
        drop_record = ViewRecord(inc, seq, False)
        discovery._merge(viewer, [(holder, digest, drop_record)])
        assert holder not in discovery.view(viewer, digest)
        for record in merges:
            discovery._merge(viewer, [(holder, digest, record)])
        reported = holder in discovery.view(viewer, digest)
        # The entry may only be reported if some merged record was a
        # *strictly newer* presence than the observed drop.
        legitimately_revived = any(
            r.present and r.version > drop_record.version for r in merges
        )
        if not legitimately_revived:
            assert not reported

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_record_miss_suppression_survives_equal_version_gossip(
        self, seed
    ):
        """A stale-miss suppression is not undone by re-hearing the
        same (equal-version) rumour from another peer."""
        swarm, caches, discovery = build_swarm(4, fanout=2, seed=seed)
        caches["d1"].add(DIGESTS[0], 10)
        for _ in range(12):
            discovery.run_round()
        assert "d1" in discovery.view("d0", DIGESTS[0])
        caches["d1"].remove(DIGESTS[0])
        # d0 trips over the stale entry before gossip spreads the drop;
        # re-merge every *other* participant's (old) knowledge at d0.
        discovery.record_miss("d0", "d1", DIGESTS[0])
        for other in ("d2", "d3"):
            discovery._merge("d0", discovery._payload(other))
        assert "d1" not in discovery.view("d0", DIGESTS[0])
