"""MinIO-style object store: buckets, objects, quota, multipart."""

import pytest

from repro.registry.minio import (
    BucketAlreadyExists,
    MinioError,
    MinioStore,
    NoSuchBucket,
    NoSuchKey,
    QuotaExceeded,
    UploadNotFound,
)


@pytest.fixture
def store():
    s = MinioStore(capacity_gb=0.001)  # 1 MB quota for quota tests
    s.make_bucket("b")
    return s


class TestBuckets:
    def test_create_and_list(self, store):
        store.make_bucket("other")
        assert set(store.list_buckets()) == {"b", "other"}

    def test_duplicate_bucket_rejected(self, store):
        with pytest.raises(BucketAlreadyExists):
            store.make_bucket("b")

    def test_missing_bucket_raises(self, store):
        with pytest.raises(NoSuchBucket):
            store.put_object("ghost", "k", b"x")

    def test_remove_empty_bucket(self, store):
        store.make_bucket("tmp")
        store.remove_bucket("tmp")
        assert not store.bucket_exists("tmp")

    def test_remove_non_empty_bucket_rejected(self, store):
        store.put_object("b", "k", b"x")
        with pytest.raises(MinioError):
            store.remove_bucket("b")


class TestObjects:
    def test_put_get_round_trip(self, store):
        store.put_object("b", "path/to/obj", b"hello")
        assert store.get_object("b", "path/to/obj") == b"hello"

    def test_stat(self, store):
        info = store.put_object("b", "k", b"hello")
        assert info.size_bytes == 5
        assert store.stat_object("b", "k").etag == info.etag

    def test_overwrite_allowed(self, store):
        store.put_object("b", "k", b"v1")
        store.put_object("b", "k", b"v2")
        assert store.get_object("b", "k") == b"v2"

    def test_etag_is_content_hash(self, store):
        a = store.put_object("b", "k1", b"same")
        c = store.put_object("b", "k2", b"same")
        assert a.etag == c.etag

    def test_missing_key_raises(self, store):
        with pytest.raises(NoSuchKey):
            store.get_object("b", "ghost")

    def test_remove_object(self, store):
        store.put_object("b", "k", b"x")
        store.remove_object("b", "k")
        assert not store.object_exists("b", "k")

    def test_list_objects_prefix_sorted(self, store):
        store.put_object("b", "blobs/2", b"x")
        store.put_object("b", "blobs/1", b"x")
        store.put_object("b", "manifests/1", b"x")
        keys = [o.key for o in store.list_objects("b", prefix="blobs/")]
        assert keys == ["blobs/1", "blobs/2"]

    def test_synthetic_object(self, store):
        info = store.put_synthetic_object("b", "big", 500)
        assert info.size_bytes == 500
        with pytest.raises(MinioError):
            store.get_object("b", "big")  # no bytes to read


class TestQuota:
    def test_quota_enforced(self, store):
        store.put_synthetic_object("b", "a", 900_000)
        with pytest.raises(QuotaExceeded):
            store.put_synthetic_object("b", "c", 200_000)

    def test_overwrite_frees_old_size(self, store):
        store.put_synthetic_object("b", "a", 900_000)
        # Replacing the same key with a slightly larger object fits.
        store.put_synthetic_object("b", "a", 950_000)
        assert store.used_bytes() == 950_000

    def test_unlimited_when_none(self):
        s = MinioStore(capacity_gb=None)
        s.make_bucket("b")
        s.put_synthetic_object("b", "huge", 10**12)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MinioStore(capacity_gb=0.0)


class TestMultipart:
    def test_parts_assemble_in_order(self, store):
        upload = store.initiate_multipart("b", "assembled")
        store.upload_part(upload, 2, b"world")
        store.upload_part(upload, 1, b"hello ")
        info = store.complete_multipart(upload)
        assert store.get_object("b", "assembled") == b"hello world"
        assert info.size_bytes == 11

    def test_abort_discards(self, store):
        upload = store.initiate_multipart("b", "k")
        store.upload_part(upload, 1, b"x")
        store.abort_multipart(upload)
        with pytest.raises(UploadNotFound):
            store.complete_multipart(upload)

    def test_complete_empty_rejected(self, store):
        upload = store.initiate_multipart("b", "k")
        with pytest.raises(MinioError):
            store.complete_multipart(upload)

    def test_part_numbers_start_at_one(self, store):
        upload = store.initiate_multipart("b", "k")
        with pytest.raises(ValueError):
            store.upload_part(upload, 0, b"x")

    def test_unknown_upload_rejected(self, store):
        with pytest.raises(UploadNotFound):
            store.upload_part("bogus", 1, b"x")
