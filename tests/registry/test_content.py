"""Content addressing: digests, blob store, manifests, repositories."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.device import Arch
from repro.registry.blobstore import BlobNotFound, BlobRecord, BlobStore
from repro.registry.digest import (
    digest_bytes,
    digest_text,
    is_digest,
    short_digest,
    validate_digest,
)
from repro.registry.manifest import ImageManifest, LayerDescriptor, ManifestList
from repro.registry.repository import ManifestNotFound, Repository, RepositoryIndex


class TestDigest:
    def test_format(self):
        d = digest_bytes(b"hello")
        assert d.startswith("sha256:") and len(d) == 71
        assert is_digest(d)

    def test_text_matches_bytes(self):
        assert digest_text("abc") == digest_bytes(b"abc")

    def test_deterministic(self):
        assert digest_bytes(b"x") == digest_bytes(b"x")

    def test_distinct_content_distinct_digest(self):
        assert digest_bytes(b"a") != digest_bytes(b"b")

    @pytest.mark.parametrize(
        "bad", ["", "sha256:xyz", "sha1:" + "0" * 40, "sha256:" + "0" * 63]
    )
    def test_invalid_rejected(self, bad):
        assert not is_digest(bad)
        with pytest.raises(ValueError):
            validate_digest(bad)

    def test_short_digest(self):
        d = digest_bytes(b"hello")
        assert short_digest(d) == d[7:19]

    @given(data=st.binary(max_size=256))
    def test_digest_always_valid(self, data):
        assert is_digest(digest_bytes(data))


class TestBlobStore:
    def test_put_get_round_trip(self):
        store = BlobStore()
        rec = store.put_bytes(b"payload")
        assert store.get(rec.digest).data == b"payload"
        assert store.stat(rec.digest) == 7

    def test_put_idempotent(self):
        store = BlobStore()
        a = store.put_bytes(b"x")
        b = store.put_bytes(b"x")
        assert a is b
        assert len(store) == 1

    def test_synthetic_blob(self):
        store = BlobStore()
        d = digest_text("layer:fake")
        rec = store.put_synthetic(d, 5_000_000)
        assert rec.size_bytes == 5_000_000
        assert not rec.materialised

    def test_synthetic_size_collision_rejected(self):
        store = BlobStore()
        d = digest_text("layer:fake")
        store.put_synthetic(d, 100)
        with pytest.raises(ValueError):
            store.put_synthetic(d, 200)

    def test_missing_raises_blob_not_found(self):
        with pytest.raises(BlobNotFound):
            BlobStore().get(digest_text("ghost"))

    def test_delete(self):
        store = BlobStore()
        rec = store.put_bytes(b"x")
        store.delete(rec.digest)
        assert rec.digest not in store

    def test_total_bytes_dedup(self):
        store = BlobStore()
        store.put_bytes(b"abc")
        store.put_bytes(b"abc")
        store.put_bytes(b"defg")
        assert store.total_bytes() == 7

    def test_record_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BlobRecord(digest=digest_bytes(b"x"), size_bytes=99, data=b"x")


def make_manifest(arch=Arch.AMD64, n_layers=2, salt=""):
    layers = tuple(
        LayerDescriptor(digest_text(f"layer{salt}:{i}"), 100 * (i + 1))
        for i in range(n_layers)
    )
    return ImageManifest(
        arch=arch, config_digest=digest_text(f"config{salt}"), layers=layers
    )


class TestManifest:
    def test_total_layer_bytes(self):
        assert make_manifest(n_layers=3).total_layer_bytes == 600

    def test_digest_stable(self):
        assert make_manifest().digest == make_manifest().digest

    def test_digest_depends_on_layers(self):
        assert make_manifest(salt="a").digest != make_manifest(salt="b").digest

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError):
            ImageManifest(
                arch=Arch.AMD64, config_digest=digest_text("c"), layers=()
            )

    def test_canonical_json_parses(self):
        import json

        obj = json.loads(make_manifest().canonical_json())
        assert obj["schemaVersion"] == 2
        assert obj["architecture"] == "amd64"


class TestManifestList:
    def test_for_arch(self):
        mlist = ManifestList(
            manifests=(make_manifest(Arch.AMD64), make_manifest(Arch.ARM64))
        )
        assert mlist.for_arch(Arch.ARM64).arch is Arch.ARM64
        assert mlist.supports(Arch.AMD64)

    def test_missing_arch_raises(self):
        mlist = ManifestList(manifests=(make_manifest(Arch.AMD64),))
        with pytest.raises(KeyError):
            mlist.for_arch(Arch.ARM64)

    def test_duplicate_arch_rejected(self):
        with pytest.raises(ValueError):
            ManifestList(
                manifests=(make_manifest(Arch.AMD64), make_manifest(Arch.AMD64))
            )

    def test_list_digest_differs_from_manifest_digest(self):
        m = make_manifest()
        mlist = ManifestList(manifests=(m,))
        assert mlist.digest != m.digest


class TestRepository:
    def test_tag_resolution(self):
        repo = Repository("aau/vp-frame")
        mlist = ManifestList(manifests=(make_manifest(),))
        digest = repo.put_manifest_list("latest", mlist)
        assert repo.resolve_list("latest") is mlist
        assert repo.resolve_list(digest) is mlist

    def test_manifest_by_digest(self):
        repo = Repository("r")
        m = make_manifest()
        repo.put_manifest_list("latest", ManifestList(manifests=(m,)))
        assert repo.resolve_manifest(m.digest) is m

    def test_retag_moves_pointer(self):
        repo = Repository("r")
        old = ManifestList(manifests=(make_manifest(salt="old"),))
        new = ManifestList(manifests=(make_manifest(salt="new"),))
        repo.put_manifest_list("latest", old)
        repo.put_manifest_list("latest", new)
        assert repo.resolve_list("latest") is new
        # the old list stays addressable by digest (immutability)
        assert repo.resolve_list(old.digest) is old

    def test_unknown_tag_raises(self):
        with pytest.raises(ManifestNotFound):
            Repository("r").resolve_list("nope")

    def test_index_get_or_create(self):
        index = RepositoryIndex()
        a = index.get_or_create("x")
        assert index.get_or_create("x") is a
        assert "x" in index
        with pytest.raises(ManifestNotFound):
            index.get("ghost")
