"""Reserve → commit admission protocol and listener-delivery hardening.

The protocol backs the time-resolved pull path: in-flight bytes hold
capacity without being *present*, so subscribers (the peer index) only
ever see layers that have fully landed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.units import BYTES_PER_GB
from repro.registry.cache import (
    CacheFull,
    ImageCache,
    ReservationError,
)
from repro.registry.digest import digest_text

D = [digest_text(f"layer-{i}") for i in range(8)]

CAPACITY = 100


def make_cache() -> ImageCache:
    return ImageCache(CAPACITY / BYTES_PER_GB, device="edge-r")


class TestReserveCommit:
    def test_reserved_digest_is_not_present_until_commit(self):
        cache = make_cache()
        events = []
        cache.subscribe(lambda e: events.append((e.kind, e.digest)))
        cache.reserve(D[0], 40)
        assert D[0] not in cache
        assert cache.reserved_bytes == 40
        assert cache.used_bytes == 0
        assert cache.free_bytes == 60
        assert events == []  # nothing announced while in flight
        assert cache.commit(D[0]) is True
        assert D[0] in cache
        assert cache.reserved_bytes == 0
        assert cache.used_bytes == 40
        assert events == [("add", D[0])]

    def test_release_frees_without_event(self):
        cache = make_cache()
        events = []
        cache.subscribe(lambda e: events.append(e.kind))
        cache.reserve(D[0], 40)
        assert cache.release(D[0]) is True
        assert cache.release(D[0]) is False
        assert cache.reserved_bytes == 0
        assert cache.free_bytes == CAPACITY
        assert events == []

    def test_double_reserve_rejected(self):
        cache = make_cache()
        cache.reserve(D[0], 10)
        with pytest.raises(ReservationError):
            cache.reserve(D[0], 10)

    def test_reserve_of_present_digest_is_refresh(self):
        cache = make_cache()
        cache.add(D[0], 30)
        cache.add(D[1], 30)
        assert cache.reserve(D[0], 30) == []
        assert cache.reserved_bytes == 0
        # The refresh bumped recency: D[1] is now the LRU victim.
        cache.add(D[2], 60)
        assert D[0] in cache and D[1] not in cache
        # Its commit is a plain recency touch.
        assert cache.commit(D[0]) is False

    def test_commit_of_unknown_digest_raises(self):
        cache = make_cache()
        with pytest.raises(ReservationError):
            cache.commit(D[0])

    def test_reserve_evicts_lru_entries(self):
        cache = make_cache()
        cache.add(D[0], 50)
        cache.add(D[1], 40)
        evicted = cache.reserve(D[2], 60)
        assert [e.digest for e in evicted] == [D[0]]
        assert D[0] not in cache and D[1] in cache

    def test_reservations_are_not_evictable(self):
        cache = make_cache()
        cache.reserve(D[0], 60)
        cache.reserve(D[1], 30)
        with pytest.raises(CacheFull):
            cache.add(D[2], 20)  # only 10 free and nothing to evict
        with pytest.raises(CacheFull):
            cache.reserve(D[3], 20)

    def test_oversized_reservation_rejected(self):
        cache = make_cache()
        with pytest.raises(CacheFull):
            cache.reserve(D[0], CAPACITY + 1)

    def test_clear_drops_reservations(self):
        cache = make_cache()
        cache.reserve(D[0], 40)
        cache.clear()
        assert cache.reserved_bytes == 0
        with pytest.raises(ReservationError):
            cache.commit(D[0])

    def test_add_can_still_fill_capacity_alongside_reservations(self):
        cache = make_cache()
        cache.reserve(D[0], 30)
        cache.add(D[1], 50)
        cache.add(D[2], 20)
        assert cache.used_bytes == 70 and cache.reserved_bytes == 30
        # Next insert must evict committed entries, never the reservation.
        cache.add(D[3], 50)
        assert cache.reserved_bytes == 30
        assert cache.used_bytes + cache.reserved_bytes <= CAPACITY


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["add", "reserve", "commit", "release", "remove"]),
            st.sampled_from(D),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=40,
    )
)
def test_capacity_invariant_under_mixed_operations(ops):
    cache = make_cache()
    for op, digest, size in ops:
        try:
            if op == "add":
                cache.add(digest, size)
            elif op == "reserve":
                cache.reserve(digest, size)
            elif op == "commit":
                cache.commit(digest)
            elif op == "release":
                cache.release(digest)
            else:
                cache.remove(digest)
        except (CacheFull, ReservationError):
            pass
        assert 0 <= cache.used_bytes + cache.reserved_bytes <= CAPACITY
        assert cache.used_bytes == sum(s for _, s in cache.entries())
        assert cache.free_bytes == (
            CAPACITY - cache.used_bytes - cache.reserved_bytes
        )
        # A digest is never both present and reserved... unless add()
        # raced a reservation, which reserve() itself forbids.
        for d, _ in cache.entries():
            if cache.is_reserved(d):
                pytest.fail(f"{d} both present and reserved")


class TestEmitHardening:
    """Regression: listeners that unsubscribe or raise mid-delivery."""

    def test_listener_unsubscribing_itself_does_not_starve_others(self):
        cache = make_cache()
        seen = []

        def flaky(event):
            seen.append("flaky")
            cache.unsubscribe(flaky)

        def steady(event):
            seen.append("steady")

        cache.subscribe(flaky)
        cache.subscribe(steady)
        cache.add(D[0], 10)
        assert seen == ["flaky", "steady"]
        seen.clear()
        cache.add(D[1], 10)
        assert seen == ["steady"]

    def test_subscribing_during_delivery_does_not_deliver_retroactively(self):
        cache = make_cache()
        seen = []

        def late(event):
            seen.append(("late", event.digest))

        def recruiter(event):
            seen.append(("recruiter", event.digest))
            cache.subscribe(late)

        cache.subscribe(recruiter)
        cache.add(D[0], 10)
        assert seen == [("recruiter", D[0])]
        cache.add(D[1], 10)
        assert ("late", D[1]) in seen

    def test_raising_listener_still_lets_others_see_the_event(self):
        cache = make_cache()
        seen = []

        def broken(event):
            raise RuntimeError("subscriber bug")

        cache.subscribe(broken)
        cache.subscribe(lambda e: seen.append(e.digest))
        with pytest.raises(RuntimeError, match="subscriber bug"):
            cache.add(D[0], 10)
        # Delivery completed before the re-raise: state and the other
        # listener are consistent.
        assert seen == [D[0]]
        assert D[0] in cache

    def test_first_of_several_errors_wins(self):
        cache = make_cache()

        def broken_a(event):
            raise RuntimeError("first")

        def broken_b(event):
            raise RuntimeError("second")

        cache.subscribe(broken_a)
        cache.subscribe(broken_b)
        with pytest.raises(RuntimeError, match="first"):
            cache.add(D[0], 10)
