"""Tests for the P2P tier: peer index, pull planner, and replicator."""

import pytest

from repro.model.device import Arch
from repro.model.network import NetworkModel
from repro.model.units import BYTES_PER_GB
from repro.registry.base import ImageReference, RegistryError
from repro.registry.cache import ImageCache
from repro.registry.digest import digest_text
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.manifest import ImageManifest, LayerDescriptor
from repro.registry.minio import MinioStore
from repro.registry.p2p import (
    AdaptiveReplicator,
    P2PRegistry,
    PeerIndex,
    PeerSwarm,
    PullPlanner,
    SourceKind,
)
from repro.registry.regional import RegionalRegistry
from repro.sim.engine import Simulator


def small_cache(capacity_bytes: int, device: str) -> ImageCache:
    return ImageCache(capacity_bytes / BYTES_PER_GB, device)


D = [digest_text(f"p2p-layer-{i}") for i in range(6)]


# ----------------------------------------------------------------------
# PeerIndex coherence
# ----------------------------------------------------------------------
class TestPeerIndex:
    def test_seeds_from_existing_entries(self):
        cache = small_cache(100, "a")
        cache.add(D[0], 10)
        index = PeerIndex()
        index.register_cache("a", cache)
        assert index.holders(D[0]) == {"a"}
        assert index.size_of(D[0]) == 10

    def test_add_and_remove_flow_through(self):
        index = PeerIndex()
        a, b = small_cache(100, "a"), small_cache(100, "b")
        index.register_cache("a", a)
        index.register_cache("b", b)
        a.add(D[0], 10)
        b.add(D[0], 10)
        assert index.holders(D[0]) == {"a", "b"}
        a.remove(D[0])
        assert index.holders(D[0]) == {"b"}
        b.clear()
        assert index.holders(D[0]) == frozenset()
        assert index.size_of(D[0]) is None
        assert index.coherence_violations() == []

    def test_coherent_under_lru_evictions(self):
        index = PeerIndex()
        cache = small_cache(30, "a")
        index.register_cache("a", cache)
        cache.add(D[0], 10)
        cache.add(D[1], 10)
        cache.add(D[2], 10)
        # Inserting D[3] must evict D[0] (LRU) and the index must see it.
        cache.add(D[3], 15)
        assert not index.holds("a", D[0])
        assert index.holds("a", D[3])
        assert index.coherence_violations() == []

    def test_coherent_under_concurrent_evictions_across_devices(self):
        # Several devices churning at once: the index must track every
        # cache exactly, including cascaded evictions from admissions.
        index = PeerIndex()
        caches = {name: small_cache(25, name) for name in ("a", "b", "c")}
        for name, cache in caches.items():
            index.register_cache(name, cache)
        for step in range(40):
            name = ("a", "b", "c")[step % 3]
            caches[name].add(D[step % len(D)], 5 + (step % 3) * 7)
            assert index.coherence_violations() == []

    def test_double_registration_rejected(self):
        index = PeerIndex()
        index.register_cache("a", small_cache(100, "a"))
        with pytest.raises(ValueError):
            index.register_cache("a", small_cache(100, "a"))


# ----------------------------------------------------------------------
# PeerSwarm lookup
# ----------------------------------------------------------------------
class TestPeerSwarm:
    def make_swarm(self):
        network = NetworkModel()
        network.connect_device_mesh(["a", "b"], 800.0)   # region r0 LAN
        network.connect_devices("a", "c", 100.0)          # cross-region
        network.connect_devices("b", "c", 50.0)
        swarm = PeerSwarm(network)
        for name, region in (("a", "r0"), ("b", "r0"), ("c", "r1")):
            swarm.add_device(name, small_cache(1000, name), region=region)
        return swarm

    def test_best_peer_prefers_same_region(self):
        swarm = self.make_swarm()
        swarm.index.cache_of("b").add(D[0], 10)
        swarm.index.cache_of("c").add(D[0], 10)
        # From a: b (same region, 800 Mbps) beats c (100 Mbps).
        assert swarm.best_peer(D[0], "a") == "b"

    def test_best_peer_falls_back_across_regions(self):
        swarm = self.make_swarm()
        swarm.index.cache_of("c").add(D[0], 10)
        assert swarm.best_peer(D[0], "a") == "c"

    def test_fastest_tie_break_is_deterministic(self):
        # Equal-bandwidth holders must resolve by device name — never
        # by set iteration order — so sweeps reproduce across runs and
        # Python versions.
        for insertion_order in (
            ("p-c", "p-a", "p-b"),
            ("p-b", "p-c", "p-a"),
            ("p-a", "p-b", "p-c"),
        ):
            network = NetworkModel()
            network.connect_device_mesh(("target",) + insertion_order, 400.0)
            swarm = PeerSwarm(network)
            swarm.add_device("target", small_cache(1000, "target"))
            for name in insertion_order:
                cache = small_cache(1000, name)
                cache.add(D[0], 10)
                swarm.add_device(name, cache)
            assert swarm.best_peer(D[0], "target") == "p-a"
            assert swarm._fastest(set(insertion_order), "target") == "p-a"

    def test_fastest_prefers_bandwidth_over_name(self):
        network = NetworkModel()
        network.connect_devices("target", "p-a", 100.0)
        network.connect_devices("target", "p-z", 900.0)
        swarm = PeerSwarm(network)
        for name in ("target", "p-a", "p-z"):
            cache = small_cache(1000, name)
            if name != "target":
                cache.add(D[0], 10)
            swarm.add_device(name, cache)
        assert swarm.best_peer(D[0], "target") == "p-z"

    def test_no_holder_no_peer(self):
        swarm = self.make_swarm()
        assert swarm.best_peer(D[0], "a") is None

    def test_requester_is_never_its_own_peer(self):
        swarm = self.make_swarm()
        swarm.index.cache_of("a").add(D[0], 10)
        assert swarm.best_peer(D[0], "a") is None

    def test_demand_drain_resets(self):
        swarm = self.make_swarm()
        swarm.record_demand(D[0], "a")
        swarm.record_demand(D[0], "a")
        swarm.record_demand(D[0], "c")
        assert swarm.drain_demand() == {(D[0], "r0"): 2, (D[0], "r1"): 1}
        assert swarm.drain_demand() == {}
        assert swarm.total_demand(D[0]) == 3


# ----------------------------------------------------------------------
# PullPlanner source selection against hand-computed cheapest paths
# ----------------------------------------------------------------------
class TestPullPlanner:
    def build(self):
        """One image, three layers, known bandwidths.

        Layer sizes: 100 MB each (100_000_000 B → 100 MB → 800 Mbit).
        Channels: peer 800 Mbps (1.0 s), regional 200 Mbps (4.0 s),
        hub 80 Mbps (10.0 s).  No RTTs, so seconds are exact.
        """
        layers = tuple(LayerDescriptor(D[i], 100_000_000) for i in range(3))
        manifest = ImageManifest(
            arch=Arch.AMD64, config_digest=digest_text("cfg"), layers=layers
        )
        hub = DockerHub(name="hub")
        regional = RegionalRegistry(name="reg", store=MinioStore(capacity_gb=10.0))
        from repro.registry.blobstore import BlobRecord

        for registry in (hub, regional):
            for layer in layers:
                registry.blobs.put_record(
                    BlobRecord(digest=layer.digest, size_bytes=layer.size_bytes)
                )
        network = NetworkModel()
        network.connect_devices("dev", "peer", 800.0)
        network.connect_registry("reg", "dev", 200.0)
        network.connect_registry("hub", "dev", 80.0)
        swarm = PeerSwarm(network)
        swarm.add_device("dev", small_cache(BYTES_PER_GB, "dev"), region="r0")
        swarm.add_device("peer", small_cache(BYTES_PER_GB, "peer"), region="r0")
        return manifest, hub, regional, swarm

    def test_local_beats_everything(self):
        manifest, hub, regional, swarm = self.build()
        cache = swarm.index.cache_of("dev")
        cache.add(D[0], 100_000_000)
        plan = PullPlanner(swarm, [regional, hub]).plan(manifest, "dev", cache)
        assert plan.layers[0].kind is SourceKind.LOCAL
        assert plan.layers[0].seconds == 0.0

    def test_peer_beats_regional_beats_hub(self):
        manifest, hub, regional, swarm = self.build()
        swarm.index.cache_of("peer").add(D[1], 100_000_000)
        cache = swarm.index.cache_of("dev")
        plan = PullPlanner(swarm, [regional, hub]).plan(manifest, "dev", cache)
        by_digest = {l.digest: l for l in plan.layers}
        # D[1]: peer at 800 Mbps → 1.0 s.
        assert by_digest[D[1]].kind is SourceKind.PEER
        assert by_digest[D[1]].source == "peer"
        assert by_digest[D[1]].seconds == pytest.approx(1.0)
        # D[0], D[2]: regional at 200 Mbps → 4.0 s (hub would be 10.0 s).
        for d in (D[0], D[2]):
            assert by_digest[d].kind is SourceKind.REGISTRY
            assert by_digest[d].source == "reg"
            assert by_digest[d].seconds == pytest.approx(4.0)
        assert plan.seconds == pytest.approx(1.0 + 4.0 + 4.0)
        assert plan.bytes_from_peers == 100_000_000
        assert plan.bytes_by_registry() == {"reg": 200_000_000}

    def test_slow_peer_loses_to_fast_registry(self):
        manifest, hub, regional, swarm = self.build()
        # Replace the peer link with a slow one: 40 Mbps → 20 s.
        network = swarm.network
        network.connect_devices("dev", "peer", 40.0)
        swarm.index.cache_of("peer").add(D[1], 100_000_000)
        cache = swarm.index.cache_of("dev")
        plan = PullPlanner(swarm, [regional, hub]).plan(manifest, "dev", cache)
        by_digest = {l.digest: l for l in plan.layers}
        assert by_digest[D[1]].kind is SourceKind.REGISTRY
        assert by_digest[D[1]].source == "reg"

    def test_hub_only_chain_uses_hub(self):
        manifest, hub, _regional, swarm = self.build()
        cache = swarm.index.cache_of("dev")
        plan = PullPlanner(swarm, [hub]).plan(manifest, "dev", cache)
        assert all(l.source == "hub" for l in plan.layers)
        assert plan.seconds == pytest.approx(30.0)

    def test_unreachable_layer_raises(self):
        manifest, hub, _regional, swarm = self.build()
        network = NetworkModel()  # no channels at all
        isolated = PeerSwarm(network)
        isolated.add_device("dev", small_cache(BYTES_PER_GB, "dev"))
        with pytest.raises(RegistryError):
            PullPlanner(isolated, [hub]).plan(
                manifest, "dev", isolated.index.cache_of("dev")
            )


# ----------------------------------------------------------------------
# P2PRegistry pulls
# ----------------------------------------------------------------------
class TestP2PRegistry:
    def build(self):
        hub = DockerHub(name="hub")
        mlist, blobs = build_image(
            "acme/app", 0.4, base=OFFICIAL_BASES["python:3.9-slim"]
        )
        hub.push_image("acme/app", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_devices("a", "b", 800.0)
        for dev in ("a", "b"):
            network.connect_registry("hub", dev, 80.0)
        swarm = PeerSwarm(network)
        for dev in ("a", "b"):
            swarm.add_device(dev, ImageCache(8.0, dev), region="r0")
        return hub, swarm, P2PRegistry(swarm, [hub])

    def test_first_pull_from_registry_second_from_peer(self):
        _hub, swarm, facade = self.build()
        ref = ImageReference("acme/app")
        first = facade.pull(ref, Arch.AMD64, "a", swarm.index.cache_of("a"))
        assert first.bytes_from_peers == 0
        assert first.bytes_by_registry() == {"hub": first.bytes_transferred}
        second = facade.pull(ref, Arch.AMD64, "b", swarm.index.cache_of("b"))
        assert second.bytes_by_registry() == {}
        assert second.bytes_from_peers == second.bytes_transferred > 0
        # And a's repeat pull is a pure cache hit.
        third = facade.pull(ref, Arch.AMD64, "a", swarm.index.cache_of("a"))
        assert third.cache_hit

    def test_pull_records_demand_for_transferred_layers(self):
        _hub, swarm, facade = self.build()
        ref = ImageReference("acme/app")
        result = facade.pull(ref, Arch.AMD64, "a", swarm.index.cache_of("a"))
        drained = swarm.drain_demand()
        assert sum(drained.values()) == len(result.plan.layers)

    def test_peer_served_pulls_are_not_metered_against_the_hub(self):
        from repro.registry.hub import PullRateLimiter

        hub = DockerHub(name="hub", rate_limiter=PullRateLimiter(limit=1))
        mlist, blobs = build_image(
            "acme/app", 0.4, base=OFFICIAL_BASES["python:3.9-slim"]
        )
        hub.push_image("acme/app", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_devices("a", "b", 800.0)
        for dev in ("a", "b"):
            network.connect_registry("hub", dev, 80.0)
        swarm = PeerSwarm(network)
        for dev in ("a", "b"):
            swarm.add_device(dev, ImageCache(8.0, dev), region="r0")
        facade = P2PRegistry(swarm, [hub])
        ref = ImageReference("acme/app")
        facade.pull(ref, Arch.AMD64, "a", swarm.index.cache_of("a"))
        # b's pull is fully peer-served: with a 1-pull hub limit it must
        # NOT consume a token (the tier's offloading promise).
        result = facade.pull(ref, Arch.AMD64, "b", swarm.index.cache_of("b"))
        assert result.bytes_from_peers == result.bytes_transferred > 0

    def test_oversized_image_raises_cache_full(self):
        # The three-tier pull keeps the two-tier client's CacheFull
        # guard: a pull that cannot fit must fail, not half-admit.
        hub, swarm, facade = self.build()
        ref = ImageReference("acme/app")
        tiny = ImageCache(0.05, "tiny")  # 50 MB < the 0.4 GB image
        swarm.index.register_cache("tiny", tiny)
        from repro.registry.cache import CacheFull

        with pytest.raises(CacheFull):
            facade.pull(ref, Arch.AMD64, "a", tiny)
        assert len(tiny) == 0  # nothing half-admitted
        assert swarm.index.coherence_violations() == []

    def test_unknown_reference_raises(self):
        _hub, _swarm, facade = self.build()
        from repro.registry.repository import ManifestNotFound

        with pytest.raises(ManifestNotFound):
            facade.pull(
                ImageReference("acme/nope"),
                Arch.AMD64,
                "a",
                facade.swarm.index.cache_of("a"),
            )


# ----------------------------------------------------------------------
# AdaptiveReplicator
# ----------------------------------------------------------------------
class TestAdaptiveReplicator:
    def build(self, regions=("r0", "r1"), per_region=2, **kwargs):
        network = NetworkModel()
        names = []
        for r, region in enumerate(regions):
            members = [f"{region}-d{i}" for i in range(per_region)]
            names.extend((m, region) for m in members)
            if len(members) > 1:
                network.connect_device_mesh(members, 800.0)
        # Cross-region links so replication sources resolve.
        all_names = [n for n, _ in names]
        for i, a in enumerate(all_names):
            for b in all_names[i + 1:]:
                if not network.has_device_channel(a, b):
                    network.connect_devices(a, b, 100.0)
        swarm = PeerSwarm(network)
        for name, region in names:
            swarm.add_device(name, small_cache(1000, name), region=region)
        sim = Simulator()
        replicator = AdaptiveReplicator(
            sim, swarm, interval_s=10.0, hot_threshold=3.0,
            target_replicas=1, **kwargs,
        )
        return sim, swarm, replicator

    def test_hot_layer_replicated_to_empty_region(self):
        sim, swarm, replicator = self.build()
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(3):
            swarm.record_demand(D[0], "r0-d1")
        cycle = replicator.run_cycle()
        assert D[0] in cycle.hot_digests
        # r1 had zero replicas and target is 1: exactly one copy lands.
        r1_holders = swarm.index.holders(D[0]) & swarm.members("r1")
        assert len(r1_holders) == 1
        assert replicator.bytes_replicated == 50
        assert swarm.index.coherence_violations() == []

    def test_cold_layers_not_replicated(self):
        _sim, swarm, replicator = self.build()
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        swarm.record_demand(D[0], "r0-d1")  # below threshold
        cycle = replicator.run_cycle()
        assert cycle.actions == ()

    def test_converges_once_demand_stops(self):
        sim, swarm, replicator = self.build()
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(5):
            swarm.record_demand(D[0], "r0-d1")
        sim.process(replicator.process(cycles=6))
        sim.run()
        assert replicator.total_actions() >= 1
        assert replicator.converged(quiet_cycles=3)
        # Replica counts stabilised at >= target in every region.
        for region in swarm.regions():
            assert swarm.index.holders(D[0]) & swarm.members(region)

    def test_unreachable_region_is_not_provisioned(self):
        # Two regions with NO inter-region channels: replication into
        # the isolated region must be skipped, not teleported.
        network = NetworkModel()
        network.connect_device_mesh(["r0-d0", "r0-d1"], 800.0)
        network.connect_device_mesh(["r1-d0", "r1-d1"], 800.0)
        swarm = PeerSwarm(network)
        for name in ("r0-d0", "r0-d1", "r1-d0", "r1-d1"):
            swarm.add_device(name, small_cache(1000, name), region=name[:2])
        sim = Simulator()
        replicator = AdaptiveReplicator(
            sim, swarm, interval_s=10.0, hot_threshold=3.0, target_replicas=1
        )
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(5):
            swarm.record_demand(D[0], "r0-d1")
        cycle = replicator.run_cycle()
        assert all(action.region != "r1" for action in cycle.actions)
        assert not (swarm.index.holders(D[0]) & swarm.members("r1"))

    def test_per_region_hotness_skips_cold_regions(self):
        # Same demand as test_hot_layer_replicated_to_empty_region,
        # but the per-region scope must NOT top up r1: nobody there
        # ever asked for the layer.
        _sim, swarm, replicator = self.build(hotness="per-region")
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(3):
            swarm.record_demand(D[0], "r0-d1")
        cycle = replicator.run_cycle()
        assert D[0] in cycle.hot_digests
        assert all(action.region == "r0" for action in cycle.actions)
        assert not (swarm.index.holders(D[0]) & swarm.members("r1"))
        assert replicator.bytes_replicated == 0  # r0 already holds it

    def test_per_region_hotness_serves_the_region_that_asked(self):
        _sim, swarm, replicator = self.build(hotness="per-region")
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(3):
            swarm.record_demand(D[0], "r1-d0")  # demand lives in r1
        replicator.run_cycle()
        r1_holders = swarm.index.holders(D[0]) & swarm.members("r1")
        assert len(r1_holders) == 1
        assert replicator.bytes_replicated == 50

    def test_per_region_demand_below_threshold_stays_cold(self):
        # Swarm-wide demand clears the threshold, but it is spread so
        # thin that no single region does: global replicates, the
        # per-region scope waits.
        _sim, swarm, replicator = self.build(
            regions=("r0", "r1", "r2"), hotness="per-region"
        )
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for device in ("r0-d1", "r1-d0", "r2-d0"):
            swarm.record_demand(D[0], device)
        cycle = replicator.run_cycle()
        assert cycle.actions == ()
        assert cycle.hot_digests == ()

    def test_unknown_hotness_scope_rejected(self):
        with pytest.raises(ValueError, match="hotness"):
            self.build(hotness="everywhere")

    def test_actions_carry_transfer_seconds(self):
        _sim, swarm, replicator = self.build()
        swarm.index.cache_of("r0-d0").add(D[0], 500)
        for _ in range(3):
            swarm.record_demand(D[0], "r0-d1")
        cycle = replicator.run_cycle()
        assert cycle.actions
        for action in cycle.actions:
            # 100 MB over a real channel: strictly positive time.
            assert action.seconds > 0.0

    def test_replication_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            sim, swarm, replicator = self.build(per_region=3)
            swarm.index.cache_of("r0-d0").add(D[0], 50)
            for _ in range(4):
                swarm.record_demand(D[0], "r0-d2")
            replicator.run_cycle()
            outcomes.append(
                [(a.digest, a.region, a.target) for c in replicator.history for a in c.actions]
            )
        assert outcomes[0] == outcomes[1]


class _FlakyChurn:
    """Duck-typed churn stub: fixed observed availability per device."""

    def __init__(self, availability):
        self._availability = availability

    def availability(self, device):
        return self._availability.get(device, 1.0)


class TestChurnAwareReplication:
    def build(self, churn=None):
        network = NetworkModel()
        names = [("r0-d0", "r0"), ("r0-d1", "r0"), ("r1-d0", "r1"), ("r1-d1", "r1")]
        all_names = [n for n, _ in names]
        for i, a in enumerate(all_names):
            for b in all_names[i + 1:]:
                network.connect_devices(a, b, 100.0)
        swarm = PeerSwarm(network)
        for name, region in names:
            swarm.add_device(name, small_cache(1000, name), region=region)
        sim = Simulator()
        replicator = AdaptiveReplicator(
            sim,
            swarm,
            interval_s=10.0,
            hot_threshold=3.0,
            target_replicas=1,
            churn=churn,
        )
        return sim, swarm, replicator

    def heat(self, swarm):
        swarm.index.cache_of("r1-d0").add(D[0], 50)
        for _ in range(3):
            swarm.record_demand(D[0], "r1-d1")

    def test_face_value_counting_without_churn(self):
        # r1 already holds one replica and target is 1: the historical
        # replicator sees the region as provisioned and does nothing.
        _sim, swarm, replicator = self.build(churn=None)
        self.heat(swarm)
        cycle = replicator.run_cycle()
        assert not any(a.region == "r1" for a in cycle.actions)

    def test_departure_prone_holder_counts_less_than_a_replica(self):
        # Same state, but the sole r1 holder has demonstrated it is
        # online only ~20% of the time: weighted count 0.2 < target 1,
        # so the region gets a second (stable) copy.
        churn = _FlakyChurn({"r1-d0": 0.2})
        _sim, swarm, replicator = self.build(churn=churn)
        self.heat(swarm)
        cycle = replicator.run_cycle()
        r1_actions = [a for a in cycle.actions if a.region == "r1"]
        assert len(r1_actions) == 1
        assert r1_actions[0].target == "r1-d1"
        assert swarm.index.holds("r1-d1", D[0])

    def test_stable_holders_keep_face_value(self):
        churn = _FlakyChurn({})  # nobody observed flaky
        _sim, swarm, replicator = self.build(churn=churn)
        self.heat(swarm)
        cycle = replicator.run_cycle()
        assert not any(a.region == "r1" for a in cycle.actions)


# ----------------------------------------------------------------------
# auto-scaled per-region hotness (hot_fraction)
# ----------------------------------------------------------------------
class TestHotFraction:
    """``hot_fraction`` replaces the absolute per-region threshold with
    a fraction of the cycle's peak (digest, region) score, so the
    policy sweep no longer needs a hand-tuned cutoff per workload."""

    def build(self, regions=("r0", "r1", "r2"), per_region=2, **kwargs):
        network = NetworkModel()
        names = []
        for region in regions:
            members = [f"{region}-d{i}" for i in range(per_region)]
            names.extend((m, region) for m in members)
            network.connect_device_mesh(members, 800.0)
        all_names = [n for n, _ in names]
        for i, a in enumerate(all_names):
            for b in all_names[i + 1:]:
                if not network.has_device_channel(a, b):
                    network.connect_devices(a, b, 100.0)
        swarm = PeerSwarm(network)
        for name, region in names:
            swarm.add_device(name, small_cache(1000, name), region=region)
        sim = Simulator()
        replicator = AdaptiveReplicator(
            sim, swarm, interval_s=10.0, hot_threshold=3.0,
            target_replicas=1, hotness="per-region", **kwargs,
        )
        return sim, swarm, replicator

    def test_requires_per_region_hotness(self):
        sim = Simulator()
        swarm = PeerSwarm(NetworkModel())
        with pytest.raises(ValueError, match="per-region"):
            AdaptiveReplicator(
                sim, swarm, interval_s=10.0, hotness="global",
                hot_fraction=0.5,
            )

    def test_bounds_are_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="hot_fraction"):
                self.build(hot_fraction=bad)

    def test_peak_region_is_hot_below_the_absolute_threshold(self):
        # Two pulls never clear the absolute cutoff (3.0); the
        # fraction-of-peak cutoff acts on them anyway, because the
        # peak pair defines this cycle's scale.
        _sim, swarm, replicator = self.build(hot_fraction=1.0)
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(2):
            swarm.record_demand(D[0], "r1-d0")
        cycle = replicator.run_cycle()
        assert D[0] in cycle.hot_digests
        assert swarm.index.holders(D[0]) & swarm.members("r1")

    def test_sub_peak_regions_stay_cold(self):
        # r1 peaks at 4 pulls, r2 trails with 1: at hot_fraction 0.8
        # the cutoff is 3.2, so only r1 is topped up.
        _sim, swarm, replicator = self.build(hot_fraction=0.8)
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        for _ in range(4):
            swarm.record_demand(D[0], "r1-d0")
        swarm.record_demand(D[0], "r2-d0")
        cycle = replicator.run_cycle()
        assert swarm.index.holders(D[0]) & swarm.members("r1")
        assert not (swarm.index.holders(D[0]) & swarm.members("r2"))

    def test_scales_with_the_cycle_peak(self):
        # The same two-pull region that was hot on its own goes cold
        # once another region pulls ten times: the threshold follows
        # the peak up — per-region hotness that needs no retuning.
        _sim, swarm, replicator = self.build(hot_fraction=0.5)
        swarm.index.cache_of("r0-d0").add(D[0], 50)
        swarm.index.cache_of("r0-d0").add(D[1], 50)
        for _ in range(2):
            swarm.record_demand(D[0], "r1-d0")
        for _ in range(10):
            swarm.record_demand(D[1], "r2-d0")
        cycle = replicator.run_cycle()
        assert D[1] in cycle.hot_digests
        assert swarm.index.holders(D[1]) & swarm.members("r2")
        # (D[0], r1) scored 2 < 0.5 * 10: cold under the scaled cutoff
        assert not (swarm.index.holders(D[0]) & swarm.members("r1"))

    def test_quiet_cycle_stays_quiet(self):
        _sim, _swarm, replicator = self.build(hot_fraction=0.5)
        cycle = replicator.run_cycle()
        assert cycle.actions == ()
        assert cycle.hot_digests == ()
