"""Hypothesis property tests for :class:`repro.registry.ImageCache`.

The invariants checked here are load-bearing for the P2P tier: the
peer index mirrors cache contents through the subscription hook, so
used-bytes accounting, completeness semantics, and eviction records
must be exact under arbitrary operation sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.device import Arch
from repro.model.units import BYTES_PER_GB
from repro.registry.cache import CacheFull, ImageCache
from repro.registry.digest import digest_text
from repro.registry.manifest import ImageManifest, LayerDescriptor

#: A small universe of digests so operation sequences collide often.
DIGESTS = [digest_text(f"layer-{i}") for i in range(8)]

CAPACITY_BYTES = 100


def make_cache() -> ImageCache:
    return ImageCache(CAPACITY_BYTES / BYTES_PER_GB, device="prop")


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.sampled_from(DIGESTS),
            st.integers(min_value=0, max_value=60),
        ),
        st.tuples(st.just("remove"), st.sampled_from(DIGESTS), st.just(0)),
        st.tuples(st.just("touch"), st.sampled_from(DIGESTS), st.just(0)),
        st.tuples(st.just("clear"), st.just(DIGESTS[0]), st.just(0)),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(operations=ops)
def test_used_bytes_never_exceed_capacity_and_match_entries(operations):
    cache = make_cache()
    for op, digest, size in operations:
        if op == "add":
            cache.add(digest, size)
        elif op == "remove":
            cache.remove(digest)
        elif op == "touch":
            cache.touch(digest)
        else:
            cache.clear()
        assert 0 <= cache.used_bytes <= cache.capacity_bytes
        assert cache.used_bytes == sum(s for _, s in cache.entries())
        assert len(cache) == len(cache.entries())


@settings(max_examples=200, deadline=None)
@given(operations=ops)
def test_eviction_records_exactly_account_for_freed_bytes(operations):
    cache = make_cache()
    mirror = {}
    for op, digest, size in operations:
        if op == "add":
            before = dict(mirror)
            evicted = cache.add(digest, size)
            mirror.pop(digest, None)
            for record in evicted:
                # Victims must have been present with exactly that size.
                assert before[record.digest] == record.size_bytes
                assert mirror.pop(record.digest) == record.size_bytes
            mirror[digest] = size
        elif op == "remove":
            cache.remove(digest)
            mirror.pop(digest, None)
        elif op == "touch":
            cache.touch(digest)
        else:
            cache.clear()
            mirror.clear()
        assert dict(cache.entries()) == mirror
        assert cache.used_bytes == sum(mirror.values())


@settings(max_examples=200, deadline=None)
@given(
    operations=ops,
    layer_idx=st.lists(
        st.integers(min_value=0, max_value=len(DIGESTS) - 1),
        min_size=1,
        max_size=4,
        unique=True,
    ),
)
def test_image_complete_iff_all_layers_present(operations, layer_idx):
    manifest = ImageManifest(
        arch=Arch.AMD64,
        config_digest=digest_text("config"),
        layers=tuple(LayerDescriptor(DIGESTS[i], 10) for i in layer_idx),
    )
    cache = make_cache()
    for op, digest, size in operations:
        if op == "add":
            cache.add(digest, size)
        elif op == "remove":
            cache.remove(digest)
        elif op == "touch":
            cache.touch(digest)
        else:
            cache.clear()
        expected = all(d in cache for d in manifest.layer_digests())
        assert cache.has_image(manifest) == expected
        assert (not cache.missing_layers(manifest)) == expected


@settings(max_examples=200, deadline=None)
@given(operations=ops)
def test_subscription_events_mirror_cache_contents(operations):
    cache = make_cache()
    shadow = {}

    def listener(event):
        if event.kind == "add":
            shadow[event.digest] = event.size_bytes
        else:  # "evict" or "remove"
            assert shadow.pop(event.digest) == event.size_bytes

    cache.subscribe(listener)
    for op, digest, size in operations:
        if op == "add":
            cache.add(digest, size)
        elif op == "remove":
            cache.remove(digest)
        elif op == "touch":
            cache.touch(digest)
        else:
            cache.clear()
        assert shadow == dict(cache.entries())


def test_oversized_entry_still_raises_and_emits_nothing():
    cache = make_cache()
    events = []
    cache.subscribe(events.append)
    with pytest.raises(CacheFull):
        cache.add(DIGESTS[0], CAPACITY_BYTES + 1)
    assert events == []
    assert cache.used_bytes == 0
