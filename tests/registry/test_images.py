"""Synthetic image fabrication: exact sizes, sharing, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.device import Arch
from repro.registry.images import (
    OFFICIAL_BASES,
    build_image,
    split_sizes,
    synthetic_blob,
)


class TestSplitSizes:
    def test_exactness(self):
        assert sum(split_sizes(1_000_003, 7, "x")) == 1_000_003

    def test_single_part(self):
        assert split_sizes(500, 1, "x") == [500]

    def test_deterministic(self):
        assert split_sizes(10**9, 5, "same") == split_sizes(10**9, 5, "same")

    def test_identity_changes_split(self):
        assert split_sizes(10**9, 5, "a") != split_sizes(10**9, 5, "b")

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_sizes(100, 0, "x")
        with pytest.raises(ValueError):
            split_sizes(-1, 2, "x")

    @given(
        total=st.integers(0, 10**10),
        parts=st.integers(1, 12),
        identity=st.text(min_size=1, max_size=10),
    )
    def test_property_exact_and_nonnegative(self, total, parts, identity):
        sizes = split_sizes(total, parts, identity)
        assert len(sizes) == parts
        assert sum(sizes) == total
        assert all(s >= 0 for s in sizes)


class TestSyntheticBlob:
    def test_same_identity_same_digest(self):
        assert synthetic_blob("x", 10).digest == synthetic_blob("x", 10).digest

    def test_different_identity_different_digest(self):
        assert synthetic_blob("x", 10).digest != synthetic_blob("y", 10).digest


class TestBuildImage:
    def test_per_arch_size_exact(self):
        mlist, _ = build_image("r/a", 2.36, base=OFFICIAL_BASES["python:3.9"])
        for manifest in mlist.manifests:
            assert manifest.total_layer_bytes == 2_360_000_000

    def test_both_archs_by_default(self):
        mlist, _ = build_image("r/a", 1.0)
        assert {m.arch for m in mlist.manifests} == {Arch.AMD64, Arch.ARM64}

    def test_blobs_cover_all_references(self):
        mlist, blobs = build_image("r/a", 1.0, base=OFFICIAL_BASES["alpine:3"])
        have = {b.digest for b in blobs}
        for manifest in mlist.manifests:
            assert manifest.config_digest in have
            assert set(manifest.layer_digests()) <= have

    def test_same_base_images_share_layers(self):
        a, _ = build_image("r/a", 1.0, base=OFFICIAL_BASES["python:3.9"])
        b, _ = build_image("r/b", 2.0, base=OFFICIAL_BASES["python:3.9"])
        shared = set(a.for_arch(Arch.AMD64).layer_digests()) & set(
            b.for_arch(Arch.AMD64).layer_digests()
        )
        base_layer_count = len(OFFICIAL_BASES["python:3.9"].layer_sizes_bytes)
        assert len(shared) == base_layer_count

    def test_different_bases_share_nothing(self):
        a, _ = build_image("r/a", 1.0, base=OFFICIAL_BASES["alpine:3"])
        b, _ = build_image("r/b", 1.0, base=OFFICIAL_BASES["python:3.9-slim"])
        assert not set(a.for_arch(Arch.AMD64).layer_digests()) & set(
            b.for_arch(Arch.AMD64).layer_digests()
        )

    def test_no_base_allowed(self):
        mlist, _ = build_image("r/a", 0.5, base=None, app_layers=2)
        assert mlist.for_arch(Arch.AMD64).total_layer_bytes == 500_000_000

    def test_empty_archs_rejected(self):
        with pytest.raises(ValueError):
            build_image("r/a", 1.0, archs=())

    def test_config_blob_is_materialised(self):
        _, blobs = build_image("r/a", 0.5)
        materialised = [b for b in blobs if b.materialised]
        assert len(materialised) == 2  # one config per arch
