"""Time-resolved three-tier pulls: commit-at-completion semantics.

What the analytic model could never test: overlapping pulls must not
source layers from peers whose copies are still in flight, saturated
seeders force re-resolution, and departing peers fail their uploads
without corrupting anything.
"""

import pytest

from repro.model.device import Arch
from repro.model.network import NetworkModel
from repro.registry.base import ImageReference
from repro.registry.cache import ImageCache
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.p2p import (
    AdaptiveReplicator,
    P2PRegistry,
    PeerSwarm,
    SourceKind,
)
from repro.sim.engine import Simulator
from repro.sim.transfers import TransferEngine

GB = 1_000_000_000


def make_swarm(n_devices=3, hub_bw=80.0, lan_bw=800.0, upload_budget=None):
    """Hub + LAN-meshed devices, one 0.5 GB image, fresh engine."""
    hub = DockerHub(name="docker-hub")
    mlist, blobs = build_image(
        "acme/app", 0.5, base=OFFICIAL_BASES["python:3.9-slim"]
    )
    hub.push_image("acme/app", "latest", mlist, blobs)
    mlist2, blobs2 = build_image(
        "acme/sibling", 0.4, base=OFFICIAL_BASES["python:3.9-slim"]
    )
    hub.push_image("acme/sibling", "latest", mlist2, blobs2)
    # A single-layer image: commit-at-completion has exactly one
    # observable admission instant, which the overlap tests pin down.
    mlist3, blobs3 = build_image("acme/mono", 0.5, base=None, app_layers=1)
    hub.push_image("acme/mono", "latest", mlist3, blobs3)

    network = NetworkModel()
    names = [f"edge-{i}" for i in range(n_devices)]
    network.connect_device_mesh(names, lan_bw)
    for name in names:
        network.connect_registry(hub.name, name, hub_bw)

    sim = Simulator()
    engine = TransferEngine(sim, network, default_upload_budget=upload_budget)
    swarm = PeerSwarm(network)
    caches = {}
    for name in names:
        caches[name] = ImageCache(12.0, name)
        swarm.add_device(name, caches[name], region="lab")
    facade = P2PRegistry(swarm, [hub])
    return sim, engine, swarm, caches, facade, hub


def pull_at(sim, engine, facade, caches, at_s, device, repo="acme/app"):
    """Schedule a pull; returns a dict filled at completion."""
    out = {}

    def proc():
        yield sim.timeout(at_s)
        result = yield from facade.pull_process(
            ImageReference(repo), Arch.AMD64, device, caches[device], engine
        )
        out["result"] = result
        out["end"] = sim.now

    sim.process(proc())
    return out


def kinds(result):
    return [layer.kind for layer in result.plan.layers]


class TestCommittedOnlySourcing:
    def test_overlapping_pull_cannot_source_in_flight_layers(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        first = pull_at(sim, engine, facade, caches, 0.0, "edge-0", "acme/mono")
        # edge-1 starts while edge-0's transfer is still in flight
        # (0.5 GB over 80 Mbit/s = 50 s): no committed replica exists,
        # so the layer must come from the registry.
        second = pull_at(sim, engine, facade, caches, 1.0, "edge-1", "acme/mono")
        sim.run()
        assert all(k is SourceKind.REGISTRY for k in kinds(first["result"]))
        assert all(k is SourceKind.REGISTRY for k in kinds(second["result"]))
        assert second["result"].bytes_from_peers == 0

    def test_layer_commits_become_visible_mid_pull(self):
        # The flip side: with a *multi-layer* image, a 1 s follower
        # legitimately peer-fetches the layers the leader has already
        # committed — per-layer re-resolution sees fresh state.
        sim, engine, swarm, caches, facade, hub = make_swarm()
        pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        second = pull_at(sim, engine, facade, caches, 1.0, "edge-1")
        sim.run()
        observed = kinds(second["result"])
        assert observed[0] is SourceKind.REGISTRY  # nothing committed at 1 s
        assert SourceKind.PEER in observed  # later layers had landed

    def test_pull_after_commit_is_peer_served(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        first = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        late = pull_at(sim, engine, facade, caches, 200.0, "edge-1")
        sim.run()
        assert first["end"] < 200.0  # sanity: seeder finished first
        assert all(k is SourceKind.PEER for k in kinds(late["result"]))
        assert late["result"].bytes_from_peers == late["result"].bytes_total
        # LAN is 10x the hub channel: the peer-served pull is faster.
        assert (late["end"] - 200.0) < (first["end"] - 0.0)

    def test_cache_admission_happens_at_completion_not_start(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        pull_at(sim, engine, facade, caches, 0.0, "edge-0", "acme/mono")
        observed = {}

        def observer():
            yield sim.timeout(10.0)  # mid-transfer
            observed["mid_cache"] = len(caches["edge-0"])
            observed["mid_reserved"] = caches["edge-0"].reserved_bytes
            observed["mid_holders"] = len(
                swarm.index.holders(
                    hub.resolve(ImageReference("acme/mono"), Arch.AMD64)
                    .layers[0]
                    .digest
                )
            )

        sim.process(observer())
        sim.run()
        # Mid-transfer: bytes are held by reservations, not entries,
        # and the peer index has no holder yet.
        assert observed["mid_cache"] == 0
        assert observed["mid_reserved"] > 0
        assert observed["mid_holders"] == 0
        assert swarm.index.coherence_violations() == []

    def test_sequential_pull_times_match_analytic_when_uncontended(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        solo = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        sim.run()
        expected = facade.plan(
            ImageReference("acme/app"), Arch.AMD64, "edge-1", caches["edge-1"]
        )
        # edge-1's plan is all-peer now; edge-0's own pull took the
        # analytic registry time because nothing contended with it.
        analytic = 0.5 * 1000 * 8 / 80.0  # size_mb * 8 / bw
        assert solo["end"] == pytest.approx(analytic)
        assert solo["result"].seconds == pytest.approx(analytic)
        assert expected.bytes_from_peers == expected.bytes_total


class TestUploadBudget:
    def test_saturated_seeder_forces_registry_fallback(self):
        sim, engine, swarm, caches, facade, hub = make_swarm(
            n_devices=3, upload_budget=1
        )
        seed = pull_at(sim, engine, facade, caches, 0.0, "edge-0", "acme/mono")
        # Both followers arrive after the seeder committed; the budget
        # allows one concurrent upload of the single layer, so exactly
        # one of them is peer-served and the other re-resolves to the
        # registry.
        a = pull_at(sim, engine, facade, caches, 100.0, "edge-1", "acme/mono")
        b = pull_at(sim, engine, facade, caches, 100.0, "edge-2", "acme/mono")
        sim.run()
        assert seed["end"] < 100.0
        served = [r["result"].bytes_from_peers for r in (a, b)]
        assert sorted(x > 0 for x in served) == [False, True]
        # Nobody failed: the saturated path fell back, loudly complete.
        assert a["result"].bytes_total == b["result"].bytes_total > 0


class TestPeerDeparture:
    def test_departing_peer_cancels_uploads_and_pull_reresolves(self):
        sim, engine, swarm, caches, facade, hub = make_swarm(lan_bw=100.0)
        seed = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        follower = pull_at(sim, engine, facade, caches, 100.0, "edge-1")

        def churn():
            yield sim.timeout(110.0)  # mid peer-transfer
            assert engine.uploads_in_flight("edge-0") > 0
            swarm.remove_device("edge-0", engine=engine)

        sim.process(churn())
        sim.run()
        result = follower["result"]
        # The pull completed despite the departure, re-resolved to the
        # registry for whatever the departed peer had not delivered.
        assert result.bytes_total > 0
        assert any(k is SourceKind.REGISTRY for k in kinds(result))
        assert caches["edge-1"].reserved_bytes == 0
        assert swarm.index.coherence_violations() == []
        assert "edge-0" not in swarm.devices()

    def test_departed_device_is_invisible_to_planning(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        seed = pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        sim.run()
        swarm.remove_device("edge-0", engine=engine)
        plan = facade.plan(
            ImageReference("acme/app"), Arch.AMD64, "edge-1", caches["edge-1"]
        )
        assert all(l.kind is SourceKind.REGISTRY for l in plan.layers)


class TestConcurrentSameDevice:
    def test_second_pull_joins_in_flight_shared_base(self):
        sim, engine, swarm, caches, facade, hub = make_swarm()
        app = pull_at(sim, engine, facade, caches, 0.0, "edge-0", "acme/app")
        sibling = pull_at(
            sim, engine, facade, caches, 1.0, "edge-0", "acme/sibling"
        )
        sim.run()
        base_digests = {
            l.digest
            for l in hub.resolve(ImageReference("acme/app"), Arch.AMD64).layers
        } & {
            l.digest
            for l in hub.resolve(
                ImageReference("acme/sibling"), Arch.AMD64
            ).layers
        }
        assert base_digests  # the two images really share a base
        shared_sources = [
            l
            for l in sibling["result"].plan.layers
            if l.digest in base_digests
        ]
        # The sibling pull waited for the in-flight base instead of
        # transferring it again: those layers resolve as LOCAL.
        assert all(l.kind is SourceKind.LOCAL for l in shared_sources)
        assert engine.started == len(app["result"].plan.layers) + sum(
            1 for l in sibling["result"].plan.layers if l.digest not in base_digests
        )


class TestReplicatorTimeResolved:
    def test_proactive_copies_commit_over_time(self):
        sim, engine, swarm, caches, facade, hub = make_swarm(n_devices=4)
        replicator = AdaptiveReplicator(
            sim,
            swarm,
            interval_s=60.0,
            hot_threshold=1.0,
            target_replicas=3,
            engine=engine,
        )
        pull_at(sim, engine, facade, caches, 0.0, "edge-0")
        pull_at(sim, engine, facade, caches, 80.0, "edge-1")
        sim.process(replicator.process(cycles=20))
        sim.run()
        assert replicator.total_actions() > 0
        assert replicator.bytes_replicated > 0
        assert swarm.index.coherence_violations() == []
        for cache in caches.values():
            assert cache.reserved_bytes == 0  # every copy landed

    def test_run_mode_time_resolved_is_deterministic(self):
        from repro.experiments.p2p import build_scenario, run_mode
        from repro.sim.transfers import TransferModel

        scenario = build_scenario(n_devices=8, n_images=4, pulls_per_device=3)
        first = run_mode(
            scenario, "hybrid+p2p", transfer_model=TransferModel.TIME_RESOLVED
        )
        second = run_mode(
            scenario, "hybrid+p2p", transfer_model=TransferModel.TIME_RESOLVED
        )
        assert first.bytes_by_registry == second.bytes_by_registry
        assert first.bytes_from_peers == second.bytes_from_peers
        assert first.transfer_s == pytest.approx(second.transfer_s)


class TestRateLimitedRegistry:
    def test_rate_limit_failure_releases_the_reservation(self):
        """Regression: a meter_pull that raises (hub rate limiting)
        must not leave the layer's reservation behind."""
        from repro.registry.hub import PullRateLimiter, RateLimitExceeded

        hub = DockerHub(
            name="docker-hub",
            rate_limiter=PullRateLimiter(limit=1, window_s=3600.0),
        )
        mlist, blobs = build_image("acme/mono", 0.5, base=None, app_layers=1)
        hub.push_image("acme/mono", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_registry(hub.name, "edge-0", 80.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        swarm = PeerSwarm(network)
        cache = ImageCache(12.0, "edge-0")
        swarm.add_device("edge-0", cache, region="lab")
        facade = P2PRegistry(swarm, [hub])
        hub.meter_pull("edge-0", 0.0)  # burn the window's only token

        def proc():
            yield from facade.pull_process(
                ImageReference("acme/mono"), Arch.AMD64, "edge-0", cache, engine
            )

        sim.process(proc())
        with pytest.raises(RateLimitExceeded):
            sim.run()
        assert cache.reserved_bytes == 0  # nothing leaked
        # Once the window resets, the same pull succeeds cleanly.
        sim2 = Simulator()
        engine2 = TransferEngine(sim2, network)
        done = {}

        def retry():
            result = yield from facade.pull_process(
                ImageReference("acme/mono"), Arch.AMD64, "edge-0", cache, engine2
            )
            done["result"] = result

        hub.rate_limiter._windows.clear()
        sim2.process(retry())
        sim2.run()
        assert done["result"].bytes_total > 0
        assert cache.reserved_bytes == 0
