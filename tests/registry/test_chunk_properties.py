"""Hypothesis properties for chunk reassembly and rarest-first order.

The reassembly invariant is the load-bearing one: whatever interleaving
of chunk completions, aborts/restarts, out-of-band inserts, and cache
evictions a simulation produces, a layer that *finishes* must hold
exactly its own bytes — every chunk landed exactly once (double commits
raise), the chunk spans tile ``[0, size)`` with no holes and no
overlaps, and no partial state (reserved bytes, ledger entries)
survives the layer's terminal transition.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.network import NetworkModel
from repro.model.units import BYTES_PER_GB
from repro.registry.base import RegistryError
from repro.registry.cache import ImageCache
from repro.registry.chunks import ChunkLedger, ChunkMap, ChunkStore, ChunkSwarmPlanner
from repro.registry.digest import digest_text
from repro.registry.hub import DockerHub
from repro.registry.p2p import PeerSwarm

LAYER = digest_text("prop-layer")
OTHER = digest_text("prop-other")

CAPACITY_BYTES = 400


def make_store():
    ledger = ChunkLedger()
    cache = ImageCache(CAPACITY_BYTES / BYTES_PER_GB, device="prop")
    return ChunkStore("prop", cache, ledger), cache, ledger


chunk_ops = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("abort"), st.just(0)),
        st.tuples(st.just("begin"), st.just(0)),
        st.tuples(st.just("insert-other"), st.integers(min_value=0, max_value=150)),
        st.tuples(st.just("insert-self"), st.just(0)),
        st.tuples(st.just("finish"), st.just(0)),
    ),
    max_size=60,
)


@settings(max_examples=300, deadline=None)
@given(
    layer_size=st.integers(min_value=0, max_value=200),
    chunk_size=st.integers(min_value=1, max_value=64),
    operations=chunk_ops,
)
def test_any_interleaving_reassembles_exactly_once(
    layer_size, chunk_size, operations
):
    store, cache, ledger = make_store()
    cmap = ChunkMap(LAYER, layer_size, chunk_size)

    for op, arg in operations:
        if op == "begin":
            if store.is_partial(LAYER):
                # a download is already in flight: starting another is
                # the scheduling bug begin_layer must reject
                with pytest.raises(RegistryError):
                    store.begin_layer(cmap)
            else:
                store.begin_layer(cmap)
        elif op == "commit":
            idx = arg % cmap.n_chunks
            if not store.is_partial(LAYER):
                # no attempt in flight (or it was absorbed): commits
                # degrade to ignored no-ops, never phantom entries
                assert store.commit_chunk(LAYER, idx) is False
            elif store.has_chunk(LAYER, idx):
                # exactly-once: re-landing a chunk is a hard error
                with pytest.raises(RegistryError):
                    store.commit_chunk(LAYER, idx)
            else:
                assert store.commit_chunk(LAYER, idx) is True
        elif op == "abort":
            store.abort_layer(LAYER)
        elif op == "insert-other":
            # eviction pressure from an unrelated layer; may legally
            # fail when reservations pin all the capacity
            try:
                cache.add(OTHER, arg)
            except Exception:
                pass
        elif op == "insert-self":
            # out-of-band instant insert of the same layer (analytic
            # replicator copy): absorbs the reservation, and — when a
            # presence event fires — the partial record with it
            cache.add(LAYER, layer_size)
        elif op == "finish":
            if store.is_partial(LAYER):
                if store.missing_chunks(LAYER):
                    with pytest.raises(RegistryError):
                        store.finish_layer(LAYER)
                else:
                    store.finish_layer(LAYER)
            elif LAYER in cache:
                store.finish_layer(LAYER)  # refresh of a landed layer

        # ---- invariants after every operation ----
        # the ledger advertises exactly the chunks the store holds for
        # its in-flight attempt, never more, never anyone else's
        committed = store.chunk_indices(LAYER)
        for idx in range(cmap.n_chunks):
            holders = ledger.chunk_holders(LAYER, idx)
            if idx in committed:
                assert holders == frozenset({"prop"})
            else:
                assert holders == frozenset()
        if not store.is_partial(LAYER):
            assert committed == frozenset()
        else:
            # partial layers hold capacity (reserved or already present)
            assert cache.is_reserved(LAYER) or LAYER in cache

    # drive the attempt to completion: the reassembled layer must hold
    # exactly its own bytes, once
    if not store.is_partial(LAYER) and LAYER not in cache:
        store.begin_layer(cmap)
    if store.is_partial(LAYER):
        for idx in store.missing_chunks(LAYER):
            store.commit_chunk(LAYER, idx)
        store.finish_layer(LAYER)
    assert LAYER in cache
    entry_bytes = dict(cache.entries())[LAYER]
    assert entry_bytes == layer_size
    assert cache.reserved_bytes == 0
    assert not store.is_partial(LAYER)
    for idx in range(cmap.n_chunks):
        assert ledger.chunk_holders(LAYER, idx) == frozenset()
    # the chunk spans tile the layer exactly: no dupes, no holes
    spans = sorted((c.offset, c.end) for c in cmap)
    assert spans[0][0] == 0
    for (a_start, a_end), (b_start, _b_end) in zip(spans, spans[1:]):
        assert a_end == b_start  # contiguous, non-overlapping
    assert spans[-1][1] == layer_size or (layer_size == 0 and spans == [(0, 0)])


@settings(max_examples=100, deadline=None)
@given(
    layer_size=st.integers(min_value=1, max_value=500),
    chunk_size=st.integers(min_value=1, max_value=64),
)
def test_chunk_maps_always_tile_exactly(layer_size, chunk_size):
    cmap = ChunkMap(LAYER, layer_size, chunk_size)
    assert sum(c.size_bytes for c in cmap) == layer_size
    offset = 0
    for chunk in cmap:
        assert chunk.offset == offset
        assert chunk.size_bytes > 0
        offset = chunk.end
    assert len({c.digest for c in cmap}) == cmap.n_chunks


def _planner(seed: int):
    hub = DockerHub(name="docker-hub")
    network = NetworkModel()
    names = [f"edge-{i}" for i in range(3)]
    network.connect_device_mesh(names, 800.0)
    for name in names:
        network.connect_registry(hub.name, name, 60.0)
    swarm = PeerSwarm(network)
    for name in names:
        swarm.add_device(name, ImageCache(1.0, name), region="lab")
    return ChunkSwarmPlanner(swarm, [hub], chunk_size_bytes=10, seed=seed)


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    layer_size=st.integers(min_value=1, max_value=400),
)
def test_rarest_first_is_deterministic_per_seed(seed, layer_size):
    cmap = ChunkMap(LAYER, layer_size, 10)
    order_a = _planner(seed).rarest_first("edge-0", cmap)
    order_b = _planner(seed).rarest_first("edge-0", cmap)
    assert order_a == order_b
    assert sorted(order_a) == list(range(cmap.n_chunks))
    # and the ordering key really is (availability, seeded hash, index)
    planner = _planner(seed)
    expected = sorted(
        range(cmap.n_chunks),
        key=lambda i: (
            planner.availability("edge-0", LAYER, i),
            planner._tiebreak("edge-0", LAYER, i),
            i,
        ),
    )
    assert planner.rarest_first("edge-0", cmap) == expected
