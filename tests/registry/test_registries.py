"""Registry behaviour: pushes, pulls, mirroring, hub CDN, regional MinIO."""

import pytest

from repro.model.device import Arch
from repro.model.registry import RegistryInfo, RegistryKind
from repro.registry.base import ImageReference, Registry, RegistryError, mirror_image
from repro.registry.hub import (
    DockerHub,
    PointOfPresence,
    PullRateLimiter,
    RateLimitExceeded,
)
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.minio import MinioStore
from repro.registry.regional import RegionalRegistry
from repro.registry.repository import ManifestNotFound


@pytest.fixture
def image():
    return build_image("acme/app", 0.5, base=OFFICIAL_BASES["alpine:3"])


@pytest.fixture
def hub(image):
    registry = DockerHub()
    mlist, blobs = image
    registry.push_image("acme/app", "latest", mlist, blobs)
    return registry


class TestImageReference:
    def test_parse_with_tag(self):
        ref = ImageReference.parse("acme/app:v2")
        assert ref.repository == "acme/app" and ref.tag == "v2"

    def test_parse_default_tag(self):
        assert ImageReference.parse("acme/app").tag == "latest"

    def test_digest_form_rejected(self):
        with pytest.raises(ValueError):
            ImageReference.parse("acme/app@sha256:" + "0" * 64)

    def test_str(self):
        assert str(ImageReference("a/b", "t")) == "a/b:t"


class TestPushPull:
    def test_push_then_resolve(self, hub):
        manifest = hub.resolve(ImageReference("acme/app"), Arch.AMD64)
        assert manifest.arch is Arch.AMD64
        assert manifest.total_layer_bytes == 500_000_000

    def test_push_missing_blobs_fails_atomically(self, image):
        registry = Registry(RegistryInfo("r", RegistryKind.HUB))
        mlist, blobs = image
        with pytest.raises(RegistryError):
            registry.push_image("acme/app", "latest", mlist, blobs[:1])
        assert "acme/app" not in registry.repositories

    def test_resolve_unknown_repo(self, hub):
        with pytest.raises(ManifestNotFound):
            hub.resolve(ImageReference("ghost/app"), Arch.AMD64)

    def test_has_image_does_not_count_pull(self, hub):
        ref = ImageReference("acme/app")
        assert hub.has_image(ref, Arch.ARM64)
        assert hub.pull_count(ref) == 0

    def test_pull_count_increments(self, hub):
        ref = ImageReference("acme/app")
        hub.resolve(ref, Arch.AMD64)
        hub.resolve(ref, Arch.ARM64)
        assert hub.pull_count(ref) == 2

    def test_fetch_blob_integrity(self, hub, image):
        mlist, _ = image
        for layer in mlist.for_arch(Arch.AMD64).layers:
            assert hub.fetch_blob(layer.digest).size_bytes == layer.size_bytes

    def test_catalog(self, hub):
        assert hub.catalog() == ["acme/app"]

    def test_storage_bytes_dedups_shared_base(self, hub):
        """Two images on the same base store the base layers once."""
        from repro.registry.images import OFFICIAL_BASES, build_image

        before = hub.storage_bytes()
        mlist2, blobs2 = build_image(
            "acme/sibling", 0.5, base=OFFICIAL_BASES["alpine:3"]
        )
        hub.push_image("acme/sibling", "latest", mlist2, blobs2)
        added = hub.storage_bytes() - before
        total2 = sum(m.total_layer_bytes for m in mlist2.manifests)
        assert added < total2  # base layers were already present


class TestMirroring:
    def test_mirror_to_regional_namespace(self, hub):
        regional = RegionalRegistry()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        manifest = regional.resolve(ImageReference("aau/app"), Arch.ARM64)
        assert manifest.arch is Arch.ARM64

    def test_mirror_preserves_digests(self, hub):
        regional = RegionalRegistry()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        src = hub.resolve(ImageReference("acme/app"), Arch.AMD64)
        dst = regional.resolve(ImageReference("aau/app"), Arch.AMD64)
        assert src.digest == dst.digest
        assert src.layer_digests() == dst.layer_digests()

    def test_mirror_is_incremental(self, hub):
        regional = RegionalRegistry()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        before = regional.persisted_blob_count()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app2")
        # Same blobs: only the new manifest object is written.
        assert regional.persisted_blob_count() == before


class TestDockerHub:
    def test_pop_selection_prefers_fastest(self):
        hub = DockerHub(
            pops=[
                PointOfPresence("slow", ("eu",), 20.0),
                PointOfPresence("fast", ("eu",), 80.0),
            ]
        )
        assert hub.pop_for_region("eu").name == "fast"
        assert hub.effective_bandwidth_mbps("eu") == 80.0

    def test_origin_fallback(self):
        hub = DockerHub(origin_bandwidth_mbps=10.0)
        assert hub.pop_for_region("mars") is None
        assert hub.effective_bandwidth_mbps("mars") == 10.0

    def test_duplicate_pop_rejected(self):
        hub = DockerHub(pops=[PointOfPresence("p", ("eu",), 10.0)])
        with pytest.raises(ValueError):
            hub.add_pop(PointOfPresence("p", ("us",), 10.0))

    def test_rate_limiter_window(self):
        limiter = PullRateLimiter(limit=2, window_s=100.0)
        limiter.record_pull("dev", 0.0)
        limiter.record_pull("dev", 1.0)
        with pytest.raises(RateLimitExceeded):
            limiter.record_pull("dev", 2.0)
        # Window rolls over: allowance resets.
        assert limiter.record_pull("dev", 101.0) == 1

    def test_rate_limiter_per_client(self):
        limiter = PullRateLimiter(limit=1, window_s=100.0)
        limiter.record_pull("a", 0.0)
        limiter.record_pull("b", 0.0)  # independent allowance

    def test_remaining(self):
        limiter = PullRateLimiter(limit=3, window_s=100.0)
        limiter.record_pull("dev", 0.0)
        assert limiter.remaining("dev", 1.0) == 2
        assert limiter.remaining("dev", 200.0) == 3

    def test_metered_hub_raises_on_exhaustion(self, image):
        hub = DockerHub(rate_limiter=PullRateLimiter(limit=1, window_s=60.0))
        mlist, blobs = image
        hub.push_image("acme/app", "latest", mlist, blobs)
        hub.meter_pull("dev", 0.0)
        with pytest.raises(RateLimitExceeded):
            hub.meter_pull("dev", 1.0)


class TestRegionalRegistry:
    def test_kind_and_persistence(self, hub):
        regional = RegionalRegistry()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        assert regional.kind is RegistryKind.REGIONAL
        assert regional.persisted_blob_count() > 0
        assert regional.persisted_bytes() == regional.storage_bytes()

    def test_capacity_enforced_before_publish(self, hub):
        tiny = RegionalRegistry(store=MinioStore(capacity_gb=0.1))
        with pytest.raises(RegistryError):
            mirror_image(hub, tiny, "acme/app", "latest", "aau/app")
        # Atomic failure: nothing half-published.
        assert "aau/app" not in tiny.repositories
        assert tiny.persisted_blob_count() == 0

    def test_free_bytes(self):
        regional = RegionalRegistry(store=MinioStore(capacity_gb=1.0))
        assert regional.free_bytes() == 10**9

    def test_manifest_persisted_as_json(self, hub):
        regional = RegionalRegistry()
        mirror_image(hub, regional, "acme/app", "latest", "aau/app")
        raw = regional.store.get_object(
            regional.bucket, regional.manifest_key("aau/app", "latest")
        )
        import json

        assert json.loads(raw)["schemaVersion"] == 2
