"""Shared fixtures.

The calibration and testbed are expensive enough (image publishing,
LP fits) to share per session.  They are safe to share: schedulers and
experiments never mutate the testbed — all mutable execution state
(caches, traces, pods) lives in per-test clusters.
"""

import pytest

from repro.workloads.apps import text_processing, video_processing
from repro.workloads.calibration import Calibration, calibrate
from repro.workloads.testbed import Testbed, build_testbed


@pytest.fixture(scope="session")
def cal() -> Calibration:
    return calibrate()


@pytest.fixture(scope="session")
def testbed(cal) -> Testbed:
    return build_testbed(cal)


@pytest.fixture(scope="session")
def video_app(cal):
    return video_processing(cal)


@pytest.fixture(scope="session")
def text_app(cal):
    return text_processing(cal)


@pytest.fixture
def env(testbed):
    return testbed.env
