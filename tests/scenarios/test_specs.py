"""Scenario specs: construction-time validation, round-tripping,
presets, and dotted overrides.

The contract under test: an invalid cross-field combination can never
reach the simulator — every one raises at spec *construction* — and a
valid spec survives ``from_dict(to_dict(spec)) == spec`` losslessly
(pinned as a Hypothesis property over the whole spec space).
"""

import json
from dataclasses import FrozenInstanceError, replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import scenarios
from repro.scenarios import (
    ChunkSpec,
    ChurnSpec,
    DiscoverySpec,
    ReplicationSpec,
    ScenarioSpec,
    TelemetrySpec,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
    with_overrides,
)
from repro.scenarios import canonical_hash, canonical_json
from repro.scenarios.spec import parse_set_flags
from repro.sim.churn import ChurnConfig
from repro.sim.transfers import TransferModel


class TestSectionValidation:
    def test_specs_are_frozen(self):
        spec = ScenarioSpec()
        with pytest.raises(FrozenInstanceError):
            spec.mode = "hybrid"
        with pytest.raises(FrozenInstanceError):
            spec.topology.n_devices = 99

    def test_swarm_needs_two_devices(self):
        with pytest.raises(ValueError, match="at least 2 devices"):
            TopologySpec(n_devices=1)

    def test_nic_shaping_must_be_positive(self):
        with pytest.raises(ValueError, match="device_nic_mbps"):
            TopologySpec(device_nic_mbps=0.0)

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ValueError, match="workload kind"):
            WorkloadSpec(kind="bursty")

    def test_cold_waves_need_a_sibling_image(self):
        with pytest.raises(ValueError, match="n_images >= 2"):
            WorkloadSpec(kind="cold-waves", n_images=1, pulls_per_device=1)

    def test_cold_waves_pull_once_per_device(self):
        with pytest.raises(ValueError, match="pulls_per_device"):
            WorkloadSpec(kind="cold-waves", n_images=2, pulls_per_device=4)

    def test_stagger_only_applies_to_cold_waves(self):
        with pytest.raises(ValueError, match="stagger_s"):
            WorkloadSpec(kind="zipf", stagger_s=5.0)

    def test_cold_waves_default_stagger_normalised(self):
        spec = WorkloadSpec(kind="cold-waves", n_images=2, pulls_per_device=1)
        assert spec.stagger_s == 1.0

    def test_upload_budget_needs_time_resolved(self):
        with pytest.raises(ValueError, match="time-resolved"):
            TransferSpec(model=TransferModel.ANALYTIC, upload_budget=2)

    def test_transfer_model_parses_underscore_alias(self):
        assert (
            TransferSpec(model="time_resolved").model
            is TransferModel.TIME_RESOLVED
        )
        assert TransferSpec(model="analytic").model is TransferModel.ANALYTIC
        with pytest.raises(ValueError, match="transfer model"):
            TransferSpec(model="psychic")

    def test_unknown_recompute_mode_rejected(self):
        with pytest.raises(ValueError, match="recompute mode"):
            TransferSpec(model="time-resolved", recompute="psychic")

    def test_incremental_recompute_needs_time_resolved(self):
        with pytest.raises(ValueError, match="time-resolved"):
            TransferSpec(
                model=TransferModel.ANALYTIC, recompute="incremental"
            )
        spec = TransferSpec(model="time-resolved", recompute="incremental")
        assert spec.recompute == "incremental"

    def test_unknown_discovery_rejected(self):
        with pytest.raises(ValueError, match="discovery"):
            DiscoverySpec(backend="psychic")

    def test_gossip_knobs_need_the_gossip_backend(self):
        with pytest.raises(ValueError, match="gossip"):
            DiscoverySpec(backend="omniscient", gossip_fanout=4)
        with pytest.raises(ValueError, match="gossip"):
            DiscoverySpec(backend="omniscient", gossip_period_s=30.0)

    def test_gossip_defaults_normalised(self):
        spec = DiscoverySpec(backend="gossip")
        assert (spec.gossip_fanout, spec.gossip_period_s,
                spec.gossip_view_cap) == (2, 60.0, 8)

    def test_churn_spec_validates_like_churn_config(self):
        with pytest.raises(ValueError):
            ChurnSpec(mean_uptime_s=0.0)
        with pytest.raises(ValueError):
            ChurnSpec(min_online=0)
        config = ChurnSpec(mean_uptime_s=50.0, min_online=3).to_config()
        assert isinstance(config, ChurnConfig)
        assert (config.mean_uptime_s, config.min_online) == (50.0, 3)
        assert ChurnSpec.from_config(config) == ChurnSpec(
            mean_uptime_s=50.0, min_online=3
        )

    def test_replication_knobs_positive(self):
        with pytest.raises(ValueError, match="interval_s"):
            ReplicationSpec(interval_s=0.0)
        with pytest.raises(ValueError, match="target_replicas"):
            ReplicationSpec(target_replicas=0)

    def test_sharded_recompute_needs_time_resolved(self):
        with pytest.raises(ValueError, match="time-resolved"):
            TransferSpec(model=TransferModel.ANALYTIC, recompute="sharded")
        spec = TransferSpec(model="time-resolved", recompute="sharded")
        assert spec.recompute == "sharded"

    def test_trunk_slices_exclude_monolithic_egress(self):
        with pytest.raises(ValueError, match="hub"):
            TopologySpec(hub_trunk_mbps=50.0, hub_egress_mbps=500.0)
        with pytest.raises(ValueError, match="regional"):
            TopologySpec(
                regional_trunk_mbps=50.0, regional_egress_mbps=300.0
            )
        with pytest.raises(ValueError, match="hub_trunk_mbps"):
            TopologySpec(hub_trunk_mbps=0.0)
        spec = TopologySpec(
            hub_trunk_mbps=50.0,
            regional_trunk_mbps=200.0,
            inter_region_mesh=False,
        )
        assert not spec.inter_region_mesh

    def test_gossip_loss_rate_bounds(self):
        with pytest.raises(ValueError, match="gossip_loss_rate"):
            DiscoverySpec(backend="gossip", gossip_loss_rate=1.0)
        with pytest.raises(ValueError, match="gossip"):
            DiscoverySpec(backend="omniscient", gossip_loss_rate=0.1)
        assert DiscoverySpec(backend="gossip").gossip_loss_rate == 0.0

    def test_hot_fraction_needs_per_region_hotness(self):
        with pytest.raises(ValueError, match="hot_fraction"):
            ReplicationSpec(hotness="per-region", hot_fraction=1.5)
        with pytest.raises(ValueError, match="per-region"):
            ReplicationSpec(hotness="global", hot_fraction=0.5)
        spec = ReplicationSpec(hotness="per-region", hot_fraction=0.5)
        assert spec.hot_fraction == 0.5

    def test_chunk_knobs_positive(self):
        with pytest.raises(ValueError, match="size_bytes"):
            ChunkSpec(size_bytes=0)
        with pytest.raises(ValueError, match="parallel"):
            ChunkSpec(parallel=0)


class TestCrossSectionValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ScenarioSpec(mode="p2p-only")

    def test_chunked_needs_time_resolved(self):
        with pytest.raises(ValueError, match="TIME_RESOLVED"):
            ScenarioSpec(chunks=ChunkSpec(enabled=True))
        # ... and is accepted with it
        spec = ScenarioSpec(
            transfer=TransferSpec(model=TransferModel.TIME_RESOLVED),
            chunks=ChunkSpec(enabled=True),
        )
        assert spec.chunks.enabled

    def test_churn_aware_replication_needs_churn(self):
        with pytest.raises(ValueError, match="churn"):
            ScenarioSpec(replication=ReplicationSpec(churn_aware=True))
        spec = ScenarioSpec(
            churn=ChurnSpec(),
            replication=ReplicationSpec(churn_aware=True),
        )
        assert spec.replication.churn_aware

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec(seed=-1)


# ----------------------------------------------------------------------
# Hypothesis: the whole valid spec space round-trips losslessly
# ----------------------------------------------------------------------
def _workloads():
    zipf = st.builds(
        WorkloadSpec,
        kind=st.just("zipf"),
        n_images=st.integers(1, 16),
        pulls_per_device=st.integers(1, 8),
        horizon_s=st.floats(60.0, 7200.0, allow_nan=False),
    )
    waves = st.builds(
        WorkloadSpec,
        kind=st.just("cold-waves"),
        n_images=st.integers(2, 8),
        pulls_per_device=st.just(1),
        horizon_s=st.floats(60.0, 7200.0, allow_nan=False),
        stagger_s=st.one_of(
            st.none(), st.floats(0.1, 30.0, allow_nan=False)
        ),
    )
    return st.one_of(zipf, waves)


def _discoveries():
    omniscient = st.just(DiscoverySpec())
    gossip = st.builds(
        DiscoverySpec,
        backend=st.just("gossip"),
        gossip_fanout=st.one_of(st.none(), st.integers(1, 8)),
        gossip_period_s=st.one_of(
            st.none(), st.floats(1.0, 600.0, allow_nan=False)
        ),
        gossip_view_cap=st.one_of(st.none(), st.integers(1, 32)),
    )
    return st.one_of(omniscient, gossip)


def _transfers_and_chunks():
    analytic = st.just(
        (TransferSpec(model=TransferModel.ANALYTIC), ChunkSpec())
    )
    time_resolved = st.tuples(
        st.builds(
            TransferSpec,
            model=st.just(TransferModel.TIME_RESOLVED),
            upload_budget=st.one_of(st.none(), st.integers(1, 8)),
            recompute=st.sampled_from(("full", "incremental")),
        ),
        st.builds(
            ChunkSpec,
            enabled=st.booleans(),
            size_bytes=st.integers(1_000_000, 128_000_000),
            parallel=st.integers(1, 8),
        ),
    )
    return st.one_of(analytic, time_resolved)


def _churn_and_replication():
    churnless = st.tuples(
        st.none(),
        st.builds(
            ReplicationSpec,
            interval_s=st.floats(1.0, 600.0, allow_nan=False),
            hot_threshold=st.floats(0.5, 10.0, allow_nan=False),
            target_replicas=st.integers(1, 4),
            churn_aware=st.just(False),
        ),
    )
    churned = st.tuples(
        st.builds(
            ChurnSpec,
            mean_uptime_s=st.floats(1.0, 3600.0, allow_nan=False),
            mean_downtime_s=st.floats(1.0, 3600.0, allow_nan=False),
            min_online=st.integers(1, 8),
        ),
        st.builds(
            ReplicationSpec,
            churn_aware=st.booleans(),
        ),
    )
    return st.one_of(churnless, churned)


@st.composite
def scenario_specs(draw):
    transfer, chunks = draw(_transfers_and_chunks())
    churn, replication = draw(_churn_and_replication())
    return ScenarioSpec(
        mode=draw(st.sampled_from(scenarios.MODES)),
        topology=draw(st.builds(
            TopologySpec,
            n_devices=st.integers(2, 64),
            n_regions=st.integers(1, 8),
            cache_gb=st.floats(1.0, 64.0, allow_nan=False),
            device_nic_mbps=st.one_of(
                st.none(), st.floats(10.0, 1000.0, allow_nan=False)
            ),
        )),
        workload=draw(_workloads()),
        transfer=transfer,
        discovery=draw(_discoveries()),
        churn=churn,
        replication=replication,
        chunks=chunks,
        seed=draw(st.integers(0, 2**31 - 1)),
    )


class TestRoundTrip:
    @given(spec=scenario_specs())
    @settings(max_examples=100, deadline=None)
    def test_from_dict_inverts_to_dict(self, spec):
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @given(spec=scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_to_dict_is_json_safe(self, spec):
        payload = json.dumps(spec.to_dict())
        assert ScenarioSpec.from_dict(json.loads(payload)) == spec

    def test_partial_dict_fills_defaults(self):
        spec = ScenarioSpec.from_dict({"mode": "hybrid"})
        assert spec == ScenarioSpec(mode="hybrid")

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec keys"):
            ScenarioSpec.from_dict({"modes": "hybrid"})

    def test_unknown_section_key_rejected(self):
        with pytest.raises(ValueError, match="TopologySpec"):
            ScenarioSpec.from_dict({"topology": {"devices": 4}})

    def test_null_section_only_for_churn(self):
        assert ScenarioSpec.from_dict({"churn": None}).churn is None
        with pytest.raises(ValueError, match="cannot be null"):
            ScenarioSpec.from_dict({"transfer": None})

    def test_transfer_model_serialises_as_value(self):
        spec = ScenarioSpec(
            transfer=TransferSpec(model=TransferModel.TIME_RESOLVED)
        )
        assert spec.to_dict()["transfer"]["model"] == "time-resolved"


class TestOverrides:
    def test_dotted_override_resolves_and_parses(self):
        spec = with_overrides(ScenarioSpec(), {
            "transfer.model": "time-resolved",
            "transfer.upload_budget": "2",
            "topology.n_devices": "24",
            "mode": "hybrid",
        })
        assert spec.transfer.model is TransferModel.TIME_RESOLVED
        assert spec.transfer.upload_budget == 2
        assert spec.topology.n_devices == 24
        assert spec.mode == "hybrid"

    def test_churn_section_created_on_demand(self):
        base = ScenarioSpec()
        assert base.churn is None
        spec = with_overrides(base, {"churn.mean_uptime_s": "600"})
        assert spec.churn == ChurnSpec(mean_uptime_s=600)

    def test_churn_clearable_with_none(self):
        base = ScenarioSpec(churn=ChurnSpec())
        assert with_overrides(base, {"churn": "none"}).churn is None

    def test_override_cannot_bypass_validation(self):
        with pytest.raises(ValueError, match="TIME_RESOLVED"):
            with_overrides(ScenarioSpec(), {"chunks.enabled": "true"})

    def test_unknown_paths_rejected(self):
        with pytest.raises(ValueError, match="unknown override section"):
            with_overrides(ScenarioSpec(), {"nonsense.field": "1"})
        with pytest.raises(ValueError, match="unknown field"):
            with_overrides(ScenarioSpec(), {"topology.devices": "4"})
        with pytest.raises(ValueError, match="too deep"):
            with_overrides(ScenarioSpec(), {"a.b.c": "1"})

    def test_parse_set_flags(self):
        assert parse_set_flags(("a.b=1", "c.d=x=y")) == {
            "a.b": "1", "c.d": "x=y",
        }
        with pytest.raises(ValueError, match="bad --set"):
            parse_set_flags(("no-equals-sign",))

    def test_all_problems_reported_in_one_error(self):
        # Three distinct mistakes -> one exception naming all three,
        # not a fix-rerun-fix loop surfacing them one at a time.
        with pytest.raises(ValueError) as excinfo:
            with_overrides(ScenarioSpec(), {
                "nonsense.field": "1",
                "topology.devices": "4",
                "a.b.c": "1",
            })
        message = str(excinfo.value)
        assert message.startswith("3 bad overrides:")
        assert "unknown override section" in message
        assert "unknown field" in message
        assert "too deep" in message

    def test_unknown_paths_suggest_the_nearest_field(self):
        with pytest.raises(ValueError, match="did you mean") as excinfo:
            with_overrides(ScenarioSpec(), {"topology.devices": "4"})
        assert "topology.n_devices" in str(excinfo.value)
        with pytest.raises(ValueError) as excinfo:
            with_overrides(ScenarioSpec(), {"discovery.gossip_fanuot": "2"})
        assert "discovery.gossip_fanout" in str(excinfo.value)
        with pytest.raises(ValueError) as excinfo:
            with_overrides(ScenarioSpec(), {"mod": "hybrid"})
        assert "did you mean 'mode'" in str(excinfo.value)


class TestCacheKey:
    def test_key_order_never_matters(self):
        spec = ScenarioSpec(mode="hybrid+p2p", seed=42)
        data = spec.to_dict()
        reordered = {
            key: (
                dict(reversed(list(value.items())))
                if isinstance(value, dict) else value
            )
            for key in reversed(list(data))
            for value in [data[key]]
        }
        assert list(reordered) != list(data)
        assert canonical_json(reordered) == canonical_json(data)
        assert canonical_hash(reordered) == canonical_hash(data)
        assert canonical_hash(reordered) == spec.cache_key()

    @given(spec=scenario_specs())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_the_key(self, spec):
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.cache_key() == spec.cache_key()

    def test_any_field_change_perturbs_the_key(self):
        base = ScenarioSpec(churn=ChurnSpec())
        perturbations = {
            "mode": "hybrid",
            "seed": 99,
            "topology.n_devices": 33,
            "topology.cache_gb": 7.5,
            "workload.n_images": 11,
            "workload.pulls_per_device": 9,
            "transfer.model": "time-resolved",
            "discovery.backend": "gossip",
            "churn.mean_uptime_s": 123.0,
            "replication.decay": 0.25,
            "replication.hotness": "per-region",
            "chunks.size_bytes": 1_000_000,
        }
        keys = {base.cache_key()}
        for path, value in perturbations.items():
            key = with_overrides(base, {path: value}).cache_key()
            assert key not in keys, f"{path} did not perturb the key"
            keys.add(key)

    def test_key_is_hex_sha256(self):
        key = ScenarioSpec().cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_equal_specs_hash_equal(self):
        assert ScenarioSpec(seed=7).cache_key() == replace(
            ScenarioSpec(), seed=7
        ).cache_key()


class TestTelemetrySection:
    def test_default_section_is_omitted_from_to_dict(self):
        # Every pre-telemetry spec dict — and therefore every cache key
        # and sweep-cell content address — must survive bit-for-bit.
        assert "telemetry" not in ScenarioSpec().to_dict()

    def test_default_section_preserves_historical_cache_key(self):
        spec = ScenarioSpec(seed=7)
        historical = dict(spec.to_dict())
        assert spec.cache_key() == canonical_hash(historical)

    def test_non_default_section_round_trips(self):
        spec = ScenarioSpec(
            telemetry=TelemetrySpec(
                trace=True, metrics_period_s=30.0, profile=True
            )
        )
        data = spec.to_dict()
        assert data["telemetry"] == {
            "trace": True, "metrics_period_s": 30.0, "profile": True,
        }
        assert ScenarioSpec.from_dict(json.loads(json.dumps(data))) == spec

    def test_non_default_section_perturbs_the_key(self):
        base = ScenarioSpec()
        keys = {base.cache_key()}
        for telemetry in (
            TelemetrySpec(trace=True),
            TelemetrySpec(metrics_period_s=60.0),
            TelemetrySpec(profile=True),
        ):
            key = replace(base, telemetry=telemetry).cache_key()
            assert key not in keys
            keys.add(key)

    def test_dotted_overrides_reach_telemetry(self):
        spec = with_overrides(
            ScenarioSpec(), {"telemetry.trace": True}
        )
        assert spec.telemetry.trace is True
        assert spec.telemetry.enabled

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySpec(metrics_period_s=0.0)
        with pytest.raises(ValueError):
            TelemetrySpec(metrics_period_s=-1.0)

    def test_enabled_property(self):
        assert not TelemetrySpec().enabled
        assert TelemetrySpec(trace=True).enabled
        assert TelemetrySpec(metrics_period_s=5.0).enabled
        assert TelemetrySpec(profile=True).enabled


class TestPresets:
    def test_every_historical_family_has_a_preset(self):
        for name in ("p2p", "p2p-contended", "p2p-gossip", "p2p-chunked"):
            assert name in scenarios.names()

    def test_presets_are_valid_and_fresh(self):
        for name in scenarios.names():
            first, second = scenarios.get(name), scenarios.get(name)
            assert first == second
            assert first is not second  # factories, not shared singletons
            # each preset round-trips like any other spec
            assert ScenarioSpec.from_dict(first.to_dict()) == first

    def test_unknown_preset_raises_with_known_names(self):
        with pytest.raises(KeyError, match="p2p-gossip"):
            scenarios.get("nope")

    def test_experiments_attached_per_family(self):
        assert set(scenarios.experiment_names()) == {
            "p2p", "p2p-contended", "p2p-gossip", "p2p-chunked",
        }
        for name in scenarios.experiment_names():
            assert callable(scenarios.experiment(name))

    def test_chunked_preset_matches_experiment_defaults(self):
        spec = scenarios.get("p2p-chunked")
        assert spec.chunks == ChunkSpec(
            enabled=True, size_bytes=16_000_000, parallel=4
        )
        assert spec.transfer.model is TransferModel.TIME_RESOLVED

    def test_swarm_scale_preset_uses_incremental_engine(self):
        spec = scenarios.get("p2p-swarm-scale")
        assert spec.transfer.model is TransferModel.TIME_RESOLVED
        assert spec.transfer.recompute == "incremental"
        assert spec.topology.n_devices == 1000
        assert spec.workload.kind == "cold-waves"
        # No hub/regional egress shaping: a shared registry uplink
        # would couple every pull into one connected component and
        # defeat the closure-local recompute the preset exercises.
        assert spec.topology.hub_egress_mbps is None
        assert spec.topology.regional_egress_mbps is None

    def test_derived_variants_via_replace(self):
        base = scenarios.get("p2p")
        hybrid = replace(base, mode="hybrid")
        assert hybrid.mode == "hybrid"
        assert hybrid.topology == base.topology
