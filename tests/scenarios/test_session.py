"""SimulationSession: assembly, equivalence with the legacy path, and
the deprecated ``run_mode`` shim.

The headline guarantees: (1) a session run is field-for-field
identical to the historical ``run_mode`` wiring on every configuration
axis (transfer model, discovery, churn, chunking), and (2) the shim
still honours the legacy keyword semantics while warning.
"""

import dataclasses

import pytest

from repro import scenarios
from repro.experiments import p2p
from repro.scenarios import (
    ChunkSpec,
    ChurnSpec,
    DiscoverySpec,
    ScenarioSpec,
    SimulationSession,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
    build_swarm_scenario,
)
from repro.sim.transfers import TransferModel


def _small_spec(**kwargs) -> ScenarioSpec:
    kwargs.setdefault("topology", TopologySpec(n_devices=6, n_regions=2))
    kwargs.setdefault(
        "workload", WorkloadSpec(kind="zipf", n_images=4, pulls_per_device=3)
    )
    return ScenarioSpec(**kwargs)


def _outcome_key(outcome) -> dict:
    # Wall-clock (and profile) fields differ between any two runs;
    # equivalence is over the deterministic surface only.
    data = scenarios.deterministic_outcome_dict(outcome.to_dict())
    data.pop("replicator")  # live-object summary, compared separately
    return data


class TestAssembly:
    def test_components_exposed_after_construction(self):
        session = SimulationSession(_small_spec(
            transfer=TransferSpec(model=TransferModel.TIME_RESOLVED),
            discovery=DiscoverySpec(backend="gossip"),
            churn=ChurnSpec(),
        ))
        assert session.engine is not None
        assert session.discovery is not None
        assert session.churn_process is not None
        assert session.replicator is not None
        assert set(session.caches) == {
            dev.name for dev in session.scenario.devices
        }
        assert session.facade.name == "hybrid+p2p"

    def test_peerless_modes_carry_no_replicator(self):
        session = SimulationSession(_small_spec(mode="hybrid"))
        assert session.replicator is None
        assert session.facade.planner.use_peers is False

    def test_hub_only_chain_is_single_tier(self):
        session = SimulationSession(_small_spec(mode="hub-only"))
        assert [r.name for r in session.facade.registries] == ["docker-hub"]

    def test_sessions_are_single_use(self):
        session = SimulationSession(_small_spec())
        session.run()
        with pytest.raises(RuntimeError, match="single-use"):
            session.run()

    def test_prebuilt_scenario_seed_must_match(self):
        spec = _small_spec(seed=3)
        scenario = build_swarm_scenario(spec)
        with pytest.raises(ValueError, match="seed"):
            SimulationSession(
                dataclasses.replace(spec, seed=4), scenario=scenario
            )


class TestLegacyEquivalence:
    """New-API outputs pinned to the legacy ``run_mode`` path."""

    CASES = {
        "analytic-omniscient": dict(),
        "time-resolved": dict(
            transfer=TransferSpec(
                model=TransferModel.TIME_RESOLVED, upload_budget=2
            ),
        ),
        "gossip-churn": dict(
            discovery=DiscoverySpec(backend="gossip", gossip_period_s=120.0),
            churn=ChurnSpec(
                mean_uptime_s=400.0, mean_downtime_s=200.0, min_online=3
            ),
        ),
        "chunked": dict(
            transfer=TransferSpec(
                model=TransferModel.TIME_RESOLVED, upload_budget=2
            ),
            chunks=ChunkSpec(enabled=True, size_bytes=16_000_000),
        ),
    }

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_session_matches_run_mode(self, case):
        kwargs = self.CASES[case]
        spec = _small_spec(**kwargs)
        scenario = build_swarm_scenario(spec)
        legacy_kwargs = dict(
            transfer_model=spec.transfer.model,
            upload_budget=spec.transfer.upload_budget,
            discovery=spec.discovery.backend,
            churn=None if spec.churn is None else spec.churn.to_config(),
            chunked=spec.chunks.enabled,
            chunk_size_bytes=spec.chunks.size_bytes,
        )
        if spec.discovery.backend == "gossip":
            legacy_kwargs.update(
                gossip_fanout=spec.discovery.gossip_fanout,
                gossip_period_s=spec.discovery.gossip_period_s,
                gossip_view_cap=spec.discovery.gossip_view_cap,
            )
        with pytest.deprecated_call():
            legacy = p2p.run_mode(scenario, spec.mode, **legacy_kwargs)
        fresh = SimulationSession(spec).run()
        assert _outcome_key(fresh) == _outcome_key(legacy)
        assert (fresh.to_dict()["replicator"] is None) == (
            legacy.to_dict()["replicator"] is None
        )

    def test_spec_built_scenario_matches_legacy_builders(self):
        spec = _small_spec(seed=11)
        new = build_swarm_scenario(spec)
        old = p2p.build_scenario(
            n_devices=6, n_images=4, pulls_per_device=3, n_regions=2, seed=11
        )
        assert [d.name for d in new.devices] == [d.name for d in old.devices]
        assert new.schedule == old.schedule

        contended_spec = ScenarioSpec(
            topology=TopologySpec(
                n_devices=4,
                n_regions=2,
                device_nic_mbps=400.0,
                hub_egress_mbps=500.0,
                regional_egress_mbps=300.0,
            ),
            workload=WorkloadSpec(
                kind="cold-waves", n_images=2, pulls_per_device=1,
                stagger_s=2.0,
            ),
        )
        new_contended = build_swarm_scenario(contended_spec)
        old_contended = p2p.build_contended_scenario(
            n_devices=4, n_regions=2, stagger_s=2.0
        )
        assert new_contended.schedule == old_contended.schedule


class TestRunModeShim:
    def test_run_mode_warns_deprecation(self):
        scenario = p2p.build_scenario(n_devices=4, n_images=3)
        with pytest.deprecated_call():
            p2p.run_mode(scenario, "hybrid")

    def test_legacy_upload_budget_ignored_under_analytic(self):
        # The historical signature accepted (and ignored) an upload
        # budget with the analytic model; the shim must not let the
        # spec validation reject it.
        scenario = p2p.build_scenario(n_devices=4, n_images=3)
        with pytest.deprecated_call():
            outcome = p2p.run_mode(scenario, "hybrid", upload_budget=2)
        assert outcome.pulls == len(scenario.schedule)

    def test_legacy_churn_aware_without_churn_is_noop(self):
        scenario = p2p.build_scenario(n_devices=4, n_images=3)
        with pytest.deprecated_call():
            outcome = p2p.run_mode(
                scenario, "hybrid+p2p", replicator_churn_aware=True
            )
        assert outcome.pulls == len(scenario.schedule)

    def test_legacy_gossip_knobs_ignored_under_omniscient(self):
        scenario = p2p.build_scenario(n_devices=4, n_images=3)
        with pytest.deprecated_call():
            outcome = p2p.run_mode(scenario, "hybrid+p2p", gossip_fanout=7)
        assert outcome.gossip_rounds == 0


class TestModeOutcomeDict:
    def test_to_dict_is_json_safe_and_complete(self):
        import json

        outcome = SimulationSession(_small_spec()).run()
        data = outcome.to_dict()
        json.dumps(data)
        assert data["pulls"] == outcome.pulls
        assert data["origin_bytes"] == outcome.origin_bytes
        assert data["hit_ratio"] == outcome.hit_ratio
        assert data["replicator"]["converged"] in (True, False)

    def test_outcome_reports_wall_clock_split(self):
        session = SimulationSession(_small_spec())
        outcome = session.run()
        data = outcome.to_dict()
        # Assembly and run are timed separately: both phases take
        # measurably nonzero wall time even on a tiny spec.
        assert data["wall_build_s"] > 0.0
        assert data["wall_run_s"] > 0.0
        # Telemetry defaults off, so no profile rides along.
        assert data["engine_profile"] is None

    def test_peerless_outcome_reports_null_replicator(self):
        outcome = SimulationSession(_small_spec(mode="hybrid")).run()
        assert outcome.to_dict()["replicator"] is None


class TestPresetSessions:
    def test_preset_variant_runs_end_to_end(self):
        # A preset shrunk via overrides must assemble and run whole.
        spec = scenarios.with_overrides(scenarios.get("p2p-gossip"), {
            "topology.n_devices": 6,
            "topology.n_regions": 2,
            "workload.n_images": 3,
            "workload.pulls_per_device": 2,
            "churn.min_online": 2,
        })
        outcome = SimulationSession(spec).run()
        assert outcome.pulls + outcome.skipped_pulls == 12
        assert outcome.gossip_rounds > 0
