"""Chunked swarm pulls end to end: experiment driver, CLI surface.

The acceptance criteria of the chunking subsystem, pinned as tests:
with ``chunked=False`` the experiment driver behaves exactly as
before (covered by the bit-for-bit suite elsewhere); with
``chunked=True`` a contended cold-start wave completes measurably
faster than single-source pulls, origin traffic drops, and mid-wave
seeder departures waste chunk-sized — not layer-sized — byte counts.
"""

import pytest

from repro.experiments import p2p
from repro.sim.churn import ChurnConfig
from repro.sim.transfers import TransferModel


@pytest.fixture(scope="module")
def wave_outcomes():
    """The cold contended wave under both planners (no churn)."""
    out = {}
    for chunked in (False, True):
        scenario = p2p.build_contended_scenario(n_devices=8, n_regions=2)
        out[chunked] = p2p.run_mode(
            scenario,
            "hybrid+p2p",
            transfer_model=TransferModel.TIME_RESOLVED,
            upload_budget=2,
            chunked=chunked,
            chunk_size_bytes=16_000_000,
        )
    return out


class TestChunkedWave:
    def test_chunked_reduces_cold_start_makespan(self, wave_outcomes):
        single, chunked = wave_outcomes[False], wave_outcomes[True]
        assert single.pulls == chunked.pulls
        assert chunked.longest_pull_s < single.longest_pull_s
        # "measurable": at least 5% on this deliberately contended wave
        assert chunked.longest_pull_s < 0.95 * single.longest_pull_s

    def test_chunked_offloads_the_origin_on_a_cold_wave(self, wave_outcomes):
        single, chunked = wave_outcomes[False], wave_outcomes[True]
        assert chunked.origin_bytes < single.origin_bytes
        assert chunked.bytes_from_peers > single.bytes_from_peers

    def test_no_waste_without_churn(self, wave_outcomes):
        for outcome in wave_outcomes.values():
            assert outcome.bytes_wasted == 0

    def test_all_pulls_account_identical_totals(self, wave_outcomes):
        single, chunked = wave_outcomes[False], wave_outcomes[True]
        single_total = single.origin_bytes + single.bytes_from_peers
        chunked_total = chunked.origin_bytes + chunked.bytes_from_peers
        # same workload, same bytes landed — only the sources differ
        # (replicator copies are metered separately in both runs)
        assert single_total == chunked_total

    def test_chunked_requires_the_time_resolved_model(self):
        scenario = p2p.build_contended_scenario(n_devices=4)
        with pytest.raises(ValueError, match="TIME_RESOLVED"):
            p2p.run_mode(scenario, "hybrid+p2p", chunked=True)


class TestChunkedUnderChurn:
    def test_seeder_churn_wastes_less_with_chunking(self):
        churn = ChurnConfig(
            mean_uptime_s=25.0, mean_downtime_s=100.0, min_online=2
        )
        outcomes = {}
        for chunked in (False, True):
            scenario = p2p.build_contended_scenario(
                n_devices=8, n_regions=2, stagger_s=10.0
            )
            outcomes[chunked] = p2p.run_mode(
                scenario,
                "hybrid+p2p",
                transfer_model=TransferModel.TIME_RESOLVED,
                upload_budget=2,
                churn=churn,
                chunked=chunked,
                chunk_size_bytes=16_000_000,
                replicator_churn_aware=chunked,
            )
        single, chunked_out = outcomes[False], outcomes[True]
        # the flaky regime must actually exercise mid-flight fallback
        assert single.bytes_wasted > 0
        # whole-layer restarts waste more than chunk re-resolution
        assert chunked_out.bytes_wasted < single.bytes_wasted


class TestChunkedExperiment:
    def test_run_chunked_renders_and_reports_the_reduction(self):
        result = p2p.run_chunked(n_devices=6, seed=3)
        text = result.to_text()
        assert "single-source" in text
        assert "chunked" in text
        assert "wave makespan" in text
        rows = {
            (row["churn"], row["planner"]): row for row in result.rows
        }
        cold_single = rows[("cold-wave", "single-source")]
        cold_chunked = rows[("cold-wave", "chunked")]
        assert cold_chunked["wave_makespan_s"] < cold_single["wave_makespan_s"]
        flaky_single = rows[("seeder-flaky", "single-source")]
        flaky_chunked = rows[("seeder-flaky", "chunked")]
        assert flaky_chunked["wasted_mb"] <= flaky_single["wasted_mb"]


class TestPeerlessModesStayPeerless:
    def test_chunked_hybrid_never_uses_peers(self):
        # run_mode passes chunked to every mode; the peer-less tiers
        # must stay peer-less when chunked (use_peers gates chunks too)
        scenario = p2p.build_contended_scenario(n_devices=6, n_regions=2)
        outcome = p2p.run_mode(
            scenario,
            "hybrid",
            transfer_model=TransferModel.TIME_RESOLVED,
            chunked=True,
            chunk_size_bytes=16_000_000,
        )
        assert outcome.bytes_from_peers == 0
        assert outcome.pulls == len(scenario.schedule)
