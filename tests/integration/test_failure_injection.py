"""Failure injection: the stack fails loudly and atomically.

A production scheduler/orchestrator is defined as much by its failure
behaviour as by its happy path.  These tests inject the realistic
failures — missing images, exhausted storage, rate-limited hubs,
infeasible requirements — and assert precise, non-corrupting failure
modes.
"""

import pytest

from repro.core.environment import Environment
from repro.core.placement import PlacementError, PlacementPlan
from repro.core.scheduler import DeepScheduler
from repro.experiments.runner import make_cluster
from repro.model.application import (
    Application,
    Microservice,
    ResourceRequirements,
)
from repro.orchestrator import ApplicationController, PodPhase
from repro.registry.base import ImageReference
from repro.registry.cache import CacheFull, ImageCache
from repro.registry.hub import PullRateLimiter, RateLimitExceeded
from repro.registry.repository import ManifestNotFound


class TestSchedulingFailures:
    def test_unsatisfiable_cores_fail_fast(self, testbed):
        monster = Application(
            "monster",
            [
                Microservice(
                    name="m", image="vp-frame", size_gb=0.7,
                    requirements=ResourceRequirements(cores=64),
                )
            ],
        )
        with pytest.raises(PlacementError, match="no feasible"):
            DeepScheduler().schedule(monster, testbed.env)

    def test_image_hosted_nowhere(self, testbed, video_app):
        dark = Environment(
            fleet=testbed.env.fleet,
            network=testbed.env.network,
            registries=testbed.env.registries,
            availability=lambda reg, img: img != "vp-ha-train",
            intensity=testbed.env.intensity,
        )
        with pytest.raises(PlacementError, match="vp-ha-train"):
            DeepScheduler().schedule(video_app, dark)

    def test_oversized_image_fails(self, testbed):
        whale = Application(
            "whale",
            [Microservice(name="w", image="vp-frame", size_gb=500.0)],
        )
        with pytest.raises(PlacementError):
            DeepScheduler().schedule(whale, testbed.env)


class TestRolloutFailures:
    def test_missing_image_fails_pod_and_raises(self, testbed, video_app):
        plan = DeepScheduler().schedule(video_app, testbed.env).plan
        cluster = make_cluster(testbed)
        controller = ApplicationController(cluster)
        # Corrupt the reference table: point one image at a ghost repo.
        broken = dict(testbed.references)
        key = ("docker-hub", "vp-frame")
        if plan.registry_of("vp-frame") == "regional":
            key = ("regional", "vp-frame")
        broken[key] = ImageReference("ghost/nowhere")
        with pytest.raises((ManifestNotFound, RuntimeError)):
            controller.execute(video_app, plan, broken)
        failed = [p for p in controller_failed_pods(controller)]
        assert any(p.service == "vp-frame" for p in failed)

    def test_rate_limited_hub_mid_rollout(self, testbed, video_app):
        plan = DeepScheduler().schedule(video_app, testbed.env).plan
        hub_pulls = sum(1 for a in plan if a.registry == "docker-hub")
        assert hub_pulls >= 2
        cluster = make_cluster(testbed)
        limiter = PullRateLimiter(limit=1, window_s=1e9)
        testbed.hub.rate_limiter = limiter
        try:
            with pytest.raises(RateLimitExceeded):
                ApplicationController(cluster).execute(
                    video_app, plan, testbed.references
                )
        finally:
            testbed.hub.rate_limiter = None  # restore shared fixture


class TestCacheFailures:
    def test_image_larger_than_device_storage(self, testbed):
        cache = ImageCache(0.001, "micro")  # 1 MB
        manifest = testbed.hub.resolve(
            testbed.reference("docker-hub", "vp-ha-train"),
            testbed.fleet["medium"].arch,
        )
        with pytest.raises(CacheFull):
            cache.admit_image(manifest)

    def test_cache_full_leaves_cache_consistent(self, testbed):
        cache = ImageCache(0.001, "micro")
        manifest = testbed.hub.resolve(
            testbed.reference("docker-hub", "vp-ha-train"),
            testbed.fleet["medium"].arch,
        )
        with pytest.raises(CacheFull):
            cache.admit_image(manifest)
        assert cache.used_bytes == 0  # nothing partially admitted


def controller_failed_pods(controller):
    """Pods that reached FAILED across the controller's monitor log."""
    # The controller stores pods on reports; on a crashed rollout we
    # inspect the monitor's pod-failed events and rebuild the minimum.
    failed_names = {
        e.subject for e in controller.monitor.events_of("pod-failed")
    }

    class _P:
        def __init__(self, name):
            self.name = name
            self.service = name.split("-", 2)[-1]

    return [_P(name) for name in failed_names]
