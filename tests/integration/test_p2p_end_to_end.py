"""End-to-end: the P2P tier on a layer-sharing workload.

Runs the full three-mode experiment on a small swarm and checks the
headline claim — hybrid+P2P moves strictly fewer bytes out of the
hub+regional origin tiers than plain hybrid — plus the executor-level
integration (a DeviceRuntime wired to a P2PRegistry pulls from a peer
and records the three-tier registry in its execution trace).
"""

import pytest

from repro.devices.specs import MEDIUM_POWER, MEDIUM_SPEC
from repro.experiments import p2p
from repro.model.application import Microservice
from repro.model.device import Device
from repro.model.units import BYTES_PER_GB
from repro.registry.base import ImageReference
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.p2p import P2PRegistry, PeerSwarm
from repro.model.network import NetworkModel
from repro.devices.executor import DeviceRuntime
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def outcomes():
    scenario = p2p.build_scenario(
        n_devices=12, n_images=6, pulls_per_device=4, n_regions=3
    )
    return {mode: p2p.run_mode(scenario, mode) for mode in p2p.MODES}


def test_p2p_strictly_lowers_origin_bytes_vs_hybrid(outcomes):
    hybrid = outcomes["hybrid"]
    swarm = outcomes["hybrid+p2p"]
    assert swarm.origin_bytes < hybrid.origin_bytes
    # And the savings are served by peers, not skipped.
    assert swarm.bytes_from_peers > 0
    # Every mode executed the identical pull schedule.
    assert swarm.pulls == hybrid.pulls == outcomes["hub-only"].pulls


def test_hybrid_offloads_hub_and_p2p_offloads_origin(outcomes):
    hub_only = outcomes["hub-only"]
    hybrid = outcomes["hybrid"]
    swarm = outcomes["hybrid+p2p"]
    assert hub_only.bytes_by_registry.get("regional", 0) == 0
    assert hybrid.bytes_by_registry.get("docker-hub", 0) < hub_only.bytes_by_registry["docker-hub"]
    # Pull-delivered bytes can only shrink under P2P: replication
    # pre-places layers, turning some misses into pure local hits.
    def delivered(outcome):
        return outcome.origin_bytes + outcome.bytes_from_peers

    assert delivered(swarm) <= delivered(hybrid)


def test_p2p_transfer_time_beats_hybrid(outcomes):
    # Peer channels are LAN-fast, so the wall-clock transfer estimate
    # drops along with origin traffic.
    assert outcomes["hybrid+p2p"].transfer_s < outcomes["hybrid"].transfer_s


def test_replicator_converged_and_acted(outcomes):
    replicator = outcomes["hybrid+p2p"].replicator
    assert replicator is not None
    assert replicator.converged()
    assert replicator.swarm.index.coherence_violations() == []


def test_experiment_table_renders(outcomes):
    result = p2p.run(n_devices=8, n_images=4, pulls_per_device=3)
    assert [row["mode"] for row in result.rows] == list(p2p.MODES)
    text = result.to_text()
    assert "hybrid+p2p" in text
    assert any("less from" in note for note in result.notes)


def test_device_runtime_pulls_through_the_p2p_tier():
    """Executor integration: second device's deploy is a peer pull."""
    hub = DockerHub(name="docker-hub")
    mlist, blobs = build_image(
        "acme/app", 0.5, base=OFFICIAL_BASES["python:3.9-slim"]
    )
    hub.push_image("acme/app", "latest", mlist, blobs)

    import dataclasses

    specs = [
        Device(
            spec=dataclasses.replace(MEDIUM_SPEC, name=name),
            power=MEDIUM_POWER,
            region="lab",
        )
        for name in ("edge-a", "edge-b")
    ]

    network = NetworkModel()
    network.connect_devices("edge-a", "edge-b", 800.0)
    for device in specs:
        network.connect_registry("docker-hub", device.name, 80.0)

    sim = Simulator()
    swarm = PeerSwarm(network)
    facade = P2PRegistry(swarm, [hub])
    runtimes = [
        DeviceRuntime(sim=sim, device=device, network=network, p2p=facade)
        for device in specs
    ]
    service = Microservice(name="svc", image="acme/app", size_gb=0.5)
    ref = ImageReference("acme/app")

    first = runtimes[0].run_microservice(service, hub, ref)
    done_first = sim.process(first)
    sim.run()
    second = runtimes[1].run_microservice(service, hub, ref)
    sim.process(second)
    sim.run()

    rec_a = runtimes[0].records[0]
    rec_b = runtimes[1].records[0]
    assert rec_a.registry == facade.name
    assert rec_a.pull.bytes_from_peers == 0
    assert rec_b.pull.bytes_from_peers == rec_b.pull.bytes_transferred > 0
    # Peer bandwidth (800 Mbps) is 10x the hub channel: deployment is
    # proportionally faster on the peer-served device.
    assert rec_b.times.deploy_s < rec_a.times.deploy_s
    assert done_first.value.service == "svc"


class TestContendedOverlap:
    """Acceptance: analytic admission overstates P2P savings under
    overlapping pulls; time-resolved mode is strictly more pessimistic."""

    @pytest.fixture(scope="class")
    def contended(self):
        from repro.sim.transfers import TransferModel

        out = {}
        for model in (TransferModel.ANALYTIC, TransferModel.TIME_RESOLVED):
            scenario = p2p.build_contended_scenario(n_devices=8)
            hybrid = p2p.run_mode(
                scenario, "hybrid", transfer_model=model, upload_budget=2
            )
            swarm = p2p.run_mode(
                scenario, "hybrid+p2p", transfer_model=model, upload_budget=2
            )
            out[model] = (hybrid, swarm)
        return out

    def test_savings_strictly_lower_when_time_resolved(self, contended):
        from repro.sim.transfers import TransferModel

        saving = {
            model: hybrid.origin_bytes - swarm.origin_bytes
            for model, (hybrid, swarm) in contended.items()
        }
        assert saving[TransferModel.ANALYTIC] > 0
        assert (
            saving[TransferModel.TIME_RESOLVED]
            < saving[TransferModel.ANALYTIC]
        )

    def test_hybrid_baseline_bytes_are_model_independent(self, contended):
        # Without peers there is nothing to mis-attribute: both models
        # move the same bytes, only on different clocks.
        origins = {
            hybrid.origin_bytes for hybrid, _swarm in contended.values()
        }
        assert len(origins) == 1

    def test_contention_slows_transfers_down(self, contended):
        from repro.sim.transfers import TransferModel

        _, analytic_swarm = contended[TransferModel.ANALYTIC]
        _, resolved_swarm = contended[TransferModel.TIME_RESOLVED]
        assert resolved_swarm.transfer_s > analytic_swarm.transfer_s

    def test_contended_experiment_table_renders(self):
        result = p2p.run_contended(n_devices=6)
        assert [row["model"] for row in result.rows] == [
            "analytic", "time-resolved",
        ]
        assert any("overstates" in note for note in result.notes)
