"""End-to-end property tests on random synthetic instances.

Hypothesis drives the whole stack — generator → scheduler →
orchestrator → meters — and checks the invariants that must hold for
*every* instance, not just the paper's two applications.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import GreedyEnergyScheduler
from repro.core.scheduler import DeepScheduler
from repro.core.costs import CostTable, SchedulerState
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)


def make_instance(seed: int, n_devices: int, layers: int, width: int):
    rng = RngRegistry(seed)
    env = synthetic_environment(n_devices, rng)
    app = synthetic_application(
        f"prop-{seed}", SyntheticConfig(layers=layers, width=width), rng
    )
    return env, app


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_devices=st.integers(2, 5),
    layers=st.integers(2, 4),
    width=st.integers(1, 3),
)
def test_deep_plans_are_always_feasible_and_complete(
    seed, n_devices, layers, width
):
    env, app = make_instance(seed, n_devices, layers, width)
    result = DeepScheduler().schedule(app, env)
    result.plan.validate_against(app)
    # Every assignment satisfies the requirement triple.
    for assignment in result.plan:
        device = env.device(assignment.device)
        service = app.service(assignment.service)
        assert device.spec.cores >= service.requirements.cores
        assert device.spec.memory_gb >= service.requirements.memory_gb


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_devices=st.integers(2, 4),
)
def test_predicted_energy_equals_recomputed_energy(seed, n_devices):
    """The schedule's total must equal independently replayed costs."""
    env, app = make_instance(seed, n_devices, 3, 2)
    result = DeepScheduler().schedule(app, env)
    table = CostTable(app, env)
    state = SchedulerState()
    replayed = 0.0
    for name in app.topological_order():
        assignment = result.plan.assignments[name]
        record = table.record(name, assignment.registry, assignment.device, state)
        replayed += record.energy.total_j
        state.commit(
            app.service(name),
            assignment.registry,
            assignment.device,
            record.times.completion_s,
        )
    assert replayed == pytest.approx(result.total_energy_j)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_deep_never_beaten_by_more_than_penalty_margin(seed):
    """DEEP deviates from the greedy optimum only by its penalties."""
    env, app = make_instance(seed, 3, 3, 2)
    deep = DeepScheduler().schedule(app, env)
    greedy = GreedyEnergyScheduler().schedule(app, env)
    assert deep.total_energy_j <= greedy.total_energy_j * 1.10 + 1.0


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_schedule_is_deterministic(seed):
    env1, app1 = make_instance(seed, 3, 3, 2)
    env2, app2 = make_instance(seed, 3, 3, 2)
    a = DeepScheduler().schedule(app1, env1)
    b = DeepScheduler().schedule(app2, env2)
    assert {x.service: (x.registry, x.device) for x in a.plan} == {
        x.service: (x.registry, x.device) for x in b.plan
    }
