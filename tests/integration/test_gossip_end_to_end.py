"""End-to-end: gossip discovery and churn on the full pull stack.

Covers the three integration seams the discovery refactor touches:
the experiment driver (``run_mode`` with gossip + churn), the kubelet
(``stale_peer_misses`` metered next to ``bytes_from_peers``), and the
headline ``p2p-gossip`` experiment (omniscient must never *understate*
savings relative to gossip by more than noise).
"""

import dataclasses

import pytest

from repro.devices.executor import DeviceRuntime
from repro.devices.specs import MEDIUM_POWER, MEDIUM_SPEC
from repro.experiments import p2p
from repro.model.application import Microservice
from repro.model.device import Device
from repro.model.network import NetworkModel
from repro.orchestrator.kubelet import Kubelet
from repro.orchestrator.monitoring import Monitor
from repro.orchestrator.objects import Pod
from repro.registry.base import ImageReference
from repro.registry.discovery import GossipDiscovery
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.registry.p2p import P2PRegistry, PeerSwarm
from repro.sim.churn import ChurnConfig
from repro.sim.engine import Simulator


class TestRunModeWithGossip:
    @pytest.fixture(scope="class")
    def scenario(self):
        return p2p.build_scenario(
            n_devices=10, n_images=4, pulls_per_device=3, n_regions=2
        )

    def test_gossip_never_beats_omniscient_origin_traffic(self, scenario):
        omni = p2p.run_mode(scenario, "hybrid+p2p")
        gossip = p2p.run_mode(
            scenario, "hybrid+p2p", discovery="gossip", gossip_period_s=120.0
        )
        assert gossip.pulls == omni.pulls
        # Partial views can only hide committed replicas, never invent
        # them: gossip peer traffic is bounded by omniscient's and the
        # origin picks up the difference (small eviction-order noise
        # aside, which this seeded scenario does not exhibit).
        assert gossip.origin_bytes >= omni.origin_bytes
        assert omni.stale_peer_misses == 0
        assert omni.gossip_rounds == 0
        assert gossip.gossip_rounds > 0

    def test_churn_skips_offline_pulls_and_counts_them(self, scenario):
        churn = ChurnConfig(
            mean_uptime_s=400.0, mean_downtime_s=200.0, min_online=3
        )
        outcome = p2p.run_mode(scenario, "hybrid+p2p", churn=churn)
        assert outcome.departures > 0
        assert outcome.pulls + outcome.skipped_pulls == len(scenario.schedule)
        assert outcome.unfinished_pulls == 0

    def test_gossip_plus_churn_meters_stale_misses(self, scenario):
        churn = ChurnConfig(
            mean_uptime_s=300.0, mean_downtime_s=300.0, min_online=3
        )
        outcome = p2p.run_mode(
            scenario,
            "hybrid+p2p",
            discovery="gossip",
            gossip_period_s=60.0,
            churn=churn,
        )
        # Departed holders linger in partial views until tripped over.
        assert outcome.stale_peer_misses > 0

    def test_unknown_discovery_rejected(self, scenario):
        with pytest.raises(ValueError, match="discovery"):
            p2p.run_mode(scenario, "hybrid+p2p", discovery="psychic")


class TestGossipExperiment:
    def test_run_gossip_reports_the_savings_gap(self):
        result = p2p.run_gossip(
            n_devices=8, n_images=4, pulls_per_device=3, n_regions=2
        )
        assert result.experiment_id == "p2p-gossip"
        assert len(result.rows) == 2 * len(p2p.CHURN_REGIMES)
        by_key = {(r["churn"], r["discovery"]): r for r in result.rows}
        for label, _cfg in p2p.CHURN_REGIMES:
            omni = by_key[(label, "omniscient")]
            gossip = by_key[(label, "gossip")]
            assert omni["stale_misses"] == 0
            assert gossip["saved_pct"] <= omni["saved_pct"] + 5.0
            # Churn draws are seeded per device, but blocked-departure
            # redraws depend on pull timing (which differs per
            # backend), so only the schedule total is invariant.
            assert gossip["pulls"] + gossip["skipped"] == (
                omni["pulls"] + omni["skipped"]
            )
        assert any("overstates" in note for note in result.notes)


class TestKubeletStaleMissMetering:
    def test_stale_view_miss_reaches_the_monitor(self):
        hub = DockerHub(name="docker-hub")
        mlist, blobs = build_image(
            "acme/app", 0.5, base=OFFICIAL_BASES["python:3.9-slim"]
        )
        hub.push_image("acme/app", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_devices("edge-a", "edge-b", 800.0)
        for name in ("edge-a", "edge-b"):
            network.connect_registry("docker-hub", name, 80.0)
        sim = Simulator()
        discovery = GossipDiscovery(sim=sim, fanout=1, period_s=30.0, seed=2)
        swarm = PeerSwarm(network, discovery=discovery)
        facade = P2PRegistry(swarm, [hub])
        monitor = Monitor()
        runtimes = {
            name: DeviceRuntime(
                sim=sim,
                device=Device(
                    spec=dataclasses.replace(MEDIUM_SPEC, name=name),
                    power=MEDIUM_POWER,
                    region="lab",
                ),
                network=network,
                p2p=facade,
            )
            for name in ("edge-a", "edge-b")
        }
        service = Microservice(name="svc", image="acme/app", size_gb=0.5)

        def run_pod_on(name):
            pod = Pod(
                name=f"svc-{name}",
                service="svc",
                image=ImageReference("acme/app"),
                node=name,
                registry=facade.name,
            )
            kubelet = Kubelet(runtimes[name], monitor)
            done = sim.process(kubelet.run_pod(pod, service, hub))
            # Gossip ticks are daemon events, so draining terminates.
            sim.run()
            assert done.triggered

        # Seed edge-a, let edge-b's view converge on it, then gut
        # edge-a's cache so the view is stale when edge-b pulls.
        run_pod_on("edge-a")
        for _ in range(4):
            discovery.run_round()
        runtimes["edge-a"].cache.clear()
        run_pod_on("edge-b")
        counters = monitor.counters()
        assert counters["stale_peer_misses"] > 0
        assert counters["bytes_from_peers"] == 0
        assert counters["stale_peer_misses"] == discovery.stale_misses
        # The fallback chain served every transferred byte from the hub.
        assert counters["bytes_from.docker-hub"] == counters["bytes_pulled"]

    def test_counter_present_and_zero_on_healthy_pulls(self):
        hub = DockerHub(name="docker-hub")
        mlist, blobs = build_image("acme/app", 0.3)
        hub.push_image("acme/app", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_registry("docker-hub", "edge-a", 80.0)
        sim = Simulator()
        monitor = Monitor()
        runtime = DeviceRuntime(
            sim=sim,
            device=Device(
                spec=dataclasses.replace(MEDIUM_SPEC, name="edge-a"),
                power=MEDIUM_POWER,
                region="lab",
            ),
            network=network,
        )
        service = Microservice(name="svc", image="acme/app", size_gb=0.3)
        pod = Pod(
            name="svc-a",
            service="svc",
            image=ImageReference("acme/app"),
            node="edge-a",
            registry=hub.name,
        )
        sim.process(Kubelet(runtime, monitor).run_pod(pod, service, hub))
        sim.run()
        assert monitor.counter("stale_peer_misses") == 0
