"""Acceptance tests: the paper's headline claims, end to end.

These tests are the reproduction's contract.  Each one states a claim
from the paper (Sections IV–V) and verifies it against the full stack:
calibration → testbed → DEEP scheduling → orchestrated execution →
energy metering.
"""

import pytest

from repro.core.baselines import FixedRegistryScheduler
from repro.core.scheduler import DeepScheduler
from repro.experiments.runner import deploy_and_run
from repro.workloads.table2 import ALL_ROWS, logical_image
from repro.workloads.testbed import HUB_NAME, REGIONAL_NAME


@pytest.fixture(scope="module")
def reports(testbed, video_app, text_app):
    """Executed reports for all three methods on both applications."""
    out = {}
    for app in (video_app, text_app):
        for scheduler in (
            DeepScheduler(),
            FixedRegistryScheduler(HUB_NAME),
            FixedRegistryScheduler(REGIONAL_NAME),
        ):
            plan = scheduler.schedule(app, testbed.env).plan
            out[(app.name, scheduler.name)] = deploy_and_run(
                testbed, app, plan
            )
    return out


class TestTable3Claims:
    def test_video_83_percent_medium_hub(self, reports):
        plan = reports[("video-processing", "deep")].plan
        pct = plan.distribution_percent()
        assert pct[("medium", HUB_NAME)] == pytest.approx(83.33, abs=0.5)
        assert pct[("small", REGIONAL_NAME)] == pytest.approx(16.67, abs=0.5)

    def test_text_83_percent_regional(self, reports):
        """'deploying 83% of text processing microservices from the
        regional registry' (abstract)."""
        plan = reports[("text-processing", "deep")].plan
        assert plan.registry_share(REGIONAL_NAME) == pytest.approx(5 / 6)

    def test_text_device_split(self, reports):
        pct = reports[("text-processing", "deep")].plan.distribution_percent()
        assert pct[("small", REGIONAL_NAME)] == pytest.approx(66.67, abs=0.5)
        assert pct[("medium", HUB_NAME)] == pytest.approx(16.67, abs=0.5)
        assert pct[("medium", REGIONAL_NAME)] == pytest.approx(16.67, abs=0.5)


class TestFigure3bClaims:
    def test_deep_beats_hub_on_text(self, reports):
        """'improves the energy consumption by 0.34% (≈18 J) compared to
        ... exclusively from Docker Hub' — we require the same ordering
        at the same (sub-percent) scale."""
        deep = reports[("text-processing", "deep")].total_energy_j
        hub = reports[
            ("text-processing", f"exclusively-{HUB_NAME}")
        ].total_energy_j
        saving = hub - deep
        assert saving > 0
        assert 2.0 <= saving <= 60.0  # joules, same order as the paper's 18
        assert saving / hub < 0.01

    def test_deep_never_worse_than_either_exclusive(self, reports):
        for app in ("video-processing", "text-processing"):
            deep = reports[(app, "deep")].total_energy_j
            for method in (HUB_NAME, REGIONAL_NAME):
                other = reports[(app, f"exclusively-{method}")].total_energy_j
                assert deep <= other + 1e-6

    def test_video_registry_choice_insignificant(self, reports):
        """'the microservice's image location plays no significant role
        in energy consumption for heavyweight video processing'."""
        hub = reports[
            ("video-processing", f"exclusively-{HUB_NAME}")
        ].total_energy_j
        regional = reports[
            ("video-processing", f"exclusively-{REGIONAL_NAME}")
        ].total_energy_j
        assert abs(hub - regional) / hub < 0.01

    def test_regional_competitive_with_hub(self, reports):
        """'the regional Docker registry shows competitive energy
        efficiency compared to Docker Hub' (both apps, within 1%)."""
        for app in ("video-processing", "text-processing"):
            hub = reports[(app, f"exclusively-{HUB_NAME}")].total_energy_j
            regional = reports[
                (app, f"exclusively-{REGIONAL_NAME}")
            ].total_energy_j
            assert abs(hub - regional) / hub < 0.01


class TestFigure3aClaims:
    def test_training_services_dominate(self, reports):
        for app in ("video-processing", "text-processing"):
            records = reports[(app, "deep")].records
            energies = {r.service: r.energy_j for r in records}
            trains = [v for k, v in energies.items() if "train" in k]
            others = [v for k, v in energies.items() if "train" not in k]
            assert max(trains) > max(others)


class TestMeasurementPath:
    def test_meters_agree_with_model_everywhere(self, reports):
        for report in reports.values():
            for reading in report.readings:
                assert reading.reconciliation.within(0.01), (
                    report.application, reading,
                )

    def test_energy_decomposition_consistent(self, reports):
        for report in reports.values():
            ledger = report.ledger
            assert ledger.total_j() == pytest.approx(
                ledger.active_j() + ledger.static_j()
            )

    def test_by_registry_totals(self, reports):
        report = reports[("text-processing", "deep")]
        by_registry = report.ledger.by_registry()
        assert set(by_registry) == {HUB_NAME, REGIONAL_NAME}
        assert sum(by_registry.values()) == pytest.approx(
            report.total_energy_j
        )


class TestExecutedEnergiesMatchTable2:
    def test_deep_video_energies_near_published(self, reports, cal):
        """Per-service energies in the full app run stay close to the
        standalone Table II values (co-location shifts transfers)."""
        records = reports[("video-processing", "deep")].records
        for record in records:
            row = next(
                r for r in ALL_ROWS
                if logical_image(r.application, r.service) == record.service
            )
            published = row.ec_for(record.device)
            assert published.contains(record.energy_j, slack=0.25), (
                record.service, record.energy_j, published,
            )
