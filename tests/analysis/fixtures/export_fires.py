"""Fixture: ``naked-dict-order-export`` fires (insertion-order bytes)."""

import json


def export(document, handle) -> None:
    json.dump(document, handle)


def render(document) -> str:
    return json.dumps(document, indent=2)
