"""Fixture: ``unseeded-rng`` silent (explicitly seeded generators)."""

import random

import numpy as np


def stream(seed: int):
    return np.random.default_rng(seed)


def legacy(seed: int):
    return random.Random(seed)
