"""Fixture: ``telemetry-purity`` silent inside the telemetry package."""

from typing import Any, Dict


def summarise(events) -> Dict[str, Any]:
    kinds: Dict[str, int] = {}
    for event in events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return kinds
