"""Fixture: ``telemetry-purity`` fires inside the telemetry package."""

from ..sim.engine import Simulator


def replicate_on_trace(swarm, digest: str, device: str) -> None:
    swarm.pull(device, digest)
