"""Fixture: ``unordered-set-iteration`` silent (sorted / set-to-set)."""


def total(values: set) -> float:
    out = 0.0
    for value in sorted(values):
        out += value
    return out


def doubled(values: set) -> set:
    return {v * 2 for v in values}


def weight(holders: set) -> float:
    return sum(h.weight for h in sorted(holders))
