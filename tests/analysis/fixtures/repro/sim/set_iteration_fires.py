"""Fixture: ``unordered-set-iteration`` fires (in-scope set loops)."""


def total(values: set) -> float:
    out = 0.0
    for value in values:
        out += value
    return out


def first_ids(transfers: set):
    return [t.id for t in transfers]


def weight(holders: set) -> float:
    return sum(h.weight for h in holders)
