"""Fixture: ``wall-clock-in-sim`` fires (host clock outside allowlist)."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def label() -> str:
    return datetime.now().isoformat()
