"""Fixture: ``id-ordering`` silent (stable domain keys)."""


def order(items):
    return sorted(items, key=lambda item: item.name)


def newest(objects):
    return max(objects, key=lambda o: (o.rank, o.name))


def label(obj) -> int:
    return id(obj)  # bare identity read, not an ordering
