"""Fixture: ``telemetry-purity`` fires (unguarded optional-slot emission)."""


class Engine:
    def __init__(self) -> None:
        self.trace = None
        self.profile = None

    def step(self, now: float) -> None:
        self.trace.record(now, "step")

    def account(self, ns: int) -> None:
        prof = self.profile
        prof.note_recompute(ns, 1)
