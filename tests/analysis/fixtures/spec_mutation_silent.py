"""Fixture: ``frozen-spec-mutation`` silent (derive, never mutate)."""

import dataclasses


def retarget(spec, devices: int):
    return dataclasses.replace(spec, devices=devices)


def tweak(spec, seed: int):
    return spec.with_overrides({"seed": seed})
