"""Fixture: one used and one stale suppression (metering)."""

import time


def stamp() -> float:
    # repro-lint: disable=wall-clock-in-sim
    return time.time()


def quiet() -> int:
    return 1  # repro-lint: disable=unseeded-rng
