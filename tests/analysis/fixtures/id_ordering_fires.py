"""Fixture: ``id-ordering`` fires (address used as an ordering key)."""


def order(items):
    return sorted(items, key=lambda item: id(item))


def newest(objects):
    return max(objects, key=lambda o: (o.rank, id(o)))
