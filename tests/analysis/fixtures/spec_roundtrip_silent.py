"""Fixture: ``spec-roundtrip-coverage`` silent (full field coverage)."""

from dataclasses import dataclass
from typing import ClassVar

_FIELDS = {"alpha": int, "beta": int}


@dataclass(frozen=True)
class DemoSpec:
    alpha: int
    beta: int = 0
    schema: ClassVar[int] = 1

    def to_dict(self):
        return {name: getattr(self, name) for name in _FIELDS}

    @classmethod
    def from_dict(cls, data):
        return cls(**{name: data[name] for name in _FIELDS})
