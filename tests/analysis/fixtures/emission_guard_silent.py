"""Fixture: ``telemetry-purity`` silent (guarded emissions, off = free)."""


class Engine:
    def __init__(self) -> None:
        self.trace = None
        self.profile = None

    def step(self, now: float) -> None:
        if self.trace is not None:
            self.trace.record(now, "step")

    def account(self, ns: int) -> None:
        prof = self.profile
        if prof is not None:
            prof.note_recompute(ns, 1)


class Accountant:
    """A mandatory attribute named ``trace`` is not a telemetry slot."""

    def __init__(self, ledger) -> None:
        self.trace = ledger

    def step(self, now: float) -> None:
        self.trace.record(now, "step")
