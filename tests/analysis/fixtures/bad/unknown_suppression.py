"""Fixture: a typo'd rule name in a disable comment (usage error)."""

import time


def stamp() -> float:
    return time.time()  # repro-lint: disable=wall-clok-in-sim
