"""Fixture: ``unseeded-rng`` fires (global state and seedless ctor)."""

import random

import numpy as np


def jitter() -> float:
    return random.random()


def stream():
    return np.random.default_rng()
