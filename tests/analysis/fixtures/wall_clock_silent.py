"""Fixture: ``wall-clock-in-sim`` silent (simulated clock only)."""


def stamp(sim) -> float:
    return sim.now


def elapsed(sim, start_s: float) -> float:
    return sim.now - start_s
