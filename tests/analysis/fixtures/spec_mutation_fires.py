"""Fixture: ``frozen-spec-mutation`` fires (post-construction writes)."""


def retarget(spec, devices: int):
    spec.devices = devices
    return spec


def tweak(run_spec, seed: int):
    run_spec.seed = seed


def force(spec, value: int) -> None:
    object.__setattr__(spec, "devices", value)
