"""Fixture: ``naked-dict-order-export`` silent (canonical key order)."""

import json


def export(document, handle) -> None:
    json.dump(document, handle, sort_keys=True)


def render(document) -> str:
    return json.dumps(document, indent=2, sort_keys=True)
