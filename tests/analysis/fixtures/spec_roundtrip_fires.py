"""Fixture: ``spec-roundtrip-coverage`` fires (field skips to_dict)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class DemoSpec:
    alpha: int
    beta: int = 0

    def to_dict(self):
        return {"alpha": self.alpha}

    @classmethod
    def from_dict(cls, data):
        return cls(alpha=data["alpha"])
