"""CLI contract: exit codes, --json schema, did-you-mean, self-clean."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_clean_file_exits_zero(capsys):
    assert main([str(FIXTURES / "wall_clock_silent.py")]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_findings_exit_one(capsys):
    assert main([str(FIXTURES / "wall_clock_fires.py")]) == 1
    out = capsys.readouterr().out
    assert "wall-clock-in-sim" in out


def test_unknown_rule_exits_two_with_suggestion(capsys):
    code = main(
        [str(FIXTURES / "wall_clock_silent.py"), "--rule", "wall-clok-in-sim"]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "did you mean 'wall-clock-in-sim'" in err


def test_unknown_suppression_rule_exits_two_with_suggestion(capsys):
    code = main([str(FIXTURES / "bad" / "unknown_suppression.py")])
    assert code == 2
    err = capsys.readouterr().err
    assert "wall-clok-in-sim" in err
    assert "did you mean 'wall-clock-in-sim'" in err


def test_non_python_file_exits_two(tmp_path, capsys):
    target = tmp_path / "data.json"
    target.write_text("{}")
    assert main([str(target)]) == 2
    assert "not a Python file" in capsys.readouterr().err


def test_missing_path_exits_two(capsys):
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_json_document_schema(capsys):
    assert main([str(FIXTURES / "export_fires.py"), "--json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert document["files"] == 1
    assert set(document["suppressions"]) == {"total", "used", "entries"}
    for finding in document["findings"]:
        assert set(finding) == {"path", "line", "col", "rule", "message"}
        assert finding["rule"] == "naked-dict-order-export"


def test_list_prints_catalogue(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "wall-clock-in-sim" in out
    assert "naked-dict-order-export" in out
    assert "repro-lint: disable=" in out


def test_baseline_within_budget_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"suppressions": 5}')
    code = main(
        [str(FIXTURES / "suppressed.py"), "--rule", "wall-clock-in-sim",
         "--baseline", str(baseline)]
    )
    assert code == 0


def test_baseline_exceeded_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text('{"suppressions": 0}')
    code = main(
        [str(FIXTURES / "suppressed.py"), "--rule", "wall-clock-in-sim",
         "--baseline", str(baseline)]
    )
    assert code == 1
    assert "suppression count grew" in capsys.readouterr().err


def test_baseline_missing_file_exits_two(capsys):
    code = main(
        [str(FIXTURES / "wall_clock_silent.py"), "--baseline",
         str(FIXTURES / "nope.json")]
    )
    assert code == 2
    assert "baseline file not found" in capsys.readouterr().err


def test_repro_cli_dispatches_lint(capsys):
    from repro.cli import main as repro_main

    code = repro_main(["lint", str(FIXTURES / "wall_clock_silent.py")])
    assert code == 0


def test_source_tree_is_self_clean(capsys):
    """The linter's own verdict on src/repro: zero findings, and every
    inline suppression in the tree is actually silencing something."""
    src = REPO_ROOT / "src" / "repro"
    assert main([str(src), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["findings"] == []
    assert document["suppressions"]["used"] == (
        document["suppressions"]["total"]
    )
    assert len(document["rules"]) >= 8


def test_checked_in_baseline_matches_tree(capsys):
    """.repro-lint-baseline.json stays in lockstep with the tree."""
    src = REPO_ROOT / "src" / "repro"
    baseline_path = REPO_ROOT / ".repro-lint-baseline.json"
    baseline = json.loads(baseline_path.read_text())
    assert main([str(src), "--baseline", str(baseline_path)]) == 0
    capsys.readouterr()
    assert main([str(src), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["suppressions"]["total"] == baseline["suppressions"]
