"""Suppression metering: used vs stale entries, subset-run semantics."""

from pathlib import Path

import pytest

from repro.analysis import UNUSED_SUPPRESSION, UnknownRuleError, lint_paths
from repro.analysis.suppressions import SuppressionIndex

FIXTURES = Path(__file__).resolve().parent / "fixtures"
SUPPRESSED = str(FIXTURES / "suppressed.py")


def test_full_run_meters_and_reports_stale_suppressions():
    result = lint_paths([SUPPRESSED])
    # The wall-clock finding is silenced; nothing else fires...
    assert not [f for f in result.findings if f.rule != UNUSED_SUPPRESSION]
    # ...but the suppression that silenced nothing is itself reported.
    stale = [f for f in result.findings if f.rule == UNUSED_SUPPRESSION]
    assert len(stale) == 1
    assert "unseeded-rng" in stale[0].message
    assert len(result.suppressions) == 2
    assert len(result.suppressions_used) == 1


def test_subset_run_does_not_flag_unexercised_suppressions():
    result = lint_paths([SUPPRESSED], ("wall-clock-in-sim",))
    assert result.clean  # silenced finding, and no staleness check


def test_comment_only_line_suppresses_the_line_below():
    index = SuppressionIndex.parse(
        "x.py",
        "def f():\n"
        "    # repro-lint: disable=wall-clock-in-sim\n"
        "    return time.time()\n",
    )
    assert index.suppresses(3, "wall-clock-in-sim")
    assert not index.suppresses(3, "unseeded-rng")
    assert index.unused() == []


def test_trailing_comment_suppresses_its_own_line_only():
    index = SuppressionIndex.parse(
        "x.py",
        "a = time.time()  # repro-lint: disable=wall-clock-in-sim\n"
        "b = time.time()\n",
    )
    assert index.suppresses(1, "wall-clock-in-sim")
    assert not index.suppresses(2, "wall-clock-in-sim")


def test_multiple_rules_in_one_comment():
    index = SuppressionIndex.parse(
        "x.py",
        "x = 1  # repro-lint: disable=wall-clock-in-sim, unseeded-rng\n",
    )
    assert index.suppresses(1, "wall-clock-in-sim")
    assert index.suppresses(1, "unseeded-rng")
    assert len(index.entries) == 2


def test_unknown_rule_in_comment_raises_with_suggestion():
    with pytest.raises(UnknownRuleError) as excinfo:
        SuppressionIndex.parse(
            "x.py", "x = 1  # repro-lint: disable=unseeded-rgn\n"
        )
    assert "did you mean 'unseeded-rng'" in str(excinfo.value)
