"""mypy over the strict-typed core subset (skips when mypy is absent).

The offline dev image does not ship mypy; CI installs the pinned
version (see the lint-smoke job) and runs this test there.  The subset
and its flags live in setup.cfg so the CLI invocation and this test
can never drift apart.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]

CORE_SUBSET = [
    "src/repro/model/units.py",
    "src/repro/scenarios/spec.py",
    "src/repro/sweep/spec.py",
    "src/repro/analysis",
]


def test_core_subset_typechecks():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "setup.cfg"]
        + CORE_SUBSET,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        f"mypy failed on the core subset:\n{result.stdout}{result.stderr}"
    )
