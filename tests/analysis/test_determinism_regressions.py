"""Regression tests for hazards fixed by ``repro lint``'s first sweep.

Each test pins the determinism contract of one site the static
analysis flagged (unordered set iteration feeding an outcome, or a
JSON export without canonical key order): the observable result must
be bit-for-bit identical regardless of set/dict construction order,
i.e. independent of the interpreter's hash seed.
"""

import json
from types import SimpleNamespace

from repro.registry.discovery import GossipDiscovery, ViewRecord
from repro.registry.p2p import AdaptiveReplicator, PeerIndex
from repro.sweep.runner import _cache_path, _store_cached
from repro.telemetry.recorder import TraceRecorder


class _StubChurn:
    """availability() with values whose sum exposes non-associativity."""

    def __init__(self, table):
        self.table = table

    def availability(self, device):
        return self.table[device]


def test_effective_replicas_is_order_independent():
    # Availabilities chosen so that float summation order matters:
    # (a + b) + c != a + (b + c) for these magnitudes.
    table = {
        f"dev-{i:03d}": 0.1 + (1e16 if i == 7 else 0.0) * 1e-16
        for i in range(50)
    }
    stub = SimpleNamespace(churn=_StubChurn(table))
    holders_fwd = set(sorted(table))
    holders_rev = set(sorted(table, reverse=True))
    a = AdaptiveReplicator._effective_replicas(stub, holders_fwd)
    b = AdaptiveReplicator._effective_replicas(stub, holders_rev)
    assert a == b
    # The contract: summation happens in sorted-holder order.
    assert a == sum(table[h] for h in sorted(table))


def test_effective_replicas_without_churn_counts_faces():
    stub = SimpleNamespace(churn=None)
    assert AdaptiveReplicator._effective_replicas(stub, {"a", "b"}) == 2.0


class _FakeCache:
    def __init__(self, digests):
        self._digests = list(digests)

    def entries(self):
        return [(d, 1) for d in self._digests]


def test_coherence_violations_report_in_sorted_digest_order():
    index = PeerIndex()
    # Bypass register_cache: build an intentionally incoherent state.
    index._caches = {"dev": _FakeCache(["sha:c", "sha:a", "sha:b"])}
    index._holders = {f"sha:{x}": {"dev"} for x in "zyx"}
    problems = index.coherence_violations()
    cached = [p for p in problems if "cached but not indexed" in p]
    indexed = [p for p in problems if "indexed but not cached" in p]
    assert cached == sorted(cached) and len(cached) == 3
    assert indexed == sorted(indexed) and len(indexed) == 3


def test_gossip_merge_cap_is_payload_order_independent():
    def run(payload):
        g = GossipDiscovery(view_cap=2)
        g._views["viewer"] = {}
        g._merge("viewer", payload)
        return g._views["viewer"]

    payload = [
        (f"holder-{i}", f"sha:{d}", ViewRecord(1, i, True))
        for d in "ab"
        for i in range(6)
    ]
    assert run(payload) == run(list(reversed(payload)))
    # The cap kept the freshest entries, not an arbitrary subset.
    view = run(payload)
    for digest in ("sha:a", "sha:b"):
        assert sorted(view[digest]) == ["holder-4", "holder-5"]


def test_sweep_cache_export_is_key_order_independent(tmp_path):
    outcome_a = {"zeta": 1, "alpha": 2}
    outcome_b = {"alpha": 2, "zeta": 1}
    texts = []
    for i, outcome in enumerate((outcome_a, outcome_b)):
        cache_dir = tmp_path / f"c{i}"
        cache_dir.mkdir()
        _store_cached(cache_dir, "key", {"b": 1, "a": 2}, outcome, 3.0)
        texts.append(_cache_path(cache_dir, "key").read_text())
    assert texts[0] == texts[1]
    assert json.loads(texts[0])["outcome"] == outcome_a


def test_chrome_trace_export_is_detail_order_independent(tmp_path):
    texts = []
    for i, detail in enumerate(({"z": 1, "a": 2}, {"a": 2, "z": 1})):
        rec = TraceRecorder()
        rec.record(0.5, "x", "dev", **detail)
        path = tmp_path / f"trace{i}.json"
        rec.write_chrome(path)
        texts.append(path.read_text())
    assert texts[0] == texts[1]
    json.loads(texts[0])  # stays a valid JSON document
