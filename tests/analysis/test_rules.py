"""Paired fires/silent fixtures: every registered rule must detect its
hazard and stay quiet on the idiomatic fix.

The fixture paths mirror the scoping the rules key on: set-iteration
fixtures live under ``fixtures/repro/sim/`` and telemetry-package
fixtures under ``fixtures/repro/telemetry/`` so the path-based
``LintConfig`` scopes apply to them exactly as they do in the tree.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_paths, rule_names

FIXTURES = Path(__file__).resolve().parent / "fixtures"

#: (rule, fixture that must fire, fixture that must stay silent)
CASES = [
    (
        "wall-clock-in-sim",
        "wall_clock_fires.py",
        "wall_clock_silent.py",
    ),
    (
        "unseeded-rng",
        "unseeded_rng_fires.py",
        "unseeded_rng_silent.py",
    ),
    (
        "unordered-set-iteration",
        "repro/sim/set_iteration_fires.py",
        "repro/sim/set_iteration_silent.py",
    ),
    (
        "id-ordering",
        "id_ordering_fires.py",
        "id_ordering_silent.py",
    ),
    (
        "frozen-spec-mutation",
        "spec_mutation_fires.py",
        "spec_mutation_silent.py",
    ),
    (
        "telemetry-purity",
        "emission_guard_fires.py",
        "emission_guard_silent.py",
    ),
    (
        "telemetry-purity",
        "repro/telemetry/purity_fires.py",
        "repro/telemetry/purity_silent.py",
    ),
    (
        "spec-roundtrip-coverage",
        "spec_roundtrip_fires.py",
        "spec_roundtrip_silent.py",
    ),
    (
        "naked-dict-order-export",
        "export_fires.py",
        "export_silent.py",
    ),
]


def test_every_registered_rule_has_a_fixture_pair():
    assert {case[0] for case in CASES} == set(rule_names())


@pytest.mark.parametrize(
    "rule,fires,silent", CASES, ids=[f"{c[0]}:{c[1]}" for c in CASES]
)
def test_fixture_pair(rule, fires, silent):
    firing = lint_paths([str(FIXTURES / fires)], (rule,))
    assert firing.findings, f"{fires} produced no {rule} finding"
    assert all(f.rule == rule for f in firing.findings)

    quiet = lint_paths([str(FIXTURES / silent)], (rule,))
    assert not quiet.findings, (
        f"{silent} should be clean for {rule}, got: "
        f"{[f.render() for f in quiet.findings]}"
    )


def test_findings_are_sorted_and_renderable():
    result = lint_paths(
        [str(FIXTURES / "wall_clock_fires.py"),
         str(FIXTURES / "export_fires.py")],
    )
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    for finding in result.findings:
        path, line, col, rest = finding.render().split(":", 3)
        assert path.endswith(".py") and int(line) >= 1 and int(col) >= 0
        assert finding.rule in rest
