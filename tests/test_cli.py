"""CLI entry point: every subcommand renders sound output."""

import json

import pytest

from repro import scenarios
from repro.cli import PAPER_TARGETS, all_targets, main


class TestCli:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "83.33" in out
        assert "5/5 distribution cells match" in out

    def test_calibration_dump(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "Calibrated constants" in out
        assert "vp-ha-train" in out
        assert "medium:" in out and "small:" in out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3b" in out
        assert "exclusively-docker-hub" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_p2p_accepts_seed(self, capsys):
        assert main(["p2p", "--seed", "7"]) == 0
        seeded = capsys.readouterr().out
        assert "P2P tier" in seeded
        assert main(["p2p"]) == 0
        default = capsys.readouterr().out
        # A different seed is a different workload realisation.
        assert seeded != default

    def test_p2p_gossip(self, capsys):
        assert main(["p2p-gossip"]) == 0
        out = capsys.readouterr().out
        assert "discovery" in out
        assert "omniscient" in out and "gossip" in out
        assert "overstates" in out

    def test_p2p_chunked_accepts_seed(self, capsys):
        assert main(["p2p-chunked", "--seed", "7"]) == 0
        seeded = capsys.readouterr().out
        assert "Chunked multi-source" in seeded
        assert "single-source" in seeded and "chunked" in seeded
        assert "wave makespan" in seeded
        assert main(["p2p-chunked"]) == 0
        default = capsys.readouterr().out
        # A different seed is a different workload/churn realisation.
        assert seeded != default

    def test_non_integer_seed_rejected(self):
        with pytest.raises(SystemExit):
            main(["p2p", "--seed", "lots"])

    def test_json_flag_prints_structured_result(self, capsys):
        assert main(["table3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment_id"] == "table3"
        assert payload["columns"]
        assert len(payload["rows"]) > 0
        assert all(set(payload["columns"]) <= set(row)
                   for row in payload["rows"])

    def test_calibration_json_parses(self, capsys):
        assert main(["calibration", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"power", "network", "services"}
        assert "vp-ha-train" in payload["services"]

    def test_preset_argument_rejected_outside_scenario(self, capsys):
        assert main(["table3", "p2p"]) == 2
        assert "scenario/sweep subcommands" in capsys.readouterr().err

    def test_set_rejected_outside_scenario(self, capsys):
        assert main(["table3", "--set", "mode=hybrid"]) == 2
        assert "scenario" in capsys.readouterr().err


class TestAllTarget:
    def test_all_derives_swarm_experiments_from_the_registry(self):
        # The historical bug: `all` hard-coded its run list and silently
        # dropped p2p-contended/p2p-gossip/p2p-chunked.  The list is now
        # derived from the scenario experiment registry.
        targets = all_targets()
        for name in scenarios.experiment_names():
            assert name in targets
        assert {"p2p", "p2p-contended", "p2p-gossip", "p2p-chunked"} <= set(
            targets
        )
        for name in PAPER_TARGETS:
            assert name in targets


class TestScenarioSubcommand:
    def test_list_names_every_preset(self, capsys):
        assert main(["scenario", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenarios.names():
            assert name in out

    def test_list_json_parses(self, capsys):
        assert main(["scenario", "--list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} == set(scenarios.names())

    def test_runs_a_preset_with_overrides(self, capsys):
        assert main([
            "scenario", "p2p",
            "--set", "topology.n_devices=6",
            "--set", "workload.n_images=3",
            "--set", "workload.pulls_per_device=2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Scenario p2p" in out
        assert "pulls=12" in out

    def test_json_payload_carries_spec_and_outcome(self, capsys):
        assert main([
            "scenario", "p2p-hybrid",
            "--set", "topology.n_devices=6",
            "--set", "workload.n_images=3",
            "--set", "workload.pulls_per_device=2",
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["preset"] == "p2p-hybrid"
        assert payload["spec"]["mode"] == "hybrid"
        assert payload["spec"]["topology"]["n_devices"] == 6
        assert payload["outcome"]["pulls"] == 12
        assert payload["outcome"]["replicator"] is None

    def test_unknown_preset_fails_cleanly(self, capsys):
        assert main(["scenario", "nonsense"]) == 2
        assert "unknown scenario preset" in capsys.readouterr().err

    def test_bad_override_fails_cleanly(self, capsys):
        assert main([
            "scenario", "p2p", "--set", "chunks.enabled=true",
        ]) == 2
        assert "TIME_RESOLVED" in capsys.readouterr().err

    def test_wrongly_typed_override_fails_cleanly(self, capsys):
        # A value of the wrong JSON type must hit the same clean error
        # path as a cross-field violation, not a TypeError traceback.
        assert main([
            "scenario", "p2p", "--set", "topology.n_devices=abc",
        ]) == 2
        assert "bad override" in capsys.readouterr().err

    def test_missing_preset_fails_cleanly(self, capsys):
        assert main(["scenario"]) == 2
        assert "preset" in capsys.readouterr().err
