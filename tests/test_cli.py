"""CLI entry point: every subcommand renders sound output."""

import pytest

from repro.cli import main


class TestCli:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "83.33" in out
        assert "5/5 distribution cells match" in out

    def test_calibration_dump(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "Calibrated constants" in out
        assert "vp-ha-train" in out
        assert "medium:" in out and "small:" in out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3b" in out
        assert "exclusively-docker-hub" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
