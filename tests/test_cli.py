"""CLI entry point: every subcommand renders sound output."""

import pytest

from repro.cli import main


class TestCli:
    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "83.33" in out
        assert "5/5 distribution cells match" in out

    def test_calibration_dump(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "Calibrated constants" in out
        assert "vp-ha-train" in out
        assert "medium:" in out and "small:" in out

    def test_fig3b(self, capsys):
        assert main(["fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3b" in out
        assert "exclusively-docker-hub" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_p2p_accepts_seed(self, capsys):
        assert main(["p2p", "--seed", "7"]) == 0
        seeded = capsys.readouterr().out
        assert "P2P tier" in seeded
        assert main(["p2p"]) == 0
        default = capsys.readouterr().out
        # A different seed is a different workload realisation.
        assert seeded != default

    def test_p2p_gossip(self, capsys):
        assert main(["p2p-gossip"]) == 0
        out = capsys.readouterr().out
        assert "discovery" in out
        assert "omniscient" in out and "gossip" in out
        assert "overstates" in out

    def test_p2p_chunked_accepts_seed(self, capsys):
        assert main(["p2p-chunked", "--seed", "7"]) == 0
        seeded = capsys.readouterr().out
        assert "Chunked multi-source" in seeded
        assert "single-source" in seeded and "chunked" in seeded
        assert "wave makespan" in seeded
        assert main(["p2p-chunked"]) == 0
        default = capsys.readouterr().out
        # A different seed is a different workload/churn realisation.
        assert seeded != default

    def test_non_integer_seed_rejected(self):
        with pytest.raises(SystemExit):
            main(["p2p", "--seed", "lots"])
