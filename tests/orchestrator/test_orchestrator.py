"""Orchestrator: pods, kubelets, cluster, controller rollouts."""

import pytest

from repro.core.scheduler import DeepScheduler
from repro.experiments.runner import make_cluster
from repro.orchestrator import (
    ApplicationController,
    Cluster,
    ClusterError,
    ExecutionMode,
    ImagePullPolicy,
    Monitor,
    Pod,
    PodPhase,
)
from repro.registry.base import ImageReference
from repro.registry.client import PullPolicy


@pytest.fixture
def plan(video_app, env):
    return DeepScheduler().schedule(video_app, env).plan


class TestPod:
    def _pod(self):
        return Pod(
            name="p", service="s", image=ImageReference("acme/app"),
            registry="hub", node="medium",
        )

    def test_lifecycle(self):
        pod = self._pod()
        pod.transition(0.0, PodPhase.PULLING)
        pod.transition(1.0, PodPhase.RUNNING)
        pod.transition(2.0, PodPhase.SUCCEEDED)
        assert pod.terminal

    def test_illegal_transition_rejected(self):
        pod = self._pod()
        with pytest.raises(ValueError):
            pod.transition(0.0, PodPhase.RUNNING)  # must pull first

    def test_terminal_is_final(self):
        pod = self._pod()
        pod.transition(0.0, PodPhase.FAILED, "boom")
        assert pod.failure_reason == "boom"
        with pytest.raises(ValueError):
            pod.transition(1.0, PodPhase.PULLING)

    def test_phase_at(self):
        pod = self._pod()
        pod.transition(1.0, PodPhase.PULLING)
        pod.transition(5.0, PodPhase.RUNNING)
        assert pod.phase_at(0.5) is PodPhase.PENDING
        assert pod.phase_at(3.0) is PodPhase.PULLING
        assert pod.phase_at(6.0) is PodPhase.RUNNING


class TestMonitor:
    def test_events_ordered(self):
        monitor = Monitor()
        monitor.log(0.0, "a", "x")
        monitor.log(1.0, "b", "y")
        with pytest.raises(ValueError):
            monitor.log(0.5, "c", "z")

    def test_counters_and_gauges(self):
        monitor = Monitor()
        monitor.count("pulls")
        monitor.count("pulls", 2.0)
        monitor.gauge("load", 0.5)
        assert monitor.counter("pulls") == 3.0
        assert monitor.gauges() == {"load": 0.5}

    def test_events_of_and_render(self):
        monitor = Monitor()
        monitor.log(0.0, "pull-start", "pod-a", "detail")
        monitor.log(1.0, "pod-succeeded", "pod-a")
        assert len(monitor.events_of("pull-start")) == 1
        assert "pull-start" in monitor.render()

    def test_events_of_preserves_log_order(self):
        # The per-kind index must return exactly the filtered view of
        # the append-ordered log — same events, same order.
        monitor = Monitor()
        for step in range(50):
            kind = ("pull-start", "pull-done", "pod-succeeded")[step % 3]
            monitor.log(float(step), kind, f"pod-{step % 7}", str(step))
        for kind in ("pull-start", "pull-done", "pod-succeeded"):
            assert monitor.events_of(kind) == [
                event for event in monitor.events if event.kind == kind
            ]
        assert monitor.events_of("never-logged") == []


class TestCluster:
    def test_duplicate_node_rejected(self, testbed):
        cluster = Cluster()
        device = testbed.devices()[0]
        cluster.register_node(device, testbed.network)
        with pytest.raises(ClusterError):
            cluster.register_node(device, testbed.network)

    def test_unknown_lookups(self):
        cluster = Cluster()
        with pytest.raises(ClusterError):
            cluster.node("ghost")
        with pytest.raises(ClusterError):
            cluster.registry("ghost")

    def test_make_cluster_wires_testbed(self, testbed):
        cluster = make_cluster(testbed)
        assert set(cluster.node_names()) == {"medium", "small"}
        assert {r.name for r in cluster.registries()} == {
            "docker-hub", "regional",
        }


class TestControllerSequential:
    def test_rollout_completes(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        report = ApplicationController(cluster).execute(
            video_app, plan, testbed.references
        )
        assert len(report.records) == 6
        assert all(p.phase is PodPhase.SUCCEEDED for p in report.pods)

    def test_execution_order_is_topological(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        report = ApplicationController(cluster).execute(
            video_app, plan, testbed.references
        )
        order = [r.service for r in report.records]
        assert order == video_app.topological_order()

    def test_sequential_never_overlaps(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        report = ApplicationController(cluster).execute(
            video_app, plan, testbed.references
        )
        for earlier, later in zip(report.records, report.records[1:]):
            assert later.start_s >= earlier.end_s - 1e-9

    def test_ledger_matches_records(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        report = ApplicationController(cluster).execute(
            video_app, plan, testbed.references
        )
        assert report.total_energy_j == pytest.approx(
            sum(r.energy_j for r in report.records)
        )

    def test_meters_reconcile(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        report = ApplicationController(cluster).execute(
            video_app, plan, testbed.references
        )
        for reading in report.readings:
            assert reading.reconciliation.within(0.01)

    def test_monitor_saw_all_pods(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        controller = ApplicationController(cluster)
        report = controller.execute(video_app, plan, testbed.references)
        assert report.monitor.counter("pods_succeeded") == 6
        assert len(report.monitor.events_of("pull-done")) == 6

    def test_plan_must_cover_app(self, testbed, video_app):
        from repro.core.placement import PlacementError, PlacementPlan

        cluster = make_cluster(testbed)
        incomplete = PlacementPlan(video_app.name)
        with pytest.raises(PlacementError):
            ApplicationController(cluster).execute(
                video_app, incomplete, testbed.references
            )


class TestControllerStageParallel:
    def test_stage_parallel_is_faster(self, testbed, video_app, plan):
        seq = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references, mode=ExecutionMode.SEQUENTIAL
        )
        par = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references,
            mode=ExecutionMode.STAGE_PARALLEL,
        )
        assert par.makespan_s <= seq.makespan_s + 1e-9

    def test_stage_parallel_same_energy(self, testbed, video_app, plan):
        """Energy is mode-independent: same work, same phases."""
        seq = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references, mode=ExecutionMode.SEQUENTIAL
        )
        par = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references,
            mode=ExecutionMode.STAGE_PARALLEL,
        )
        assert par.total_energy_j == pytest.approx(seq.total_energy_j)

    def test_barriers_respected(self, testbed, video_app, plan):
        report = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references,
            mode=ExecutionMode.STAGE_PARALLEL,
        )
        stages = video_app.stages()
        end_of = {r.service: r.end_s for r in report.records}
        start_of = {r.service: r.start_s for r in report.records}
        for earlier, later in zip(stages, stages[1:]):
            barrier = max(end_of[s] for s in earlier)
            for svc in later:
                assert start_of[svc] >= barrier - 1e-9


class TestPullPolicies:
    def test_warm_second_rollout(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        controller = ApplicationController(cluster)
        cold = controller.execute(video_app, plan, testbed.references)
        warm = controller.execute(video_app, plan, testbed.references)
        assert all(r.cache_hit for r in warm.records)
        assert warm.total_energy_j < cold.total_energy_j

    def test_always_pull_policy_forces_repull(self, testbed, video_app, plan):
        cluster = make_cluster(testbed)
        controller = ApplicationController(cluster)
        controller.execute(video_app, plan, testbed.references)
        again = controller.execute(
            video_app, plan, testbed.references,
            pull_policy=ImagePullPolicy.ALWAYS,
        )
        assert not any(r.cache_hit for r in again.records)

    def test_layered_cluster_pulls_fewer_bytes(self, testbed, video_app, plan):
        whole = ApplicationController(
            make_cluster(testbed, PullPolicy.WHOLE_IMAGE)
        ).execute(video_app, plan, testbed.references)
        layered = ApplicationController(
            make_cluster(testbed, PullPolicy.LAYERED)
        ).execute(video_app, plan, testbed.references)
        whole_bytes = sum(r.pull.bytes_transferred for r in whole.records)
        layered_bytes = sum(r.pull.bytes_transferred for r in layered.records)
        assert layered_bytes < whole_bytes


class TestPullByteCounters:
    """The monitor, not the pull plans, is the source of truth for
    per-source traffic (satellite: peer-served byte metering)."""

    def test_two_tier_rollout_attributes_bytes_to_registries(
        self, testbed, video_app, plan
    ):
        cluster = make_cluster(testbed)
        controller = ApplicationController(cluster)
        report = controller.execute(video_app, plan, testbed.references)
        counters = report.monitor.counters()
        assert counters["bytes_pulled"] == sum(
            r.pull.bytes_transferred for r in report.records
        )
        assert counters["bytes_from_peers"] == 0
        by_source = {
            name[len("bytes_from."):]: value
            for name, value in counters.items()
            if name.startswith("bytes_from.")
        }
        assert sum(by_source.values()) == counters["bytes_pulled"]
        assert all(cluster.registry(name) for name in by_source)

    def test_p2p_rollout_meters_peer_bytes(self, testbed):
        import dataclasses

        from repro.devices.executor import DeviceRuntime
        from repro.devices.specs import MEDIUM_POWER, MEDIUM_SPEC
        from repro.model.application import Microservice
        from repro.model.device import Device
        from repro.model.network import NetworkModel
        from repro.orchestrator.kubelet import Kubelet
        from repro.orchestrator.objects import Pod as PodObj
        from repro.registry.hub import DockerHub
        from repro.registry.images import OFFICIAL_BASES, build_image
        from repro.registry.p2p import P2PRegistry, PeerSwarm
        from repro.sim.engine import Simulator

        hub = DockerHub(name="docker-hub")
        mlist, blobs = build_image(
            "acme/app", 0.5, base=OFFICIAL_BASES["python:3.9-slim"]
        )
        hub.push_image("acme/app", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_devices("edge-a", "edge-b", 800.0)
        for name in ("edge-a", "edge-b"):
            network.connect_registry("docker-hub", name, 80.0)
        sim = Simulator()
        swarm = PeerSwarm(network)
        facade = P2PRegistry(swarm, [hub])
        monitor = Monitor()
        runtimes = {
            name: DeviceRuntime(
                sim=sim,
                device=Device(
                    spec=dataclasses.replace(MEDIUM_SPEC, name=name),
                    power=MEDIUM_POWER,
                    region="lab",
                ),
                network=network,
                p2p=facade,
            )
            for name in ("edge-a", "edge-b")
        }
        service = Microservice(name="svc", image="acme/app", size_gb=0.5)
        for i, name in enumerate(("edge-a", "edge-b")):
            pod = PodObj(
                name=f"svc-{name}", service="svc", image=ImageReference("acme/app"),
                node=name, registry=facade.name,
            )
            kubelet = Kubelet(runtimes[name], monitor)
            sim.process(kubelet.run_pod(pod, service, hub))
            sim.run()
        counters = monitor.counters()
        assert counters["bytes_from_peers"] > 0
        assert counters["bytes_from.edge-a"] == counters["bytes_from_peers"]
        assert (
            counters["bytes_from.docker-hub"] + counters["bytes_from_peers"]
            == counters["bytes_pulled"]
        )


class TestTimeResolvedCluster:
    """Pulls driven as engine processes instead of analytic sleeps."""

    def test_sequential_rollout_matches_analytic_when_uncontended(
        self, testbed, video_app, plan
    ):
        from repro.sim.transfers import TransferModel

        analytic = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references
        )
        resolved = ApplicationController(
            make_cluster(testbed, transfer_model=TransferModel.TIME_RESOLVED)
        ).execute(video_app, plan, testbed.references)
        # Sequential rollout never overlaps transfers, so fair sharing
        # degenerates to the analytic size/BW times.
        assert resolved.makespan_s == pytest.approx(analytic.makespan_s)
        assert resolved.total_energy_j == pytest.approx(analytic.total_energy_j)
        by_name = {r.service: r for r in analytic.records}
        for record in resolved.records:
            assert record.times.deploy_s == pytest.approx(
                by_name[record.service].times.deploy_s
            )

    def test_stage_parallel_contention_cannot_beat_analytic(
        self, testbed, video_app, plan
    ):
        from repro.sim.transfers import TransferModel

        analytic = ApplicationController(make_cluster(testbed)).execute(
            video_app, plan, testbed.references, mode=ExecutionMode.STAGE_PARALLEL
        )
        tr_cluster = make_cluster(
            testbed, transfer_model=TransferModel.TIME_RESOLVED
        )
        resolved = ApplicationController(tr_cluster).execute(
            video_app, plan, testbed.references, mode=ExecutionMode.STAGE_PARALLEL
        )
        # Shared links can only slow concurrent pulls down, never
        # speed them up past the uncontended analytic bound.
        assert resolved.makespan_s >= analytic.makespan_s - 1e-9
        assert tr_cluster.engine is not None
        assert tr_cluster.engine.peak_oversubscription() <= 1.0 + 1e-9


class TestChunkedKubeletCounters:
    """Chunked pulls metered through the kubelet at chunk granularity."""

    def test_chunked_rollout_splits_bytes_from_by_chunk_source(self):
        import dataclasses

        from repro.devices.executor import DeviceRuntime
        from repro.devices.specs import MEDIUM_POWER, MEDIUM_SPEC
        from repro.model.application import Microservice
        from repro.model.device import Device
        from repro.model.network import NetworkModel
        from repro.orchestrator.kubelet import Kubelet
        from repro.orchestrator.objects import Pod as PodObj
        from repro.registry.hub import DockerHub
        from repro.registry.images import build_image
        from repro.registry.p2p import P2PRegistry, PeerSwarm
        from repro.sim.engine import Simulator
        from repro.sim.transfers import TransferEngine, TransferModel

        hub = DockerHub(name="docker-hub")
        # single-layer image: every per-source split below is chunk
        # granular by construction (layer granularity would be one row)
        mlist, blobs = build_image("acme/mono", 0.4, base=None, app_layers=1)
        hub.push_image("acme/mono", "latest", mlist, blobs)
        network = NetworkModel()
        names = ("edge-a", "edge-b", "edge-c")
        network.connect_device_mesh(list(names), 100.0)
        for name in names:
            network.connect_registry("docker-hub", name, 80.0)
        sim = Simulator()
        # budget 2 + window 4: a cold pull *must* spread chunks across
        # both seeders instead of pinning the tie-break winner
        engine = TransferEngine(sim, network, default_upload_budget=2)
        swarm = PeerSwarm(network)
        facade = P2PRegistry(
            swarm, [hub], chunked=True, chunk_size_bytes=16_000_000
        )
        monitor = Monitor()
        runtimes = {
            name: DeviceRuntime(
                sim=sim,
                device=Device(
                    spec=dataclasses.replace(MEDIUM_SPEC, name=name),
                    power=MEDIUM_POWER,
                    region="lab",
                ),
                network=network,
                p2p=facade,
                transfer_model=TransferModel.TIME_RESOLVED,
                engine=engine,
            )
            for name in names
        }
        service = Microservice(name="svc", image="acme/mono", size_gb=0.4)
        # warm two seeders sequentially, then pull onto the third: its
        # chunks stream from both peers (and possibly the hub)
        for name in names:
            pod = PodObj(
                name=f"svc-{name}",
                service="svc",
                image=ImageReference("acme/mono"),
                node=name,
                registry=facade.name,
            )
            kubelet = Kubelet(runtimes[name], monitor)
            sim.process(kubelet.run_pod(pod, service, hub))
            sim.run()
        counters = monitor.counters()
        assert counters["bytes_from_peers"] > 0
        peer_split = {
            name: counters.get(f"bytes_from.{name}", 0)
            for name in ("edge-a", "edge-b")
        }
        # chunk-granular attribution: the cold pull drew from *both*
        # warm seeders, each credited its own chunk bytes
        assert all(v > 0 for v in peer_split.values())
        assert sum(peer_split.values()) == counters["bytes_from_peers"]
        assert (
            counters.get("bytes_from.docker-hub", 0)
            + counters["bytes_from_peers"]
            == counters["bytes_pulled"]
        )
        # chunked counters exist and report a clean run
        assert counters["bytes_wasted"] == 0
        assert counters["chunk_endgame_dupes"] == 0

    def test_kubelet_meters_restart_waste(self):
        import dataclasses

        from repro.devices.executor import DeviceRuntime
        from repro.devices.specs import MEDIUM_POWER, MEDIUM_SPEC
        from repro.model.application import Microservice
        from repro.model.device import Device
        from repro.model.network import NetworkModel
        from repro.orchestrator.kubelet import Kubelet
        from repro.orchestrator.objects import Pod as PodObj
        from repro.registry.hub import DockerHub
        from repro.registry.images import build_image
        from repro.registry.p2p import P2PRegistry, PeerSwarm
        from repro.sim.engine import Simulator
        from repro.sim.transfers import TransferEngine, TransferModel

        hub = DockerHub(name="docker-hub")
        mlist, blobs = build_image("acme/mono", 0.4, base=None, app_layers=1)
        hub.push_image("acme/mono", "latest", mlist, blobs)
        network = NetworkModel()
        network.connect_devices("edge-a", "edge-b", 100.0)
        for name in ("edge-a", "edge-b"):
            network.connect_registry("docker-hub", name, 80.0)
        sim = Simulator()
        engine = TransferEngine(sim, network)
        swarm = PeerSwarm(network)
        facade = P2PRegistry(swarm, [hub])  # single-source
        monitor = Monitor()
        runtimes = {
            name: DeviceRuntime(
                sim=sim,
                device=Device(
                    spec=dataclasses.replace(MEDIUM_SPEC, name=name),
                    power=MEDIUM_POWER,
                    region="lab",
                ),
                network=network,
                p2p=facade,
                transfer_model=TransferModel.TIME_RESOLVED,
                engine=engine,
            )
            for name in ("edge-a", "edge-b")
        }
        service = Microservice(name="svc", image="acme/mono", size_gb=0.4)
        pod_a = PodObj(
            name="svc-a", service="svc", image=ImageReference("acme/mono"),
            node="edge-a", registry=facade.name,
        )
        sim.process(
            Kubelet(runtimes["edge-a"], monitor).run_pod(pod_a, service, hub)
        )
        sim.run()
        pod_b = PodObj(
            name="svc-b", service="svc", image=ImageReference("acme/mono"),
            node="edge-b", registry=facade.name,
        )
        sim.process(
            Kubelet(runtimes["edge-b"], monitor).run_pod(pod_b, service, hub)
        )

        def departure():
            # edge-b sources the layer from edge-a (100 > 80 Mbit);
            # kill the seeder mid-transfer to force a restart
            yield sim.timeout(10.0)
            swarm.remove_device("edge-a", engine=engine)

        sim.process(departure())
        sim.run()
        counters = monitor.counters()
        # the abandoned transfer's delivered bytes are metered, loudly
        assert counters["bytes_wasted"] > 0
