"""Device runtime: the three-phase execution process."""

import pytest

from repro.devices.executor import DeviceRuntime
from repro.devices.specs import medium_device, small_device
from repro.model.application import Microservice, ResourceRequirements
from repro.model.device import Phase
from repro.model.network import NetworkModel
from repro.registry.base import ImageReference
from repro.registry.client import PullPolicy
from repro.registry.hub import DockerHub
from repro.registry.images import OFFICIAL_BASES, build_image
from repro.sim.engine import Simulator


@pytest.fixture
def hub():
    registry = DockerHub()
    mlist, blobs = build_image("acme/app", 1.0, base=OFFICIAL_BASES["alpine:3"])
    registry.push_image("acme/app", "latest", mlist, blobs)
    mlist2, blobs2 = build_image("acme/warm", 1.0, base=OFFICIAL_BASES["alpine:3"])
    registry.push_image("acme/warm", "latest", mlist2, blobs2)
    return registry


@pytest.fixture
def net():
    model = NetworkModel()
    model.connect_registry("docker-hub", "medium", 80.0)  # 10 MB/s
    model.connect_registry("docker-hub", "small", 80.0)
    model.connect_devices("medium", "small", 80.0)
    model.connect_ingress("medium", 80.0)
    return model


def service(cpu_mi=36_000.0, ingress=0.0, warm=0.0, image="acme/app"):
    return Microservice(
        name="svc",
        image=image,
        size_gb=1.0,
        requirements=ResourceRequirements(cpu_mi=cpu_mi),
        ingress_mb=ingress,
        warm_fraction=warm,
    )


def run(runtime, svc, hub, incoming=()):
    process = runtime.sim.process(
        runtime.run_microservice(svc, hub, ImageReference(svc.image), incoming)
    )
    runtime.sim.run()
    return process.value


class TestExecution:
    def test_three_phase_times(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        record = run(runtime, service(ingress=100.0), hub)
        assert record.times.deploy_s == pytest.approx(100.0)  # 1 GB @ 10 MB/s
        assert record.times.transfer_s == pytest.approx(10.0)
        assert record.times.compute_s == pytest.approx(1.0)  # 36k MI @ 36k MI/s
        assert sim.now == pytest.approx(111.0)

    def test_trace_segments_match_phases(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        run(runtime, service(ingress=100.0), hub)
        phases = [seg.phase for seg in runtime.trace.segments]
        assert phases == [Phase.PULL, Phase.TRANSFER, Phase.COMPUTE]

    def test_trace_energy_matches_record(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        record = run(runtime, service(ingress=100.0), hub)
        assert runtime.trace.energy_between_j(
            record.start_s, record.end_s
        ) == pytest.approx(record.energy_j)

    def test_cached_image_skips_pull(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        run(runtime, service(), hub)
        second = run(runtime, service(), hub)
        assert second.cache_hit
        assert second.times.deploy_s == 0.0

    def test_warm_fraction_shortens_pull(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        record = run(runtime, service(warm=0.5, image="acme/warm"), hub)
        assert record.times.deploy_s == pytest.approx(50.0)

    def test_upstream_transfer_times(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        record = run(runtime, service(), hub, incoming=[("small", 100.0)])
        assert record.times.transfer_s == pytest.approx(10.0)

    def test_colocated_transfer_free(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        record = run(runtime, service(), hub, incoming=[("medium", 5000.0)])
        assert record.times.transfer_s == 0.0

    def test_intensity_fn_applied(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(
            sim, medium_device(), net, intensity=lambda s, d: 2.0
        )
        record = run(runtime, service(), hub)
        assert record.intensity == 2.0
        base = medium_device().power
        assert record.energy.compute_j == pytest.approx(
            base.compute_watts * 2.0 * record.times.compute_s
        )

    def test_device_lock_serialises(self, hub, net):
        """Two services on one device never overlap in the trace."""
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        svc_a = service()
        svc_b = service(image="acme/warm")
        pa = sim.process(
            runtime.run_microservice(svc_a, hub, ImageReference("acme/app"))
        )
        pb = sim.process(
            runtime.run_microservice(svc_b, hub, ImageReference("acme/warm"))
        )
        sim.run()
        ra, rb = pa.value, pb.value
        assert ra.end_s <= rb.start_s or rb.end_s <= ra.start_s

    def test_records_accumulate(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(sim, medium_device(), net)
        run(runtime, service(), hub)
        run(runtime, service(image="acme/warm"), hub)
        assert [r.service for r in runtime.records] == ["svc", "svc"]
        assert len(runtime.records) == 2

    def test_layered_policy_dedups_on_device(self, hub, net):
        sim = Simulator()
        runtime = DeviceRuntime(
            sim, medium_device(), net, pull_policy=PullPolicy.LAYERED
        )
        run(runtime, service(), hub)
        second = run(runtime, service(image="acme/warm"), hub)
        # Shared alpine base already on the device.
        assert second.pull.bytes_transferred < second.pull.bytes_total
