"""Power traces and storage ledgers."""

import pytest

from repro.devices.power import PowerSegment, PowerTrace
from repro.devices.specs import medium_device, small_device
from repro.devices.storage import StorageExhausted, StorageLedger
from repro.model.device import Phase


@pytest.fixture
def device():
    return medium_device()


@pytest.fixture
def trace(device):
    return PowerTrace(device)


class TestPowerSegment:
    def test_energy(self):
        seg = PowerSegment(0.0, 10.0, 3.0, Phase.COMPUTE)
        assert seg.energy_j == 30.0
        assert seg.duration_s == 10.0

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            PowerSegment(5.0, 4.0, 1.0, Phase.IDLE)


class TestPowerTrace:
    def test_record_uses_device_power(self, trace, device):
        seg = trace.record(0.0, 10.0, Phase.COMPUTE)
        assert seg.watts == device.power.total_watts(Phase.COMPUTE)

    def test_record_intensity_scaling(self, trace, device):
        seg = trace.record(0.0, 10.0, Phase.COMPUTE, utilization=2.0)
        expected = device.power.static_watts + 2.0 * device.power.compute_watts
        assert seg.watts == pytest.approx(expected)

    def test_overlap_rejected(self, trace):
        trace.record(0.0, 10.0, Phase.PULL)
        with pytest.raises(ValueError):
            trace.record(5.0, 1.0, Phase.COMPUTE)

    def test_gap_allowed_and_idles(self, trace, device):
        trace.record(0.0, 10.0, Phase.PULL)
        trace.record(20.0, 5.0, Phase.COMPUTE)
        assert trace.power_at(15.0) == device.power.static_watts

    def test_power_at_boundaries(self, trace, device):
        trace.record(0.0, 10.0, Phase.PULL)
        assert trace.power_at(0.0) == device.power.total_watts(Phase.PULL)
        # Interval is half-open: at t=10 the device is idle again.
        assert trace.power_at(10.0) == device.power.static_watts

    def test_energy_between_exact(self, trace, device):
        trace.record(0.0, 10.0, Phase.PULL)
        p = device.power
        expected = p.total_watts(Phase.PULL) * 10 + p.static_watts * 10
        assert trace.energy_between_j(0.0, 20.0) == pytest.approx(expected)

    def test_energy_partial_overlap(self, trace, device):
        trace.record(0.0, 10.0, Phase.COMPUTE)
        p = device.power
        expected = p.total_watts(Phase.COMPUTE) * 5 + p.static_watts * 5
        assert trace.energy_between_j(5.0, 15.0) == pytest.approx(expected)

    def test_active_energy_excludes_static(self, trace, device):
        trace.record(0.0, 10.0, Phase.COMPUTE)
        assert trace.active_energy_j() == pytest.approx(
            device.power.compute_watts * 10
        )

    def test_total_energy_to_end(self, trace):
        trace.record(0.0, 4.0, Phase.PULL)
        assert trace.total_energy_j() == pytest.approx(
            trace.energy_between_j(0.0, 4.0)
        )

    def test_inverted_window_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.energy_between_j(5.0, 1.0)


class TestStorageLedger:
    def test_reserve_and_release(self):
        ledger = StorageLedger(1.0)  # 1 GB
        ledger.reserve("img", 400_000_000)
        assert ledger.used_bytes == 400_000_000
        assert ledger.release("img") == 400_000_000
        assert ledger.used_bytes == 0

    def test_capacity_enforced(self):
        ledger = StorageLedger(1.0)
        ledger.reserve("a", 800_000_000)
        with pytest.raises(StorageExhausted):
            ledger.reserve("b", 300_000_000)

    def test_re_reserve_replaces(self):
        ledger = StorageLedger(1.0)
        ledger.reserve("a", 900_000_000)
        ledger.reserve("a", 950_000_000)  # fits because old freed first
        assert ledger.used_bytes == 950_000_000

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            StorageLedger(1.0).release("ghost")

    def test_fits(self):
        ledger = StorageLedger(1.0)
        assert ledger.fits(10**9)
        assert not ledger.fits(10**9 + 1)

    def test_used_gb(self):
        ledger = StorageLedger(2.0)
        ledger.reserve("a", 500_000_000)
        assert ledger.used_gb == pytest.approx(0.5)
