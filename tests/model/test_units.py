"""Unit conversions: the Size/BW and CPU/speed terms of Sec. III-D."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model import units


class TestConversions:
    def test_gb_mb_round_trip(self):
        assert units.mb_to_gb(units.gb_to_mb(5.78)) == pytest.approx(5.78)

    def test_gb_to_bytes_decimal_convention(self):
        assert units.gb_to_bytes(1.0) == 1_000_000_000

    def test_mb_to_bytes(self):
        assert units.mb_to_bytes(1.5) == 1_500_000

    def test_bytes_to_mb(self):
        assert units.bytes_to_mb(2_500_000) == pytest.approx(2.5)

    def test_j_to_kj(self):
        assert units.j_to_kj(3264.0) == pytest.approx(3.264)


class TestTransferTime:
    def test_basic_formula(self):
        # 100 MB over 100 Mbit/s = 800 Mbit / 100 Mbit/s = 8 s.
        assert units.transfer_time_s(100.0, 100.0) == pytest.approx(8.0)

    def test_gb_variant_matches_mb(self):
        assert units.transfer_time_gb_s(5.78, 44.0) == pytest.approx(
            units.transfer_time_s(5780.0, 44.0)
        )

    def test_zero_payload_is_free(self):
        assert units.transfer_time_s(0.0, 44.0) == 0.0

    def test_zero_payload_ignores_bad_bandwidth(self):
        assert units.transfer_time_s(0.0, 0.0) == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time_s(-1.0, 44.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            units.transfer_time_s(10.0, 0.0)

    @given(
        size=st.floats(0.001, 1e4),
        bw=st.floats(0.1, 1e4),
    )
    def test_time_positive_and_scales_inversely(self, size, bw):
        t = units.transfer_time_s(size, bw)
        assert t > 0
        assert units.transfer_time_s(size, 2 * bw) == pytest.approx(t / 2)


class TestProcessingTime:
    def test_paper_scale_example(self):
        # 4 410 000 MI at 36 000 MI/s ≈ 122.5 s (ha-train on medium).
        assert units.processing_time_s(4_410_000, 36_000) == pytest.approx(122.5)

    def test_zero_load_free(self):
        assert units.processing_time_s(0.0, 36_000) == 0.0

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            units.processing_time_s(100.0, 0.0)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            units.processing_time_s(-1.0, 100.0)


class TestEnergy:
    def test_energy_is_power_times_time(self):
        assert units.energy_j(2.5, 100.0) == pytest.approx(250.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            units.energy_j(-1.0, 10.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.energy_j(1.0, -10.0)


class TestValidators:
    def test_require_positive_accepts(self):
        assert units.require_positive(3.5, "x") == 3.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_require_positive_rejects(self, bad):
        with pytest.raises(ValueError):
            units.require_positive(bad, "x")

    def test_require_non_negative_accepts_zero(self):
        assert units.require_non_negative(0.0, "x") == 0.0

    @pytest.mark.parametrize("bad", [-0.1, math.nan, math.inf])
    def test_require_non_negative_rejects(self, bad):
        with pytest.raises(ValueError):
            units.require_non_negative(bad, "x")
