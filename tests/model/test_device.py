"""Device and power model behaviour."""

import pytest

from repro.model.device import (
    Arch,
    Device,
    DeviceFleet,
    DeviceSpec,
    Phase,
    PowerModel,
)


@pytest.fixture
def spec():
    return DeviceSpec(
        name="dev", arch=Arch.AMD64, cores=8, speed_mips=36_000,
        memory_gb=16.0, storage_gb=64.0,
    )


@pytest.fixture
def power():
    return PowerModel(
        static_watts=2.0, compute_watts=20.0, pull_watts=1.0, transfer_watts=0.5
    )


class TestPowerModel:
    def test_idle_draws_static_only(self, power):
        assert power.total_watts(Phase.IDLE) == 2.0
        assert power.active_watts(Phase.IDLE) == 0.0

    def test_phase_surcharges(self, power):
        assert power.active_watts(Phase.PULL) == 1.0
        assert power.active_watts(Phase.TRANSFER) == 0.5
        assert power.active_watts(Phase.COMPUTE) == 20.0

    def test_compute_scales_with_utilization(self, power):
        assert power.active_watts(Phase.COMPUTE, 0.5) == 10.0

    def test_intensity_above_one_allowed(self, power):
        # Calibrated workload intensities may exceed the baseline.
        assert power.active_watts(Phase.COMPUTE, 2.5) == 50.0

    def test_negative_utilization_rejected(self, power):
        with pytest.raises(ValueError):
            power.active_watts(Phase.COMPUTE, -0.1)

    def test_utilization_only_affects_compute(self, power):
        assert power.active_watts(Phase.PULL, 0.5) == 1.0

    def test_negative_watts_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(static_watts=-1.0, compute_watts=1.0)


class TestDeviceSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec("", Arch.AMD64, 8, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", Arch.AMD64, 0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DeviceSpec("x", Arch.AMD64, 1, 0.0, 1.0, 1.0)


class TestDevice:
    def test_can_host_respects_all_dimensions(self, spec, power):
        device = Device(spec=spec, power=power)
        assert device.can_host(cores=8, memory_gb=16.0, storage_gb=64.0)
        assert not device.can_host(cores=9, memory_gb=1.0, storage_gb=1.0)
        assert not device.can_host(cores=1, memory_gb=17.0, storage_gb=1.0)
        assert not device.can_host(cores=1, memory_gb=1.0, storage_gb=65.0)

    def test_with_power_replaces_model(self, spec, power):
        device = Device(spec=spec, power=power)
        new = device.with_power(PowerModel(static_watts=9.0, compute_watts=1.0))
        assert new.power.static_watts == 9.0
        assert device.power.static_watts == 2.0  # original untouched

    def test_name_and_arch_shortcuts(self, spec, power):
        device = Device(spec=spec, power=power)
        assert device.name == "dev"
        assert device.arch is Arch.AMD64


class TestDeviceFleet:
    def test_ordered_iteration(self, spec, power):
        a = Device(spec=spec, power=power)
        b = Device(
            spec=DeviceSpec("pi", Arch.ARM64, 4, 9_600, 8.0, 32.0), power=power
        )
        fleet = DeviceFleet.of(a, b)
        assert fleet.names() == ["dev", "pi"]
        assert len(fleet) == 2
        assert "pi" in fleet
        assert fleet["pi"].arch is Arch.ARM64

    def test_duplicate_rejected(self, spec, power):
        fleet = DeviceFleet.of(Device(spec=spec, power=power))
        with pytest.raises(ValueError):
            fleet.add(Device(spec=spec, power=power))
