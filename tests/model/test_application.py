"""Application DAG model: structure, validation, stages/barriers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.application import (
    Application,
    CycleError,
    Dataflow,
    Microservice,
    ResourceRequirements,
)


def ms(name, size=1.0, cpu=100.0, **kw):
    return Microservice(
        name=name,
        image=name,
        size_gb=size,
        requirements=ResourceRequirements(cpu_mi=cpu),
        **kw,
    )


def diamond():
    """a -> {b, c} -> d."""
    return Application(
        "diamond",
        [ms("a"), ms("b"), ms("c"), ms("d")],
        [
            Dataflow("a", "b", 10.0),
            Dataflow("a", "c", 20.0),
            Dataflow("b", "d", 30.0),
            Dataflow("c", "d", 40.0),
        ],
    )


class TestMicroservice:
    def test_fields_validated(self):
        with pytest.raises(ValueError):
            Microservice(name="", image="x", size_gb=1.0)
        with pytest.raises(ValueError):
            Microservice(name="x", image="", size_gb=1.0)
        with pytest.raises(ValueError):
            Microservice(name="x", image="x", size_gb=-1.0)

    def test_warm_fraction_bounds(self):
        with pytest.raises(ValueError):
            ms("x", warm_fraction=1.5)
        with pytest.raises(ValueError):
            ms("x", warm_fraction=-0.1)

    def test_cold_pull_gb(self):
        service = ms("x", size=4.0, warm_fraction=0.25)
        assert service.cold_pull_gb == pytest.approx(3.0)

    def test_requirements_validated(self):
        with pytest.raises(ValueError):
            ResourceRequirements(cores=0)
        with pytest.raises(ValueError):
            ResourceRequirements(cpu_mi=-1.0)

    def test_requirements_scaled(self):
        req = ResourceRequirements(cores=2, cpu_mi=100.0)
        assert req.scaled(2.0).cpu_mi == 200.0
        assert req.scaled(2.0).cores == 2


class TestDataflow:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Dataflow("a", "a", 1.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Dataflow("a", "b", -1.0)


class TestConstruction:
    def test_duplicate_service_rejected(self):
        app = Application("t", [ms("a")])
        with pytest.raises(ValueError):
            app.add_microservice(ms("a"))

    def test_unknown_endpoint_rejected(self):
        app = Application("t", [ms("a")])
        with pytest.raises(KeyError):
            app.add_dataflow(Dataflow("a", "ghost", 1.0))

    def test_duplicate_edge_rejected(self):
        app = Application("t", [ms("a"), ms("b")], [Dataflow("a", "b", 1.0)])
        with pytest.raises(ValueError):
            app.add_dataflow(Dataflow("a", "b", 2.0))

    def test_cycle_rejected_eagerly(self):
        app = Application(
            "t", [ms("a"), ms("b")], [Dataflow("a", "b", 1.0)]
        )
        with pytest.raises(CycleError):
            app.add_dataflow(Dataflow("b", "a", 1.0))

    def test_long_cycle_rejected(self):
        app = Application(
            "t",
            [ms("a"), ms("b"), ms("c")],
            [Dataflow("a", "b", 1.0), Dataflow("b", "c", 1.0)],
        )
        with pytest.raises(CycleError):
            app.add_dataflow(Dataflow("c", "a", 1.0))


class TestAccessors:
    def test_len_and_contains(self):
        app = diamond()
        assert len(app) == 4
        assert "a" in app and "ghost" not in app

    def test_flow_lookup(self):
        assert diamond().flow("a", "b").size_mb == 10.0

    def test_in_out_flows(self):
        app = diamond()
        assert {f.size_mb for f in app.in_flows("d")} == {30.0, 40.0}
        assert {f.size_mb for f in app.out_flows("a")} == {10.0, 20.0}

    def test_sources_and_sinks(self):
        app = diamond()
        assert app.sources() == ["a"]
        assert app.sinks() == ["d"]

    def test_predecessors_successors(self):
        app = diamond()
        assert set(app.predecessors("d")) == {"b", "c"}
        assert set(app.successors("a")) == {"b", "c"}


class TestStructure:
    def test_topological_order_respects_edges(self):
        app = diamond()
        order = app.topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_stages_of_diamond(self):
        assert diamond().stages() == [["a"], ["b", "c"], ["d"]]

    def test_stage_of(self):
        app = diamond()
        assert app.stage_of("a") == 0
        assert app.stage_of("c") == 1
        assert app.stage_of("d") == 2

    def test_barriers_count_matches_paper_shape(self, video_app):
        # Fig. 2: source, prep, two trains, two downstream stages.
        stages = video_app.stages()
        assert len(stages) == 4
        assert stages[2] == ["vp-ha-train", "vp-la-train"]

    def test_critical_path(self):
        app = Application(
            "t",
            [ms("a", cpu=10), ms("b", cpu=20), ms("c", cpu=5)],
            [Dataflow("a", "b", 1.0), Dataflow("a", "c", 1.0)],
        )
        assert app.critical_path_mi() == 30.0

    def test_totals(self):
        app = diamond()
        assert app.total_image_gb() == pytest.approx(4.0)
        assert app.total_dataflow_mb() == pytest.approx(100.0)


@given(n=st.integers(2, 8), seed=st.integers(0, 1000))
def test_random_chain_always_topologically_consistent(n, seed):
    """Property: chains of any length sort consistently with edges."""
    names = [f"s{i}" for i in range(n)]
    app = Application(
        "chain",
        [ms(name) for name in names],
        [Dataflow(names[i], names[i + 1], 1.0) for i in range(n - 1)],
    )
    order = app.topological_order()
    assert order == names
    assert app.stages() == [[name] for name in names]
