"""Network model: channels, the Size/BW terms, and ingress."""

import pytest

from repro.model.network import INGRESS, Channel, NetworkModel


@pytest.fixture
def net():
    model = NetworkModel()
    model.connect_devices("medium", "small", 100.0)
    model.connect_registry("hub", "medium", 44.0, rtt_s=1.5)
    model.connect_registry("hub", "small", 43.5, rtt_s=1.5)
    model.connect_ingress("medium", 200.0)
    return model


class TestChannel:
    def test_transfer_time(self):
        assert Channel(100.0).transfer_time_s(100.0) == pytest.approx(8.0)

    def test_rtt_added_once(self):
        assert Channel(100.0, rtt_s=2.0).transfer_time_s(100.0) == pytest.approx(10.0)

    def test_zero_payload_skips_rtt(self):
        assert Channel(100.0, rtt_s=2.0).transfer_time_s(0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Channel(0.0)
        with pytest.raises(ValueError):
            Channel(10.0, rtt_s=-1.0)


class TestTopology:
    def test_symmetric_by_default(self, net):
        assert net.device_bandwidth_mbps("medium", "small") == 100.0
        assert net.device_bandwidth_mbps("small", "medium") == 100.0

    def test_asymmetric_channels(self):
        model = NetworkModel()
        model.connect_devices("a", "b", 10.0, symmetric=False)
        assert model.device_bandwidth_mbps("a", "b") == 10.0
        with pytest.raises(KeyError):
            model.device_channel("b", "a")

    def test_explicit_loopback_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().connect_devices("a", "a", 10.0)

    def test_loopback_is_implicit_and_free(self, net):
        assert net.device_channel("medium", "medium") is None
        assert net.device_bandwidth_mbps("medium", "medium") == float("inf")
        assert net.dataflow_time_s("medium", "medium", 1e6) == 0.0

    def test_missing_channel_raises(self, net):
        with pytest.raises(KeyError):
            net.device_channel("medium", "ghost")
        with pytest.raises(KeyError):
            net.registry_channel("ghost", "medium")

    def test_has_registry_channel(self, net):
        assert net.has_registry_channel("hub", "medium")
        assert not net.has_registry_channel("regional", "medium")

    def test_registries_reaching(self, net):
        assert net.registries_reaching("medium") == ["hub", INGRESS]


class TestTransferQueries:
    def test_dataflow_time(self, net):
        # 500 MB over 100 Mbit/s = 40 s.
        assert net.dataflow_time_s("medium", "small", 500.0) == pytest.approx(40.0)

    def test_deployment_time_includes_rtt(self, net):
        # 5.78 GB at 44 Mbit/s + 1.5 s startup.
        expected = 1.5 + 5780 * 8 / 44.0
        assert net.deployment_time_s("hub", "medium", 5.78) == pytest.approx(expected)

    def test_ingress_time(self, net):
        assert net.ingress_time_s("medium", 800.0) == pytest.approx(32.0)

    def test_ingress_zero_free_without_channel(self, net):
        # small has no ingress channel; zero payload must not raise.
        assert net.ingress_time_s("small", 0.0) == 0.0

    def test_ingress_missing_channel_raises(self, net):
        with pytest.raises(KeyError):
            net.ingress_time_s("small", 10.0)
