"""The paper's CT and EC equations (Sec. III-D)."""

import pytest

from repro.model.application import (
    Application,
    Dataflow,
    Microservice,
    ResourceRequirements,
)
from repro.model.device import Arch, Device, DeviceSpec, PowerModel
from repro.model.metrics import (
    CostRecord,
    EnergyBreakdown,
    PhaseTimes,
    compute_time_s,
    deployment_time_s,
    energy_breakdown,
    microservice_cost,
    phase_times,
    total_completion_s,
    total_energy_j,
    transmission_time_s,
)
from repro.model.network import NetworkModel


@pytest.fixture
def device():
    return Device(
        spec=DeviceSpec("d0", Arch.AMD64, 8, 1000.0, 16.0, 64.0),
        power=PowerModel(
            static_watts=1.0, compute_watts=10.0, pull_watts=2.0,
            transfer_watts=0.5,
        ),
    )


@pytest.fixture
def net():
    model = NetworkModel()
    model.connect_registry("hub", "d0", 80.0)  # 10 MB/s
    model.connect_devices("d0", "d1", 80.0)
    model.connect_registry("hub", "d1", 80.0)
    model.connect_ingress("d0", 80.0)
    return model


@pytest.fixture
def service():
    return Microservice(
        name="svc",
        image="svc",
        size_gb=1.0,
        requirements=ResourceRequirements(cpu_mi=5000.0),
    )


class TestPhaseTimes:
    def test_completion_is_sum(self):
        times = PhaseTimes(1.0, 2.0, 3.0)
        assert times.completion_s == 6.0

    def test_addition(self):
        total = PhaseTimes(1.0, 2.0, 3.0) + PhaseTimes(0.5, 0.5, 0.5)
        assert total.completion_s == pytest.approx(7.5)


class TestDeploymentTime:
    def test_cold_pull(self, net):
        # 1 GB = 8000 Mbit at 80 Mbit/s = 100 s.
        assert deployment_time_s(net, "hub", "d0", 1.0) == pytest.approx(100.0)

    def test_cached_is_free(self, net):
        assert deployment_time_s(net, "hub", "d0", 1.0, cached=True) == 0.0

    def test_zero_size_free(self, net):
        assert deployment_time_s(net, "hub", "d0", 0.0) == 0.0


class TestTransmissionTime:
    def test_sums_over_in_flows(self, net):
        t = transmission_time_s(net, [("d1", 100.0), ("d1", 50.0)], "d0")
        assert t == pytest.approx(15.0)

    def test_colocated_flow_free(self, net):
        assert transmission_time_s(net, [("d0", 1000.0)], "d0") == 0.0

    def test_ingress_added(self, net):
        t = transmission_time_s(net, [], "d0", ingress_mb=100.0)
        assert t == pytest.approx(10.0)


class TestComputeTime:
    def test_cpu_over_speed(self, device, service):
        assert compute_time_s(service, device) == pytest.approx(5.0)


class TestWarmFraction:
    def test_warm_image_transfers_fraction(self, net, device):
        warm = Microservice(
            name="w", image="w", size_gb=1.0, warm_fraction=0.75,
            requirements=ResourceRequirements(cpu_mi=0.0),
        )
        times = phase_times(warm, device, net, "hub")
        assert times.deploy_s == pytest.approx(25.0)


class TestEnergyBreakdown:
    def test_phase_integration(self, device):
        times = PhaseTimes(deploy_s=10.0, transfer_s=4.0, compute_s=2.0)
        energy = energy_breakdown(times, device)
        assert energy.pull_j == pytest.approx(20.0)  # 2 W * 10 s
        assert energy.transfer_j == pytest.approx(2.0)  # 0.5 * 4
        assert energy.compute_j == pytest.approx(20.0)  # 10 * 2
        assert energy.static_j == pytest.approx(16.0)  # 1 * 16
        assert energy.active_j == pytest.approx(42.0)
        assert energy.total_j == pytest.approx(58.0)

    def test_ec_equals_ea_plus_es(self, device):
        energy = energy_breakdown(PhaseTimes(1.0, 1.0, 1.0), device)
        assert energy.total_j == pytest.approx(energy.active_j + energy.static_j)

    def test_intensity_scales_compute_only(self, device):
        times = PhaseTimes(1.0, 1.0, 1.0)
        base = energy_breakdown(times, device, 1.0)
        hot = energy_breakdown(times, device, 2.0)
        assert hot.compute_j == pytest.approx(2 * base.compute_j)
        assert hot.pull_j == base.pull_j
        assert hot.static_j == base.static_j

    def test_addition(self, device):
        e = energy_breakdown(PhaseTimes(1.0, 0.0, 0.0), device)
        combined = e + e
        assert combined.total_j == pytest.approx(2 * e.total_j)


class TestMicroserviceCost:
    def _app(self, service):
        up = Microservice(name="up", image="up", size_gb=0.1)
        app = Application("t", [up, service], [Dataflow("up", "svc", 100.0)])
        return app

    def test_full_cost_record(self, device, net, service):
        app = self._app(service)
        record = microservice_cost(
            app, "svc", "hub", device, net, upstream_devices={"up": "d1"}
        )
        assert record.times.deploy_s == pytest.approx(100.0)
        assert record.times.transfer_s == pytest.approx(10.0)
        assert record.times.compute_s == pytest.approx(5.0)
        assert record.registry == "hub"
        assert record.device == "d0"
        assert record.energy_j == pytest.approx(
            2 * 100 + 0.5 * 10 + 10 * 5 + 1 * 115
        )

    def test_unplaced_upstream_skipped(self, device, net, service):
        app = self._app(service)
        record = microservice_cost(app, "svc", "hub", device, net)
        assert record.times.transfer_s == 0.0

    def test_cached_removes_deploy(self, device, net, service):
        app = self._app(service)
        record = microservice_cost(app, "svc", "hub", device, net, cached=True)
        assert record.times.deploy_s == 0.0

    def test_totals(self, device, net, service):
        app = self._app(service)
        r = microservice_cost(app, "svc", "hub", device, net)
        assert total_energy_j([r, r]) == pytest.approx(2 * r.energy_j)
        assert total_completion_s([r, r]) == pytest.approx(2 * r.completion_s)
