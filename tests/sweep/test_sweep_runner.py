"""run_sweep: caching, resume, parallel determinism, aggregation."""

import json
import os

import pytest

from repro.scenarios import ScenarioSpec, with_overrides
from repro.sweep import (
    NONDETERMINISTIC_ROW_COLUMNS,
    SweepSpec,
    cell_row,
    run_sweep,
    write_bench_record,
)

#: A cheap base: every cell simulates in ~15 ms.
BASE = with_overrides(
    ScenarioSpec(),
    {"topology.n_devices": 6, "workload.pulls_per_device": 2},
)


def small_sweep(**kwargs) -> SweepSpec:
    kwargs.setdefault("base", BASE)
    kwargs.setdefault("axes", {"replication.decay": (0.0, 0.5)})
    kwargs.setdefault("seeds", (1, 2))
    return SweepSpec(**kwargs)


def executed_markers(marker_dir) -> set:
    return {p.name for p in marker_dir.iterdir()}


class TestExecution:
    def test_rows_follow_cell_order_and_shape(self):
        sweep = small_sweep()
        result = run_sweep(sweep)
        cells = sweep.cells()
        assert len(result.rows) == len(cells)
        for row, cell in zip(result.rows, cells):
            assert row["key"] == cell.key
            assert row["seed"] == cell.seed
            assert row["replication.decay"] == cell.spec.replication.decay
            assert row["pulls"] > 0
            # nested outcome dicts are flattened to dotted columns
            assert any(c.startswith("bytes_by_registry.") for c in row)

    def test_stats_account_for_every_cell(self, tmp_path):
        result = run_sweep(small_sweep(), cache_dir=tmp_path / "cache")
        assert result.stats.cells == 4
        assert result.stats.executed == 4
        assert result.stats.cache_hits == 0
        assert result.stats.wall_s > 0
        assert result.stats.cells_per_s > 0

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(small_sweep(), workers=0)

    def test_identical_cells_execute_once(self, tmp_path):
        sweep = small_sweep(variants={"a": {}, "b": {}})
        marker_dir = tmp_path / "markers"
        result = run_sweep(sweep, marker_dir=marker_dir)
        assert result.stats.cells == 8
        assert result.stats.executed == 4  # deduplicated by content
        assert len(executed_markers(marker_dir)) == 4
        half = len(result.rows) // 2
        for a_row, b_row in zip(result.rows[:half], result.rows[half:]):
            assert a_row["key"] == b_row["key"]
            assert a_row["pulls"] == b_row["pulls"]


class TestDeterminism:
    def test_parallel_aggregate_byte_identical_to_serial(self, tmp_path):
        sweep = small_sweep(
            axes={"replication.decay": (0.0, 0.3, 0.6)}, seeds=(1, 2)
        )
        serial = run_sweep(sweep, cache_dir=tmp_path / "serial", workers=1)
        parallel = run_sweep(
            sweep, cache_dir=tmp_path / "parallel", workers=2
        )
        assert serial.aggregate_json() == parallel.aggregate_json()
        # and a cached re-read reproduces the same bytes again
        cached = run_sweep(sweep, cache_dir=tmp_path / "serial", workers=2)
        assert cached.stats.executed == 0
        assert cached.aggregate_json() == serial.aggregate_json()

    def test_uncached_run_matches_cached_rows(self, tmp_path):
        sweep = small_sweep()
        assert (
            run_sweep(sweep).aggregate_json()
            == run_sweep(sweep, cache_dir=tmp_path).aggregate_json()
        )


class TestResume:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        # The CI sweep-smoke contract: a 2x2x2 grid, twice, through a
        # 2-process pool; the second run executes nothing.
        sweep = small_sweep(
            axes={"replication.decay": (0.0, 0.5),
                  "workload.pulls_per_device": (2, 3)},
            seeds=(1, 2),
        )
        cache = tmp_path / "cache"
        first = run_sweep(sweep, cache_dir=cache, workers=2)
        assert (first.stats.executed, first.stats.cache_hits) == (8, 0)
        second = run_sweep(sweep, cache_dir=cache, workers=2)
        assert (second.stats.executed, second.stats.cache_hits) == (0, 8)
        assert second.aggregate_json() == first.aggregate_json()

    def test_only_missing_cells_re_execute(self, tmp_path):
        sweep = small_sweep(
            axes={"replication.decay": (0.0, 0.3, 0.6)}, seeds=(1, 2)
        )
        cache = tmp_path / "cache"
        first = run_sweep(
            sweep, cache_dir=cache, marker_dir=tmp_path / "m1"
        )
        keys = [cell.key for cell in sweep.cells()]
        assert executed_markers(tmp_path / "m1") == set(keys)

        # kill half the cache: the resumed run must execute exactly
        # the deleted cells (observed via the worker-side markers) and
        # still aggregate to the same bytes
        deleted = keys[::2]
        for key in deleted:
            (cache / f"{key}.json").unlink()
        second = run_sweep(
            sweep, cache_dir=cache, marker_dir=tmp_path / "m2", workers=2
        )
        assert executed_markers(tmp_path / "m2") == set(deleted)
        assert second.stats.executed == len(deleted)
        assert second.stats.cache_hits == len(keys) - len(deleted)
        assert second.aggregate_json() == first.aggregate_json()

    def test_growing_an_axis_runs_only_new_cells(self, tmp_path):
        cache = tmp_path / "cache"
        run_sweep(
            small_sweep(axes={"replication.decay": (0.0, 0.5)}),
            cache_dir=cache,
        )
        grown = run_sweep(
            small_sweep(axes={"replication.decay": (0.0, 0.5, 0.9)}),
            cache_dir=cache,
            marker_dir=tmp_path / "markers",
        )
        assert grown.stats.cache_hits == 4
        assert grown.stats.executed == 2
        new_keys = {
            c.key for c in grown.sweep.cells()
            if c.spec.replication.decay == 0.9
        }
        assert executed_markers(tmp_path / "markers") == new_keys

    def test_corrupt_cache_entry_is_loud(self, tmp_path):
        sweep = small_sweep(axes={}, seeds=(1,))
        run_sweep(sweep, cache_dir=tmp_path)
        (cell,) = sweep.cells()
        path = tmp_path / f"{cell.key}.json"
        path.write_text("{ truncated")
        with pytest.raises(ValueError, match="corrupt sweep cache"):
            run_sweep(sweep, cache_dir=tmp_path)

    def test_mismatched_cache_key_is_loud(self, tmp_path):
        sweep = small_sweep(axes={}, seeds=(1,))
        run_sweep(sweep, cache_dir=tmp_path)
        (cell,) = sweep.cells()
        path = tmp_path / f"{cell.key}.json"
        document = json.loads(path.read_text())
        document["key"] = "0" * 64
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="holds key"):
            run_sweep(sweep, cache_dir=tmp_path)


class TestAggregate:
    def test_to_csv_emits_every_row(self, tmp_path):
        result = run_sweep(small_sweep())
        path = tmp_path / "rows.csv"
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(result.rows)
        header = lines[0].split(",")
        assert header[:3] == ["replication.decay", "seed", "key"]

    def test_column_projection(self):
        result = run_sweep(small_sweep())
        assert result.column("seed") == [1, 2, 1, 2]
        assert result.column("not-a-column") == [None] * 4

    def test_cell_row_flattens_nested_outcomes(self):
        (cell, *_rest) = small_sweep().cells()
        row = cell_row(cell, {"pulls": 3, "bytes": {"hub": 1, "edge": 2}})
        assert row["pulls"] == 3
        assert row["bytes.hub"] == 1
        assert row["bytes.edge"] == 2

    def test_rows_carry_wall_ms_outside_identity_surface(self, tmp_path):
        result = run_sweep(small_sweep(), cache_dir=tmp_path)
        # Every executed row carries its wall-clock cost...
        assert all(row["wall_ms"] > 0 for row in result.rows)
        # ...but no nondeterministic column reaches the byte-identity
        # surface the determinism and resume contracts compare.
        for row in json.loads(result.aggregate_json()):
            overlap = set(row) & set(NONDETERMINISTIC_ROW_COLUMNS)
            assert not overlap, f"nondeterministic columns leaked: {overlap}"
            assert not any(key.startswith("engine_profile.") for key in row)

    def test_resumed_rows_carry_cached_wall_ms(self, tmp_path):
        sweep = small_sweep()
        first = run_sweep(sweep, cache_dir=tmp_path)
        resumed = run_sweep(sweep, cache_dir=tmp_path)
        assert resumed.stats.executed == 0
        # Cached documents store the original wall_ms, so a resumed
        # row equals its freshly-executed counterpart column-for-column.
        assert resumed.rows == first.rows

    def test_write_bench_record_merges(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        first = run_sweep(small_sweep())
        write_bench_record("one", first.stats, path=path)
        write_bench_record("two", first.stats, path=path, devices=6)
        document = json.loads(path.read_text())
        assert set(document) == {"one", "two"}
        assert document["two"]["devices"] == 6
        assert document["one"]["cells"] == 4
        assert document["one"]["workers"] == 1


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the speedup acceptance needs >= 4 CPU cores",
)
def test_four_workers_beat_serial_by_2_5x(tmp_path):
    """The issue's acceptance bar: a 2-seed x 3-override gossip sweep
    on 4 workers completes >= 2.5x faster than the same sweep serial,
    a re-run completes with zero cells executed, and the aggregates
    are byte-identical."""
    sweep = SweepSpec(
        name="speedup",
        preset="p2p-gossip",
        axes={"discovery.gossip_fanout": (1, 2, 4)},
        seeds=(1, 2),
    )
    serial = run_sweep(sweep, cache_dir=tmp_path / "serial", workers=1)
    parallel = run_sweep(sweep, cache_dir=tmp_path / "parallel", workers=4)
    assert parallel.aggregate_json() == serial.aggregate_json()
    rerun = run_sweep(sweep, cache_dir=tmp_path / "parallel", workers=4)
    assert rerun.stats.executed == 0
    assert rerun.aggregate_json() == serial.aggregate_json()
    speedup = serial.stats.wall_s / parallel.stats.wall_s
    assert speedup >= 2.5, (
        f"4-worker sweep only {speedup:.2f}x faster than serial"
    )
