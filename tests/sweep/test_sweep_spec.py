"""SweepSpec: expansion, identity hashing, validation, serialisation."""

import dataclasses

import pytest

from repro.scenarios import ScenarioSpec, canonical_hash
from repro.sweep import SweepSpec, parse_axis_flags, parse_seed_flag

BASE = ScenarioSpec()


def small_sweep(**kwargs) -> SweepSpec:
    kwargs.setdefault("base", BASE)
    kwargs.setdefault("axes", {"replication.decay": (0.0, 0.5)})
    kwargs.setdefault("seeds", (1, 2))
    return SweepSpec(**kwargs)


class TestExpansion:
    def test_cross_product_size_and_order(self):
        sweep = small_sweep(
            variants={"a": {}, "b": {"mode": "hybrid"}},
            axes={"replication.decay": (0.0, 0.5),
                  "workload.pulls_per_device": (2, 3)},
        )
        cells = sweep.cells()
        assert len(cells) == sweep.n_cells() == 2 * 2 * 2 * 2
        # variants outermost, axes as nested loops, seeds innermost
        assert [c.variant for c in cells[:8]] == ["a"] * 8
        assert cells[0].axis_values == (
            ("replication.decay", 0.0), ("workload.pulls_per_device", 2),
        )
        assert [c.seed for c in cells[:4]] == [1, 2, 1, 2]
        assert [c.index for c in cells] == list(range(len(cells)))

    def test_cells_carry_applied_overrides(self):
        cells = small_sweep().cells()
        assert cells[0].spec.replication.decay == 0.0
        assert cells[0].spec.seed == 1
        assert cells[-1].spec.replication.decay == 0.5
        assert cells[-1].spec.seed == 2

    def test_key_is_the_spec_content_hash(self):
        for cell in small_sweep().cells():
            assert cell.key == cell.spec.cache_key()
            assert cell.key == canonical_hash(cell.spec.to_dict())

    def test_keys_unique_across_distinct_cells(self):
        cells = small_sweep().cells()
        assert len({c.key for c in cells}) == len(cells)

    def test_identical_cells_share_a_key(self):
        # Two variants with the same (empty) bundle describe the same
        # runs — content addressing makes the collision visible.
        sweep = small_sweep(variants={"a": {}, "b": {}})
        cells = sweep.cells()
        half = len(cells) // 2
        assert [c.key for c in cells[:half]] == [c.key for c in cells[half:]]

    def test_preset_base_resolves_at_expansion(self):
        sweep = SweepSpec(preset="p2p", seeds=(9,))
        (cell,) = sweep.cells()
        assert cell.spec.seed == 9
        assert cell.spec.mode == "hybrid+p2p"

    def test_row_id_columns(self):
        (first, *_rest) = small_sweep(variants={"v": {}}).cells()
        row = first.row_id()
        assert row == {
            "variant": "v", "replication.decay": 0.0,
            "seed": 1, "key": first.key,
        }
        # no variants declared -> no variant column
        (first, *_rest) = small_sweep().cells()
        assert "variant" not in first.row_id()

    def test_invalid_combination_fails_with_cell_context(self):
        sweep = small_sweep(axes={"discovery.gossip_fanout": (1, 2)})
        with pytest.raises(ValueError, match="gossip_fanout"):
            sweep.cells()  # gossip knob under omniscient discovery


class TestValidation:
    def test_needs_exactly_one_of_preset_and_base(self):
        with pytest.raises(ValueError, match="exactly one"):
            SweepSpec()
        with pytest.raises(ValueError, match="exactly one"):
            SweepSpec(preset="p2p", base=BASE)

    def test_unknown_preset_fails_at_construction(self):
        with pytest.raises(KeyError, match="nonsense"):
            SweepSpec(preset="nonsense")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="declared twice"):
            small_sweep(axes=[("mode", ("hybrid",)), ("mode", ("p2p",))])

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            small_sweep(axes={"replication.decay": ()})

    def test_repeated_axis_value_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            small_sweep(axes={"replication.decay": (0.5, 0.5)})

    def test_duplicate_variant_rejected(self):
        with pytest.raises(ValueError, match="declared twice"):
            small_sweep(variants=[("a", {}), ("a", {})])

    def test_duplicate_override_path_in_bundle_rejected(self):
        with pytest.raises(ValueError, match="given twice"):
            small_sweep(variants=[("a", [("mode", "hybrid"),
                                         ("mode", "p2p")])])

    def test_seeds_validated(self):
        with pytest.raises(ValueError, match="at least one seed"):
            small_sweep(seeds=())
        with pytest.raises(ValueError, match="repeat"):
            small_sweep(seeds=(1, 1))
        with pytest.raises(ValueError, match=">= 0"):
            small_sweep(seeds=(-1,))


class TestSerialisation:
    def test_round_trip_identity(self):
        sweep = small_sweep(
            name="rt", description="d",
            variants={"v": {"mode": "hybrid"}},
        )
        clone = SweepSpec.from_dict(sweep.to_dict())
        assert clone == sweep
        assert clone.to_dict() == sweep.to_dict()
        assert [c.key for c in clone.cells()] == [
            c.key for c in sweep.cells()
        ]

    def test_preset_round_trip(self):
        sweep = SweepSpec(preset="p2p", axes={"replication.decay": (0.1,)})
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec keys"):
            SweepSpec.from_dict({"preset": "p2p", "gird": []})


class TestCliParsing:
    def test_parse_axis_flags_types_values(self):
        axes = parse_axis_flags([
            "discovery.gossip_fanout=1,2,4",
            "transfer.model=analytic,time-resolved",
            "churn=none",
        ])
        assert axes["discovery.gossip_fanout"] == (1, 2, 4)
        assert axes["transfer.model"] == ("analytic", "time-resolved")
        assert axes["churn"] == (None,)

    def test_parse_axis_flags_rejects_malformed(self):
        for bad in ("no-equals", "=1,2", "path="):
            with pytest.raises(ValueError, match="bad --axis"):
                parse_axis_flags([bad])

    def test_parse_seed_flag(self):
        assert parse_seed_flag("1,2,3") == (1, 2, 3)
        with pytest.raises(ValueError, match="bad --seeds"):
            parse_seed_flag("1,x")


class TestFrozen:
    def test_replace_revalidates(self):
        sweep = small_sweep()
        widened = dataclasses.replace(sweep, seeds=(1, 2, 3))
        assert widened.n_cells() == 6
        with pytest.raises(ValueError, match="repeat"):
            dataclasses.replace(sweep, seeds=(1, 1))
