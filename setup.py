"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP-517 editable installs (which need ``bdist_wheel``)
fail.  Keeping a ``setup.py`` lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` path, which works without wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'DEEP: Edge-based Dataflow Processing with "
        "Hybrid Docker Hub and Regional Registries' (IPPS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
