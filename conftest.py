"""Repo-root pytest configuration.

Guarantees ``import repro`` resolves to ``src/repro`` even when the
package is not installed (the offline CI box cannot run PEP-517
editable installs because the ``wheel`` package is absent).
"""

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))
