"""The lint rule registry.

Rules self-register via the :func:`rule` decorator; the CLI, the
suppression parser, and the docs all read the same registry, so a new
rule file only has to be imported to exist everywhere (``rules.py``
imports are the single wiring point).  Rule names are the stable public
identifiers used by ``--rule`` selection and ``# repro-lint:
disable=<name>`` comments — kebab-case, never renamed once shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Tuple

from ..util import did_you_mean
from .findings import Finding, LintConfig

#: A rule body: (module context) -> findings.
RuleFn = Callable[["ModuleContext"], Iterator[Finding]]  # noqa: F821


class UnknownRuleError(ValueError):
    """An unknown rule name reached ``--rule`` or a suppression comment.

    Carries a ready-to-print message with a difflib did-you-mean
    suggestion; the CLI reports it and exits 2 (usage error).
    """


@dataclass(frozen=True)
class Rule:
    """One registered rule: name, one-line summary, full rationale."""

    name: str
    summary: str
    rationale: str
    fn: RuleFn


_RULES: Dict[str, Rule] = {}


def rule(name: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the body of rule ``name``.

    The decorated function's docstring becomes the rule's rationale in
    ``repro lint --list`` and the README catalogue.
    """

    def decorate(fn: RuleFn) -> RuleFn:
        if name in _RULES:
            raise ValueError(f"rule {name!r} registered twice")
        _RULES[name] = Rule(
            name=name,
            summary=summary,
            rationale=(fn.__doc__ or "").strip(),
            fn=fn,
        )
        return fn

    return decorate


def rule_names() -> List[str]:
    """All registered rule names, sorted (the stable public order)."""
    _ensure_loaded()
    return sorted(_RULES)


def all_rules() -> List[Rule]:
    _ensure_loaded()
    return [_RULES[name] for name in sorted(_RULES)]


def get_rule(name: str) -> Rule:
    _ensure_loaded()
    try:
        return _RULES[name]
    except KeyError:
        raise UnknownRuleError(
            f"unknown rule {name!r}{did_you_mean(name, sorted(_RULES))}; "
            f"known rules: {', '.join(sorted(_RULES))}"
        ) from None


def resolve_rules(names: Tuple[str, ...]) -> List[Rule]:
    """``--rule`` selection: the named rules, or all when empty."""
    if not names:
        return all_rules()
    return [get_rule(name) for name in names]


def _ensure_loaded() -> None:
    # Import the rule definitions exactly once, on first registry read;
    # the import populates _RULES via the decorator.
    from . import rules  # noqa: F401


__all__ = [
    "Rule",
    "UnknownRuleError",
    "rule",
    "rule_names",
    "all_rules",
    "get_rule",
    "resolve_rules",
]
