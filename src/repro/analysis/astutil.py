"""Shared AST plumbing for the lint rules.

One parse per module, one import-resolution pass, and the handful of
tree queries several rules need (dotted-name rendering, parent links,
enclosing-function lookup, local set-typed-name inference).  Rules stay
small because everything generic lives here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .findings import LintConfig


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None.

    ``self.trace`` renders as ``"self.trace"``; call results and
    subscripts in the chain yield None (not a static name).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Yield ``scope``'s nodes without descending into nested functions.

    Class bodies *are* descended into (their statements run in the
    enclosing scope at definition time); function/lambda bodies are not
    — each function is analysed as its own scope.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module scope plus every (nested) function scope."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@dataclass
class ModuleContext:
    """Everything a rule may ask about one parsed module."""

    path: str
    source: str
    tree: ast.Module
    config: LintConfig
    #: local alias -> canonical dotted origin, from import statements:
    #: ``import numpy as np`` -> {"np": "numpy"}; ``from time import
    #: perf_counter as pc`` -> {"pc": "time.perf_counter"}.
    imports: Dict[str, str] = field(default_factory=dict)
    #: child node -> parent node, for upward walks (guard detection).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(
        cls, path: str, source: str, config: LintConfig
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, source=source, tree=tree, config=config)
        ctx.lines = source.splitlines()
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                ctx.parents[child] = node
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    ctx.imports[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: record the tail only
                    module = node.module
                else:
                    module = node.module
                for alias in node.names:
                    local = alias.asname or alias.name
                    ctx.imports[local] = f"{module}.{alias.name}"
        return ctx

    # -- name resolution -----------------------------------------------
    def resolve_call_target(self, func: ast.AST) -> Optional[str]:
        """The canonical dotted name a call resolves to, import-aware.

        ``pc()`` after ``from time import perf_counter as pc`` resolves
        to ``"time.perf_counter"``; ``np.random.rand`` after ``import
        numpy as np`` resolves to ``"numpy.random.rand"``.
        """
        name = dotted_name(func)
        if name is None:
            return None
        head, _, tail = name.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return name
        return f"{origin}.{tail}" if tail else origin

    # -- structural queries ---------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None


# ----------------------------------------------------------------------
# set-typed expression inference (unordered-set-iteration)
# ----------------------------------------------------------------------
_SET_CALLS = ("set", "frozenset")
_SET_ANNOTATIONS = ("set", "frozenset", "Set", "FrozenSet", "MutableSet")


def _annotation_is_set(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):  # Set[str], set[int]
        target = target.value
    name = dotted_name(target)
    if name is None:
        return False
    return name.split(".")[-1] in _SET_ANNOTATIONS


def set_typed_locals(scope: ast.AST) -> Set[str]:
    """Names bound to set-typed values inside one function/module scope.

    Deliberately shallow (no dataflow): a name counts when *any*
    binding in the scope is a set literal, ``set(...)``/
    ``frozenset(...)`` call, set comprehension, set-typed annotation,
    or a union/intersection of two such names.  Rebinding to a list
    later does not clear it — the rule prefers a rare false positive
    (silenceable inline) over missing a nondeterministic iteration.
    """
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        all_args = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in all_args:
            if arg.annotation is not None and _annotation_is_set(
                arg.annotation
            ):
                names.add(arg.arg)
    grew = True
    while grew:  # fixed point over `a = b | c` style propagation
        grew = False
        for node in walk_scope(scope):
            target_names: List[str] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                target_names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    if _annotation_is_set(node.annotation):
                        if node.target.id not in names:
                            names.add(node.target.id)
                            grew = True
                    target_names = [node.target.id]
                    value = node.value
            if value is None or not target_names:
                continue
            if is_set_expr(value, names):
                for name in target_names:
                    if name not in names:
                        names.add(name)
                        grew = True
    return names


def is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether an expression is statically known to be a set."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in _SET_CALLS:
            return True
        # dict.keys() views are insertion-ordered, so they are *not*
        # flagged here; set.union/.intersection/... of a known set are.
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union", "intersection", "difference", "symmetric_difference",
            "copy",
        ):
            return is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, set_names) or is_set_expr(
            node.right, set_names
        )
    return False
