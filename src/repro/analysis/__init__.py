"""Static determinism & purity analysis for the repro package.

``repro lint`` (see :mod:`repro.analysis.cli`) walks ``src/repro``
before the tests do and enforces the repo's central invariant —
default-path and differential outcomes stay bit-for-bit identical —
*statically*, catching the hazard classes the dynamic differential
tests only catch after they ship.  The rule catalogue, suppression
syntax, and extension guide live in ``src/repro/analysis/README.md``.

Public surface:

* :func:`lint_paths` / :class:`LintResult` — the engine;
* :class:`Finding` / :class:`LintConfig` — datatypes;
* :func:`all_rules` / :func:`rule_names` / :func:`rule` — the registry
  (add a rule by decorating a checker in :mod:`repro.analysis.rules`);
* :class:`UnknownRuleError` — bad rule names (CLI exit 2).
"""

from .findings import DEFAULT_CONFIG, Finding, LintConfig
from .registry import (
    Rule,
    UnknownRuleError,
    all_rules,
    get_rule,
    rule,
    rule_names,
)
from .runner import (
    UNUSED_SUPPRESSION,
    LintResult,
    LintUsageError,
    lint_paths,
)

__all__ = [
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "LintUsageError",
    "Rule",
    "UNUSED_SUPPRESSION",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_paths",
    "rule",
    "rule_names",
]
