"""Inline ``# repro-lint: disable=<rule>[,<rule>]`` suppressions.

A finding is suppressed when the physical line it is reported on (or
the line directly above, when that line holds nothing but the comment)
carries a disable comment naming its rule.  Suppressions are **metered**
— every parsed comment is returned whether or not it silenced anything,
so CI can fail when the repo's suppression count grows past the
checked-in baseline (``.repro-lint-baseline.json``), and unused
suppressions are themselves reported as findings (rot is visible).

An unknown rule name inside a disable comment is a *usage error* (exit
2 with a did-you-mean suggestion), exactly like an unknown ``--rule``:
a typo'd suppression must never silently suppress nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..util import did_you_mean
from .registry import UnknownRuleError, rule_names

#: The comment grammar: a ``repro-lint: disable=`` marker followed by a
#: comma-separated rule-name list (e.g. two names joined by a comma).
_DISABLE_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed disable comment entry (one rule name on one line)."""

    path: str
    line: int
    rule: str


@dataclass
class SuppressionIndex:
    """All suppressions of one module, queryable by (line, rule)."""

    path: str
    entries: List[Suppression] = field(default_factory=list)
    #: entries that actually silenced at least one finding
    used: Set[Tuple[int, str]] = field(default_factory=set)
    #: lines that hold only a comment (suppress the line below too)
    _comment_only: Set[int] = field(default_factory=set)
    _by_line: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "SuppressionIndex":
        """Scan source lines for disable comments; validate rule names."""
        index = cls(path=path)
        known = rule_names()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _DISABLE_RE.search(text)
            if match is None:
                continue
            if text.lstrip().startswith("#"):
                index._comment_only.add(lineno)
            for raw in match.group("rules").split(","):
                name = raw.strip()
                if not name:
                    continue
                if name not in known:
                    raise UnknownRuleError(
                        f"{path}:{lineno}: unknown rule {name!r} in "
                        f"repro-lint disable comment"
                        f"{did_you_mean(name, known)}"
                    )
                index.entries.append(
                    Suppression(path=path, line=lineno, rule=name)
                )
                index._by_line.setdefault(lineno, set()).add(name)
        return index

    def suppresses(self, line: int, rule: str) -> bool:
        """Whether a finding of ``rule`` at ``line`` is silenced.

        Matches a disable comment on the finding's own line, or on the
        directly preceding line when that line is comment-only (the
        two shapes black/long call chains force).  A match is recorded
        as *used*.
        """
        if rule in self._by_line.get(line, ()):
            self.used.add((line, rule))
            return True
        above = line - 1
        if above in self._comment_only and rule in self._by_line.get(
            above, ()
        ):
            self.used.add((above, rule))
            return True
        return False

    def unused(self) -> List[Suppression]:
        """Entries that silenced nothing (stale suppressions)."""
        return [
            entry
            for entry in self.entries
            if (entry.line, entry.rule) not in self.used
        ]
