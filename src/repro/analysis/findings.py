"""Finding and configuration datatypes of the ``repro lint`` pass.

A :class:`Finding` is one rule violation at one source location; the
whole tool's output is a sorted list of them (stable ordering: path,
line, column, rule — so text and ``--json`` output never depend on
rule execution order or filesystem walk order).

:class:`LintConfig` is the small allowlist object the rules consult.
Paths are matched by *posix suffix or substring* against the linted
file's path, so the defaults (expressed relative to ``src/repro``)
work no matter what directory the tool was pointed at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where, which rule, and why it matters."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: rule: message`` (clickable in most shells)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def path_matches(path: str, patterns: Tuple[str, ...]) -> bool:
    """Whether a posix path suffix/substring pattern covers ``path``.

    ``"telemetry/profile.py"`` matches ``src/repro/telemetry/profile.py``
    however the tool was invoked; ``"registry/"`` matches every module
    of the registry package.  An empty pattern matches nothing (so an
    empty allowlist is inert, not universal).
    """
    normalized = path.replace("\\", "/")
    for pattern in patterns:
        if not pattern:
            continue
        if normalized.endswith(pattern) or pattern in normalized:
            return True
    return False


@dataclass(frozen=True)
class LintConfig:
    """Allowlists and scopes the rules consult (see each rule's doc).

    All fields are suffix/substring path patterns in posix form (see
    :func:`path_matches`).  The defaults encode the repo's own
    discipline; tests override them to point rules at fixture files.
    """

    #: ``wall-clock-in-sim``: files allowed to read the host clock —
    #: the telemetry profiler, the sweep runner's wall accounting, and
    #: the session facade's wall_build_s/wall_run_s fields.  Everything
    #: else must take time from the simulation clock.
    wall_clock_allow: Tuple[str, ...] = (
        "telemetry/profile.py",
        "sweep/runner.py",
        "scenarios/session.py",
    )

    #: ``unordered-set-iteration``: the modules where set-iteration
    #: order can leak into simulation state (tie-breaks, event order,
    #: registry choices).  Analysis/CLI/presentation modules iterate
    #: sets harmlessly and stay out of scope.
    ordered_iteration_scope: Tuple[str, ...] = (
        "repro/sim/",
        "repro/registry/",
        "repro/scenarios/",
        "repro/sweep/",
    )

    #: ``naked-dict-order-export``: files whose ``json.dump(s)`` calls
    #: are human-facing presentation output (key order deliberate,
    #: every consumer parses) rather than identity surfaces.
    export_allow: Tuple[str, ...] = ("repro/cli.py",)

    #: ``telemetry-purity``: the observation-only package (may not
    #: import or mutate the rest of the simulator).
    telemetry_scope: Tuple[str, ...] = ("repro/telemetry/",)

    #: ``telemetry-purity``: method names that count as telemetry
    #: *emission* on a ``.trace`` / ``.profile`` slot and must sit
    #: behind an ``is not None`` guard on the hot path.
    emission_methods: Tuple[str, ...] = (
        "record",
        "note_recompute",
        "heap_push",
        "heap_pop",
        "heap_invalidate",
        "sample",
    )

    #: ``telemetry-purity``: engine/registry APIs that mutate sim state
    #: and are therefore forbidden inside the telemetry package.
    mutating_methods: Tuple[str, ...] = (
        "start_transfer",
        "cancel_transfer",
        "reserve",
        "commit",
        "evict",
        "pull",
        "pull_process",
        "register_cache",
        "unregister_cache",
        "schedule",
        "run",
    )

    #: Extra per-rule path allowlists: rule name -> path patterns.  A
    #: matching file produces no findings for that rule (config-level
    #: escape hatch; prefer inline suppressions for single sites).
    rule_allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def allows(self, rule: str, path: str) -> bool:
        return path_matches(path, self.rule_allow.get(rule, ()))


#: The configuration ``repro lint`` runs with.
DEFAULT_CONFIG = LintConfig()
