"""The determinism & purity rules of ``repro lint``.

Every rule here is grounded in a hazard class this repo has actually
hit (or exists to prevent) across PRs 1-9: wall time feeding sim state,
unseeded randomness, hash-order-dependent iteration, ``id()`` ordering,
frozen-spec mutation, impure telemetry, spec fields that silently skip
serialisation, and exports whose byte identity depends on dict build
order.  Each rule's docstring is its catalogue entry (rendered by
``repro lint --list`` and the package README).

Static analysis is heuristic by design: a rule prefers a rare,
silenceable false positive over missing a nondeterminism hazard.  The
escape hatches are, in order of preference: fix the code, add an inline
``# repro-lint: disable=<rule>`` (metered against the baseline), or
allowlist the file in :class:`~repro.analysis.findings.LintConfig`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutil import (
    ModuleContext,
    dotted_name,
    function_scopes,
    is_set_expr,
    set_typed_locals,
    walk_scope,
)
from .findings import Finding, path_matches
from .registry import rule

# ----------------------------------------------------------------------
# 1. wall-clock-in-sim
# ----------------------------------------------------------------------
#: Host-clock reads (canonical dotted names after import resolution).
_WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@rule(
    "wall-clock-in-sim",
    "host-clock reads outside the wall-timing allowlist",
)
def check_wall_clock(ctx: ModuleContext) -> Iterator[Finding]:
    """Simulation state must be a function of the simulated clock only.

    ``time.time`` / ``perf_counter`` / ``datetime.now`` anywhere in the
    simulator can leak host timing into outcomes, silently breaking the
    bit-for-bit invariant every differential test depends on.  Only the
    dedicated wall-timing sites (telemetry profiling, sweep wall
    accounting, the session's ``wall_build_s``/``wall_run_s`` fields —
    ``LintConfig.wall_clock_allow``) may read the host clock, and those
    values are excluded from every identity surface.
    """
    if path_matches(ctx.path, ctx.config.wall_clock_allow):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.resolve_call_target(node.func)
        if target in _WALL_CLOCK_CALLS:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule="wall-clock-in-sim",
                message=(
                    f"host-clock read {target}() outside the wall-timing "
                    f"allowlist; sim logic must use the simulated clock"
                ),
            )


# ----------------------------------------------------------------------
# 2. unseeded-rng
# ----------------------------------------------------------------------
#: numpy.random constructors that are fine *with* an explicit seed.
_NP_SEEDABLE = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
})


@rule("unseeded-rng", "global or seedless random number generation")
def check_unseeded_rng(ctx: ModuleContext) -> Iterator[Finding]:
    """All randomness must flow from an explicitly seeded generator.

    Module-level ``random.*`` / ``np.random.*`` calls draw from global
    process state that any import or test-ordering change perturbs, and
    ``Random()`` / ``default_rng()`` without a seed argument draw from
    the OS.  The repo's discipline is ``np.random.default_rng(seed)``
    streams derived from the root seed (see ``sim/rng.py``); this rule
    makes the discipline mechanical.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.resolve_call_target(node.func)
        if target is None:
            continue
        seedless = not node.args and not any(
            kw.arg in ("seed", "x") for kw in node.keywords
        )
        if target in _NP_SEEDABLE or target == "random.Random":
            if seedless:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="unseeded-rng",
                    message=(
                        f"{target}() constructed without an explicit seed "
                        f"expression; derive it from the scenario seed"
                    ),
                )
        elif target == "random.SystemRandom" or (
            target.startswith(("random.", "numpy.random."))
            and "." not in target.split("random.", 1)[1]
        ):
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule="unseeded-rng",
                message=(
                    f"{target}() uses global/OS random state; use an "
                    f"explicitly seeded generator stream instead"
                ),
            )


# ----------------------------------------------------------------------
# 3. unordered-set-iteration
# ----------------------------------------------------------------------
#: Builtins whose result (or side-effect order) depends on the
#: iteration order of their iterable argument.  ``sorted`` is the
#: sanctioned fix and is deliberately absent.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"sum", "min", "max", "list", "tuple", "next"}
)


@rule(
    "unordered-set-iteration",
    "iterating a set where order can reach sim state",
)
def check_unordered_set_iteration(ctx: ModuleContext) -> Iterator[Finding]:
    """Set iteration order is hash-order: stable nowhere you need it.

    In the sim/registry/scenarios/sweep modules
    (``LintConfig.ordered_iteration_scope``), a ``for`` loop, list/dict
    comprehension, or ``sum``/``min``/``max``/``list``/``tuple`` call
    directly over a set-typed expression lets PYTHONHASHSEED pick
    tie-breaks and event order — exactly the lockstep/tie-break bug
    class of PRs 4 and 6.  Iterate ``sorted(the_set)`` (every in-repo
    fix uses it), or restructure to an ordered container.  Set
    comprehensions over sets are exempt: the result is again unordered,
    so no order leaks.
    """
    if not path_matches(ctx.path, ctx.config.ordered_iteration_scope):
        return
    for scope in function_scopes(ctx.tree):
        set_names = set_typed_locals(scope)

        def offending(iterable: ast.AST) -> bool:
            return is_set_expr(iterable, set_names)

        for node in walk_scope(scope):
            if isinstance(node, ast.For) and offending(node.iter):
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="unordered-set-iteration",
                    message=(
                        "for-loop over a set-typed expression; iterate "
                        "sorted(...) so order cannot depend on hashing"
                    ),
                )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if offending(gen.iter):
                        yield Finding(
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="unordered-set-iteration",
                            message=(
                                "comprehension over a set-typed "
                                "expression builds an ordered result "
                                "from unordered input; iterate "
                                "sorted(...)"
                            ),
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                first = node.args[0] if node.args else None
                if (
                    name in _ORDER_SENSITIVE_CALLS
                    and first is not None
                    and offending(first)
                ):
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="unordered-set-iteration",
                        message=(
                            f"{name}() over a set-typed expression is "
                            f"iteration-order dependent; pass sorted(...)"
                        ),
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and first is not None
                    and offending(first)
                ):
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="unordered-set-iteration",
                        message=(
                            "str.join over a set-typed expression; join "
                            "sorted(...) instead"
                        ),
                    )


# ----------------------------------------------------------------------
# 4. id-ordering
# ----------------------------------------------------------------------
@rule("id-ordering", "id() used inside sort keys or comparisons")
def check_id_ordering(ctx: ModuleContext) -> Iterator[Finding]:
    """``id()`` is an address: it orders objects by allocator accident.

    A sort key, ``min``/``max`` argument, or comparison built on
    ``id(...)`` produces an ordering that changes run to run even under
    a fixed seed.  Break ties on a stable domain key (name, index,
    digest) instead — every engine tie-break does (e.g. the
    ``(-bw, name)`` peer ordering).
    """
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            continue
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.keyword) and ancestor.arg == "key":
                reason = "inside a key= sort function"
            elif isinstance(ancestor, ast.Call) and dotted_name(
                ancestor.func
            ) in ("sorted", "min", "max"):
                reason = f"inside a {dotted_name(ancestor.func)}() argument"
            elif isinstance(ancestor, ast.Compare):
                reason = "inside a comparison"
            else:
                continue
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule="id-ordering",
                message=(
                    f"id() {reason} orders objects by memory address; "
                    f"use a stable domain key"
                ),
            )
            break


# ----------------------------------------------------------------------
# 5. frozen-spec-mutation
# ----------------------------------------------------------------------
#: Methods in which spec self-initialisation is legitimate.
_SPEC_INIT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "with_overrides"}
)


def _spec_typed_names(ctx: ModuleContext, scope: ast.AST) -> Set[str]:
    """Names statically known (or conventionally named) to hold specs."""
    names: Set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            annotation = arg.annotation
            if isinstance(annotation, ast.Subscript):  # Optional[FooSpec]
                annotation = annotation.slice
            name = dotted_name(annotation) if annotation is not None else None
            if name is not None and name.split(".")[-1].endswith("Spec"):
                names.add(arg.arg)
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = ctx.resolve_call_target(node.value.func)
            if callee is not None and callee.split(".")[-1].endswith("Spec"):
                names.update(
                    t.id for t in node.targets if isinstance(t, ast.Name)
                )
    return names


@rule("frozen-spec-mutation", "attribute assignment on a *Spec object")
def check_frozen_spec_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    """Specs are frozen value objects; mutation breaks their identity.

    A ``ScenarioSpec`` (or any ``*Spec`` section) is hashed into cache
    keys and compared across processes — mutating one after
    construction desynchronises the object from its content address.
    Assignment to a spec attribute, and ``object.__setattr__`` outside
    ``__init__``/``__post_init__``/``with_overrides``, are flagged;
    derive variants with ``dataclasses.replace`` or ``with_overrides``.
    """
    for scope in function_scopes(ctx.tree):
        in_init = isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and scope.name in _SPEC_INIT_METHODS
        if in_init:
            continue
        spec_names = _spec_typed_names(ctx, scope)
        spec_names.add("spec")  # the conventional name is always a spec
        for node in walk_scope(scope):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                ):
                    continue
                base = target.value.id
                if base in spec_names or base.endswith("_spec"):
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="frozen-spec-mutation",
                        message=(
                            f"attribute assignment on spec object "
                            f"{base!r}; use dataclasses.replace / "
                            f"with_overrides to derive a new spec"
                        ),
                    )
            if isinstance(node, ast.Call):
                if ctx.resolve_call_target(node.func) == "object.__setattr__":
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="frozen-spec-mutation",
                        message=(
                            "object.__setattr__ outside __init__/"
                            "__post_init__/with_overrides defeats frozen "
                            "dataclass protection"
                        ),
                    )


# ----------------------------------------------------------------------
# 6. telemetry-purity
# ----------------------------------------------------------------------
def _guarded(
    ctx: ModuleContext, node: ast.AST, receiver: str
) -> bool:
    """Whether ``node`` sits under an ``<receiver> is not None`` guard."""

    def test_checks(test: ast.AST, want_not_none: bool) -> bool:
        for sub in ast.walk(test):
            if not isinstance(sub, ast.Compare) or len(sub.ops) != 1:
                continue
            op = sub.ops[0]
            comparand = sub.comparators[0]
            if not (
                isinstance(comparand, ast.Constant)
                and comparand.value is None
            ):
                continue
            if dotted_name(sub.left) != receiver:
                continue
            if want_not_none and isinstance(op, ast.IsNot):
                return True
            if not want_not_none and isinstance(op, ast.Is):
                return True
        return False

    child = node
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.If):
            in_body = any(
                child is stmt or _contains(stmt, child)
                for stmt in ancestor.body
            )
            if test_checks(ancestor.test, want_not_none=in_body):
                return True
        elif isinstance(ancestor, ast.IfExp):
            in_body = ancestor.body is child or _contains(
                ancestor.body, child
            )
            if test_checks(ancestor.test, want_not_none=in_body):
                return True
        child = ancestor
    return False


def _contains(tree: ast.AST, node: ast.AST) -> bool:
    return any(sub is node for sub in ast.walk(tree))


@rule(
    "telemetry-purity",
    "telemetry must observe, never mutate; emission must be guarded",
)
def check_telemetry_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Telemetry is observation-only, and free when off.

    Inside ``src/repro/telemetry/`` (``LintConfig.telemetry_scope``):
    no imports from the rest of the package (instrumentation reaches
    telemetry through duck-typed slots, never the reverse) and no calls
    to mutating engine/registry APIs
    (``LintConfig.mutating_methods``) — a trace that replicates or
    cancels anything is a simulation bug wearing a telemetry hat.

    Outside it: every hot-path emission on a ``.trace`` / ``.profile``
    slot (``.record`` / ``.note_recompute`` / ``heap_*``) must sit
    under an ``is not None`` guard on that slot (or a local alias of
    it), preserving the telemetry-off fast path — one pointer check,
    zero allocations.
    """
    in_telemetry = path_matches(ctx.path, ctx.config.telemetry_scope)
    if in_telemetry:
        yield from _check_telemetry_package(ctx)
        return
    emission = set(ctx.config.emission_methods)
    optional_slot_classes = _optional_slot_classes(ctx)
    for scope in function_scopes(ctx.tree):
        # local aliases of telemetry slots: prof = self.profile
        aliases: Dict[str, str] = {}
        for node in walk_scope(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                source = dotted_name(node.value)
                if (
                    isinstance(target, ast.Name)
                    and source is not None
                    and source.split(".")[-1] in ("trace", "profile")
                ):
                    aliases[target.id] = source
        for node in walk_scope(scope):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in emission
            ):
                continue
            receiver = dotted_name(node.func.value)
            if receiver is None:
                continue
            is_slot = receiver.split(".")[-1] in ("trace", "profile")
            is_alias = receiver in aliases
            if not (is_slot or is_alias):
                continue
            if receiver.startswith("self.") or aliases.get(
                receiver, ""
            ).startswith("self."):
                # A self-owned slot is only *optional* telemetry when
                # the class can hold None there (e.g. ``self.trace =
                # None`` in __init__).  Always-constructed attributes
                # that happen to be called "trace" (the executor's
                # PowerTrace) are core accounting, not telemetry.
                owner = ctx.enclosing_class(node)
                if owner is None or owner.name not in optional_slot_classes:
                    continue
            if not _guarded(ctx, node, receiver):
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="telemetry-purity",
                    message=(
                        f"telemetry emission {receiver}."
                        f"{node.func.attr}(...) without an "
                        f"'{receiver} is not None' guard; the off path "
                        f"must stay one pointer check"
                    ),
                )


def _optional_slot_classes(ctx: ModuleContext) -> Set[str]:
    """Classes that ever assign ``self.trace``/``self.profile`` = None.

    Only these hold *optional* telemetry slots; in them, every emission
    must be guarded.  A class that always constructs its ``trace``
    attribute is using the name for something mandatory.
    """
    out: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign):
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in ("trace", "profile")
                    and isinstance(sub.value, ast.Constant)
                    and sub.value.value is None
                ):
                    out.add(node.name)
    return out


def _check_telemetry_package(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            outside = (node.level >= 2) or (
                node.level == 0
                and module.split(".")[0] == "repro"
                and not module.startswith("repro.telemetry")
                and module != "repro.util"
            )
            if outside:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="telemetry-purity",
                    message=(
                        "telemetry imports from the rest of the package; "
                        "instrumentation must reach telemetry through "
                        "duck-typed slots, never the reverse"
                    ),
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in ctx.config.mutating_methods:
                receiver = dotted_name(node.func.value) or "<expr>"
                if receiver.split(".")[0] in ("self", "cls"):
                    continue  # telemetry's own state is its own business
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="telemetry-purity",
                    message=(
                        f"telemetry calls mutating API "
                        f"{receiver}.{node.func.attr}(...); observation "
                        f"code may read sim state but never change it"
                    ),
                )


# ----------------------------------------------------------------------
# 7. spec-roundtrip-coverage
# ----------------------------------------------------------------------
def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else (
            decorator
        )
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def _string_constants(tree: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(tree)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _referenced_names(tree: ast.AST) -> Set[str]:
    return {
        node.id for node in ast.walk(tree) if isinstance(node, ast.Name)
    }


def _module_dict_keys(ctx: ModuleContext) -> Dict[str, Set[str]]:
    """Module-level ``NAME = {...}`` dict literals -> their string keys."""
    out: Dict[str, Set[str]] = {}
    for node in ctx.tree.body:
        target: Optional[str] = None
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            if isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                value = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target = node.target.id
            value = node.value
        if target is None or not isinstance(value, ast.Dict):
            continue
        keys = {
            key.value
            for key in value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        out[target] = keys
    return out


@rule(
    "spec-roundtrip-coverage",
    "every spec field must appear in to_dict AND from_dict",
)
def check_spec_roundtrip(ctx: ModuleContext) -> Iterator[Finding]:
    """A spec field that skips serialisation silently corrupts caching.

    For every dataclass that hand-writes ``to_dict``/``from_dict``
    (``ScenarioSpec``, ``SweepSpec``), each field name must appear as a
    string constant in *both* method bodies — directly, or as a key of
    a module-level registry dict the bodies reference (``_SECTIONS``).
    A field added without serialisation support round-trips to its
    default: two different scenarios then share one cache key, and the
    sweep cache silently serves the wrong outcome.
    """
    registries = _module_dict_keys(ctx)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _is_dataclass_decorated(node):
            continue
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
            and stmt.name in ("to_dict", "from_dict")
        }
        if len(methods) < 2:
            continue
        field_names = []
        for stmt in node.body:
            if not (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ):
                continue
            annotation = stmt.annotation
            if isinstance(annotation, ast.Subscript):  # ClassVar[...]
                annotation = annotation.value
            name = dotted_name(annotation)
            if name is not None and name.split(".")[-1] == "ClassVar":
                continue
            field_names.append(stmt.target.id)
        for method_name, method in methods.items():
            covered = _string_constants(method)
            for referenced in _referenced_names(method):
                covered |= registries.get(referenced, set())
            for field_name in field_names:
                if field_name not in covered:
                    yield Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                        rule="spec-roundtrip-coverage",
                        message=(
                            f"{node.name}.{field_name} does not appear in "
                            f"{method_name}(); the field will silently "
                            f"skip (de)serialisation and corrupt cache "
                            f"identity"
                        ),
                    )


# ----------------------------------------------------------------------
# 8. naked-dict-order-export
# ----------------------------------------------------------------------
@rule(
    "naked-dict-order-export",
    "json.dump(s) without sort_keys=True on an export path",
)
def check_naked_export(ctx: ModuleContext) -> Iterator[Finding]:
    """Export bytes must not depend on dict construction order.

    ``json.dump``/``json.dumps`` without ``sort_keys=True`` serialises
    in insertion order — two structurally equal payloads built along
    different code paths produce different bytes, which is exactly how
    cache documents, JSONL traces, and aggregate files drift.  Use
    ``canonical_json`` (hash surfaces) or pass ``sort_keys=True``.
    Human-facing presentation output (``LintConfig.export_allow``) is
    exempt: its key order is deliberate and every consumer parses.
    """
    if path_matches(ctx.path, ctx.config.export_allow):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        target = ctx.resolve_call_target(node.func)
        if target not in ("json.dump", "json.dumps"):
            continue
        sorted_keys = any(
            kw.arg == "sort_keys"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        if not sorted_keys:
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule="naked-dict-order-export",
                message=(
                    f"{target}(...) without sort_keys=True lets dict "
                    f"build order reach the exported bytes; use "
                    f"canonical_json or sort_keys=True"
                ),
            )
