"""Walk files, run rules, apply suppressions, order the findings.

:func:`lint_paths` is the whole engine: expand the path arguments to
``.py`` files (sorted, so output order never depends on filesystem walk
order), parse each once, run the selected rules, filter through the
module's inline suppressions and the config's allowlists, and return a
:class:`LintResult` whose findings are globally sorted by (path, line,
col, rule).

When the *full* rule set runs, suppression comments that silenced
nothing are themselves reported (rule id ``unused-suppression``) — a
stale suppression hides the next real finding at that site.  Subset
runs (``--rule``) skip that check: a suppression for an unselected rule
is not stale, it just wasn't exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .astutil import ModuleContext
from .findings import DEFAULT_CONFIG, Finding, LintConfig
from .registry import Rule, resolve_rules
from .suppressions import SuppressionIndex

#: Pseudo-rule id of stale-suppression findings (not registered: it has
#: no AST body, and suppressing the suppression checker is a paradox).
UNUSED_SUPPRESSION = "unused-suppression"


class LintUsageError(ValueError):
    """A problem with the invocation itself (exit 2): bad path, file
    that does not parse, unknown rule name."""


@dataclass
class LintResult:
    """Everything one lint run produced, in stable order."""

    findings: List[Finding] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    rules_run: List[str] = field(default_factory=list)
    #: all parsed suppression entries as (path, line, rule)
    suppressions: List[Tuple[str, int, str]] = field(default_factory=list)
    #: the subset of suppressions that silenced at least one finding
    suppressions_used: List[Tuple[str, int, str]] = field(
        default_factory=list
    )

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        """The ``--json`` document (schema pinned by the CI smoke job)."""
        return {
            "version": 1,
            "files": len(self.files),
            "rules": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressions": {
                "total": len(self.suppressions),
                "used": len(self.suppressions_used),
                "entries": [
                    {"path": path, "line": line, "rule": rule_name}
                    for path, line, rule_name in self.suppressions
                ],
            },
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "finding" if len(self.findings) == 1 else "findings"
        lines.append(
            f"{len(self.findings)} {noun} in {len(self.files)} files "
            f"({len(self.suppressions)} suppressions, "
            f"{len(self.suppressions_used)} used)"
        )
        return "\n".join(lines)


def expand_paths(paths: Sequence[str]) -> List[Path]:
    """Path arguments -> sorted unique ``.py`` files.

    Directories are walked recursively; non-Python files passed
    explicitly are a usage error (pointing the linter at a JSON file is
    a typo, not an empty result).
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(path.rglob("*.py"))
        elif path.is_file():
            if path.suffix != ".py":
                raise LintUsageError(f"not a Python file: {path}")
            files.append(path)
        else:
            raise LintUsageError(f"no such file or directory: {path}")
    return sorted(set(files), key=lambda p: p.as_posix())


def lint_paths(
    paths: Sequence[str],
    rule_names: Tuple[str, ...] = (),
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Lint ``paths`` with the named rules (all when empty).

    Raises :class:`LintUsageError` for bad paths / unparseable files,
    and :class:`~repro.analysis.registry.UnknownRuleError` for unknown
    rule names in ``rule_names`` or suppression comments — the CLI maps
    both to exit code 2.
    """
    config = config if config is not None else DEFAULT_CONFIG
    rules: List[Rule] = resolve_rules(tuple(rule_names))
    full_run = not rule_names
    result = LintResult(rules_run=[rule.name for rule in rules])
    for path in expand_paths(paths):
        posix = path.as_posix()
        source = path.read_text()
        try:
            ctx = ModuleContext.parse(posix, source, config)
        except SyntaxError as error:
            raise LintUsageError(
                f"{posix}: cannot lint a file that does not parse "
                f"(line {error.lineno}: {error.msg})"
            ) from error
        index = SuppressionIndex.parse(posix, source)
        result.files.append(posix)
        for rule in rules:
            if config.allows(rule.name, posix):
                continue
            for finding in rule.fn(ctx):
                if index.suppresses(finding.line, finding.rule):
                    continue
                result.findings.append(finding)
        result.suppressions.extend(
            (entry.path, entry.line, entry.rule) for entry in index.entries
        )
        result.suppressions_used.extend(
            (posix, line, rule_name) for line, rule_name in sorted(index.used)
        )
        if full_run:
            for entry in index.unused():
                result.findings.append(Finding(
                    path=entry.path,
                    line=entry.line,
                    col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=(
                        f"suppression of {entry.rule!r} silenced nothing; "
                        f"remove it before it hides the next real finding"
                    ),
                ))
    result.findings.sort()
    return result
