"""The ``repro lint`` subcommand.

Usage::

    repro lint [paths ...] [--rule NAME ...] [--json] [--list]
               [--baseline FILE]

* default path: ``src/repro`` (resolved against the current directory);
* ``--rule`` restricts to named rules (repeatable; unknown names exit 2
  with a did-you-mean suggestion);
* ``--list`` prints the rule catalogue and exits 0;
* ``--json`` emits the machine-readable document
  (:meth:`~repro.analysis.runner.LintResult.to_dict`);
* ``--baseline FILE`` additionally fails (exit 1) when the suppression
  count exceeds the checked-in baseline — CI's ratchet against
  suppression growth.

Exit codes: 0 clean, 1 findings (or baseline exceeded), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .findings import DEFAULT_CONFIG, LintConfig
from .registry import UnknownRuleError, all_rules
from .runner import LintResult, LintUsageError, lint_paths

#: The default lint target when no path argument is given.
DEFAULT_TARGET = "src/repro"


def _rule_catalogue() -> str:
    lines = ["== repro lint rules =="]
    for rule in all_rules():
        lines.append(f"{rule.name:26s} {rule.summary}")
    lines.append(
        "suppress one finding with '# repro-lint: disable=<rule>' on its "
        "line (metered; see src/repro/analysis/README.md)"
    )
    return "\n".join(lines)


def _check_baseline(path: str, result: LintResult) -> Optional[str]:
    """An error message when suppressions exceed the baseline, else None."""
    try:
        with open(path) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        raise LintUsageError(f"baseline file not found: {path}") from None
    except ValueError as error:
        raise LintUsageError(
            f"baseline file {path} is not valid JSON: {error}"
        ) from None
    allowed = int(baseline.get("suppressions", 0))
    current = len(result.suppressions)
    if current > allowed:
        return (
            f"suppression count grew: {current} > baseline {allowed} "
            f"({path}); fix the finding instead, or deliberately bump "
            f"the baseline in the same commit"
        )
    return None


def main(
    argv: Optional[List[str]] = None, config: Optional[LintConfig] = None
) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "static determinism & purity analysis over the repro package"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        default=[],
        metavar="NAME",
        help="run only this rule (repeatable; see --list)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable findings document",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "fail when the suppression count exceeds this checked-in "
            "baseline JSON ({\"suppressions\": N})"
        ),
    )
    args = parser.parse_args(argv)

    if args.list:
        print(_rule_catalogue())
        return 0

    paths = args.paths or [DEFAULT_TARGET]
    if not args.paths and not Path(DEFAULT_TARGET).exists():
        print(
            f"default target {DEFAULT_TARGET!r} does not exist here; "
            f"pass explicit paths",
            file=sys.stderr,
        )
        return 2

    try:
        result = lint_paths(paths, tuple(args.rules), config=config)
        baseline_error = (
            _check_baseline(args.baseline, result)
            if args.baseline
            else None
        )
    except (UnknownRuleError, LintUsageError) as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.json:
        document = result.to_dict()
        if baseline_error is not None:
            document["baseline_error"] = baseline_error
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(result.render_text())
        if baseline_error is not None:
            print(baseline_error, file=sys.stderr)
    if baseline_error is not None:
        return 1
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
