"""Wall-plug power meter (the Ketotek stand-in for the ARM device).

A plug meter samples instantaneous whole-device power at a fixed rate
and its display integrates the samples.  :class:`PowerMeter` samples a
:class:`~repro.devices.power.PowerTrace` at ``sample_hz`` and estimates
window energy with trapezoidal integration — deliberately *not* the
exact piecewise integral, so measurement discretisation error exists in
the simulation the same way it does on the physical testbed.  Tests
assert the estimate converges to the analytic energy as the sampling
rate grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..devices.power import PowerTrace


@dataclass(frozen=True)
class PowerSample:
    """One reading: time and instantaneous watts."""

    t_s: float
    watts: float


@dataclass(frozen=True)
class MeterReading:
    """Aggregated window measurement from sampled power."""

    begin_s: float
    end_s: float
    energy_j: float
    samples: int
    peak_watts: float
    average_watts: float


class PowerMeter:
    """Fixed-rate sampling meter over one device's power trace."""

    def __init__(self, trace: PowerTrace, sample_hz: float = 1.0) -> None:
        if sample_hz <= 0:
            raise ValueError(f"sample_hz must be > 0, got {sample_hz}")
        self.trace = trace
        self.sample_hz = sample_hz

    def sample_window(self, t0_s: float, t1_s: float) -> List[PowerSample]:
        """Readings at the sampling grid covering ``[t0_s, t1_s]``.

        The grid always includes both endpoints so short windows still
        produce at least two samples.
        """
        if t1_s < t0_s:
            raise ValueError(f"window ends before start: [{t0_s}, {t1_s}]")
        if t1_s == t0_s:
            return [PowerSample(t0_s, self.trace.power_at(t0_s))]
        period = 1.0 / self.sample_hz
        ticks = np.arange(t0_s, t1_s, period)
        times = np.append(ticks, t1_s)
        return [PowerSample(float(t), self.trace.power_at(float(t))) for t in times]

    def measure(self, t0_s: float, t1_s: float) -> MeterReading:
        """Trapezoidal energy estimate over the window."""
        samples = self.sample_window(t0_s, t1_s)
        times = np.array([s.t_s for s in samples])
        watts = np.array([s.watts for s in samples])
        if len(samples) == 1:
            energy = 0.0
        else:
            energy = float(np.trapezoid(watts, times))
        duration = t1_s - t0_s
        return MeterReading(
            begin_s=t0_s,
            end_s=t1_s,
            energy_j=energy,
            samples=len(samples),
            peak_watts=float(watts.max()),
            average_watts=energy / duration if duration > 0 else float(watts[0]),
        )
