"""Energy aggregation: from execution records to the paper's figures.

The evaluation reports energy at three granularities:

* per microservice (Figure 3a's bars),
* per application / deployment method (Figure 3b's bars), and
* the ``EC = Ea + Es`` split of the model (Sec. III-D).

:class:`EnergyLedger` aggregates :class:`~repro.devices.executor.ExecutionRecord`
objects into all three, and :func:`reconcile` cross-checks the analytic
ledger against meter measurements (the simulation's equivalent of
validating pyRAPL against the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..devices.executor import ExecutionRecord
from ..model.metrics import EnergyBreakdown
from ..model.units import j_to_kj


@dataclass(frozen=True)
class ServiceEnergy:
    """Per-microservice energy line (one Figure-3a bar)."""

    service: str
    device: str
    registry: str
    energy: EnergyBreakdown

    @property
    def total_j(self) -> float:
        return self.energy.total_j

    @property
    def total_kj(self) -> float:
        return j_to_kj(self.energy.total_j)


class EnergyLedger:
    """Accumulates execution records and answers energy queries."""

    def __init__(self) -> None:
        self._records: List[ExecutionRecord] = []

    def add(self, record: ExecutionRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[ExecutionRecord]) -> None:
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[ExecutionRecord]:
        return list(self._records)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def per_service(self) -> List[ServiceEnergy]:
        """One line per executed microservice, execution order."""
        return [
            ServiceEnergy(
                service=r.service,
                device=r.device,
                registry=r.registry,
                energy=r.energy,
            )
            for r in self._records
        ]

    def total_j(self) -> float:
        """``EC_total`` over everything recorded."""
        return sum(r.energy.total_j for r in self._records)

    def total_kj(self) -> float:
        return j_to_kj(self.total_j())

    def active_j(self) -> float:
        """Total ``Ea``."""
        return sum(r.energy.active_j for r in self._records)

    def static_j(self) -> float:
        """Total ``Es``."""
        return sum(r.energy.static_j for r in self._records)

    def by_device(self) -> Dict[str, float]:
        """Device name → total joules."""
        out: Dict[str, float] = {}
        for r in self._records:
            out[r.device] = out.get(r.device, 0.0) + r.energy.total_j
        return out

    def by_registry(self) -> Dict[str, float]:
        """Registry name → total joules."""
        out: Dict[str, float] = {}
        for r in self._records:
            out[r.registry] = out.get(r.registry, 0.0) + r.energy.total_j
        return out

    def completion_s(self) -> float:
        """Sum of completion times (non-concurrent execution metric)."""
        return sum(r.completion_s for r in self._records)

    def makespan_s(self) -> float:
        """Wall-clock span from first start to last end."""
        if not self._records:
            return 0.0
        return max(r.end_s for r in self._records) - min(
            r.start_s for r in self._records
        )


@dataclass(frozen=True)
class Reconciliation:
    """Comparison of analytic energy vs meter-measured energy."""

    analytic_j: float
    measured_j: float

    @property
    def absolute_error_j(self) -> float:
        return abs(self.analytic_j - self.measured_j)

    @property
    def relative_error(self) -> float:
        if self.analytic_j == 0:
            return 0.0 if self.measured_j == 0 else float("inf")
        return self.absolute_error_j / self.analytic_j

    def within(self, relative_tolerance: float) -> bool:
        return self.relative_error <= relative_tolerance


def reconcile(analytic_j: float, measured_j: float) -> Reconciliation:
    """Pair an analytic prediction with a meter reading."""
    return Reconciliation(analytic_j=analytic_j, measured_j=measured_j)
