"""Energy measurement substrate: RAPL-style counters (Intel), sampled
wall-plug metering (ARM), and ledger aggregation for the figures."""

from .accounting import (
    EnergyLedger,
    Reconciliation,
    ServiceEnergy,
    reconcile,
)
from .powermeter import MeterReading, PowerMeter, PowerSample
from .rapl import (
    COUNTER_WRAP_UJ,
    MeasurementError,
    RaplMeasurement,
    RaplMeter,
)

__all__ = [
    "COUNTER_WRAP_UJ",
    "EnergyLedger",
    "MeasurementError",
    "MeterReading",
    "PowerMeter",
    "PowerSample",
    "RaplMeasurement",
    "RaplMeter",
    "Reconciliation",
    "ServiceEnergy",
    "reconcile",
]
