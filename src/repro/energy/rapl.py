"""pyRAPL-style energy measurement over simulated power traces.

The paper measures the Intel device with pyRAPL, which exposes RAPL
(Running Average Power Limit) energy counters: monotonically increasing
µJ registers per package domain, sampled at the start and end of a
measurement window.  :class:`RaplMeter` reproduces that interface on
top of a :class:`~repro.devices.power.PowerTrace`: the counter value at
time *t* is the exact integral of the trace power over ``[0, t]``, so a
begin/end window yields exactly the energy the model predicts.

RAPL counters are fixed-width and wrap; the simulated counter wraps at
the same 2³² µJ boundary real hardware uses, and the meter unwraps a
single overflow per window like pyRAPL does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..devices.power import PowerTrace

#: RAPL energy-status registers are 32-bit µJ counters.
COUNTER_WRAP_UJ = 2**32


@dataclass(frozen=True)
class RaplMeasurement:
    """One begin/end window (mirrors ``pyRAPL.Measurement`` results)."""

    label: str
    begin_s: float
    end_s: float
    pkg_uj: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.begin_s

    @property
    def energy_j(self) -> float:
        return self.pkg_uj / 1e6

    @property
    def average_watts(self) -> float:
        if self.duration_s == 0:
            return 0.0
        return self.energy_j / self.duration_s


class MeasurementError(RuntimeError):
    """Misuse of the begin/end protocol."""


class RaplMeter:
    """Package-domain energy counter for one device's trace.

    Usage mirrors pyRAPL::

        meter = RaplMeter(runtime.trace)
        meter.begin(now)
        ...  # simulated work happens, trace grows
        result = meter.end(later, label="ha-train")
    """

    def __init__(self, trace: PowerTrace) -> None:
        self.trace = trace
        self._begin_s: Optional[float] = None
        self.results: List[RaplMeasurement] = []

    def counter_uj(self, t_s: float) -> int:
        """The raw (wrapping) µJ counter at time ``t_s``."""
        if t_s < 0:
            raise ValueError(f"negative time: {t_s}")
        total_uj = int(round(self.trace.energy_between_j(0.0, t_s) * 1e6))
        return total_uj % COUNTER_WRAP_UJ

    def begin(self, now_s: float) -> None:
        if self._begin_s is not None:
            raise MeasurementError("begin() called twice without end()")
        self._begin_s = now_s

    def end(self, now_s: float, label: str = "") -> RaplMeasurement:
        if self._begin_s is None:
            raise MeasurementError("end() without begin()")
        begin_s = self._begin_s
        self._begin_s = None
        if now_s < begin_s:
            raise MeasurementError(
                f"window ends at {now_s} before beginning at {begin_s}"
            )
        delta = self.counter_uj(now_s) - self.counter_uj(begin_s)
        if delta < 0:  # one counter wrap inside the window
            delta += COUNTER_WRAP_UJ
        measurement = RaplMeasurement(
            label=label, begin_s=begin_s, end_s=now_s, pkg_uj=float(delta)
        )
        self.results.append(measurement)
        return measurement

    def measure_window(self, t0_s: float, t1_s: float, label: str = "") -> RaplMeasurement:
        """One-shot begin/end convenience."""
        self.begin(t0_s)
        return self.end(t1_s, label)
