"""Zero-sum games solved exactly by linear programming.

The row player's maximin strategy of the game with payoff matrix ``A``
solves::

    max v   s.t.  Aᵀx ≥ v·1,   Σx = 1,   x ≥ 0

which we hand to ``scipy.optimize.linprog`` after the standard shift to
positive payoffs.  Used both as a solver in its own right and as an
oracle in the property tests (for zero-sum games, every Nash
equilibrium profile earns exactly the game value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.optimize import linprog

from .normal_form import Equilibrium, NormalFormGame


@dataclass(frozen=True)
class ZeroSumSolution:
    """Maximin strategies and the value of a zero-sum game."""

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    value: float

    def equilibrium(self, game: NormalFormGame) -> Equilibrium:
        return Equilibrium.of(game, self.row_strategy, self.col_strategy)


def _maximin(payoff: np.ndarray) -> Tuple[np.ndarray, float]:
    """Row maximin mixture for payoff matrix ``payoff`` via LP."""
    m, n = payoff.shape
    # Shift so the minimum payoff is exactly 1 whenever it is below 1.
    # Shifting only non-positive matrices is not enough: a matrix of
    # tiny positive entries (e.g. 1e-133) yields constraints that need
    # astronomically large u, which HiGHS rejects as infeasible.  With
    # min(shifted) == 1 the LP is always well-scaled and feasible.
    shift = 0.0
    if payoff.min() < 1.0:
        shift = 1.0 - payoff.min()
    shifted = payoff + shift  # min entry 1 -> value >= 1 > 0
    # Classic transformation: minimise Σu s.t. shiftedᵀ u >= 1, u >= 0;
    # then x = u / Σu and value = 1 / Σu.
    result = linprog(
        c=np.ones(m),
        A_ub=-shifted.T,
        b_ub=-np.ones(n),
        bounds=[(0, None)] * m,
        method="highs",
        # HiGHS's default ~1e-7 feasibility tolerance leaks into the
        # recovered strategies (the guaranteed-value property and the
        # duality check both compare at ~1e-7); solve tight so the
        # back-transformed solution is exact to ~1e-15.
        options={
            "primal_feasibility_tolerance": 1e-10,
            "dual_feasibility_tolerance": 1e-10,
        },
    )
    if not result.success:  # pragma: no cover - LP on bounded polytope
        raise RuntimeError(f"zero-sum LP failed: {result.message}")
    u = result.x
    total = u.sum()
    return u / total, 1.0 / total - shift


def solve_zero_sum(game: NormalFormGame) -> ZeroSumSolution:
    """Exact solution of a zero-sum game (``B = -A`` required)."""
    if not game.is_zero_sum:
        raise ValueError("solve_zero_sum requires B == -A")
    x, value = _maximin(game.A)
    # The column player solves the transposed game with payoffs -A^T.
    y, neg_value = _maximin(-game.A.T)
    if not np.isclose(value, -neg_value, atol=1e-6):
        raise RuntimeError(
            f"LP duality mismatch: row value {value} vs col {-neg_value}"
        )
    return ZeroSumSolution(row_strategy=x, col_strategy=y, value=value)
