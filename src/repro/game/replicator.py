"""Replicator dynamics: evolutionary selection over strategy mixes.

The discrete-time replicator equation reweights strategies by their
fitness against the opponent's current mix::

    x_i ← x_i · f_i(y) / (x · f(y))        (f = payoff vector)

Interior fixed points are Nash equilibria; pure Nash equilibria are
asymptotically stable attractors.  DEEP uses it as a second learning
ablation next to fictitious play, and the test suite checks its fixed
points against the exact solvers.

Payoffs are shifted positive internally (the dynamics need positive
fitness), which does not change fixed points or trajectories' ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame


@dataclass
class ReplicatorResult:
    """Final state of a replicator run."""

    row_mix: np.ndarray
    col_mix: np.ndarray
    iterations: int
    converged: bool
    #: L1 movement of the last step (convergence diagnostic).
    final_step_norm: float

    def equilibrium(self, game: NormalFormGame) -> Equilibrium:
        return Equilibrium.of(game, self.row_mix, self.col_mix)


def replicator_dynamics(
    game: NormalFormGame,
    iterations: int = 5000,
    tolerance: float = 1e-10,
    initial_row: Optional[np.ndarray] = None,
    initial_col: Optional[np.ndarray] = None,
) -> ReplicatorResult:
    """Run two-population discrete replicator dynamics.

    Starting mixes default to a slightly perturbed uniform (exact
    uniform can sit on unstable fixed points of symmetric games).
    Stops when both mixes move less than ``tolerance`` (L1) per step.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    positive = game.shifted_positive()
    m, n = game.shape

    if initial_row is None:
        x = np.ones(m) / m + 1e-3 * np.arange(m)
        x /= x.sum()
    else:
        x = np.asarray(initial_row, dtype=float)
        x = x / x.sum()
    if initial_col is None:
        y = np.ones(n) / n + 1e-3 * np.arange(n)
        y /= y.sum()
    else:
        y = np.asarray(initial_col, dtype=float)
        y = y / y.sum()
    if np.any(x < 0) or np.any(y < 0):
        raise ValueError("initial mixes must be non-negative")

    converged = False
    step_norm = np.inf
    done = iterations
    for step in range(iterations):
        row_fitness = positive.A @ y
        col_fitness = x @ positive.B
        new_x = x * row_fitness
        new_x /= new_x.sum()
        new_y = y * col_fitness
        new_y /= new_y.sum()
        step_norm = float(
            np.abs(new_x - x).sum() + np.abs(new_y - y).sum()
        )
        x, y = new_x, new_y
        if step_norm < tolerance:
            converged = True
            done = step + 1
            break

    return ReplicatorResult(
        row_mix=x,
        col_mix=y,
        iterations=done,
        converged=converged,
        final_step_norm=step_norm,
    )
