"""Lemke–Howson complementary pivoting.

Finds one Nash equilibrium of a bimatrix game per *dropped label* by
walking an edge path between the best-response polytopes

* ``P = {x ∈ R^m : x ≥ 0, Bᵀx ≤ 1}``  (row player, labels: ``x_i = 0``
  ↦ label *i*; tight column constraint *j* ↦ label *m + j*), and
* ``Q = {y ∈ R^n : Ay ≤ 1, y ≥ 0}``  (column player, labels: tight row
  constraint *i* ↦ label *i*; ``y_j = 0`` ↦ label *m + j*).

Payoff matrices are shifted positive first (equilibrium-invariant), so
both polytopes are bounded and the artificial vertex pair ``(0, 0)`` is
fully labelled.  Dropping a label and alternately pivoting until the
dropped label reappears terminates at an equilibrium vertex pair —
guaranteed for nondegenerate games; a pivot cap turns potential cycling
on degenerate inputs into an explicit error.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame, dedupe_equilibria


class DegenerateGameError(RuntimeError):
    """Pivoting failed to terminate (degenerate game cycling)."""


class _Tableau:
    """A simplex tableau over one best-response polytope.

    ``columns`` maps each variable *label* to its column index.  Basic
    variables are tracked per row; pivoting keeps the invariant that
    each basic variable's column is a (positive multiple of a) unit
    vector.
    """

    def __init__(self, constraint: np.ndarray, var_labels: List[int], slack_labels: List[int]) -> None:
        rows, cols = constraint.shape
        if len(var_labels) != cols or len(slack_labels) != rows:
            raise ValueError("label count mismatch")
        self.table = np.hstack(
            [constraint, np.eye(rows), np.ones((rows, 1))]
        ).astype(float)
        self.labels = list(var_labels) + list(slack_labels)
        self.basic: List[int] = list(slack_labels)  # one per row

    @property
    def rhs(self) -> np.ndarray:
        return self.table[:, -1]

    def column_of(self, label: int) -> int:
        return self.labels.index(label)

    def is_basic(self, label: int) -> bool:
        return label in self.basic

    def pivot(self, entering_label: int) -> int:
        """Bring ``entering_label`` into the basis; return the leaver.

        Standard minimum-ratio test with smallest-index tie-breaking.
        """
        col = self.column_of(entering_label)
        column = self.table[:, col]
        positive = column > 1e-12
        if not positive.any():
            raise DegenerateGameError(
                f"unbounded pivot on label {entering_label}"
            )
        ratios = np.full(len(column), np.inf)
        ratios[positive] = self.rhs[positive] / column[positive]
        row = int(np.argmin(ratios))
        leaving_label = self.basic[row]
        # Normalise pivot row, then clear the column elsewhere.
        self.table[row] /= self.table[row, col]
        for r in range(self.table.shape[0]):
            if r != row and abs(self.table[r, col]) > 1e-14:
                self.table[r] -= self.table[r, col] * self.table[row]
        self.basic[row] = entering_label
        return leaving_label

    def solution(self, labels_of_interest: List[int], size: int, offset: int) -> np.ndarray:
        """Values of the original variables (basic → rhs, else 0)."""
        values = np.zeros(size)
        for row, label in enumerate(self.basic):
            if label in labels_of_interest:
                values[label - offset] = self.rhs[row]
        return values


def lemke_howson(
    game: NormalFormGame, dropped_label: int = 0, max_pivots: int = 10_000
) -> Equilibrium:
    """One equilibrium reached by dropping ``dropped_label``.

    Labels ``0..m-1`` are row strategies; ``m..m+n-1`` column
    strategies.  Different labels may reach different equilibria.
    """
    m, n = game.shape
    if not 0 <= dropped_label < m + n:
        raise ValueError(
            f"label {dropped_label} out of range [0, {m + n})"
        )
    positive = game.shifted_positive()
    row_labels = list(range(m))
    col_labels = list(range(m, m + n))
    # P-tableau: n constraints B^T x <= 1 over x (labels 0..m-1), slack
    # of constraint j carries label m+j.
    p_tab = _Tableau(positive.B.T, row_labels, col_labels)
    # Q-tableau: m constraints A y <= 1 over y (labels m..m+n-1), slack
    # of constraint i carries label i.
    q_tab = _Tableau(positive.A, col_labels, row_labels)

    # The dropped label is nonbasic in exactly one tableau at the
    # artificial vertex: row labels in P, column labels in Q.
    current, other = (p_tab, q_tab) if dropped_label < m else (q_tab, p_tab)
    entering = dropped_label
    for _ in range(max_pivots):
        leaving = current.pivot(entering)
        if leaving == dropped_label:
            break
        entering = leaving
        current, other = other, current
    else:
        raise DegenerateGameError(
            f"no termination within {max_pivots} pivots (label {dropped_label})"
        )

    x = p_tab.solution(row_labels, m, offset=0)
    y = q_tab.solution(col_labels, n, offset=m)
    if x.sum() <= 0 or y.sum() <= 0:
        raise DegenerateGameError(
            f"degenerate solution for dropped label {dropped_label}"
        )
    return Equilibrium.of(game, x / x.sum(), y / y.sum())


def lemke_howson_all(
    game: NormalFormGame, max_pivots: int = 10_000
) -> List[Equilibrium]:
    """Equilibria reached from every dropped label, deduplicated.

    Not guaranteed to find *all* equilibria (the LH path only reaches
    those connected to the artificial vertex) but cheap and usually
    sufficient; support enumeration remains the exhaustive reference.
    Labels whose paths fail on degeneracy are skipped.
    """
    found: List[Equilibrium] = []
    for label in range(sum(game.shape)):
        try:
            found.append(lemke_howson(game, label, max_pivots))
        except DegenerateGameError:
            continue
    return dedupe_equilibria(found)
