"""Fictitious play: learning dynamics converging to equilibrium play.

Each round both players best-respond to the opponent's *empirical*
mixture of past play.  The empirical averages converge to a Nash
equilibrium for zero-sum, 2×N, and potential games — which covers the
aligned-payoff games DEEP constructs — and the run records enough
history to expose convergence behaviour in the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame


@dataclass
class FictitiousPlayResult:
    """Outcome of a fictitious-play run."""

    row_empirical: np.ndarray
    col_empirical: np.ndarray
    iterations: int
    converged: bool
    #: max payoff either player could gain by deviating from the
    #: empirical mixtures (the ε of the ε-equilibrium reached).
    exploitability: float

    def equilibrium(self, game: NormalFormGame) -> Equilibrium:
        return Equilibrium.of(game, self.row_empirical, self.col_empirical)


def exploitability(game: NormalFormGame, x: np.ndarray, y: np.ndarray) -> float:
    """Max unilateral gain over the profile ``(x, y)`` — 0 iff Nash."""
    row_u, col_u = game.payoffs(x, y)
    best_row = float(game.row_payoff_vector(y).max())
    best_col = float(game.col_payoff_vector(x).max())
    return max(best_row - row_u, best_col - col_u)


def fictitious_play(
    game: NormalFormGame,
    iterations: int = 2000,
    tolerance: float = 1e-3,
    initial_row: Optional[int] = None,
    initial_col: Optional[int] = None,
    check_every: int = 25,
) -> FictitiousPlayResult:
    """Run discrete fictitious play.

    Parameters
    ----------
    iterations:
        Hard cap on rounds.
    tolerance:
        Early-out when exploitability of the empirical profile drops
        below this (checked every ``check_every`` rounds).
    initial_row / initial_col:
        First actions (default: each player's maximin-ish first row /
        column 0, deterministic so runs are reproducible).

    Ties in best response are broken towards the lowest index, making
    the dynamics fully deterministic.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    m, n = game.shape
    row_counts = np.zeros(m)
    col_counts = np.zeros(n)
    row_action = 0 if initial_row is None else int(initial_row)
    col_action = 0 if initial_col is None else int(initial_col)
    if not 0 <= row_action < m or not 0 <= col_action < n:
        raise ValueError("initial actions out of range")
    row_counts[row_action] += 1
    col_counts[col_action] += 1

    done = iterations
    converged = False
    for step in range(1, iterations):
        # Best responses to the opponent's empirical distribution.
        y_hat = col_counts / col_counts.sum()
        x_hat = row_counts / row_counts.sum()
        row_action = int(np.argmax(game.A @ y_hat))
        col_action = int(np.argmax(x_hat @ game.B))
        row_counts[row_action] += 1
        col_counts[col_action] += 1
        if step % check_every == 0:
            eps = exploitability(
                game, row_counts / row_counts.sum(), col_counts / col_counts.sum()
            )
            if eps <= tolerance:
                done = step + 1
                converged = True
                break

    x = row_counts / row_counts.sum()
    y = col_counts / col_counts.sum()
    eps = exploitability(game, x, y)
    return FictitiousPlayResult(
        row_empirical=x,
        col_empirical=y,
        iterations=done,
        converged=converged or eps <= tolerance,
        exploitability=eps,
    )
