"""Pure-strategy analysis: pure Nash equilibria and dominance.

Pure equilibria are what DEEP ultimately deploys (a microservice is
pulled from exactly one registry onto exactly one device), so the pure
solver is the fast path; the mixed solvers handle the general case and
validate it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame


def pure_equilibria(game: NormalFormGame, tol: float = 1e-9) -> List[Equilibrium]:
    """All pure-strategy Nash equilibria, row-major order.

    A cell ``(i, j)`` is an equilibrium iff ``A[i, j]`` is maximal in
    its column and ``B[i, j]`` maximal in its row — computed with two
    vectorised comparisons rather than per-cell loops.
    """
    A, B = game.A, game.B
    row_best = A >= A.max(axis=0, keepdims=True) - tol
    col_best = B >= B.max(axis=1, keepdims=True) - tol
    cells = np.argwhere(row_best & col_best)
    return [Equilibrium.of(game, int(i), int(j)) for i, j in cells]


def best_pure_outcome(
    game: NormalFormGame, maximise: str = "row"
) -> Tuple[int, int]:
    """The cell maximising one player's (or joint) payoff.

    ``maximise`` ∈ {"row", "col", "welfare"}.  Used by DEEP as the
    cooperative reference point (the "both cooperate" cell of the
    prisoner's dilemma framing).
    """
    if maximise == "row":
        target = game.A
    elif maximise == "col":
        target = game.B
    elif maximise == "welfare":
        target = game.A + game.B
    else:
        raise ValueError(f"unknown objective {maximise!r}")
    flat = int(np.argmax(target))
    return np.unravel_index(flat, target.shape)  # type: ignore[return-value]


def strictly_dominated_rows(game: NormalFormGame, tol: float = 1e-12) -> List[int]:
    """Rows strictly dominated by another *pure* row."""
    A = game.A
    dominated: List[int] = []
    for i in range(game.n_rows):
        for k in range(game.n_rows):
            if k != i and np.all(A[k] > A[i] + tol):
                dominated.append(i)
                break
    return dominated


def strictly_dominated_cols(game: NormalFormGame, tol: float = 1e-12) -> List[int]:
    """Columns strictly dominated by another *pure* column."""
    B = game.B
    dominated: List[int] = []
    for j in range(game.n_cols):
        for k in range(game.n_cols):
            if k != j and np.all(B[:, k] > B[:, j] + tol):
                dominated.append(j)
                break
    return dominated


def iterated_elimination(
    game: NormalFormGame, max_rounds: int = 100
) -> Tuple[NormalFormGame, List[int], List[int]]:
    """Iterated elimination of strictly dominated pure strategies.

    Returns the reduced game plus the *surviving* row and column
    indices (into the original game).  Elimination preserves the Nash
    equilibria of the original game, so solvers may run on the reduced
    game and lift the result back.
    """
    rows = list(range(game.n_rows))
    cols = list(range(game.n_cols))
    current = game
    for _ in range(max_rounds):
        dead_rows = strictly_dominated_rows(current)
        if dead_rows and current.n_rows - len(dead_rows) >= 1:
            keep = [i for i in range(current.n_rows) if i not in dead_rows]
            rows = [rows[i] for i in keep]
            current = current.restrict(keep, range(current.n_cols))
            continue
        dead_cols = strictly_dominated_cols(current)
        if dead_cols and current.n_cols - len(dead_cols) >= 1:
            keep = [j for j in range(current.n_cols) if j not in dead_cols]
            cols = [cols[j] for j in keep]
            current = current.restrict(range(current.n_rows), keep)
            continue
        break
    return current, rows, cols


def minimax_pure(game: NormalFormGame) -> Tuple[int, float]:
    """Row player's pure maximin strategy and its guaranteed value."""
    worst_case = game.A.min(axis=1)
    best = int(np.argmax(worst_case))
    return best, float(worst_case[best])
