"""Game-theory substrate: the Nashpy replacement used by DEEP.

Solvers
-------
* :func:`pure_equilibria` — fast pure-strategy search (DEEP's fast path)
* :func:`support_enumeration` — exhaustive mixed equilibria (reference)
* :func:`lemke_howson` / :func:`lemke_howson_all` — complementary pivoting
* :func:`vertex_enumeration` — independent cross-check
* :func:`fictitious_play` — learning dynamics (ablation)
* :func:`solve_zero_sum` — exact LP solution for zero-sum games
"""

from .dilemma import (
    coordination_game,
    energy_game,
    matching_pennies,
    prisoners_dilemma,
)
from .fictitious_play import FictitiousPlayResult, exploitability, fictitious_play
from .lemke_howson import DegenerateGameError, lemke_howson, lemke_howson_all
from .normal_form import (
    Equilibrium,
    NormalFormGame,
    as_strategy,
    dedupe_equilibria,
    support,
)
from .pure import (
    best_pure_outcome,
    iterated_elimination,
    minimax_pure,
    pure_equilibria,
    strictly_dominated_cols,
    strictly_dominated_rows,
)
from .replicator import ReplicatorResult, replicator_dynamics
from .support_enumeration import all_equilibria, support_enumeration
from .vertex_enumeration import polytope_vertices, vertex_enumeration
from .zero_sum import ZeroSumSolution, solve_zero_sum

__all__ = [
    "DegenerateGameError",
    "Equilibrium",
    "FictitiousPlayResult",
    "NormalFormGame",
    "ZeroSumSolution",
    "all_equilibria",
    "as_strategy",
    "best_pure_outcome",
    "coordination_game",
    "dedupe_equilibria",
    "energy_game",
    "exploitability",
    "fictitious_play",
    "iterated_elimination",
    "lemke_howson",
    "lemke_howson_all",
    "matching_pennies",
    "minimax_pure",
    "polytope_vertices",
    "prisoners_dilemma",
    "pure_equilibria",
    "ReplicatorResult",
    "replicator_dynamics",
    "solve_zero_sum",
    "strictly_dominated_cols",
    "strictly_dominated_rows",
    "support",
    "support_enumeration",
    "vertex_enumeration",
]
