"""Two-player normal-form (bimatrix) games.

This is the core of the Nashpy stand-in: a :class:`NormalFormGame`
holds the row player's payoff matrix ``A`` and the column player's
``B`` (both ``m × n``, entries are *utilities to maximise*), and
provides the primitive queries every solver builds on — expected
payoffs, best responses, and the ε-Nash test.

Strategies are numpy probability vectors.  Pure strategies are
represented by their index or by one-hot vectors; helpers convert
between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

DEFAULT_TOL = 1e-9


def as_strategy(value, size: int) -> np.ndarray:
    """Coerce an index / sequence into a validated mixed strategy."""
    if np.isscalar(value) and not isinstance(value, (list, tuple, np.ndarray)):
        index = int(value)
        if not 0 <= index < size:
            raise ValueError(f"pure strategy index {index} out of range [0,{size})")
        strategy = np.zeros(size)
        strategy[index] = 1.0
        return strategy
    strategy = np.asarray(value, dtype=float)
    if strategy.shape != (size,):
        raise ValueError(f"strategy shape {strategy.shape} != ({size},)")
    if np.any(strategy < -DEFAULT_TOL):
        raise ValueError(f"negative probabilities in {strategy}")
    total = strategy.sum()
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"strategy sums to {total}, expected 1")
    return np.clip(strategy, 0.0, None) / strategy.sum()


def support(strategy: np.ndarray, tol: float = DEFAULT_TOL) -> Tuple[int, ...]:
    """Indices played with positive probability."""
    return tuple(int(i) for i in np.flatnonzero(strategy > tol))


class NormalFormGame:
    """A bimatrix game ``(A, B)``.

    Parameters
    ----------
    row_payoffs:
        ``m × n`` matrix ``A``; entry ``A[i, j]`` is the row player's
        utility when row ``i`` meets column ``j``.
    col_payoffs:
        ``m × n`` matrix ``B`` for the column player.  Omitted →
        zero-sum (``B = -A``).
    row_labels / col_labels:
        Optional human-readable strategy names (used by DEEP to map
        equilibria back to registries and devices).
    """

    def __init__(
        self,
        row_payoffs,
        col_payoffs=None,
        row_labels: Optional[Sequence[str]] = None,
        col_labels: Optional[Sequence[str]] = None,
    ) -> None:
        self.A = np.asarray(row_payoffs, dtype=float)
        if self.A.ndim != 2:
            raise ValueError(f"payoff matrix must be 2-D, got shape {self.A.shape}")
        if self.A.size == 0:
            raise ValueError("payoff matrix must be non-empty")
        self.B = -self.A if col_payoffs is None else np.asarray(col_payoffs, float)
        if self.B.shape != self.A.shape:
            raise ValueError(
                f"payoff shapes differ: A{self.A.shape} vs B{self.B.shape}"
            )
        if not (np.isfinite(self.A).all() and np.isfinite(self.B).all()):
            raise ValueError("payoffs must be finite")
        m, n = self.A.shape
        self.row_labels = list(row_labels) if row_labels else [str(i) for i in range(m)]
        self.col_labels = list(col_labels) if col_labels else [str(j) for j in range(n)]
        if len(self.row_labels) != m or len(self.col_labels) != n:
            raise ValueError("label count mismatch with payoff shape")

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.A.shape

    @property
    def n_rows(self) -> int:
        return self.A.shape[0]

    @property
    def n_cols(self) -> int:
        return self.A.shape[1]

    @property
    def is_zero_sum(self) -> bool:
        return bool(np.allclose(self.A + self.B, 0.0))

    # ------------------------------------------------------------------
    # payoffs
    # ------------------------------------------------------------------
    def payoffs(self, row_strategy, col_strategy) -> Tuple[float, float]:
        """Expected (row, column) utilities under mixed strategies."""
        x = as_strategy(row_strategy, self.n_rows)
        y = as_strategy(col_strategy, self.n_cols)
        return float(x @ self.A @ y), float(x @ self.B @ y)

    def row_payoff_vector(self, col_strategy) -> np.ndarray:
        """Row player's utility of each pure row vs ``col_strategy``."""
        y = as_strategy(col_strategy, self.n_cols)
        return self.A @ y

    def col_payoff_vector(self, row_strategy) -> np.ndarray:
        """Column player's utility of each pure column vs ``row_strategy``."""
        x = as_strategy(row_strategy, self.n_rows)
        return x @ self.B

    # ------------------------------------------------------------------
    # best responses
    # ------------------------------------------------------------------
    def row_best_responses(self, col_strategy, tol: float = 1e-9) -> List[int]:
        """Pure rows maximising utility against ``col_strategy``."""
        utilities = self.row_payoff_vector(col_strategy)
        best = utilities.max()
        return [int(i) for i in np.flatnonzero(utilities >= best - tol)]

    def col_best_responses(self, row_strategy, tol: float = 1e-9) -> List[int]:
        """Pure columns maximising utility against ``row_strategy``."""
        utilities = self.col_payoff_vector(row_strategy)
        best = utilities.max()
        return [int(j) for j in np.flatnonzero(utilities >= best - tol)]

    def is_best_response_row(self, row_strategy, col_strategy, tol=1e-8) -> bool:
        """Is ``row_strategy`` optimal against ``col_strategy``?

        A mixed strategy is a best response iff its support lies within
        the pure best-response set.
        """
        x = as_strategy(row_strategy, self.n_rows)
        utilities = self.row_payoff_vector(col_strategy)
        best = utilities.max()
        return bool(np.all(utilities[np.flatnonzero(x > tol)] >= best - tol))

    def is_best_response_col(self, row_strategy, col_strategy, tol=1e-8) -> bool:
        y = as_strategy(col_strategy, self.n_cols)
        utilities = self.col_payoff_vector(row_strategy)
        best = utilities.max()
        return bool(np.all(utilities[np.flatnonzero(y > tol)] >= best - tol))

    def is_nash(self, row_strategy, col_strategy, tol: float = 1e-8) -> bool:
        """ε-Nash test: both strategies mutual best responses."""
        return self.is_best_response_row(
            row_strategy, col_strategy, tol
        ) and self.is_best_response_col(row_strategy, col_strategy, tol)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def shifted_positive(self) -> "NormalFormGame":
        """Payoffs translated to be strictly positive (NE-invariant).

        Lemke–Howson's polytope construction requires positive
        matrices; adding a constant to all of one player's payoffs does
        not change best responses, hence not the equilibria.
        """
        shift_a = 1.0 - self.A.min() if self.A.min() <= 0 else 0.0
        shift_b = 1.0 - self.B.min() if self.B.min() <= 0 else 0.0
        return NormalFormGame(
            self.A + shift_a, self.B + shift_b, self.row_labels, self.col_labels
        )

    def restrict(self, rows: Iterable[int], cols: Iterable[int]) -> "NormalFormGame":
        """Subgame on the given row/column subsets."""
        row_index = list(rows)
        col_index = list(cols)
        if not row_index or not col_index:
            raise ValueError("restriction must keep >= 1 row and column")
        return NormalFormGame(
            self.A[np.ix_(row_index, col_index)],
            self.B[np.ix_(row_index, col_index)],
            [self.row_labels[i] for i in row_index],
            [self.col_labels[j] for j in col_index],
        )

    def transpose(self) -> "NormalFormGame":
        """Swap the players (useful for symmetric solver code paths)."""
        return NormalFormGame(
            self.B.T, self.A.T, self.col_labels, self.row_labels
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NormalFormGame(shape={self.shape})"


@dataclass(frozen=True)
class Equilibrium:
    """A (possibly mixed) Nash equilibrium with its expected payoffs."""

    row_strategy: np.ndarray
    col_strategy: np.ndarray
    row_payoff: float
    col_payoff: float

    @classmethod
    def of(cls, game: NormalFormGame, row_strategy, col_strategy) -> "Equilibrium":
        x = as_strategy(row_strategy, game.n_rows)
        y = as_strategy(col_strategy, game.n_cols)
        u, v = game.payoffs(x, y)
        return cls(x, y, u, v)

    @property
    def is_pure(self) -> bool:
        return len(support(self.row_strategy)) == 1 and len(
            support(self.col_strategy)
        ) == 1

    def pure_profile(self) -> Tuple[int, int]:
        """(row, col) indices of the modal pure profile.

        For pure equilibria this is exact; for mixed ones it is the
        most probable joint outcome (how DEEP resolves mixing into a
        concrete deployment decision).
        """
        return (
            int(np.argmax(self.row_strategy)),
            int(np.argmax(self.col_strategy)),
        )

    def close_to(self, other: "Equilibrium", tol: float = 1e-6) -> bool:
        return bool(
            np.allclose(self.row_strategy, other.row_strategy, atol=tol)
            and np.allclose(self.col_strategy, other.col_strategy, atol=tol)
        )


def dedupe_equilibria(
    equilibria: Iterable[Equilibrium], tol: float = 1e-6
) -> List[Equilibrium]:
    """Drop near-duplicate equilibria (solvers can find the same point)."""
    unique: List[Equilibrium] = []
    for eq in equilibria:
        if not any(eq.close_to(seen, tol) for seen in unique):
            unique.append(eq)
    return unique
