"""Support enumeration: all Nash equilibria of nondegenerate games.

For every pair of equal-size supports ``(I, J)`` the algorithm solves
the indifference conditions — the column player's mixture ``y`` must
make every row in ``I`` equally good (and no row outside better), and
symmetrically for ``x`` — then keeps the solutions that are valid
probability vectors satisfying the best-response inequalities.

This is the same algorithm Nashpy's ``support_enumeration`` uses, and
it is the reference solver for this library: Lemke–Howson and
fictitious play are validated against it in the test suite.

Complexity is exponential in the support size, which is irrelevant at
DEEP's scale (registries × devices is a handful of strategies).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame


def _solve_indifference(
    payoffs: np.ndarray, support_own: Sequence[int], support_opp: Sequence[int]
) -> Optional[np.ndarray]:
    """Opponent mixture making ``support_own`` strategies indifferent.

    Solves for a vector ``p`` over ``support_opp`` with ``Σp = 1`` such
    that all strategies in ``support_own`` earn equal payoff.  Returns
    ``None`` when the system is singular or yields negatives.
    """
    k = len(support_opp)
    # Unknowns: p (k entries) and the common payoff u.
    rows: List[np.ndarray] = []
    rhs: List[float] = []
    for own in support_own:
        row = np.zeros(k + 1)
        row[:k] = payoffs[own, support_opp]
        row[k] = -1.0  # ... - u = 0
        rows.append(row)
        rhs.append(0.0)
    norm = np.zeros(k + 1)
    norm[:k] = 1.0
    rows.append(norm)
    rhs.append(1.0)
    system = np.asarray(rows)
    target = np.asarray(rhs)
    if system.shape[0] != system.shape[1]:
        # |support_own| != |support_opp| never reaches here (equal-size
        # enumeration), kept as a guard for direct calls.
        solution, residuals, rank, _ = np.linalg.lstsq(system, target, rcond=None)
        if rank < system.shape[1]:
            return None
        if not np.allclose(system @ solution, target, atol=1e-9):
            return None
    else:
        try:
            solution = np.linalg.solve(system, target)
        except np.linalg.LinAlgError:
            return None
    p = solution[:k]
    if np.any(p < -1e-10):
        return None
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if total <= 0:
        return None
    return p / total


def _expand(indices: Sequence[int], values: np.ndarray, size: int) -> np.ndarray:
    out = np.zeros(size)
    out[list(indices)] = values
    return out


def _obeys_support(strategy: np.ndarray, support: Sequence[int], tol: float) -> bool:
    """Positive exactly on the candidate support."""
    mask = np.zeros(len(strategy), dtype=bool)
    mask[list(support)] = True
    return bool(np.all(strategy[mask] > tol) and np.all(strategy[~mask] <= tol))


def support_enumeration(
    game: NormalFormGame, tol: float = 1e-10
) -> Iterator[Equilibrium]:
    """Yield all Nash equilibria found by support enumeration.

    For degenerate games the enumeration still yields every equilibrium
    with equal-size supports; degenerate components (continua) surface
    through their extreme points found by vertex enumeration instead.
    """
    m, n = game.shape
    for size in range(1, min(m, n) + 1):
        for rows in combinations(range(m), size):
            for cols in combinations(range(n), size):
                # y makes the row player's support rows indifferent.
                y = _solve_indifference(game.A, rows, cols)
                if y is None:
                    continue
                # x makes the column player's support cols indifferent
                # (transpose B so the same helper applies).
                x = _solve_indifference(game.B.T, cols, rows)
                if x is None:
                    continue
                full_x = _expand(rows, x, m)
                full_y = _expand(cols, y, n)
                if not _obeys_support(full_x, rows, tol):
                    continue
                if not _obeys_support(full_y, cols, tol):
                    continue
                if game.is_nash(full_x, full_y, tol=1e-8):
                    yield Equilibrium.of(game, full_x, full_y)


def all_equilibria(game: NormalFormGame) -> List[Equilibrium]:
    """Materialised list of support-enumeration equilibria."""
    return list(support_enumeration(game))
