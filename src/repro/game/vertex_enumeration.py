"""Vertex enumeration over the best-response polytopes.

Every Nash equilibrium of a nondegenerate bimatrix game corresponds to
a *fully labelled* pair of vertices of the polytopes

* ``P = {x ≥ 0, Bᵀx ≤ 1}``  and  ``Q = {y ≥ 0, Ay ≤ 1}``

(payoffs shifted positive).  We enumerate the vertices of each polytope
by brute-force basis enumeration — choose dim-many constraints, solve,
keep feasible points — collect each vertex's label set, and match pairs
whose labels cover ``{0, …, m+n−1}``.

Cubic-ish in the number of constraint subsets, fine for the small games
DEEP builds, and a genuinely independent implementation to cross-check
support enumeration and Lemke–Howson in the property tests.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Sequence, Tuple

import numpy as np

from .normal_form import Equilibrium, NormalFormGame, dedupe_equilibria

_TOL = 1e-9


def polytope_vertices(
    halfspace_matrix: np.ndarray, rhs: np.ndarray
) -> List[Tuple[np.ndarray, FrozenSet[int]]]:
    """Vertices of ``{z : Mz ≤ b, z ≥ 0}`` with their tight-label sets.

    Constraint indices double as labels: row ``r`` of ``M`` carries
    label ``r``; the non-negativity constraint on coordinate ``k``
    carries label ``n_constraints + k``.  Returns (vertex, labels)
    pairs, excluding the origin's degenerate duplicates.
    """
    n_constraints, dim = halfspace_matrix.shape
    # Stack the polytope constraints with coordinate non-negativity so
    # any dim-subset of tight constraints pins a candidate vertex.
    full_m = np.vstack([halfspace_matrix, -np.eye(dim)])
    full_b = np.concatenate([rhs, np.zeros(dim)])
    vertices: List[Tuple[np.ndarray, FrozenSet[int]]] = []
    for active in combinations(range(len(full_b)), dim):
        system = full_m[list(active)]
        target = full_b[list(active)]
        try:
            point = np.linalg.solve(system, target)
        except np.linalg.LinAlgError:
            continue
        if np.any(full_m @ point > full_b + _TOL):
            continue  # infeasible
        labels = frozenset(
            int(i) for i in np.flatnonzero(full_m @ point >= full_b - _TOL)
        )
        vertices.append((point, labels))
    return vertices


def vertex_enumeration(game: NormalFormGame) -> List[Equilibrium]:
    """All equilibria found by fully-labelled vertex pairs."""
    m, n = game.shape
    positive = game.shifted_positive()
    # P lives in R^m: B^T x <= 1 (labels m..m+n-1 after remap), x >= 0
    # (labels 0..m-1).  polytope_vertices labels constraints first, so
    # remap: constraint j -> label m+j, nonneg k -> label k.
    p_vertices = []
    for point, raw in polytope_vertices(positive.B.T, np.ones(n)):
        if point.sum() <= _TOL:
            continue  # origin: not a strategy
        labels = frozenset(
            (m + r) if r < n else (r - n) for r in raw
        )
        p_vertices.append((point, labels))
    # Q lives in R^n: A y <= 1 (constraint i -> label i), y >= 0
    # (nonneg k at raw index m+k -> label m+k): raw indices equal labels.
    q_vertices = []
    for point, raw in polytope_vertices(positive.A, np.ones(m)):
        if point.sum() <= _TOL:
            continue
        q_vertices.append((point, frozenset(raw)))

    everything = frozenset(range(m + n))
    found: List[Equilibrium] = []
    for x, x_labels in p_vertices:
        for y, y_labels in q_vertices:
            if x_labels | y_labels == everything:
                # Basis solves can leave coordinates a hair below zero
                # (within the feasibility tolerance); normalising then
                # amplifies them past the strategy validator.  Clip
                # before normalising.
                x_pos = np.clip(x, 0.0, None)
                y_pos = np.clip(y, 0.0, None)
                candidate = Equilibrium.of(
                    game, x_pos / x_pos.sum(), y_pos / y_pos.sum()
                )
                if game.is_nash(
                    candidate.row_strategy, candidate.col_strategy, tol=1e-8
                ):
                    found.append(candidate)
    return dedupe_equilibria(found)
