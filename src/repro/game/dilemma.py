"""Prisoner's-dilemma constructors and the DEEP payoff framing.

The paper models registry/device selection "using the prisoner dilemma
model within the nash equilibrium to optimize energy consumption
through cooperation between microservices and devices" (Sec. III-E).

This module provides

* the textbook dilemma (for tests and documentation),
* :func:`energy_game` — the transformation DEEP applies to a cost
  tensor slice: payoffs are *negated energies* (players maximise, the
  system minimises energy), optionally perturbed by congestion
  penalties that create the dilemma's cooperate/defect tension, and
* :func:`classic games <matching_pennies>` used to exercise the
  solvers from multiple angles.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .normal_form import NormalFormGame


def prisoners_dilemma(
    reward: float = 3.0,
    temptation: float = 5.0,
    sucker: float = 0.0,
    punishment: float = 1.0,
) -> NormalFormGame:
    """The canonical 2×2 dilemma (row 0 / col 0 = cooperate).

    Requires ``temptation > reward > punishment > sucker`` so that
    defection strictly dominates yet mutual defection is Pareto-worse
    than mutual cooperation.
    """
    if not (temptation > reward > punishment > sucker):
        raise ValueError(
            "need temptation > reward > punishment > sucker, got "
            f"T={temptation}, R={reward}, P={punishment}, S={sucker}"
        )
    A = np.array([[reward, sucker], [temptation, punishment]])
    return NormalFormGame(
        A, A.T, row_labels=["cooperate", "defect"], col_labels=["cooperate", "defect"]
    )


def matching_pennies() -> NormalFormGame:
    """Zero-sum 2×2 with the unique mixed equilibrium (½, ½)."""
    A = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return NormalFormGame(A, row_labels=["heads", "tails"], col_labels=["heads", "tails"])


def coordination_game(a: float = 2.0, b: float = 1.0) -> NormalFormGame:
    """Pure coordination with two pure equilibria and one mixed."""
    if a <= 0 or b <= 0:
        raise ValueError("coordination payoffs must be positive")
    A = np.array([[a, 0.0], [0.0, b]])
    return NormalFormGame(A, A.copy())


def energy_game(
    energy: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    col_labels: Optional[Sequence[str]] = None,
    row_penalty: Optional[np.ndarray] = None,
    col_penalty: Optional[np.ndarray] = None,
) -> NormalFormGame:
    """Build DEEP's per-microservice game from an energy matrix.

    Parameters
    ----------
    energy:
        ``registries × devices`` matrix of ``EC(m_i, r_g, d_j)`` in
        joules; infeasible cells may be ``+inf``.
    row_penalty / col_penalty:
        Optional extra joule-equivalent costs charged to the registry
        player (e.g. bandwidth contention on a registry link) and the
        device player (e.g. occupancy of an already-loaded device).
        These are what turn the aligned minimisation into a dilemma:
        each player would privately dodge its penalty even when that
        raises the partner's (and the system's) cost.

    Returns
    -------
    NormalFormGame
        Row player = registry selector, column player = device
        selector; payoffs are negated (penalised) energies.  Infeasible
        cells become a large finite negative payoff so solvers stay in
        floating-point range while never choosing them when any
        feasible cell exists.
    """
    cost = np.asarray(energy, dtype=float)
    if cost.ndim != 2:
        raise ValueError(f"energy matrix must be 2-D, got shape {cost.shape}")
    if np.any(np.isnan(cost)):
        raise ValueError("energy matrix contains NaN")
    row_extra = np.zeros_like(cost) if row_penalty is None else np.asarray(row_penalty, float)
    col_extra = np.zeros_like(cost) if col_penalty is None else np.asarray(col_penalty, float)
    if row_extra.shape != cost.shape or col_extra.shape != cost.shape:
        raise ValueError("penalty shapes must match the energy matrix")

    finite = np.isfinite(cost)
    if not finite.any():
        raise ValueError("no feasible (registry, device) cell")
    # Infeasible sentinel: worse than any feasible outcome by a wide,
    # finite margin (solvers require finite payoffs).
    worst = cost[finite].max() + np.abs(row_extra).max() + np.abs(col_extra).max()
    sentinel = worst * 10.0 + 1e6
    patched = np.where(finite, cost, sentinel)
    return NormalFormGame(
        -(patched + np.where(finite, row_extra, 0.0)),
        -(patched + np.where(finite, col_extra, 0.0)),
        row_labels=row_labels,
        col_labels=col_labels,
    )
