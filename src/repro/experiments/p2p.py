"""Experiment P2P: what the third registry tier buys at the edge.

Compares three deployments of the same layer-sharing pull workload on
a swarm of edge devices:

* ``hub-only``    — every layer comes from Docker Hub (tier 1),
* ``hybrid``      — the paper's design: regional registry first, hub
  fallback (tiers 1–2),
* ``hybrid+p2p``  — the full stack: peers serve cached layers over the
  LAN, the adaptive replicator spreads hot layers into
  under-provisioned regions, registries only fill misses (tiers 1–3).

The workload is deliberately layer-sharing: images are built on common
bases (``python:3.9-slim`` et al.), and demand is Zipf-skewed so a few
hot images dominate — the regime where EdgePier-style peer
distribution pays off.  The headline metric is *origin traffic*: bytes
pulled from hub + regional.  The P2P tier strictly lowers it because
every layer already cached anywhere in a region can be served locally.

Modeling note: like the paper's two-tier pull model, cache admission
is instantaneous at pull start (the transfer's duration is slept
*after* accounting), so overlapping pulls can plan peer fetches from
layers still in flight.  This makes the reported P2P savings
optimistic under heavy pull overlap; modeling in-flight transfers is
a recorded follow-on (see ROADMAP "Registry tiers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.device import Arch
from ..model.network import NetworkModel
from ..model.units import BYTES_PER_GB
from ..registry.base import ImageReference, mirror_image
from ..registry.cache import ImageCache
from ..registry.hub import DockerHub
from ..registry.images import OFFICIAL_BASES, build_image
from ..registry.minio import MinioStore
from ..registry.p2p import AdaptiveReplicator, P2PRegistry, PeerSwarm
from ..registry.regional import RegionalRegistry
from ..sim.engine import Simulator
from ..sim.rng import DEFAULT_SEED, RngRegistry
from .runner import ExperimentResult

MODES = ("hub-only", "hybrid", "hybrid+p2p")

#: Image sizes cycled over the synthetic catalogue (GB, compressed).
_IMAGE_SIZES_GB = (0.35, 0.6, 0.9, 1.2)

#: Bases cycled over the catalogue: shared layers across images are
#: what the peer tier (and layer dedup generally) exploits.
_IMAGE_BASES = ("python:3.9-slim", "alpine:3", "python:3.9")


@dataclass(frozen=True)
class SwarmDevice:
    """One edge device of the synthetic swarm."""

    name: str
    region: str
    cache_gb: float


@dataclass
class SwarmScenario:
    """A fully wired pull workload over a swarm of edge devices."""

    devices: List[SwarmDevice]
    network: NetworkModel
    hub: DockerHub
    regional: RegionalRegistry
    references: List[ImageReference]
    #: (arrival time, device name, reference) — sorted by time.
    schedule: List[Tuple[float, str, ImageReference]]
    horizon_s: float
    seed: int


@dataclass
class ModeOutcome:
    """Aggregated traffic of one mode run."""

    mode: str
    pulls: int = 0
    cache_hits: int = 0
    bytes_by_registry: Dict[str, int] = field(default_factory=dict)
    bytes_from_peers: int = 0
    bytes_replicated: int = 0
    transfer_s: float = 0.0
    replicator: Optional[AdaptiveReplicator] = None

    @property
    def origin_bytes(self) -> int:
        """Bytes served by hub + regional (the tiers P2P offloads)."""
        return sum(self.bytes_by_registry.values())

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.pulls if self.pulls else 0.0


def build_scenario(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    cache_gb: float = 12.0,
    horizon_s: float = 3600.0,
    seed: int = DEFAULT_SEED,
) -> SwarmScenario:
    """A deterministic layer-sharing workload on an ``n_devices`` swarm.

    Regions are LAN islands (full mesh at LAN bandwidth); every device
    reaches the hub (CDN bandwidth varies by region) and the regional
    registry (fast only for its home region).  Demand is Zipf-skewed
    over the image catalogue with exponential arrivals.
    """
    if n_devices < 2:
        raise ValueError("a swarm needs at least 2 devices")
    rng = RngRegistry(seed)

    # --- registries and the shared-base image catalogue ---------------
    hub = DockerHub(name="docker-hub")
    regional = RegionalRegistry(
        name="regional", store=MinioStore(capacity_gb=200.0)
    )
    references: List[ImageReference] = []
    for i in range(n_images):
        repo = f"swarm/app{i}"
        size_gb = _IMAGE_SIZES_GB[i % len(_IMAGE_SIZES_GB)]
        base = OFFICIAL_BASES[_IMAGE_BASES[i % len(_IMAGE_BASES)]]
        mlist, blobs = build_image(repo, size_gb, base=base)
        hub.push_image(repo, "latest", mlist, blobs)
        mirror_image(hub, regional, repo, "latest")
        references.append(ImageReference(repo))

    # --- devices, regions, and channels -------------------------------
    devices = [
        SwarmDevice(
            name=f"edge-{i:04d}",
            region=f"region-{i % n_regions}",
            cache_gb=cache_gb,
        )
        for i in range(n_devices)
    ]
    network = NetworkModel()
    by_region: Dict[str, List[str]] = {}
    for dev in devices:
        by_region.setdefault(dev.region, []).append(dev.name)
    ordered_regions = sorted(by_region.items())
    for r, (region, members) in enumerate(ordered_regions):
        if len(members) > 1:
            network.connect_device_mesh(members, 800.0, rtt_s=0.02)
        hub_bw = (60.0, 40.0, 25.0)[r % 3]
        regional_bw = 150.0 if r == 0 else 90.0
        for name in members:
            network.connect_registry(hub.name, name, hub_bw, rtt_s=2.5)
            network.connect_registry(regional.name, name, regional_bw, rtt_s=0.8)
    # Inter-region WAN links between region gateways (the first member
    # of each region): slower than the LAN but they make cross-region
    # peer serving and proactive replication physically possible — a
    # region no holder can reach cannot be provisioned peer-to-peer.
    gateways = [members[0] for _, members in ordered_regions]
    for i, a in enumerate(gateways):
        for b in gateways[i + 1:]:
            network.connect_devices(a, b, 200.0, rtt_s=0.05)

    # --- Zipf-skewed pull schedule -------------------------------------
    weights = np.array([1.0 / (rank + 1) ** 1.1 for rank in range(n_images)])
    weights /= weights.sum()
    demand = rng.stream("p2p.demand")
    arrivals = rng.stream("p2p.arrivals")
    schedule: List[Tuple[float, str, ImageReference]] = []
    for dev in devices:
        t = float(arrivals.uniform(0.0, horizon_s * 0.3))
        for _ in range(pulls_per_device):
            ref = references[int(demand.choice(n_images, p=weights))]
            schedule.append((t, dev.name, ref))
            t += float(arrivals.exponential(horizon_s * 0.1))
    schedule.sort(key=lambda item: (item[0], item[1]))
    return SwarmScenario(
        devices=devices,
        network=network,
        hub=hub,
        regional=regional,
        references=references,
        schedule=schedule,
        horizon_s=horizon_s,
        seed=seed,
    )


def run_mode(
    scenario: SwarmScenario,
    mode: str,
    replicator_interval_s: float = 120.0,
    replicator_hot_threshold: float = 3.0,
    replicator_target_replicas: int = 2,
) -> ModeOutcome:
    """Execute the scenario's pull schedule under one tier configuration.

    Every mode goes through the same :class:`P2PRegistry` facade on a
    fresh simulator and fresh caches; modes differ only in the registry
    chain and whether peers/replication are enabled, so byte counts are
    directly comparable.  The scenario's registry *objects* are shared
    across modes — their blob content is immutable, but diagnostic pull
    counters accumulate, so scenarios must not configure a hub rate
    limiter (``build_scenario`` never does).
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    sim = Simulator()
    swarm = PeerSwarm(scenario.network)
    caches: Dict[str, ImageCache] = {}
    for dev in scenario.devices:
        cache = ImageCache(dev.cache_gb, dev.name)
        caches[dev.name] = cache
        swarm.add_device(dev.name, cache, region=dev.region)

    if mode == "hub-only":
        chain = [scenario.hub]
    else:
        chain = [scenario.regional, scenario.hub]
    facade = P2PRegistry(
        swarm, chain, name=mode, use_peers=(mode == "hybrid+p2p")
    )
    outcome = ModeOutcome(mode=mode)

    def one_pull(at_s: float, device: str, ref: ImageReference):
        yield sim.timeout(at_s)
        result = facade.pull(ref, Arch.AMD64, device, caches[device], now_s=sim.now)
        outcome.pulls += 1
        outcome.cache_hits += 1 if result.cache_hit else 0
        outcome.bytes_from_peers += result.bytes_from_peers
        outcome.transfer_s += result.seconds
        for registry, count in result.bytes_by_registry().items():
            outcome.bytes_by_registry[registry] = (
                outcome.bytes_by_registry.get(registry, 0) + count
            )
        if result.seconds > 0:
            yield sim.timeout(result.seconds)

    for at_s, device, ref in scenario.schedule:
        sim.process(one_pull(at_s, device, ref))

    if mode == "hybrid+p2p":
        replicator = AdaptiveReplicator(
            sim,
            swarm,
            interval_s=replicator_interval_s,
            hot_threshold=replicator_hot_threshold,
            target_replicas=replicator_target_replicas,
        )
        sim.process(replicator.process())
        outcome.replicator = replicator
        sim.run(until=scenario.horizon_s)
        outcome.bytes_replicated = replicator.bytes_replicated
    else:
        sim.run(until=scenario.horizon_s)
    return outcome


def run(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """The three-tier comparison as a standard experiment table."""
    scenario = build_scenario(
        n_devices=n_devices,
        n_images=n_images,
        pulls_per_device=pulls_per_device,
        n_regions=n_regions,
        seed=seed,
    )
    result = ExperimentResult(
        experiment_id="p2p",
        title=(
            f"P2P tier: origin traffic on a {n_devices}-device "
            f"layer-sharing swarm [GB]"
        ),
        columns=[
            "mode",
            "pulls",
            "hit_ratio",
            "hub_gb",
            "regional_gb",
            "peer_gb",
            "origin_gb",
            "transfer_s",
        ],
    )
    outcomes: Dict[str, ModeOutcome] = {}
    for mode in MODES:
        outcome = run_mode(scenario, mode)
        outcomes[mode] = outcome
        result.add_row(
            mode=mode,
            pulls=outcome.pulls,
            hit_ratio=outcome.hit_ratio,
            hub_gb=outcome.bytes_by_registry.get("docker-hub", 0) / BYTES_PER_GB,
            regional_gb=outcome.bytes_by_registry.get("regional", 0)
            / BYTES_PER_GB,
            peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
            / BYTES_PER_GB,
            origin_gb=outcome.origin_bytes / BYTES_PER_GB,
            transfer_s=outcome.transfer_s,
        )
    saved = outcomes["hybrid"].origin_bytes - outcomes["hybrid+p2p"].origin_bytes
    result.note(
        f"hybrid+p2p pulls {saved / BYTES_PER_GB:.2f} GB less from "
        f"hub+regional than plain hybrid"
        + (" (P2P tier offloads the origin)" if saved > 0 else " — NO SAVING")
    )
    replicator = outcomes["hybrid+p2p"].replicator
    if replicator is not None:
        result.note(
            f"adaptive replicator: {replicator.total_actions()} proactive "
            f"copies ({replicator.bytes_replicated / BYTES_PER_GB:.2f} GB), "
            f"converged={replicator.converged()}"
        )
    return result
