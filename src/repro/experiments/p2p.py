"""Experiment P2P: what the third registry tier buys at the edge.

Compares three deployments of the same layer-sharing pull workload on
a swarm of edge devices:

* ``hub-only``    — every layer comes from Docker Hub (tier 1),
* ``hybrid``      — the paper's design: regional registry first, hub
  fallback (tiers 1–2),
* ``hybrid+p2p``  — the full stack: peers serve cached layers over the
  LAN, the adaptive replicator spreads hot layers into
  under-provisioned regions, registries only fill misses (tiers 1–3).

The workload is deliberately layer-sharing: images are built on common
bases (``python:3.9-slim`` et al.), and demand is Zipf-skewed so a few
hot images dominate — the regime where EdgePier-style peer
distribution pays off.  The headline metric is *origin traffic*: bytes
pulled from hub + regional.  The P2P tier strictly lowers it because
every layer already cached anywhere in a region can be served locally.

Two transfer models are supported (see
:class:`~repro.sim.transfers.TransferModel`): the default ``ANALYTIC``
mode keeps the paper's instant-admission accounting (every transfer an
isolated ``size/BW`` sleep, layers visible to peers at pull *start*),
while ``TIME_RESOLVED`` drives every pull through the shared-bandwidth
:class:`~repro.sim.transfers.TransferEngine` with reserve→commit cache
admission — overlapping pulls contend for links and can only source
layers from peers whose copies have actually landed.
:func:`run_contended` quantifies the gap between the two on a
deliberately overlapping schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.device import Arch
from ..model.network import NetworkModel
from ..model.units import BYTES_PER_GB
from ..registry.base import ImageReference, mirror_image
from ..registry.cache import ImageCache
from ..registry.discovery import GossipDiscovery
from ..registry.hub import DockerHub
from ..registry.images import OFFICIAL_BASES, build_image
from ..registry.minio import MinioStore
from ..registry.chunks import DEFAULT_CHUNK_SIZE_BYTES
from ..registry.p2p import AdaptiveReplicator, P2PRegistry, PeerSwarm
from ..registry.regional import RegionalRegistry
from ..sim.churn import ChurnConfig, ChurnProcess
from ..sim.engine import Simulator
from ..sim.rng import DEFAULT_SEED, RngRegistry
from ..sim.transfers import TransferEngine, TransferModel
from .runner import ExperimentResult

MODES = ("hub-only", "hybrid", "hybrid+p2p")

DISCOVERY_BACKENDS = ("omniscient", "gossip")

#: Image sizes cycled over the synthetic catalogue (GB, compressed).
_IMAGE_SIZES_GB = (0.35, 0.6, 0.9, 1.2)

#: Bases cycled over the catalogue: shared layers across images are
#: what the peer tier (and layer dedup generally) exploits.
_IMAGE_BASES = ("python:3.9-slim", "alpine:3", "python:3.9")


@dataclass(frozen=True)
class SwarmDevice:
    """One edge device of the synthetic swarm."""

    name: str
    region: str
    cache_gb: float


@dataclass
class SwarmScenario:
    """A fully wired pull workload over a swarm of edge devices."""

    devices: List[SwarmDevice]
    network: NetworkModel
    hub: DockerHub
    regional: RegionalRegistry
    references: List[ImageReference]
    #: (arrival time, device name, reference) — sorted by time.
    schedule: List[Tuple[float, str, ImageReference]]
    horizon_s: float
    seed: int


@dataclass
class ModeOutcome:
    """Aggregated traffic of one mode run."""

    mode: str
    pulls: int = 0
    cache_hits: int = 0
    bytes_by_registry: Dict[str, int] = field(default_factory=dict)
    bytes_from_peers: int = 0
    bytes_replicated: int = 0
    transfer_s: float = 0.0
    replicator: Optional[AdaptiveReplicator] = None
    #: Scheduled pulls that did not finish (time-resolved: still in
    #: flight; analytic: not yet arrived) when the horizon cut the run
    #: off.  Nonzero values mean the byte counters under-report — the
    #: truncation is deliberate but must never be silent.
    unfinished_pulls: int = 0
    #: Pulls whose device was offline (churned out) at arrival time.
    skipped_pulls: int = 0
    #: Stale discovery entries caught by verification across all pulls
    #: plus the replicator (0 under omniscient discovery).
    stale_peer_misses: int = 0
    #: Churn totals (0 without a churn process).
    departures: int = 0
    rejoins: int = 0
    #: Anti-entropy rounds the gossip backend completed (0 omniscient).
    gossip_rounds: int = 0
    #: Simulated time at which the *last* pull of the run completed —
    #: the cold-start makespan on a wave schedule (0 with no pulls).
    makespan_s: float = 0.0
    #: Longest single pull latency (completion minus scheduled
    #: arrival).  On a near-simultaneous cold wave this is the wave's
    #: own makespan, independent of where the wave sits on the clock.
    longest_pull_s: float = 0.0
    #: Bytes moved over links and thrown away (mid-flight fallbacks,
    #: losing endgame duplicates); analytic runs always report 0.
    bytes_wasted: int = 0
    #: Duplicate chunk requests issued by the chunked endgame.
    chunk_endgame_dupes: int = 0

    @property
    def origin_bytes(self) -> int:
        """Bytes served by hub + regional (the tiers P2P offloads)."""
        return sum(self.bytes_by_registry.values())

    @property
    def hit_ratio(self) -> float:
        return self.cache_hits / self.pulls if self.pulls else 0.0


def build_scenario(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    cache_gb: float = 12.0,
    horizon_s: float = 3600.0,
    seed: int = DEFAULT_SEED,
) -> SwarmScenario:
    """A deterministic layer-sharing workload on an ``n_devices`` swarm.

    Regions are LAN islands (full mesh at LAN bandwidth); every device
    reaches the hub (CDN bandwidth varies by region) and the regional
    registry (fast only for its home region).  Demand is Zipf-skewed
    over the image catalogue with exponential arrivals.
    """
    if n_devices < 2:
        raise ValueError("a swarm needs at least 2 devices")
    rng = RngRegistry(seed)

    # --- registries and the shared-base image catalogue ---------------
    hub = DockerHub(name="docker-hub")
    regional = RegionalRegistry(
        name="regional", store=MinioStore(capacity_gb=200.0)
    )
    references: List[ImageReference] = []
    for i in range(n_images):
        repo = f"swarm/app{i}"
        size_gb = _IMAGE_SIZES_GB[i % len(_IMAGE_SIZES_GB)]
        base = OFFICIAL_BASES[_IMAGE_BASES[i % len(_IMAGE_BASES)]]
        mlist, blobs = build_image(repo, size_gb, base=base)
        hub.push_image(repo, "latest", mlist, blobs)
        mirror_image(hub, regional, repo, "latest")
        references.append(ImageReference(repo))

    # --- devices, regions, and channels -------------------------------
    devices = [
        SwarmDevice(
            name=f"edge-{i:04d}",
            region=f"region-{i % n_regions}",
            cache_gb=cache_gb,
        )
        for i in range(n_devices)
    ]
    network = NetworkModel()
    by_region: Dict[str, List[str]] = {}
    for dev in devices:
        by_region.setdefault(dev.region, []).append(dev.name)
    ordered_regions = sorted(by_region.items())
    for r, (region, members) in enumerate(ordered_regions):
        if len(members) > 1:
            network.connect_device_mesh(members, 800.0, rtt_s=0.02)
        hub_bw = (60.0, 40.0, 25.0)[r % 3]
        regional_bw = 150.0 if r == 0 else 90.0
        for name in members:
            network.connect_registry(hub.name, name, hub_bw, rtt_s=2.5)
            network.connect_registry(regional.name, name, regional_bw, rtt_s=0.8)
    # Inter-region WAN links between region gateways (the first member
    # of each region): slower than the LAN but they make cross-region
    # peer serving and proactive replication physically possible — a
    # region no holder can reach cannot be provisioned peer-to-peer.
    gateways = [members[0] for _, members in ordered_regions]
    for i, a in enumerate(gateways):
        for b in gateways[i + 1:]:
            network.connect_devices(a, b, 200.0, rtt_s=0.05)

    # --- Zipf-skewed pull schedule -------------------------------------
    weights = np.array([1.0 / (rank + 1) ** 1.1 for rank in range(n_images)])
    weights /= weights.sum()
    demand = rng.stream("p2p.demand")
    arrivals = rng.stream("p2p.arrivals")
    schedule: List[Tuple[float, str, ImageReference]] = []
    for dev in devices:
        t = float(arrivals.uniform(0.0, horizon_s * 0.3))
        for _ in range(pulls_per_device):
            ref = references[int(demand.choice(n_images, p=weights))]
            schedule.append((t, dev.name, ref))
            t += float(arrivals.exponential(horizon_s * 0.1))
    schedule.sort(key=lambda item: (item[0], item[1]))
    return SwarmScenario(
        devices=devices,
        network=network,
        hub=hub,
        regional=regional,
        references=references,
        schedule=schedule,
        horizon_s=horizon_s,
        seed=seed,
    )


def run_mode(
    scenario: SwarmScenario,
    mode: str,
    replicator_interval_s: float = 120.0,
    replicator_hot_threshold: float = 3.0,
    replicator_target_replicas: int = 2,
    transfer_model: TransferModel = TransferModel.ANALYTIC,
    upload_budget: Optional[int] = None,
    discovery: str = "omniscient",
    gossip_fanout: int = 2,
    gossip_period_s: float = 60.0,
    gossip_view_cap: int = 8,
    churn: Optional[ChurnConfig] = None,
    chunked: bool = False,
    chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
    chunk_parallel: int = 4,
    replicator_churn_aware: bool = False,
) -> ModeOutcome:
    """Execute the scenario's pull schedule under one tier configuration.

    Every mode goes through the same :class:`P2PRegistry` facade on a
    fresh simulator and fresh caches; modes differ only in the registry
    chain and whether peers/replication are enabled, so byte counts are
    directly comparable.  The scenario's registry *objects* are shared
    across modes — their blob content is immutable, but diagnostic pull
    counters accumulate, so scenarios must not configure a hub rate
    limiter (``build_scenario`` never does).

    Under ``TransferModel.TIME_RESOLVED`` every pull runs through a
    shared :class:`TransferEngine` (one per mode run): transfers
    contend for channel capacity, peers admit layers at completion
    only, and ``upload_budget`` caps concurrent uploads per device.

    ``discovery`` selects the replica-lookup backend: ``"omniscient"``
    (the default, instantaneous global knowledge — reproduces the
    historical numbers bit-for-bit) or ``"gossip"`` (per-device
    partial views converging via anti-entropy every
    ``gossip_period_s``, stale entries metered and fallen back from).
    A ``churn`` config additionally runs a seeded
    :class:`~repro.sim.churn.ChurnProcess`: idle devices depart and
    re-join with their (stale) caches, and pulls arriving while their
    device is offline are skipped and counted.

    ``chunked=True`` (time-resolved only) swaps the per-layer
    single-source fetch for the BitTorrent-style per-chunk schedule of
    :class:`~repro.registry.chunks.ChunkSwarmPlanner` — rarest-first
    selection over full *and partial* holders, ``chunk_parallel``
    concurrent sources per layer, endgame registry re-requests.
    ``replicator_churn_aware=True`` hands the churn process to the
    replicator so replica targets weight holders by observed session
    lengths; both are opt-in so default outputs stay bit-for-bit.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    if discovery not in DISCOVERY_BACKENDS:
        raise ValueError(
            f"unknown discovery {discovery!r}; expected one of "
            f"{DISCOVERY_BACKENDS}"
        )
    sim = Simulator()
    rng = RngRegistry(scenario.seed)
    backend: Optional[GossipDiscovery] = None
    if discovery == "gossip":
        backend = GossipDiscovery(
            sim=sim,
            fanout=gossip_fanout,
            period_s=gossip_period_s,
            view_cap=gossip_view_cap,
            seed=rng.derive_seed("p2p.gossip") % (2**32),
        )
        swarm = PeerSwarm(scenario.network, discovery=backend)
    else:
        swarm = PeerSwarm(scenario.network)
    caches: Dict[str, ImageCache] = {}
    for dev in scenario.devices:
        cache = ImageCache(dev.cache_gb, dev.name)
        caches[dev.name] = cache
        swarm.add_device(dev.name, cache, region=dev.region)

    if chunked and transfer_model is not TransferModel.TIME_RESOLVED:
        raise ValueError(
            "chunked pulls need TransferModel.TIME_RESOLVED (the analytic "
            "model has no notion of a partially transferred layer)"
        )
    if mode == "hub-only":
        chain = [scenario.hub]
    else:
        chain = [scenario.regional, scenario.hub]
    facade = P2PRegistry(
        swarm,
        chain,
        name=mode,
        use_peers=(mode == "hybrid+p2p"),
        chunked=chunked,
        chunk_size_bytes=chunk_size_bytes,
        chunk_parallel=chunk_parallel,
        chunk_seed=scenario.seed,
    )
    outcome = ModeOutcome(mode=mode)
    engine: Optional[TransferEngine] = None
    if transfer_model is TransferModel.TIME_RESOLVED:
        engine = TransferEngine(
            sim, scenario.network, default_upload_budget=upload_budget
        )

    busy: Dict[str, int] = {}
    churn_process: Optional[ChurnProcess] = None
    if churn is not None:
        churn_process = ChurnProcess(
            sim,
            swarm,
            rng.fork("p2p.churn"),
            config=churn,
            engine=engine,
            is_busy=lambda device: busy.get(device, 0) > 0,
        )
        churn_process.start()

    def account(result) -> None:
        outcome.pulls += 1
        outcome.cache_hits += 1 if result.cache_hit else 0
        outcome.bytes_from_peers += result.bytes_from_peers
        outcome.stale_peer_misses += result.stale_peer_misses
        outcome.transfer_s += result.seconds
        outcome.bytes_wasted += result.bytes_wasted
        outcome.chunk_endgame_dupes += result.chunk_endgame_dupes
        outcome.makespan_s = max(outcome.makespan_s, sim.now)
        for registry, count in result.bytes_by_registry().items():
            outcome.bytes_by_registry[registry] = (
                outcome.bytes_by_registry.get(registry, 0) + count
            )

    def one_pull(at_s: float, device: str, ref: ImageReference):
        yield sim.timeout(at_s)
        if churn_process is not None and not churn_process.is_online(device):
            # The device churned out before its pull arrived; a real
            # workload would reschedule elsewhere — here the skip is
            # counted so byte totals are never silently short.
            outcome.skipped_pulls += 1
            return
        busy[device] = busy.get(device, 0) + 1
        try:
            if engine is None:
                result = facade.pull(
                    ref, Arch.AMD64, device, caches[device], now_s=sim.now
                )
                account(result)
                if result.seconds > 0:
                    yield sim.timeout(result.seconds)
                # account() ran at pull start (analytic admission is
                # instant); the makespan must cover the modelled sleep.
                outcome.makespan_s = max(outcome.makespan_s, sim.now)
                outcome.longest_pull_s = max(
                    outcome.longest_pull_s, sim.now - at_s
                )
            else:
                result = yield from facade.pull_process(
                    ref, Arch.AMD64, device, caches[device], engine
                )
                account(result)
                outcome.longest_pull_s = max(
                    outcome.longest_pull_s, sim.now - at_s
                )
        finally:
            busy[device] -= 1

    for at_s, device, ref in scenario.schedule:
        sim.process(one_pull(at_s, device, ref))

    if mode == "hybrid+p2p":
        replicator = AdaptiveReplicator(
            sim,
            swarm,
            interval_s=replicator_interval_s,
            hot_threshold=replicator_hot_threshold,
            target_replicas=replicator_target_replicas,
            engine=engine,
            churn=churn_process if replicator_churn_aware else None,
        )
        sim.process(replicator.process())
        outcome.replicator = replicator
        sim.run(until=scenario.horizon_s)
        outcome.bytes_replicated = replicator.bytes_replicated
    else:
        sim.run(until=scenario.horizon_s)
    outcome.unfinished_pulls = (
        len(scenario.schedule) - outcome.pulls - outcome.skipped_pulls
    )
    if churn_process is not None:
        outcome.departures = churn_process.departures
        outcome.rejoins = churn_process.rejoins
    if backend is not None:
        outcome.gossip_rounds = backend.rounds
        # Replicator-side misses are metered on the backend, not on
        # any pull result; fold the total in so the outcome's counter
        # matches the swarm-wide one.
        outcome.stale_peer_misses = backend.stale_misses
    return outcome


def run(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """The three-tier comparison as a standard experiment table."""
    scenario = build_scenario(
        n_devices=n_devices,
        n_images=n_images,
        pulls_per_device=pulls_per_device,
        n_regions=n_regions,
        seed=seed,
    )
    result = ExperimentResult(
        experiment_id="p2p",
        title=(
            f"P2P tier: origin traffic on a {n_devices}-device "
            f"layer-sharing swarm [GB]"
        ),
        columns=[
            "mode",
            "pulls",
            "hit_ratio",
            "hub_gb",
            "regional_gb",
            "peer_gb",
            "origin_gb",
            "transfer_s",
        ],
    )
    outcomes: Dict[str, ModeOutcome] = {}
    for mode in MODES:
        outcome = run_mode(scenario, mode)
        outcomes[mode] = outcome
        result.add_row(
            mode=mode,
            pulls=outcome.pulls,
            hit_ratio=outcome.hit_ratio,
            hub_gb=outcome.bytes_by_registry.get("docker-hub", 0) / BYTES_PER_GB,
            regional_gb=outcome.bytes_by_registry.get("regional", 0)
            / BYTES_PER_GB,
            peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
            / BYTES_PER_GB,
            origin_gb=outcome.origin_bytes / BYTES_PER_GB,
            transfer_s=outcome.transfer_s,
        )
    saved = outcomes["hybrid"].origin_bytes - outcomes["hybrid+p2p"].origin_bytes
    result.note(
        f"hybrid+p2p pulls {saved / BYTES_PER_GB:.2f} GB less from "
        f"hub+regional than plain hybrid"
        + (" (P2P tier offloads the origin)" if saved > 0 else " — NO SAVING")
    )
    replicator = outcomes["hybrid+p2p"].replicator
    if replicator is not None:
        result.note(
            f"adaptive replicator: {replicator.total_actions()} proactive "
            f"copies ({replicator.bytes_replicated / BYTES_PER_GB:.2f} GB), "
            f"converged={replicator.converged()}"
        )
    return result


# ----------------------------------------------------------------------
# contended overlap: analytic vs time-resolved
# ----------------------------------------------------------------------
def build_contended_scenario(
    n_devices: int = 8,
    n_regions: int = 2,
    cache_gb: float = 12.0,
    stagger_s: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> SwarmScenario:
    """A worst-case-overlap schedule: every device pulls the *same*
    image almost simultaneously (``stagger_s`` apart), twice.

    Each wave is where the models diverge: analytic admission
    publishes the first puller's layers at pull start, so every
    follower plans a LAN peer fetch; time-resolved admission publishes
    nothing until a transfer actually completes, so the bulk of a wave
    goes to the origin and additionally contends for link capacity.
    The second wave pulls a *different* image (sharing a base with the
    first), so both waves are cold and the gap compounds.

    Devices also get shared NIC links (uplink/downlink) and the
    registries shared egress links, so time-resolved transfers contend
    at the endpoints, not just on individual channels.
    """
    scenario = build_scenario(
        n_devices=n_devices,
        n_images=2,
        pulls_per_device=1,
        n_regions=n_regions,
        cache_gb=cache_gb,
        seed=seed,
    )
    network = scenario.network
    for dev in scenario.devices:
        network.set_uplink(dev.name, 400.0)
        network.set_downlink(dev.name, 400.0)
    network.set_uplink(scenario.hub.name, 500.0)
    network.set_uplink(scenario.regional.name, 300.0)
    first_wave = [
        (i * stagger_s, dev.name, scenario.references[0])
        for i, dev in enumerate(scenario.devices)
    ]
    # Second wave well after every first-wave transfer has completed,
    # pulling the sibling image (shared base, fresh app layers).
    wave_gap_s = scenario.horizon_s * 0.5
    second_wave = [
        (wave_gap_s + i * stagger_s, dev.name, scenario.references[1])
        for i, dev in enumerate(scenario.devices)
    ]
    scenario.schedule = first_wave + second_wave
    return scenario


def run_contended(
    n_devices: int = 8,
    n_regions: int = 2,
    upload_budget: int = 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify the analytic-vs-time-resolved gap under overlap.

    Runs the contended-overlap scenario in ``hybrid`` (baseline, no
    peers) and ``hybrid+p2p`` under both transfer models.  The headline
    is the *origin-traffic saving* of the P2P tier: analytic admission
    overstates it because followers fetch from in-flight copies that a
    real swarm could not have served yet.
    """
    result = ExperimentResult(
        experiment_id="p2p-contended",
        title=(
            f"P2P savings under overlapping pulls: analytic vs "
            f"time-resolved transfers ({n_devices} devices) [GB]"
        ),
        columns=[
            "model",
            "pulls",
            "hybrid_origin_gb",
            "p2p_origin_gb",
            "saved_gb",
            "saved_pct",
            "peer_gb",
            "transfer_s",
        ],
    )
    savings: Dict[TransferModel, int] = {}
    for model in (TransferModel.ANALYTIC, TransferModel.TIME_RESOLVED):
        scenario = build_contended_scenario(
            n_devices=n_devices, n_regions=n_regions, seed=seed
        )
        hybrid = run_mode(
            scenario, "hybrid", transfer_model=model, upload_budget=upload_budget
        )
        p2p = run_mode(
            scenario,
            "hybrid+p2p",
            transfer_model=model,
            upload_budget=upload_budget,
        )
        saved = hybrid.origin_bytes - p2p.origin_bytes
        savings[model] = saved
        for outcome in (hybrid, p2p):
            if outcome.unfinished_pulls:
                result.note(
                    f"WARNING: {outcome.unfinished_pulls} pull(s) of the "
                    f"{model.value} {outcome.mode} run did not finish by "
                    f"the horizon — its byte counters under-report"
                )
        result.add_row(
            model=model.value,
            pulls=p2p.pulls,
            hybrid_origin_gb=hybrid.origin_bytes / BYTES_PER_GB,
            p2p_origin_gb=p2p.origin_bytes / BYTES_PER_GB,
            saved_gb=saved / BYTES_PER_GB,
            saved_pct=(
                100.0 * saved / hybrid.origin_bytes if hybrid.origin_bytes else 0.0
            ),
            peer_gb=(p2p.bytes_from_peers + p2p.bytes_replicated) / BYTES_PER_GB,
            transfer_s=p2p.transfer_s,
        )
    gap = savings[TransferModel.ANALYTIC] - savings[TransferModel.TIME_RESOLVED]
    result.note(
        f"analytic admission overstates P2P origin savings by "
        f"{gap / BYTES_PER_GB:.2f} GB under this overlap "
        f"({'time-resolved is strictly lower' if gap > 0 else 'NO GAP'})"
    )
    return result


# ----------------------------------------------------------------------
# chunked multi-source pulls: single-source vs swarm scheduling
# ----------------------------------------------------------------------

#: (label, wave stagger seconds, churn config) regimes the chunked
#: experiment sweeps.  "cold-wave" is the pure simultaneous cold start
#: (no churn): the makespan axis.  "seeder-flaky" staggers arrivals so
#: early finishers seed later ones, then churns devices fast enough
#: that seeders routinely depart *mid-upload*: the restart-waste axis —
#: a single-source pull loses the whole layer's delivered bytes, a
#: chunked pull only the chunk in flight.
CHUNKED_CHURN_REGIMES: Tuple[Tuple[str, float, Optional[ChurnConfig]], ...] = (
    ("cold-wave", 1.0, None),
    ("seeder-flaky", 10.0, ChurnConfig(mean_uptime_s=25.0,
                                       mean_downtime_s=100.0,
                                       min_online=2)),
)


def run_chunked(
    n_devices: int = 8,
    n_regions: int = 2,
    upload_budget: int = 2,
    chunk_size_bytes: int = 16_000_000,
    chunk_parallel: int = 4,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify what chunked multi-source transfers buy on a cold wave.

    Runs the contended-overlap scenario (every device pulls the same
    image nearly simultaneously, twice) through the time-resolved
    engine in ``hybrid+p2p`` mode, once with the single-source
    per-layer planner and once with the chunked swarm planner, under
    each churn regime.  The headline is the **cold-start makespan**:
    with single sources the first wave serialises behind the origin
    and whichever seeders commit first, while chunked pulls spread
    rarest-first chunk requests over every full *and partial* holder —
    devices seed chunks they have barely finished receiving.  Under
    churn the second axis appears: a departing seeder costs a
    single-source pull the whole layer's progress (``bytes_wasted``)
    but a chunked pull only the chunk in flight.
    """
    result = ExperimentResult(
        experiment_id="p2p-chunked",
        title=(
            f"Chunked multi-source pulls on a contended cold wave "
            f"({n_devices} devices, {chunk_size_bytes // 1_000_000} MB "
            f"chunks, window {chunk_parallel})"
        ),
        columns=[
            "churn",
            "planner",
            "pulls",
            "wave_makespan_s",
            "origin_gb",
            "peer_gb",
            "wasted_mb",
            "endgame_dupes",
            "stale_misses",
        ],
    )
    for label, stagger_s, churn_cfg in CHUNKED_CHURN_REGIMES:
        outcomes: Dict[bool, ModeOutcome] = {}
        for chunked in (False, True):
            scenario = build_contended_scenario(
                n_devices=n_devices,
                n_regions=n_regions,
                stagger_s=stagger_s,
                seed=seed,
            )
            outcome = run_mode(
                scenario,
                "hybrid+p2p",
                transfer_model=TransferModel.TIME_RESOLVED,
                upload_budget=upload_budget,
                churn=churn_cfg,
                chunked=chunked,
                chunk_size_bytes=chunk_size_bytes,
                chunk_parallel=chunk_parallel,
                replicator_churn_aware=(churn_cfg is not None),
            )
            outcomes[chunked] = outcome
            if outcome.unfinished_pulls:
                result.note(
                    f"WARNING: {outcome.unfinished_pulls} pull(s) of the "
                    f"churn={label} "
                    f"{'chunked' if chunked else 'single-source'} run did "
                    f"not finish by the horizon"
                )
            result.add_row(
                churn=label,
                planner="chunked" if chunked else "single-source",
                pulls=outcome.pulls,
                wave_makespan_s=outcome.longest_pull_s,
                origin_gb=outcome.origin_bytes / BYTES_PER_GB,
                peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
                / BYTES_PER_GB,
                wasted_mb=outcome.bytes_wasted / 1e6,
                endgame_dupes=outcome.chunk_endgame_dupes,
                stale_misses=outcome.stale_peer_misses,
            )
        single, chunked_out = outcomes[False], outcomes[True]
        if single.longest_pull_s > 0:
            gain = 100.0 * (
                1.0 - chunked_out.longest_pull_s / single.longest_pull_s
            )
            result.note(
                f"churn={label}: chunked cold-start wave makespan "
                f"{chunked_out.longest_pull_s:.1f} s vs single-source "
                f"{single.longest_pull_s:.1f} s ({gain:.1f}% faster)"
                + ("" if gain > 0 else " — NO REDUCTION")
            )
        if churn_cfg is not None:
            result.note(
                f"churn={label}: restart waste {single.bytes_wasted / 1e6:.1f} "
                f"MB single-source vs {chunked_out.bytes_wasted / 1e6:.1f} MB "
                f"chunked"
                + (
                    " (chunking loses chunks, not layers)"
                    if chunked_out.bytes_wasted <= single.bytes_wasted
                    else " — chunking wasted MORE (investigate)"
                )
            )
    return result


# ----------------------------------------------------------------------
# discovery realism: omniscient vs gossip under churn
# ----------------------------------------------------------------------

#: (label, config) churn regimes the gossip experiment sweeps.  Uptime
#: and downtime means are chosen against the scenario's 3600 s horizon:
#: "moderate" churns a few devices per run, "heavy" keeps a sizeable
#: fraction of the swarm cycling.
CHURN_REGIMES: Tuple[Tuple[str, Optional[ChurnConfig]], ...] = (
    ("none", None),
    ("moderate", ChurnConfig(mean_uptime_s=1500.0, mean_downtime_s=300.0,
                             min_online=4)),
    ("heavy", ChurnConfig(mean_uptime_s=500.0, mean_downtime_s=300.0,
                          min_online=4)),
)


def run_gossip(
    n_devices: int = 16,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    gossip_fanout: int = 2,
    gossip_period_s: float = 60.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify how much omniscient discovery overstates P2P savings.

    For each churn regime the hybrid baseline (no peers) runs once,
    then ``hybrid+p2p`` runs twice — with omniscient discovery (every
    device sees every committed replica instantly) and with gossip
    discovery (partial views lagging by up to a gossip period, stale
    entries metered and fallen back from).  The headline is the same
    shape PR 2 used for analytic admission: the *origin-traffic
    saving* each backend reports, and the gap between them.
    """
    result = ExperimentResult(
        experiment_id="p2p-gossip",
        title=(
            f"P2P savings by discovery backend under churn "
            f"({n_devices} devices, gossip fanout={gossip_fanout} "
            f"period={gossip_period_s:.0f}s) [GB]"
        ),
        columns=[
            "churn",
            "discovery",
            "pulls",
            "skipped",
            "origin_gb",
            "peer_gb",
            "stale_misses",
            "saved_gb",
            "saved_pct",
        ],
    )
    gaps: List[Tuple[str, float]] = []
    for label, churn_cfg in CHURN_REGIMES:
        scenario = build_scenario(
            n_devices=n_devices,
            n_images=n_images,
            pulls_per_device=pulls_per_device,
            n_regions=n_regions,
            seed=seed,
        )
        hybrid = run_mode(scenario, "hybrid", churn=churn_cfg)
        saved_by_backend: Dict[str, int] = {}
        for backend in DISCOVERY_BACKENDS:
            outcome = run_mode(
                scenario,
                "hybrid+p2p",
                discovery=backend,
                gossip_fanout=gossip_fanout,
                gossip_period_s=gossip_period_s,
                churn=churn_cfg,
            )
            saved = hybrid.origin_bytes - outcome.origin_bytes
            saved_by_backend[backend] = saved
            result.add_row(
                churn=label,
                discovery=backend,
                pulls=outcome.pulls,
                skipped=outcome.skipped_pulls,
                origin_gb=outcome.origin_bytes / BYTES_PER_GB,
                peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
                / BYTES_PER_GB,
                stale_misses=outcome.stale_peer_misses,
                saved_gb=saved / BYTES_PER_GB,
                saved_pct=(
                    100.0 * saved / hybrid.origin_bytes
                    if hybrid.origin_bytes
                    else 0.0
                ),
            )
        gap = saved_by_backend["omniscient"] - saved_by_backend["gossip"]
        gaps.append((label, gap / BYTES_PER_GB))
    for label, gap_gb in gaps:
        result.note(
            f"churn={label}: omniscient discovery overstates P2P origin "
            f"savings by {gap_gb:.2f} GB vs gossip"
            + ("" if gap_gb >= 0 else " (gossip saved MORE — investigate)")
        )
    return result
