"""Experiment P2P: what the third registry tier buys at the edge.

Compares three deployments of the same layer-sharing pull workload on
a swarm of edge devices:

* ``hub-only``    — every layer comes from Docker Hub (tier 1),
* ``hybrid``      — the paper's design: regional registry first, hub
  fallback (tiers 1–2),
* ``hybrid+p2p``  — the full stack: peers serve cached layers over the
  LAN, the adaptive replicator spreads hot layers into
  under-provisioned regions, registries only fill misses (tiers 1–3).

The workload is deliberately layer-sharing: images are built on common
bases (``python:3.9-slim`` et al.), and demand is Zipf-skewed so a few
hot images dominate — the regime where EdgePier-style peer
distribution pays off.  The headline metric is *origin traffic*: bytes
pulled from hub + regional.  The P2P tier strictly lowers it because
every layer already cached anywhere in a region can be served locally.

Every experiment here is driven by the declarative scenario API
(:mod:`repro.scenarios`): a frozen :class:`ScenarioSpec` per
configuration, variants derived with :func:`dataclasses.replace`, and
one :class:`SimulationSession` per run.  The historical ``run_mode``
entry point survives as a thin deprecated shim over that API; its
sixteen keywords map 1:1 onto spec sections.

Two transfer models are supported (see
:class:`~repro.sim.transfers.TransferModel`): the default ``ANALYTIC``
mode keeps the paper's instant-admission accounting (every transfer an
isolated ``size/BW`` sleep, layers visible to peers at pull *start*),
while ``TIME_RESOLVED`` drives every pull through the shared-bandwidth
:class:`~repro.sim.transfers.TransferEngine` with reserve→commit cache
admission — overlapping pulls contend for links and can only source
layers from peers whose copies have actually landed.
:func:`run_contended` quantifies the gap between the two on a
deliberately overlapping schedule.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..model.units import BYTES_PER_GB
from ..registry.chunks import DEFAULT_CHUNK_SIZE_BYTES
from ..sim.churn import ChurnConfig
from ..sim.rng import DEFAULT_SEED
from ..sim.transfers import TransferModel
from .. import scenarios
from ..scenarios import (
    DISCOVERY_BACKENDS,
    MODES,
    ChunkSpec,
    ChurnSpec,
    DiscoverySpec,
    ModeOutcome,
    ReplicationSpec,
    ScenarioSpec,
    SimulationSession,
    SwarmDevice,
    SwarmScenario,
    TopologySpec,
    TransferSpec,
    WorkloadSpec,
    build_swarm_scenario,
)
from .runner import ExperimentResult

__all__ = [
    "MODES",
    "DISCOVERY_BACKENDS",
    "CHURN_REGIMES",
    "CHUNKED_CHURN_REGIMES",
    "ModeOutcome",
    "SwarmDevice",
    "SwarmScenario",
    "build_scenario",
    "build_contended_scenario",
    "run_mode",
    "run",
    "run_contended",
    "run_gossip",
    "run_chunked",
]


def build_scenario(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    cache_gb: float = 12.0,
    horizon_s: float = 3600.0,
    seed: int = DEFAULT_SEED,
) -> SwarmScenario:
    """A deterministic layer-sharing workload on an ``n_devices`` swarm.

    Legacy-signature wrapper over
    :func:`repro.scenarios.build_swarm_scenario`; see
    :class:`~repro.scenarios.TopologySpec` /
    :class:`~repro.scenarios.WorkloadSpec` for the declarative form.
    """
    spec = ScenarioSpec(
        topology=TopologySpec(
            n_devices=n_devices, n_regions=n_regions, cache_gb=cache_gb
        ),
        workload=WorkloadSpec(
            kind="zipf",
            n_images=n_images,
            pulls_per_device=pulls_per_device,
            horizon_s=horizon_s,
        ),
        seed=seed,
    )
    return build_swarm_scenario(spec)


def _contended_base(
    n_devices: int,
    n_regions: int,
    stagger_s: float,
    seed: int,
    cache_gb: float = 12.0,
) -> ScenarioSpec:
    """The ``p2p-contended`` preset resized — the single source of the
    contended topology/cold-wave shape (NIC and egress shaping live in
    the preset, never re-inlined here)."""
    preset = scenarios.get("p2p-contended")
    return replace(
        preset,
        topology=replace(
            preset.topology,
            n_devices=n_devices,
            n_regions=n_regions,
            cache_gb=cache_gb,
        ),
        workload=replace(preset.workload, stagger_s=stagger_s),
        seed=seed,
    )


def build_contended_scenario(
    n_devices: int = 8,
    n_regions: int = 2,
    cache_gb: float = 12.0,
    stagger_s: float = 1.0,
    seed: int = DEFAULT_SEED,
) -> SwarmScenario:
    """A worst-case-overlap schedule: every device pulls the *same*
    image almost simultaneously (``stagger_s`` apart), twice.

    Each wave is where the models diverge: analytic admission
    publishes the first puller's layers at pull start, so every
    follower plans a LAN peer fetch; time-resolved admission publishes
    nothing until a transfer actually completes, so the bulk of a wave
    goes to the origin and additionally contends for link capacity.
    The second wave pulls a *different* image (sharing a base with the
    first), so both waves are cold and the gap compounds.

    Devices also get shared NIC links (uplink/downlink) and the
    registries shared egress links, so time-resolved transfers contend
    at the endpoints, not just on individual channels.
    """
    return build_swarm_scenario(
        _contended_base(n_devices, n_regions, stagger_s, seed, cache_gb)
    )


def run_mode(
    scenario: SwarmScenario,
    mode: str,
    replicator_interval_s: float = 120.0,
    replicator_hot_threshold: float = 3.0,
    replicator_target_replicas: int = 2,
    transfer_model: TransferModel = TransferModel.ANALYTIC,
    upload_budget: Optional[int] = None,
    discovery: str = "omniscient",
    gossip_fanout: int = 2,
    gossip_period_s: float = 60.0,
    gossip_view_cap: int = 8,
    churn: Optional[ChurnConfig] = None,
    chunked: bool = False,
    chunk_size_bytes: int = DEFAULT_CHUNK_SIZE_BYTES,
    chunk_parallel: int = 4,
    replicator_churn_aware: bool = False,
) -> ModeOutcome:
    """Execute the scenario's pull schedule under one tier configuration.

    .. deprecated::
        ``run_mode`` is a compatibility shim: its sixteen keywords are
        translated into a :class:`~repro.scenarios.ScenarioSpec` and
        run through :class:`~repro.scenarios.SimulationSession`.  New
        code should build specs directly (or start from a preset via
        :func:`repro.scenarios.get`) — specs validate cross-field
        rules at construction, serialise, and compose.

    Legacy keyword semantics are preserved exactly: gossip knobs are
    ignored unless ``discovery="gossip"``, ``upload_budget`` is
    ignored under the analytic model, and
    ``replicator_churn_aware=True`` without a ``churn`` config is a
    no-op.
    """
    warnings.warn(
        "run_mode(**kwargs) is deprecated; build a "
        "repro.scenarios.ScenarioSpec and use SimulationSession instead",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = _legacy_spec(
        scenario=scenario,
        mode=mode,
        replicator_interval_s=replicator_interval_s,
        replicator_hot_threshold=replicator_hot_threshold,
        replicator_target_replicas=replicator_target_replicas,
        transfer_model=transfer_model,
        upload_budget=upload_budget,
        discovery=discovery,
        gossip_fanout=gossip_fanout,
        gossip_period_s=gossip_period_s,
        gossip_view_cap=gossip_view_cap,
        churn=churn,
        chunked=chunked,
        chunk_size_bytes=chunk_size_bytes,
        chunk_parallel=chunk_parallel,
        replicator_churn_aware=replicator_churn_aware,
    )
    return SimulationSession(spec, scenario=scenario).run()


def _legacy_spec(
    scenario: SwarmScenario,
    mode: str,
    replicator_interval_s: float,
    replicator_hot_threshold: float,
    replicator_target_replicas: int,
    transfer_model: TransferModel,
    upload_budget: Optional[int],
    discovery: str,
    gossip_fanout: int,
    gossip_period_s: float,
    gossip_view_cap: int,
    churn: Optional[ChurnConfig],
    chunked: bool,
    chunk_size_bytes: int,
    chunk_parallel: int,
    replicator_churn_aware: bool,
) -> ScenarioSpec:
    """Map the historical ``run_mode`` keywords onto a spec.

    The spec's topology/workload sections are placeholders — the
    caller's pre-built ``scenario`` supersedes them (see
    :class:`SimulationSession`) — but every run-affecting keyword maps
    onto its validated section.
    """
    time_resolved = transfer_model is TransferModel.TIME_RESOLVED
    if discovery == "gossip":
        discovery_spec = DiscoverySpec(
            backend="gossip",
            gossip_fanout=gossip_fanout,
            gossip_period_s=gossip_period_s,
            gossip_view_cap=gossip_view_cap,
        )
    else:
        # Legacy calls always carried (default) gossip knobs; they were
        # ignored without the gossip backend, and still are.
        discovery_spec = DiscoverySpec(backend=discovery)
    return ScenarioSpec(
        mode=mode,
        transfer=TransferSpec(
            model=transfer_model,
            # Ignored by the analytic model, exactly as before.
            upload_budget=upload_budget if time_resolved else None,
        ),
        discovery=discovery_spec,
        churn=None if churn is None else ChurnSpec.from_config(churn),
        replication=ReplicationSpec(
            interval_s=replicator_interval_s,
            hot_threshold=replicator_hot_threshold,
            target_replicas=replicator_target_replicas,
            # Legacy quietly no-op'd churn awareness without churn.
            churn_aware=replicator_churn_aware and churn is not None,
        ),
        chunks=ChunkSpec(
            enabled=chunked,
            size_bytes=chunk_size_bytes,
            parallel=chunk_parallel,
        ),
        seed=scenario.seed,
    )


def run(
    n_devices: int = 12,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """The three-tier comparison as a standard experiment table.

    The base configuration is the ``p2p`` preset resized — preset and
    experiment cannot drift apart.
    """
    preset = scenarios.get("p2p")
    base = replace(
        preset,
        topology=replace(
            preset.topology, n_devices=n_devices, n_regions=n_regions
        ),
        workload=replace(
            preset.workload,
            n_images=n_images,
            pulls_per_device=pulls_per_device,
        ),
        seed=seed,
    )
    # One scenario shared by every mode: registry blob content is
    # immutable, so byte counts stay directly comparable.
    scenario = build_swarm_scenario(base)
    result = ExperimentResult(
        experiment_id="p2p",
        title=(
            f"P2P tier: origin traffic on a {n_devices}-device "
            f"layer-sharing swarm [GB]"
        ),
        columns=[
            "mode",
            "pulls",
            "hit_ratio",
            "hub_gb",
            "regional_gb",
            "peer_gb",
            "origin_gb",
            "transfer_s",
        ],
    )
    outcomes: Dict[str, ModeOutcome] = {}
    for mode in MODES:
        outcome = SimulationSession(
            replace(base, mode=mode), scenario=scenario
        ).run()
        outcomes[mode] = outcome
        result.add_row(
            mode=mode,
            pulls=outcome.pulls,
            hit_ratio=outcome.hit_ratio,
            hub_gb=outcome.bytes_by_registry.get("docker-hub", 0) / BYTES_PER_GB,
            regional_gb=outcome.bytes_by_registry.get("regional", 0)
            / BYTES_PER_GB,
            peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
            / BYTES_PER_GB,
            origin_gb=outcome.origin_bytes / BYTES_PER_GB,
            transfer_s=outcome.transfer_s,
        )
    saved = outcomes["hybrid"].origin_bytes - outcomes["hybrid+p2p"].origin_bytes
    result.note(
        f"hybrid+p2p pulls {saved / BYTES_PER_GB:.2f} GB less from "
        f"hub+regional than plain hybrid"
        + (" (P2P tier offloads the origin)" if saved > 0 else " — NO SAVING")
    )
    replicator = outcomes["hybrid+p2p"].replicator
    if replicator is not None:
        result.note(
            f"adaptive replicator: {replicator.total_actions()} proactive "
            f"copies ({replicator.bytes_replicated / BYTES_PER_GB:.2f} GB), "
            f"converged={replicator.converged()}"
        )
    return result


# ----------------------------------------------------------------------
# contended overlap: analytic vs time-resolved
# ----------------------------------------------------------------------
def run_contended(
    n_devices: int = 8,
    n_regions: int = 2,
    upload_budget: int = 2,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify the analytic-vs-time-resolved gap under overlap.

    Runs the contended-overlap scenario in ``hybrid`` (baseline, no
    peers) and ``hybrid+p2p`` under both transfer models.  The headline
    is the *origin-traffic saving* of the P2P tier: analytic admission
    overstates it because followers fetch from in-flight copies that a
    real swarm could not have served yet.
    """
    result = ExperimentResult(
        experiment_id="p2p-contended",
        title=(
            f"P2P savings under overlapping pulls: analytic vs "
            f"time-resolved transfers ({n_devices} devices) [GB]"
        ),
        columns=[
            "model",
            "pulls",
            "hybrid_origin_gb",
            "p2p_origin_gb",
            "saved_gb",
            "saved_pct",
            "peer_gb",
            "transfer_s",
        ],
    )
    savings: Dict[TransferModel, int] = {}
    for model in (TransferModel.ANALYTIC, TransferModel.TIME_RESOLVED):
        base = replace(
            _contended_base(n_devices, n_regions, 1.0, seed),
            transfer=TransferSpec(
                model=model,
                # The analytic model has no engine to budget uploads.
                upload_budget=(
                    upload_budget
                    if model is TransferModel.TIME_RESOLVED
                    else None
                ),
            ),
        )
        scenario = build_swarm_scenario(base)
        hybrid = SimulationSession(
            replace(base, mode="hybrid"), scenario=scenario
        ).run()
        p2p = SimulationSession(base, scenario=scenario).run()
        saved = hybrid.origin_bytes - p2p.origin_bytes
        savings[model] = saved
        for outcome in (hybrid, p2p):
            if outcome.unfinished_pulls:
                result.note(
                    f"WARNING: {outcome.unfinished_pulls} pull(s) of the "
                    f"{model.value} {outcome.mode} run did not finish by "
                    f"the horizon — its byte counters under-report"
                )
        result.add_row(
            model=model.value,
            pulls=p2p.pulls,
            hybrid_origin_gb=hybrid.origin_bytes / BYTES_PER_GB,
            p2p_origin_gb=p2p.origin_bytes / BYTES_PER_GB,
            saved_gb=saved / BYTES_PER_GB,
            saved_pct=(
                100.0 * saved / hybrid.origin_bytes if hybrid.origin_bytes else 0.0
            ),
            peer_gb=(p2p.bytes_from_peers + p2p.bytes_replicated) / BYTES_PER_GB,
            transfer_s=p2p.transfer_s,
        )
    gap = savings[TransferModel.ANALYTIC] - savings[TransferModel.TIME_RESOLVED]
    result.note(
        f"analytic admission overstates P2P origin savings by "
        f"{gap / BYTES_PER_GB:.2f} GB under this overlap "
        f"({'time-resolved is strictly lower' if gap > 0 else 'NO GAP'})"
    )
    return result


# ----------------------------------------------------------------------
# chunked multi-source pulls: single-source vs swarm scheduling
# ----------------------------------------------------------------------

#: (label, wave stagger seconds, churn config) regimes the chunked
#: experiment sweeps.  "cold-wave" is the pure simultaneous cold start
#: (no churn): the makespan axis.  "seeder-flaky" staggers arrivals so
#: early finishers seed later ones, then churns devices fast enough
#: that seeders routinely depart *mid-upload*: the restart-waste axis —
#: a single-source pull loses the whole layer's delivered bytes, a
#: chunked pull only the chunk in flight.
CHUNKED_CHURN_REGIMES: Tuple[Tuple[str, float, Optional[ChurnSpec]], ...] = (
    ("cold-wave", 1.0, None),
    ("seeder-flaky", 10.0, ChurnSpec(mean_uptime_s=25.0,
                                     mean_downtime_s=100.0,
                                     min_online=2)),
)


def run_chunked(
    n_devices: int = 8,
    n_regions: int = 2,
    upload_budget: int = 2,
    chunk_size_bytes: int = 16_000_000,
    chunk_parallel: int = 4,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify what chunked multi-source transfers buy on a cold wave.

    Runs the contended-overlap scenario (every device pulls the same
    image nearly simultaneously, twice) through the time-resolved
    engine in ``hybrid+p2p`` mode, once with the single-source
    per-layer planner and once with the chunked swarm planner, under
    each churn regime.  The headline is the **cold-start makespan**:
    with single sources the first wave serialises behind the origin
    and whichever seeders commit first, while chunked pulls spread
    rarest-first chunk requests over every full *and partial* holder —
    devices seed chunks they have barely finished receiving.  Under
    churn the second axis appears: a departing seeder costs a
    single-source pull the whole layer's progress (``bytes_wasted``)
    but a chunked pull only the chunk in flight.
    """
    result = ExperimentResult(
        experiment_id="p2p-chunked",
        title=(
            f"Chunked multi-source pulls on a contended cold wave "
            f"({n_devices} devices, {chunk_size_bytes // 1_000_000} MB "
            f"chunks, window {chunk_parallel})"
        ),
        columns=[
            "churn",
            "planner",
            "pulls",
            "wave_makespan_s",
            "origin_gb",
            "peer_gb",
            "wasted_mb",
            "endgame_dupes",
            "stale_misses",
        ],
    )
    for label, stagger_s, churn_spec in CHUNKED_CHURN_REGIMES:
        outcomes: Dict[bool, ModeOutcome] = {}
        for chunked in (False, True):
            spec = replace(
                _contended_base(n_devices, n_regions, stagger_s, seed),
                transfer=TransferSpec(
                    model=TransferModel.TIME_RESOLVED,
                    upload_budget=upload_budget,
                ),
                churn=churn_spec,
                replication=ReplicationSpec(
                    churn_aware=(churn_spec is not None)
                ),
                chunks=ChunkSpec(
                    enabled=chunked,
                    size_bytes=chunk_size_bytes,
                    parallel=chunk_parallel,
                ),
            )
            outcome = SimulationSession(spec).run()
            outcomes[chunked] = outcome
            if outcome.unfinished_pulls:
                result.note(
                    f"WARNING: {outcome.unfinished_pulls} pull(s) of the "
                    f"churn={label} "
                    f"{'chunked' if chunked else 'single-source'} run did "
                    f"not finish by the horizon"
                )
            result.add_row(
                churn=label,
                planner="chunked" if chunked else "single-source",
                pulls=outcome.pulls,
                wave_makespan_s=outcome.longest_pull_s,
                origin_gb=outcome.origin_bytes / BYTES_PER_GB,
                peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
                / BYTES_PER_GB,
                wasted_mb=outcome.bytes_wasted / 1e6,
                endgame_dupes=outcome.chunk_endgame_dupes,
                stale_misses=outcome.stale_peer_misses,
            )
        single, chunked_out = outcomes[False], outcomes[True]
        if single.longest_pull_s > 0:
            gain = 100.0 * (
                1.0 - chunked_out.longest_pull_s / single.longest_pull_s
            )
            result.note(
                f"churn={label}: chunked cold-start wave makespan "
                f"{chunked_out.longest_pull_s:.1f} s vs single-source "
                f"{single.longest_pull_s:.1f} s ({gain:.1f}% faster)"
                + ("" if gain > 0 else " — NO REDUCTION")
            )
        if churn_spec is not None:
            result.note(
                f"churn={label}: restart waste {single.bytes_wasted / 1e6:.1f} "
                f"MB single-source vs {chunked_out.bytes_wasted / 1e6:.1f} MB "
                f"chunked"
                + (
                    " (chunking loses chunks, not layers)"
                    if chunked_out.bytes_wasted <= single.bytes_wasted
                    else " — chunking wasted MORE (investigate)"
                )
            )
    return result


# ----------------------------------------------------------------------
# discovery realism: omniscient vs gossip under churn
# ----------------------------------------------------------------------

#: (label, config) churn regimes the gossip experiment sweeps.  Uptime
#: and downtime means are chosen against the scenario's 3600 s horizon:
#: "moderate" churns a few devices per run (and IS the ``p2p-gossip``
#: preset's regime — the two cannot drift apart), "heavy" keeps a
#: sizeable fraction of the swarm cycling.
CHURN_REGIMES: Tuple[Tuple[str, Optional[ChurnSpec]], ...] = (
    ("none", None),
    ("moderate", scenarios.get("p2p-gossip").churn),
    ("heavy", ChurnSpec(mean_uptime_s=500.0, mean_downtime_s=300.0,
                        min_online=4)),
)


def run_gossip(
    n_devices: int = 16,
    n_images: int = 6,
    pulls_per_device: int = 4,
    n_regions: int = 3,
    gossip_fanout: int = 2,
    gossip_period_s: float = 60.0,
    seed: int = DEFAULT_SEED,
) -> ExperimentResult:
    """Quantify how much omniscient discovery overstates P2P savings.

    For each churn regime the hybrid baseline (no peers) runs once,
    then ``hybrid+p2p`` runs twice — with omniscient discovery (every
    device sees every committed replica instantly) and with gossip
    discovery (partial views lagging by up to a gossip period, stale
    entries metered and fallen back from).  The headline is the same
    shape PR 2 used for analytic admission: the *origin-traffic
    saving* each backend reports, and the gap between them.
    """
    result = ExperimentResult(
        experiment_id="p2p-gossip",
        title=(
            f"P2P savings by discovery backend under churn "
            f"({n_devices} devices, gossip fanout={gossip_fanout} "
            f"period={gossip_period_s:.0f}s) [GB]"
        ),
        columns=[
            "churn",
            "discovery",
            "pulls",
            "skipped",
            "origin_gb",
            "peer_gb",
            "stale_misses",
            "saved_gb",
            "saved_pct",
        ],
    )
    preset = scenarios.get("p2p-gossip")
    gaps: List[Tuple[str, float]] = []
    for label, churn_spec in CHURN_REGIMES:
        base = replace(
            preset,
            topology=replace(
                preset.topology, n_devices=n_devices, n_regions=n_regions
            ),
            workload=replace(
                preset.workload,
                n_images=n_images,
                pulls_per_device=pulls_per_device,
            ),
            discovery=DiscoverySpec(),  # backend swapped per run below
            churn=churn_spec,
            seed=seed,
        )
        scenario = build_swarm_scenario(base)
        hybrid = SimulationSession(
            replace(base, mode="hybrid"), scenario=scenario
        ).run()
        saved_by_backend: Dict[str, int] = {}
        for backend in DISCOVERY_BACKENDS:
            discovery = (
                replace(
                    preset.discovery,
                    gossip_fanout=gossip_fanout,
                    gossip_period_s=gossip_period_s,
                )
                if backend == "gossip"
                else DiscoverySpec()
            )
            outcome = SimulationSession(
                replace(base, discovery=discovery), scenario=scenario
            ).run()
            saved = hybrid.origin_bytes - outcome.origin_bytes
            saved_by_backend[backend] = saved
            result.add_row(
                churn=label,
                discovery=backend,
                pulls=outcome.pulls,
                skipped=outcome.skipped_pulls,
                origin_gb=outcome.origin_bytes / BYTES_PER_GB,
                peer_gb=(outcome.bytes_from_peers + outcome.bytes_replicated)
                / BYTES_PER_GB,
                stale_misses=outcome.stale_peer_misses,
                saved_gb=saved / BYTES_PER_GB,
                saved_pct=(
                    100.0 * saved / hybrid.origin_bytes
                    if hybrid.origin_bytes
                    else 0.0
                ),
            )
        gap = saved_by_backend["omniscient"] - saved_by_backend["gossip"]
        gaps.append((label, gap / BYTES_PER_GB))
    for label, gap_gb in gaps:
        result.note(
            f"churn={label}: omniscient discovery overstates P2P origin "
            f"savings by {gap_gb:.2f} GB vs gossip"
            + ("" if gap_gb >= 0 else " (gossip saved MORE — investigate)")
        )
    return result


# The CLI (and anything else enumerating runnable scenario families)
# derives its run list from this registry — a new experiment that
# registers here can never be silently dropped from `repro all`.
scenarios.attach_experiment("p2p", run)
scenarios.attach_experiment("p2p-contended", run_contended)
scenarios.attach_experiment("p2p-gossip", run_gossip)
scenarios.attach_experiment("p2p-chunked", run_chunked)
