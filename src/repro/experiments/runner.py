"""Experiment plumbing: result structures, rendering, and rollout glue.

Every experiment module returns an :class:`ExperimentResult` — a typed
table with an id tying it back to the paper (``table2``, ``fig3b``, …)
— so the CLI, the pytest suite, and EXPERIMENTS.md all consume the same
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.placement import PlacementPlan
from ..model.application import Application
from ..orchestrator.cluster import Cluster
from ..orchestrator.controller import (
    ApplicationController,
    ExecutionMode,
    ExecutionReport,
)
from ..registry.client import PullPolicy
from ..sim.transfers import TransferModel
from ..workloads.testbed import Testbed


def _json_safe(value: Any) -> Any:
    """Coerce row cells (numpy scalars, bools, strs) to JSON types."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    for caster in (int, float):
        try:
            cast = caster(value)
        except (TypeError, ValueError):
            continue
        if cast == value:
            return cast
    return str(value)


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns {missing}")
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-safe dict (the CLI's ``--json`` payload)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                {key: _json_safe(value) for key, value in row.items()}
                for row in self.rows
            ],
            "notes": list(self.notes),
        }

    def to_text(self) -> str:
        """Render as an aligned text table (the CLI output)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        headers = list(self.columns)
        body = [[fmt(row[c]) for c in headers] for row in self.rows]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"== {self.title} ({self.experiment_id}) ==",
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            sep,
        ]
        lines += [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        ]
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def make_cluster(
    testbed: Testbed,
    pull_policy: PullPolicy = PullPolicy.WHOLE_IMAGE,
    transfer_model: TransferModel = TransferModel.ANALYTIC,
) -> Cluster:
    """A fresh cluster wired to the testbed's devices and registries."""
    cluster = Cluster(
        pull_policy=pull_policy,
        intensity=testbed.env.intensity,
        transfer_model=transfer_model,
    )
    for device in testbed.devices():
        cluster.register_node(device, testbed.network)
    for registry in testbed.registries():
        cluster.register_registry(registry)
    return cluster


def deploy_and_run(
    testbed: Testbed,
    app: Application,
    plan: PlacementPlan,
    mode: ExecutionMode = ExecutionMode.SEQUENTIAL,
    pull_policy: PullPolicy = PullPolicy.WHOLE_IMAGE,
) -> ExecutionReport:
    """Execute ``plan`` on a fresh cluster (cold caches, t = 0)."""
    cluster = make_cluster(testbed, pull_policy)
    controller = ApplicationController(cluster)
    return controller.execute(app, plan, testbed.references, mode=mode)
