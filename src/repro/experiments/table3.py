"""Experiment E2: regenerate Table III (deployment distribution).

Runs DEEP on both case studies and reports the percentage of
microservices pulled from each registry onto each device, side by side
with the paper's published distribution.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.scheduler import DeepScheduler
from ..workloads.apps import both_applications
from ..workloads.table2 import TEXT, VIDEO
from ..workloads.testbed import HUB_NAME, REGIONAL_NAME, Testbed, build_testbed
from .runner import ExperimentResult

#: Table III verbatim: (application, device, registry) → percent.
PAPER_DISTRIBUTION: Dict[Tuple[str, str, str], float] = {
    (VIDEO, "medium", HUB_NAME): 83.0,
    (VIDEO, "small", REGIONAL_NAME): 17.0,
    (TEXT, "medium", HUB_NAME): 17.0,
    (TEXT, "medium", REGIONAL_NAME): 17.0,
    (TEXT, "small", REGIONAL_NAME): 66.0,
}

#: How far (in percentage points) a cell may deviate and still count as
#: a match.  Table III rounds 1/6 to 17 % and 4/6 to 66 %, so exact
#: reproduction differs by up to 0.7 pp from the printed value.
TOLERANCE_PP = 1.0


def run(testbed: Optional[Testbed] = None) -> ExperimentResult:
    """DEEP's (device, registry) distribution vs Table III."""
    tb = testbed or build_testbed()
    result = ExperimentResult(
        experiment_id="table3",
        title="Table III: distribution of image deployments (DEEP)",
        columns=[
            "application",
            "device",
            "registry",
            "deep_percent",
            "paper_percent",
            "match",
        ],
    )
    matches = 0
    checked = 0
    for app in both_applications(tb.calibration):
        schedule = DeepScheduler().schedule(app, tb.env)
        measured = schedule.plan.distribution_percent()
        cells = {
            (device, registry)
            for (device, registry) in measured
        } | {
            (device, registry)
            for (a, device, registry) in PAPER_DISTRIBUTION
            if a == app.name
        }
        for device, registry in sorted(cells):
            deep_pct = measured.get((device, registry), 0.0)
            paper_pct = PAPER_DISTRIBUTION.get((app.name, device, registry), 0.0)
            match = abs(deep_pct - paper_pct) <= TOLERANCE_PP
            matches += match
            checked += 1
            result.add_row(
                application=app.name,
                device=device,
                registry=registry,
                deep_percent=deep_pct,
                paper_percent=paper_pct,
                match=match,
            )
    result.note(
        f"{matches}/{checked} distribution cells match the paper within "
        f"{TOLERANCE_PP} pp (paper rounds sixths to whole percent)."
    )
    return result
