"""Experiment E5 (extension): cloud–edge scheduling.

The paper's future work: extend the energy-aware Nash model to
schedule between cloud and edge.  This experiment adds a cloud VM to
the calibrated testbed (fast, hub-adjacent, behind a WAN, with a
configurable attributed static power) and sweeps that static power,
reporting when DEEP offloads which services and what it buys.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.scheduler import DeepScheduler
from ..workloads.apps import both_applications
from ..workloads.cloud import CLOUD_NAME, cloud_environment, cloud_offload_report
from ..workloads.testbed import Testbed, build_testbed
from .runner import ExperimentResult

DEFAULT_GRID = [1.0, 5.0, 10.0, 15.0, 25.0, 40.0]


def run(
    testbed: Optional[Testbed] = None,
    static_watts_grid: Optional[List[float]] = None,
) -> ExperimentResult:
    """Offload crossover sweep for both applications."""
    tb = testbed or build_testbed()
    grid = static_watts_grid or DEFAULT_GRID
    result = ExperimentResult(
        experiment_id="cloud",
        title="E5 (extension): cloud-edge offloading vs attributed static power",
        columns=[
            "application",
            "cloud_static_w",
            "cloud_share",
            "energy_j",
            "edge_only_j",
            "saving_j",
        ],
    )
    for app in both_applications(tb.calibration):
        points = cloud_offload_report(tb, app, static_watts_grid=grid)
        for point in points:
            result.add_row(
                application=app.name,
                cloud_static_w=point.cloud_static_watts,
                cloud_share=point.cloud_share,
                energy_j=point.total_energy_j,
                edge_only_j=point.edge_only_energy_j,
                saving_j=point.edge_only_energy_j - point.total_energy_j,
            )
        offloading = [p for p in points if p.offloads]
        if offloading:
            result.note(
                f"{app.name}: offloads up to "
                f"{max(p.cloud_share for p in points):.0%} of services "
                f"while cloud static power <= "
                f"{max(p.cloud_static_watts for p in offloading):.0f} W"
            )
        else:
            result.note(f"{app.name}: never offloads on this grid")
    return result
