"""Experiment E4: regenerate Figure 3b (three deployment methods).

Figure 3b compares total energy of each application deployed three
ways: DEEP's hybrid, exclusively from the regional registry, and
exclusively from Docker Hub.  Paper headline numbers: DEEP reduces
video-processing energy by ≈0.2 % (≈14 J) against both alternatives and
text-processing energy by ≈0.34 % (≈18 J) against exclusively-hub.

The acceptance checks are the figure's *shape*: DEEP never loses, the
savings are sub-percent, and the regional registry is competitive with
the hub.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.baselines import FixedRegistryScheduler
from ..core.scheduler import DeepScheduler, SchedulerBase
from ..model.units import j_to_kj
from ..orchestrator.controller import ExecutionMode
from ..workloads.apps import both_applications
from ..workloads.table2 import TEXT, VIDEO
from ..workloads.testbed import HUB_NAME, REGIONAL_NAME, Testbed, build_testbed
from .runner import ExperimentResult, deploy_and_run

#: Paper-claimed savings of DEEP (application → (vs method, joules, %)).
PAPER_CLAIMS = {
    VIDEO: ("both", 14.0, 0.2),
    TEXT: (HUB_NAME, 18.0, 0.34),
}


def methods() -> List[SchedulerBase]:
    """The three deployment methods of Fig. 3b."""
    return [
        DeepScheduler(),
        FixedRegistryScheduler(REGIONAL_NAME),
        FixedRegistryScheduler(HUB_NAME),
    ]


def run(testbed: Optional[Testbed] = None) -> ExperimentResult:
    """Total energy per (application, method), measured end to end."""
    tb = testbed or build_testbed()
    result = ExperimentResult(
        experiment_id="fig3b",
        title="Figure 3b: energy of three deployment methods [kJ]",
        columns=["application", "method", "energy_kj", "delta_vs_deep_j"],
    )
    for app in both_applications(tb.calibration):
        energies: Dict[str, float] = {}
        for scheduler in methods():
            schedule = scheduler.schedule(app, tb.env)
            report = deploy_and_run(
                tb, app, schedule.plan, mode=ExecutionMode.SEQUENTIAL
            )
            energies[scheduler.name] = report.total_energy_j
        deep_j = energies["deep"]
        for method, energy_j in energies.items():
            result.add_row(
                application=app.name,
                method=method,
                energy_kj=j_to_kj(energy_j),
                delta_vs_deep_j=energy_j - deep_j,
            )
        hub_j = energies[f"exclusively-{HUB_NAME}"]
        regional_j = energies[f"exclusively-{REGIONAL_NAME}"]
        best_other = min(hub_j, regional_j)
        result.note(
            f"{app.name}: DEEP saves {hub_j - deep_j:+.1f} J "
            f"({100 * (hub_j - deep_j) / hub_j:+.2f}%) vs hub, "
            f"{regional_j - deep_j:+.1f} J "
            f"({100 * (regional_j - deep_j) / regional_j:+.2f}%) vs regional; "
            f"DEEP {'<=' if deep_j <= best_other + 1e-6 else '>'} best "
            f"exclusive method."
        )
    vs_method, joules, percent = PAPER_CLAIMS[TEXT]
    result.note(
        f"paper claims: video ≈14 J (0.2%) saved; text ≈{joules:.0f} J "
        f"({percent}%) saved vs exclusively Docker Hub."
    )
    return result
