"""Experiment E3: regenerate Figure 3a (energy per microservice).

Figure 3a plots the energy consumed by each microservice executed on
the edge device DEEP scheduled it to.  We run the DEEP plan through
the orchestrator and report per-service measured energy in kJ.  The
figure's qualitative claim — "HA and LA training microservices of both
applications consume more energy compared to other ones" — becomes the
experiment's acceptance check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.scheduler import DeepScheduler
from ..model.units import j_to_kj
from ..orchestrator.controller import ExecutionMode
from ..workloads.apps import both_applications
from ..workloads.testbed import Testbed, build_testbed
from .runner import ExperimentResult, deploy_and_run


def run(testbed: Optional[Testbed] = None) -> ExperimentResult:
    """Per-microservice energy under the DEEP schedule (Fig. 3a)."""
    tb = testbed or build_testbed()
    result = ExperimentResult(
        experiment_id="fig3a",
        title="Figure 3a: energy per microservice under DEEP [kJ]",
        columns=[
            "application",
            "service",
            "device",
            "registry",
            "energy_kj",
            "is_training",
        ],
    )
    trainings_dominate = True
    for app in both_applications(tb.calibration):
        schedule = DeepScheduler().schedule(app, tb.env)
        report = deploy_and_run(
            tb, app, schedule.plan, mode=ExecutionMode.SEQUENTIAL
        )
        energies: Dict[str, float] = {}
        for record in report.records:
            energies[record.service] = record.energy_j
            result.add_row(
                application=app.name,
                service=record.service,
                device=record.device,
                registry=record.registry,
                energy_kj=j_to_kj(record.energy_j),
                is_training="train" in record.service,
            )
        max_train = max(
            v for k, v in energies.items() if "train" in k
        )
        max_other = max(
            v for k, v in energies.items() if "train" not in k
        )
        if max_train <= max_other:
            trainings_dominate = False
    result.note(
        "training microservices dominate per-service energy: "
        + ("yes (matches the paper's Fig. 3a reading)" if trainings_dominate else "NO")
    )
    return result
