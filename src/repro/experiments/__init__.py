"""Experiments: one module per table/figure of the paper + ablations."""

from . import ablations, cloud, figure3a, figure3b, p2p, table2, table3
from .runner import ExperimentResult, deploy_and_run, make_cluster

__all__ = [
    "ExperimentResult",
    "ablations",
    "cloud",
    "deploy_and_run",
    "figure3a",
    "figure3b",
    "make_cluster",
    "p2p",
    "table2",
    "table3",
]
