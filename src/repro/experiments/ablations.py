"""Ablations A1–A4: probing the design choices behind DEEP's numbers.

* **A1 bandwidth sweep** — scale the regional registry's bandwidth and
  watch the hybrid split and the savings move: where does exclusive-
  regional overtake exclusive-hub, and how does DEEP track the winner?
* **A2 cache & layer dedup** — warm-cache re-deployments and the
  layered pull policy vs the paper's whole-image model: how many bytes
  does content addressing save on the real image structure?
* **A3 solver choice** — do the four Nash solvers agree on the plan,
  and what do their equilibrium counts look like?
* **A4 scaling** — synthetic DAGs × fleets: DEEP vs greedy energy gap
  and plan agreement at sizes the paper never measured.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.baselines import FixedRegistryScheduler, GreedyEnergyScheduler
from ..core.scheduler import DeepScheduler, NashSolver
from ..orchestrator.controller import ExecutionMode
from ..registry.client import PullPolicy
from ..sim.rng import default_registry
from ..workloads.apps import both_applications, video_processing
from ..workloads.calibration import CalibrationConfig, calibrate
from ..workloads.synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
)
from ..workloads.testbed import HUB_NAME, REGIONAL_NAME, Testbed, build_testbed
from .runner import ExperimentResult, deploy_and_run, make_cluster


def bandwidth_sweep(
    multipliers: Optional[List[float]] = None,
) -> ExperimentResult:
    """A1: regional bandwidth multiplier vs energy and regional share."""
    factors = multipliers or [0.6, 0.8, 0.9, 1.0, 1.1, 1.3, 1.6]
    result = ExperimentResult(
        experiment_id="ablation-bandwidth",
        title="A1: regional-registry bandwidth sweep (text processing)",
        columns=[
            "bw_multiplier",
            "deep_j",
            "hub_j",
            "regional_j",
            "deep_regional_share",
            "winner",
        ],
    )
    for factor in factors:
        base = CalibrationConfig()
        cfg = CalibrationConfig(
            regional_bw_mbps={
                d: bw * factor for d, bw in base.regional_bw_mbps.items()
            }
        )
        tb = build_testbed(calibrate(cfg))
        _, text = both_applications(tb.calibration)
        energies: Dict[str, float] = {}
        share = 0.0
        for scheduler in (
            DeepScheduler(),
            FixedRegistryScheduler(HUB_NAME),
            FixedRegistryScheduler(REGIONAL_NAME),
        ):
            schedule = scheduler.schedule(text, tb.env)
            energies[scheduler.name] = schedule.total_energy_j
            if scheduler.name == "deep":
                share = schedule.plan.registry_share(REGIONAL_NAME)
        hub_j = energies[f"exclusively-{HUB_NAME}"]
        regional_j = energies[f"exclusively-{REGIONAL_NAME}"]
        result.add_row(
            bw_multiplier=factor,
            deep_j=energies["deep"],
            hub_j=hub_j,
            regional_j=regional_j,
            deep_regional_share=share,
            winner="regional" if regional_j < hub_j else "hub",
        )
    result.note(
        "DEEP's regional share should rise with regional bandwidth and "
        "its energy should track min(hub, regional) throughout."
    )
    return result


def cache_and_dedup(testbed: Optional[Testbed] = None) -> ExperimentResult:
    """A2: warm-cache redeployment and layered-pull byte savings."""
    tb = testbed or build_testbed()
    app = video_processing(tb.calibration)
    plan = DeepScheduler().schedule(app, tb.env).plan
    result = ExperimentResult(
        experiment_id="ablation-cache",
        title="A2: image cache and layer dedup (video processing)",
        columns=["scenario", "bytes_pulled_gb", "energy_j", "makespan_s"],
    )

    # Cold then warm on the same cluster (paper model: whole image).
    cluster = make_cluster(tb, PullPolicy.WHOLE_IMAGE)
    from ..orchestrator.controller import ApplicationController

    controller = ApplicationController(cluster)
    cold = controller.execute(app, plan, tb.references)
    warm = controller.execute(app, plan, tb.references)
    for label, report in (("whole-image cold", cold), ("whole-image warm", warm)):
        pulled = sum(r.pull.bytes_transferred for r in report.records)
        result.add_row(
            scenario=label,
            bytes_pulled_gb=pulled / 1e9,
            energy_j=report.total_energy_j,
            makespan_s=report.makespan_s,
        )

    # Layered cold: shared base layers are transferred once per device.
    layered = deploy_and_run(
        tb, app, plan, mode=ExecutionMode.SEQUENTIAL,
        pull_policy=PullPolicy.LAYERED,
    )
    pulled = sum(r.pull.bytes_transferred for r in layered.records)
    result.add_row(
        scenario="layered cold",
        bytes_pulled_gb=pulled / 1e9,
        energy_j=layered.total_energy_j,
        makespan_s=layered.makespan_s,
    )
    cold_pulled = sum(r.pull.bytes_transferred for r in cold.records)
    result.note(
        f"layer dedup saves "
        f"{(cold_pulled - pulled) / 1e9:.2f} GB of the "
        f"{cold_pulled / 1e9:.2f} GB whole-image cold traffic; warm "
        f"redeployment pulls nothing."
    )
    return result


def solver_comparison(testbed: Optional[Testbed] = None) -> ExperimentResult:
    """A3: do all Nash solvers produce the same deployment?"""
    tb = testbed or build_testbed()
    result = ExperimentResult(
        experiment_id="ablation-solver",
        title="A3: Nash solver choice",
        columns=["application", "solver", "energy_j", "plan_equals_support"],
    )
    for app in both_applications(tb.calibration):
        reference = DeepScheduler(NashSolver.SUPPORT_ENUMERATION).schedule(
            app, tb.env
        )
        ref_assignments = {
            a.service: (a.registry, a.device) for a in reference.plan
        }
        for solver in NashSolver:
            schedule = DeepScheduler(solver).schedule(app, tb.env)
            same = {
                a.service: (a.registry, a.device) for a in schedule.plan
            } == ref_assignments
            result.add_row(
                application=app.name,
                solver=solver.value,
                energy_j=schedule.total_energy_j,
                plan_equals_support=same,
            )
    return result


def scaling(
    sizes: Optional[List[int]] = None,
) -> ExperimentResult:
    """A4: DEEP vs greedy on synthetic instances."""
    dims = sizes or [2, 4, 6, 8]
    rng = default_registry()
    result = ExperimentResult(
        experiment_id="ablation-scale",
        title="A4: scaling on synthetic DAGs / fleets",
        columns=[
            "devices",
            "services",
            "deep_j",
            "greedy_j",
            "deep_within_greedy",
        ],
    )
    for n_devices in dims:
        env = synthetic_environment(n_devices, rng)
        app = synthetic_application(
            f"synthetic-{n_devices}",
            SyntheticConfig(layers=4, width=max(2, n_devices // 2)),
            rng,
        )
        deep = DeepScheduler().schedule(app, env)
        greedy = GreedyEnergyScheduler().schedule(app, env)
        result.add_row(
            devices=n_devices,
            services=len(app),
            deep_j=deep.total_energy_j,
            greedy_j=greedy.total_energy_j,
            # DEEP pays at most its penalty-induced detours over greedy.
            deep_within_greedy=deep.total_energy_j <= greedy.total_energy_j * 1.05,
        )
    result.note(
        "greedy is the cooperative optimum of DEEP's game; DEEP should "
        "stay within its penalty margin of greedy at every size."
    )
    return result
