"""Experiment E1: regenerate Table II through the full simulator stack.

Each microservice is benchmarked exactly as the paper describes: it is
deployed from Docker Hub onto its benchmark device (cold cache) and
executed standalone with its calibrated input payload; ``Tp``/``CT``
come from the execution record and ``EC`` from the device's energy
meter (pyRAPL stand-in on medium, wall meter on small).  The regenerated
row is compared against the published min–max ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.placement import PlacementPlan
from ..model.application import Application, Microservice, ResourceRequirements
from ..orchestrator.controller import ExecutionMode
from ..workloads.calibration import Calibration
from ..workloads.table2 import ALL_ROWS, BenchmarkRow, logical_image
from ..workloads.testbed import HUB_NAME, Testbed, build_testbed
from .runner import ExperimentResult, deploy_and_run

#: Accepted relative slack around the published ranges (the simulator
#: is calibrated to midpoints; run-to-run jitter from the paper's
#: physical testbed is inside the ranges themselves).
DEFAULT_SLACK = 0.05


def standalone_app(cal: Calibration, name: str) -> Application:
    """A one-microservice application for a Table II benchmark run."""
    svc = cal.services[name]
    return Application(
        f"bench-{name}",
        [
            Microservice(
                name=svc.name,
                image=svc.name,
                size_gb=svc.size_gb,
                requirements=ResourceRequirements(cores=1, cpu_mi=svc.cpu_mi),
                ingress_mb=svc.input_mb,
                warm_fraction=svc.warm_fraction,
            )
        ],
    )


def benchmark_service(
    testbed: Testbed,
    name: str,
    device: str,
    registry: str = HUB_NAME,
) -> Tuple[float, float, float]:
    """(Tp, CT, EC-measured) of one standalone run on a fresh cluster."""
    app = standalone_app(testbed.calibration, name)
    plan = PlacementPlan(application=app.name)
    plan.assign(name, registry, device)
    report = deploy_and_run(testbed, app, plan, mode=ExecutionMode.SEQUENTIAL)
    record = report.records[0]
    measured = next(r for r in report.readings if r.device == device)
    return record.times.compute_s, record.completion_s, measured.measured_j


def run(testbed: Optional[Testbed] = None, slack: float = DEFAULT_SLACK) -> ExperimentResult:
    """Regenerate Table II and compare to the published ranges."""
    tb = testbed or build_testbed()
    cal = tb.calibration
    result = ExperimentResult(
        experiment_id="table2",
        title="Table II: microservice benchmarks (hub deployment)",
        columns=[
            "service",
            "size_gb",
            "device",
            "tp_s",
            "tp_paper",
            "ct_s",
            "ct_paper",
            "ec_j",
            "ec_paper",
            "in_range",
        ],
    )
    in_range = 0
    total = 0
    for row in ALL_ROWS:
        name = logical_image(row.application, row.service)
        bench_device = cal.config.bench_device[row.application]
        for device in ("medium", "small"):
            tp, ct, ec = benchmark_service(tb, name, device)
            # Tp/CT were published for the benchmark device only; EC
            # for both devices.
            checks = [row.ec_for(device).contains(ec, slack)]
            if device == bench_device:
                checks.append(row.tp_s.contains(tp, slack))
                checks.append(row.ct_s.contains(ct, slack))
            ok = all(checks)
            in_range += ok
            total += 1
            result.add_row(
                service=name,
                size_gb=row.size_gb,
                device=device,
                tp_s=tp,
                tp_paper=f"[{row.tp_s.lo},{row.tp_s.hi}]"
                if device == bench_device
                else "-",
                ct_s=ct,
                ct_paper=f"[{row.ct_s.lo},{row.ct_s.hi}]"
                if device == bench_device
                else "-",
                ec_j=ec,
                ec_paper=f"[{row.ec_for(device).lo},{row.ec_for(device).hi}]",
                in_range=ok,
            )
    result.note(
        f"{in_range}/{total} (service, device) cells inside published "
        f"ranges (slack {slack:.0%}); Tp/CT checked on each app's "
        f"benchmark device, EC on both."
    )
    return result
