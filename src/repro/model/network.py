"""Network model of Sec. III-B/C: bandwidth-only channels.

The paper models the network purely by bandwidth (RTT is explicitly
neglected).  Two kinds of channels exist:

* device ↔ device channels ``h_kj = BW_kj`` used by dataflow
  transmissions between upstage and downstage microservices, and
* registry → device channels ``BW_gj`` used by image deployments.

Transfers between microservices co-located on the same device never
touch the network and take zero time (loopback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .units import require_non_negative, require_positive, transfer_time_s


@dataclass(frozen=True)
class Channel:
    """A point-to-point channel with a bandwidth and optional RTT.

    Attributes
    ----------
    bandwidth_mbps:
        Channel bandwidth in Mbit/s.
    rtt_s:
        Round-trip time in seconds.  The paper neglects RTT; it is kept
        as an optional extension knob (default 0) and charged once per
        transfer when set.
    """

    bandwidth_mbps: float
    rtt_s: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.bandwidth_mbps, "bandwidth_mbps")
        require_non_negative(self.rtt_s, "rtt_s")

    def transfer_time_s(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` MB across this channel."""
        if size_mb == 0:
            return 0.0
        return self.rtt_s + transfer_time_s(size_mb, self.bandwidth_mbps)


#: Reserved channel name for external data ingress (camera feeds, S3
#: datasets).  Wired per device like a registry channel.
INGRESS = "__ingress__"

#: Shared empty in-neighbor set for devices nothing connects to.
_NO_NEIGHBOURS: frozenset = frozenset()

#: Shared empty channel row for devices nothing connects to.
_NO_CHANNELS: Dict[str, "Channel"] = {}

#: Shard label for links not owned by any single region: inter-region
#: channels, monolithic registry egress, and links between endpoints
#: whose region was never declared.  The sharded transfer engine keeps
#: one catch-all shard under this name.
TRUNK = "@trunk"


@dataclass(frozen=True)
class LinkSpec:
    """One shared link of a transfer path (name + capacity + shard).

    The time-resolved :class:`~repro.sim.transfers.TransferEngine`
    materialises these into live :class:`~repro.sim.transfers.Link`
    objects; the analytic path never looks at them.  ``shard`` names
    the region that owns the link for per-shard recompute scheduling
    (:data:`TRUNK` when no single region does).
    """

    name: str
    capacity_mbps: float
    shard: str = TRUNK


class NetworkModel:
    """Bandwidth matrix over devices and registries.

    Channels are stored directionally; :meth:`connect_devices` installs
    both directions at once (the common symmetric case).  Lookups for
    missing channels raise ``KeyError`` — a missing channel is a
    topology bug, not a zero-bandwidth link.
    """

    def __init__(self) -> None:
        self._device_channels: Dict[Tuple[str, str], Channel] = {}
        self._registry_channels: Dict[Tuple[str, str], Channel] = {}
        self._uplinks: Dict[str, float] = {}
        self._downlinks: Dict[str, float] = {}
        # transfer_path results, keyed by (src, dst, src_is_registry).
        # The time-resolved engine calls transfer_path on every start
        # (and estimate), so at swarm scale the spec rebuild dominates;
        # any topology mutation clears the cache wholesale.
        self._path_cache: Dict[
            Tuple[str, str, bool], Tuple[List[LinkSpec], float]
        ] = {}
        # Devices with a channel *into* each device.  Peer selection
        # intersects holder sets against this (only an in-neighbor can
        # serve a transfer), which keeps lookups proportional to a
        # device's degree instead of a hot layer's holder count.
        self._in_neighbors: Dict[str, set] = {}
        # The same channels grouped per destination: source → Channel.
        # Candidate-source scans fetch the row once and probe it with
        # plain string keys instead of hashing a tuple per candidate.
        self._channels_into: Dict[str, Dict[str, Channel]] = {}
        # In-neighbors of each device in best-first order (bandwidth
        # descending, then name) — built lazily, dropped on mutation.
        self._pref_cache: Dict[str, Tuple[str, ...]] = {}
        # Region each endpoint belongs to, for link→shard
        # classification.  Unset endpoints classify onto the trunk.
        self._regions: Dict[str, str] = {}
        # Per-region egress slices of a registry uplink: endpoint →
        # region → capacity.  When present for the destination's
        # region, the slice replaces the monolithic uplink for that
        # path, so pulls from different regions never share a link.
        self._regional_uplinks: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def connect_devices(
        self,
        a: str,
        b: str,
        bandwidth_mbps: float,
        rtt_s: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Install a device↔device channel (both directions by default)."""
        if a == b:
            raise ValueError(f"loopback channel on {a!r} is implicit")
        channel = Channel(bandwidth_mbps, rtt_s)
        self._path_cache.clear()
        self._pref_cache.clear()
        self._device_channels[(a, b)] = channel
        self._in_neighbors.setdefault(b, set()).add(a)
        self._channels_into.setdefault(b, {})[a] = channel
        if symmetric:
            self._device_channels[(b, a)] = channel
            self._in_neighbors.setdefault(a, set()).add(b)
            self._channels_into.setdefault(a, {})[b] = channel

    def connect_device_mesh(
        self,
        names: Iterable[str],
        bandwidth_mbps: float,
        rtt_s: float = 0.0,
    ) -> None:
        """Fully connect ``names`` with symmetric channels.

        Convenience for P2P swarm topologies where every device in a
        region can serve layers to every other.  Existing channels
        between the named devices are overwritten.
        """
        members = list(names)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                self.connect_devices(a, b, bandwidth_mbps, rtt_s)

    def connect_registry(
        self,
        registry: str,
        device: str,
        bandwidth_mbps: float,
        rtt_s: float = 0.0,
    ) -> None:
        """Install a registry→device channel (``BW_gj``)."""
        self._path_cache.clear()
        self._registry_channels[(registry, device)] = Channel(bandwidth_mbps, rtt_s)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def device_channel(self, src: str, dst: str) -> Optional[Channel]:
        """Channel from ``src`` to ``dst``; ``None`` for loopback."""
        if src == dst:
            return None
        try:
            return self._device_channels[(src, dst)]
        except KeyError:
            raise KeyError(f"no channel between devices {src!r} and {dst!r}") from None

    def registry_channel(self, registry: str, device: str) -> Channel:
        """Channel from ``registry`` to ``device``."""
        try:
            return self._registry_channels[(registry, device)]
        except KeyError:
            raise KeyError(
                f"no channel from registry {registry!r} to device {device!r}"
            ) from None

    def has_registry_channel(self, registry: str, device: str) -> bool:
        return (registry, device) in self._registry_channels

    def has_device_channel(self, src: str, dst: str) -> bool:
        """Whether a (non-loopback) channel ``src → dst`` exists."""
        return (src, dst) in self._device_channels

    def device_channel_if_any(self, src: str, dst: str) -> Optional[Channel]:
        """The ``src → dst`` channel, or None when absent.

        The non-raising hot-path variant of :meth:`device_channel` for
        scans that probe many candidate sources per lookup.
        """
        return self._device_channels.get((src, dst))

    def channels_into(self, dst: str) -> Dict[str, Channel]:
        """Source → channel for every device channel into ``dst``.

        A *live* mapping maintained alongside the channel matrix —
        read-only for callers.  Source-selection scans fetch the row
        once and probe candidates with plain string keys.
        """
        return self._channels_into.get(dst, _NO_CHANNELS)

    def device_in_neighbors(self, dst: str) -> frozenset:
        """Devices with a channel into ``dst``.

        The returned set is a *live view* maintained alongside the
        channel matrix — callers must treat it as read-only.  Peer
        selection intersects candidate holders against it so a lookup
        costs the device's degree, not the holder count.
        """
        return self._in_neighbors.get(dst, _NO_NEIGHBOURS)

    def device_sources_by_preference(self, dst: str) -> Tuple[str, ...]:
        """In-neighbors of ``dst``, fastest first (ties by name).

        The order is exactly the total order peer selection minimises
        over — ``(-bandwidth, name)`` — so the best source among any
        candidate set is the *first* entry of this list contained in
        it.  Built lazily per device and invalidated by topology
        mutations; swarm-scale peer lookups walk it with O(1)
        membership probes instead of scanning every holder.
        """
        cached = self._pref_cache.get(dst)
        if cached is None:
            row = self._channels_into.get(dst, _NO_CHANNELS)
            cached = tuple(
                sorted(row, key=lambda src: (-row[src].bandwidth_mbps, src))
            )
            self._pref_cache[dst] = cached
        return cached

    def device_bandwidth_mbps(self, src: str, dst: str) -> float:
        """``BW_kj``; ``inf`` for loopback."""
        channel = self.device_channel(src, dst)
        return float("inf") if channel is None else channel.bandwidth_mbps

    def registry_bandwidth_mbps(self, registry: str, device: str) -> float:
        """``BW_gj``."""
        return self.registry_channel(registry, device).bandwidth_mbps

    # ------------------------------------------------------------------
    # transfer-time queries (the paper's Size/BW terms)
    # ------------------------------------------------------------------
    def dataflow_time_s(self, src: str, dst: str, size_mb: float) -> float:
        """Transmission time ``Tc`` for a dataflow of ``size_mb`` MB."""
        channel = self.device_channel(src, dst)
        if channel is None:  # co-located: no network involved
            return 0.0
        return channel.transfer_time_s(size_mb)

    def deployment_time_s(self, registry: str, device: str, size_gb: float) -> float:
        """Deployment time ``Td`` for an image of ``size_gb`` GB."""
        return self.registry_channel(registry, device).transfer_time_s(
            size_gb * 1000.0
        )

    # ------------------------------------------------------------------
    # shared links (the time-resolved transfer model)
    # ------------------------------------------------------------------
    def set_uplink(self, endpoint: str, capacity_mbps: float) -> None:
        """Give ``endpoint`` (device or registry) a shared egress link.

        Every transfer *sourced* at the endpoint crosses this link, so
        concurrent uploads share it — the seeder-side contention the
        analytic model cannot express.  Only the time-resolved
        :class:`~repro.sim.transfers.TransferEngine` consults it.
        """
        require_positive(capacity_mbps, "capacity_mbps")
        self._path_cache.clear()
        self._uplinks[endpoint] = capacity_mbps

    def set_downlink(self, endpoint: str, capacity_mbps: float) -> None:
        """Give ``endpoint`` a shared ingress link (NIC capacity)."""
        require_positive(capacity_mbps, "capacity_mbps")
        self._path_cache.clear()
        self._downlinks[endpoint] = capacity_mbps

    def uplink_mbps(self, endpoint: str) -> Optional[float]:
        return self._uplinks.get(endpoint)

    def downlink_mbps(self, endpoint: str) -> Optional[float]:
        return self._downlinks.get(endpoint)

    def set_region(self, endpoint: str, region: str) -> None:
        """Declare which region owns ``endpoint`` for shard labelling.

        Regions drive the ``shard`` field of the :class:`LinkSpec`\\ s
        :meth:`transfer_path` emits: an endpoint's up/down links belong
        to its region, an intra-region channel to the shared region,
        and everything else to :data:`TRUNK`.  Purely a scheduling
        label — capacities and path shapes are unaffected.
        """
        if not region:
            raise ValueError(f"empty region for endpoint {endpoint!r}")
        self._path_cache.clear()
        self._regions[endpoint] = region

    def region_of(self, endpoint: str) -> Optional[str]:
        """The declared region of ``endpoint``, or ``None``."""
        return self._regions.get(endpoint)

    def set_regional_uplink(
        self, endpoint: str, region: str, capacity_mbps: float
    ) -> None:
        """Give ``endpoint`` a per-region egress slice toward ``region``.

        Transfers sourced at the endpoint toward a destination in
        ``region`` cross ``up:{endpoint}@{region}`` (owned by that
        region's shard) instead of the monolithic ``up:{endpoint}``
        link.  This is the explicit trunk-slicing DEEP's regional
        registries imply: egress toward different regions no longer
        couples into one shared component.
        """
        require_positive(capacity_mbps, "capacity_mbps")
        if not region:
            raise ValueError(f"empty region for endpoint {endpoint!r}")
        self._path_cache.clear()
        self._regional_uplinks.setdefault(endpoint, {})[region] = capacity_mbps

    def regional_uplink_mbps(
        self, endpoint: str, region: Optional[str]
    ) -> Optional[float]:
        slices = self._regional_uplinks.get(endpoint)
        if slices is None or region is None:
            return None
        return slices.get(region)

    def _endpoint_shard(self, endpoint: str) -> str:
        """Shard owning ``endpoint``'s private links (trunk if unset)."""
        return self._regions.get(endpoint, TRUNK)

    def _channel_shard(self, src: str, dst: str, src_is_registry: bool) -> str:
        """Shard owning the ``src → dst`` point-to-point channel.

        Registry→device channels are private to the destination, so
        they belong to the destination's region.  Device channels
        belong to the common region when both ends share one, else to
        the trunk (cross-region peer traffic).
        """
        if src_is_registry:
            return self._regions.get(dst, TRUNK)
        src_region = self._regions.get(src)
        if src_region is not None and src_region == self._regions.get(dst):
            return src_region
        return TRUNK

    def transfer_path(
        self, src: str, dst: str, src_is_registry: bool = False
    ) -> Tuple[List[LinkSpec], float]:
        """Shared links a ``src → dst`` transfer occupies, plus latency.

        The path is source uplink (if configured) → the point-to-point
        channel (always, at its bandwidth) → destination downlink (if
        configured).  Loopback transfers occupy nothing.  The latency
        is the channel's RTT, charged once per transfer as in the
        analytic model.

        When the source has a regional uplink slice toward the
        destination's region (:meth:`set_regional_uplink`), that slice
        replaces the monolithic uplink for this path.  Every spec
        carries the shard that owns it (see :meth:`set_region`).
        """
        if not src_is_registry and src == dst:
            return [], 0.0
        key = (src, dst, src_is_registry)
        cached = self._path_cache.get(key)
        if cached is not None:
            specs, rtt_s = cached
            return list(specs), rtt_s
        if src_is_registry:
            channel = self.registry_channel(src, dst)
        else:
            chan = self.device_channel(src, dst)
            assert chan is not None  # loopback handled above
            channel = chan
        specs: List[LinkSpec] = []
        dst_region = self._regions.get(dst)
        regional_up = self.regional_uplink_mbps(src, dst_region)
        if regional_up is not None:
            specs.append(
                LinkSpec(f"up:{src}@{dst_region}", regional_up, dst_region)
            )
        else:
            up = self._uplinks.get(src)
            if up is not None:
                specs.append(
                    LinkSpec(f"up:{src}", up, self._endpoint_shard(src))
                )
        specs.append(LinkSpec(
            f"chan:{src}->{dst}",
            channel.bandwidth_mbps,
            self._channel_shard(src, dst, src_is_registry),
        ))
        down = self._downlinks.get(dst)
        if down is not None:
            specs.append(
                LinkSpec(f"down:{dst}", down, self._endpoint_shard(dst))
            )
        self._path_cache[key] = (specs, channel.rtt_s)
        return list(specs), channel.rtt_s

    # ------------------------------------------------------------------
    # external ingress (camera feeds, S3 datasets)
    # ------------------------------------------------------------------
    def connect_ingress(
        self, device: str, bandwidth_mbps: float, rtt_s: float = 0.0
    ) -> None:
        """Install the external-ingress channel for ``device``."""
        self.connect_registry(INGRESS, device, bandwidth_mbps, rtt_s)

    def ingress_time_s(self, device: str, size_mb: float) -> float:
        """Transfer time of ``size_mb`` of external input into ``device``."""
        if size_mb == 0:
            return 0.0
        return self.registry_channel(INGRESS, device).transfer_time_s(size_mb)

    def registries_reaching(self, device: str) -> list:
        """Names of registries with a channel to ``device``."""
        return [r for (r, d) in self._registry_channels if d == device]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkModel(device_channels={len(self._device_channels)}, "
            f"registry_channels={len(self._registry_channels)})"
        )
