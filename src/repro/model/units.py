"""Unit conventions and conversion helpers for the DEEP model.

The paper (Sec. III) mixes units freely: image sizes in **GB**, dataflow
sizes in **MB**, processing loads in **MI** (millions of instructions),
device speeds in **MI/s**, bandwidths implicitly in bits per second, and
energy in **J**.  This module pins down one convention for the whole
library so that no other module ever multiplies by a magic constant:

========================  =======================================
quantity                  unit
========================  =======================================
image size                gigabytes (GB, decimal: 1 GB = 1000 MB)
dataflow size             megabytes (MB)
processing load           millions of instructions (MI)
device speed              MI per second (MI/s)
bandwidth                 megabits per second (Mbit/s)
time                      seconds (s)
power                     watts (W)
energy                    joules (J)
========================  =======================================

All converters are plain functions (no unit objects) so hot loops in the
simulator stay allocation-free, following the HPC guideline of keeping
the inner kernels simple and vectorisable.
"""

from __future__ import annotations

import math

#: Megabytes per gigabyte (decimal convention, as used by Docker image
#: sizes and the paper's Table II).
MB_PER_GB: float = 1000.0

#: Bits per byte.
BITS_PER_BYTE: float = 8.0

#: Megabits per megabyte.
MBIT_PER_MB: float = 8.0

#: Megabits per gigabyte.
MBIT_PER_GB: float = MB_PER_GB * MBIT_PER_MB

#: Joules per kilojoule (Figure 3 of the paper reports kJ).
J_PER_KJ: float = 1000.0

#: Bytes per megabyte (decimal).
BYTES_PER_MB: int = 1_000_000

#: Bytes per gigabyte (decimal).
BYTES_PER_GB: int = 1_000_000_000


def gb_to_mb(size_gb: float) -> float:
    """Convert gigabytes to megabytes."""
    return size_gb * MB_PER_GB


def mb_to_gb(size_mb: float) -> float:
    """Convert megabytes to gigabytes."""
    return size_mb / MB_PER_GB


def gb_to_bytes(size_gb: float) -> int:
    """Convert gigabytes to whole bytes (rounded to nearest byte)."""
    return int(round(size_gb * BYTES_PER_GB))


def bytes_to_gb(size_bytes: int) -> float:
    """Convert bytes to gigabytes."""
    return size_bytes / BYTES_PER_GB


def mb_to_bytes(size_mb: float) -> int:
    """Convert megabytes to whole bytes (rounded to nearest byte)."""
    return int(round(size_mb * BYTES_PER_MB))


def bytes_to_mb(size_bytes: int) -> float:
    """Convert bytes to megabytes."""
    return size_bytes / BYTES_PER_MB


def transfer_time_s(size_mb: float, bandwidth_mbps: float) -> float:
    """Time to push ``size_mb`` megabytes through ``bandwidth_mbps``.

    This is the paper's ``Size / BW`` term.  A zero-sized transfer takes
    zero time regardless of bandwidth; transferring anything over a zero
    or negative bandwidth is undefined and raises.

    Parameters
    ----------
    size_mb:
        Payload size in megabytes.  Must be non-negative.
    bandwidth_mbps:
        Channel bandwidth in megabits per second.  Must be positive
        unless the payload is zero.

    Returns
    -------
    float
        Transfer time in seconds.
    """
    if size_mb < 0:
        raise ValueError(f"negative transfer size: {size_mb} MB")
    if size_mb == 0:
        return 0.0
    if bandwidth_mbps <= 0:
        raise ValueError(
            f"cannot transfer {size_mb} MB over bandwidth {bandwidth_mbps} Mbit/s"
        )
    return size_mb * MBIT_PER_MB / bandwidth_mbps


def transfer_time_gb_s(size_gb: float, bandwidth_mbps: float) -> float:
    """Time in seconds to transfer ``size_gb`` gigabytes (image pulls)."""
    return transfer_time_s(gb_to_mb(size_gb), bandwidth_mbps)


def processing_time_s(load_mi: float, speed_mips: float) -> float:
    """The paper's ``CPU(m_i) / CPU_j`` term.

    Parameters
    ----------
    load_mi:
        Processing load in millions of instructions.  Non-negative.
    speed_mips:
        Device speed in MI/s.  Must be positive unless load is zero.
    """
    if load_mi < 0:
        raise ValueError(f"negative processing load: {load_mi} MI")
    if load_mi == 0:
        return 0.0
    if speed_mips <= 0:
        raise ValueError(f"cannot process {load_mi} MI at {speed_mips} MI/s")
    return load_mi / speed_mips


def energy_j(power_w: float, duration_s: float) -> float:
    """Energy of holding ``power_w`` for ``duration_s`` (E = P·t)."""
    if duration_s < 0:
        raise ValueError(f"negative duration: {duration_s} s")
    if power_w < 0:
        raise ValueError(f"negative power: {power_w} W")
    return power_w * duration_s


def j_to_kj(energy_joules: float) -> float:
    """Convert joules to kilojoules (Figure 3 axis units)."""
    return energy_joules / J_PER_KJ


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, strictly positive number."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is a finite, non-negative number."""
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return float(value)
