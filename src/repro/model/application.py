"""Application model: the dataflow DAG ``A = (M, E)`` of Sec. III-A.

An :class:`Application` is a directed acyclic graph whose nodes are
:class:`Microservice` objects (containerised, with an image size and a
resource-requirement tuple) and whose edges are :class:`Dataflow`
objects carrying a payload size in MB from an *upstage* microservice to
a *downstage* one.

The paper's applications each contain two *synchronisation barriers*:
a downstage microservice may only start once all of its upstage
dependencies have finished.  We expose those barriers as
:meth:`Application.stages` — the topological generations of the DAG.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .units import require_non_negative, require_positive


@dataclass(frozen=True)
class ResourceRequirements:
    """The paper's ``req(m_i) = ⟨CORE, CPU, MEM, STOR⟩`` tuple.

    Attributes
    ----------
    cores:
        Minimum number of CPU cores the microservice needs.
    cpu_mi:
        Processing load in millions of instructions (MI) required to
        process the microservice's input dataflows.
    memory_gb:
        Minimum memory in GB.
    storage_gb:
        Minimum *scratch* storage in GB (the container image size is
        accounted separately via :attr:`Microservice.size_gb`).
    """

    cores: int = 1
    cpu_mi: float = 0.0
    memory_gb: float = 0.0
    storage_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        require_non_negative(self.cpu_mi, "cpu_mi")
        require_non_negative(self.memory_gb, "memory_gb")
        require_non_negative(self.storage_gb, "storage_gb")

    def scaled(self, cpu_factor: float) -> "ResourceRequirements":
        """Return a copy with the CPU load scaled by ``cpu_factor``."""
        require_positive(cpu_factor, "cpu_factor")
        return ResourceRequirements(
            cores=self.cores,
            cpu_mi=self.cpu_mi * cpu_factor,
            memory_gb=self.memory_gb,
            storage_gb=self.storage_gb,
        )


@dataclass(frozen=True)
class Microservice:
    """A containerised microservice ``(m_i, Size_mi)``.

    Attributes
    ----------
    name:
        Unique name within the application (e.g. ``"ha-train"``).
    image:
        Repository name of the container image (e.g. ``"vp-ha-train"``).
        Registries map this to concrete references such as
        ``sina88/vp-ha-train`` (Docker Hub) or
        ``dcloud2.itec.aau.at/aau/vp-ha-train`` (regional) — Table I.
    size_gb:
        Containerised image size in GB (``Size_mi``).
    requirements:
        Resource requirements ``req(m_i)``.
    ingress_mb:
        External input payload in MB fetched from outside the DAG
        (e.g. the camera stream feeding *transcode* or the S3-hosted
        Amazon-reviews dataset feeding *retrieve* in the paper's case
        studies).  Charged as transmission time over the ingress
        channel; zero for microservices fed solely by upstage flows.
    warm_fraction:
        Fraction of the image's bytes shared with images assumed
        already resident on any device (common base layers — e.g. the
        HA/LA train/infer pairs share their ML base).  The paper's
        whole-image deployment model cannot express layer dedup, yet
        its Table II completion times for several services are shorter
        than a cold full-image pull allows; this factor is the
        calibrated whole-image approximation of that sharing.  A cold
        deployment transfers ``(1 − warm_fraction) × size_gb``.
    """

    name: str
    image: str
    size_gb: float
    requirements: ResourceRequirements = field(default_factory=ResourceRequirements)
    ingress_mb: float = 0.0
    warm_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("microservice name must be non-empty")
        if not self.image:
            raise ValueError(f"microservice {self.name!r}: image must be non-empty")
        require_non_negative(self.size_gb, "size_gb")
        require_non_negative(self.ingress_mb, "ingress_mb")
        if not 0.0 <= self.warm_fraction <= 1.0:
            raise ValueError(
                f"warm_fraction must be in [0, 1], got {self.warm_fraction}"
            )

    @property
    def cold_pull_gb(self) -> float:
        """Bytes (in GB) a cold deployment actually transfers."""
        return self.size_gb * (1.0 - self.warm_fraction)


@dataclass(frozen=True)
class Dataflow:
    """A dataflow edge ``df_ui`` from ``src`` (upstage) to ``dst``.

    Attributes
    ----------
    src, dst:
        Names of the upstage / downstage microservices.
    size_mb:
        Payload transferred along the edge, in MB (``Size_ui``).
    """

    src: str
    dst: str
    size_mb: float

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop dataflow on {self.src!r}")
        require_non_negative(self.size_mb, "size_mb")


class CycleError(ValueError):
    """Raised when an application graph contains a directed cycle."""


class Application:
    """A dataflow application: a DAG of microservices.

    Parameters
    ----------
    name:
        Application name (e.g. ``"video-processing"``).
    microservices:
        The node set.  Names must be unique.
    dataflows:
        The edge set.  Endpoints must name existing microservices;
        parallel edges between the same pair are rejected.

    The constructor validates acyclicity eagerly, so any constructed
    ``Application`` is guaranteed to be a DAG.
    """

    def __init__(
        self,
        name: str,
        microservices: Iterable[Microservice] = (),
        dataflows: Iterable[Dataflow] = (),
    ) -> None:
        if not name:
            raise ValueError("application name must be non-empty")
        self.name = name
        self._services: Dict[str, Microservice] = {}
        self._flows: Dict[Tuple[str, str], Dataflow] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        for ms in microservices:
            self.add_microservice(ms)
        for df in dataflows:
            self.add_dataflow(df)
        # Fail fast on cycles so downstream code can rely on DAG-ness.
        self.topological_order()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_microservice(self, ms: Microservice) -> None:
        """Add a node; rejects duplicate names."""
        if ms.name in self._services:
            raise ValueError(f"duplicate microservice {ms.name!r} in {self.name!r}")
        self._services[ms.name] = ms
        self._succ[ms.name] = []
        self._pred[ms.name] = []

    def add_dataflow(self, df: Dataflow) -> None:
        """Add an edge; endpoints must exist and the edge must be new.

        Raises :class:`CycleError` if the edge would create a cycle.
        """
        for endpoint in (df.src, df.dst):
            if endpoint not in self._services:
                raise KeyError(
                    f"dataflow endpoint {endpoint!r} not in application {self.name!r}"
                )
        key = (df.src, df.dst)
        if key in self._flows:
            raise ValueError(f"duplicate dataflow {df.src!r} -> {df.dst!r}")
        if self._reaches(df.dst, df.src):
            raise CycleError(
                f"dataflow {df.src!r} -> {df.dst!r} would create a cycle"
            )
        self._flows[key] = df
        self._succ[df.src].append(df.dst)
        self._pred[df.dst].append(df.src)

    def _reaches(self, start: str, goal: str) -> bool:
        """True if ``goal`` is reachable from ``start`` via existing edges."""
        if start == goal:
            return True
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def microservices(self) -> Mapping[str, Microservice]:
        """Read-only name → microservice mapping (``M``)."""
        return dict(self._services)

    @property
    def dataflows(self) -> Sequence[Dataflow]:
        """All dataflow edges (``E``), in insertion order."""
        return list(self._flows.values())

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, name: object) -> bool:
        return name in self._services

    def __iter__(self) -> Iterator[Microservice]:
        return iter(self._services.values())

    def service(self, name: str) -> Microservice:
        """Look up a microservice by name (KeyError if absent)."""
        return self._services[name]

    def flow(self, src: str, dst: str) -> Dataflow:
        """Look up the dataflow on edge ``src -> dst`` (KeyError if absent)."""
        return self._flows[(src, dst)]

    def predecessors(self, name: str) -> List[str]:
        """Upstage microservices of ``name`` (dependency order preserved)."""
        return list(self._pred[name])

    def successors(self, name: str) -> List[str]:
        """Downstage microservices of ``name``."""
        return list(self._succ[name])

    def in_flows(self, name: str) -> List[Dataflow]:
        """All dataflows entering ``name``."""
        return [self._flows[(p, name)] for p in self._pred[name]]

    def out_flows(self, name: str) -> List[Dataflow]:
        """All dataflows leaving ``name``."""
        return [self._flows[(name, s)] for s in self._succ[name]]

    def sources(self) -> List[str]:
        """Microservices with no upstage dependencies."""
        return [n for n in self._services if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Microservices with no downstage dependents."""
        return [n for n in self._services if not self._succ[n]]

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological sort; deterministic w.r.t. insertion order.

        Raises :class:`CycleError` on cyclic graphs (unreachable through
        the public API, kept as a defence for subclassing).
        """
        indeg = {n: len(self._pred[n]) for n in self._services}
        queue = deque(n for n in self._services if indeg[n] == 0)
        order: List[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self._services):
            raise CycleError(f"application {self.name!r} contains a cycle")
        return order

    def stages(self) -> List[List[str]]:
        """Topological generations — the synchronisation barriers.

        Stage *k* contains every microservice whose longest dependency
        chain has length *k*.  All members of a stage may execute
        concurrently; a barrier separates consecutive stages.  For the
        paper's two case studies this yields three stages separated by
        the two barriers described in Sec. IV-B.
        """
        level: Dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            level[node] = 1 + max((level[p] for p in preds), default=-1)
        n_stages = 1 + max(level.values(), default=-1)
        out: List[List[str]] = [[] for _ in range(n_stages)]
        for node in self._services:  # insertion order within a stage
            out[level[node]].append(node)
        return out

    def stage_of(self, name: str) -> int:
        """Stage index of ``name`` (0-based)."""
        for idx, stage in enumerate(self.stages()):
            if name in stage:
                return idx
        raise KeyError(name)

    def critical_path_mi(self) -> float:
        """Largest cumulative ``cpu_mi`` along any dependency chain."""
        best: Dict[str, float] = {}
        for node in self.topological_order():
            own = self._services[node].requirements.cpu_mi
            incoming = max((best[p] for p in self._pred[node]), default=0.0)
            best[node] = own + incoming
        return max(best.values(), default=0.0)

    def total_image_gb(self) -> float:
        """Sum of all image sizes (lower bound on registry traffic)."""
        return sum(ms.size_gb for ms in self._services.values())

    def total_dataflow_mb(self) -> float:
        """Sum of all dataflow payload sizes."""
        return sum(df.size_mb for df in self._flows.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Application({self.name!r}, services={len(self._services)}, "
            f"flows={len(self._flows)})"
        )
