"""The paper's cost equations (Sec. III-D).

Completion time of microservice ``m_i`` pulled from registry ``r_g``
and scheduled on device ``d_j``::

    CT(m_i, r_g, d_j) = Size_mi / BW_gj        (deployment,   Td)
                      + Size_ui / BW_kj        (transmission, Tc)
                      + CPU(m_i) / CPU_j       (processing,   Tp)

Energy::

    EC(m_i, r_g, d_j) = Ea(m_i, r_g, d_j) + Es(d_j)

where ``Ea`` integrates the per-phase *active* power over the phase
durations and ``Es`` integrates the static power over ``CT``.  The
total ``EC_total(A, R, D)`` sums ``EC`` over the schedule.

These functions are pure: they read the models and return numbers.
State (image caches, device occupancy) is injected by the caller via
the ``cached`` flag and the upstream placement mapping, which keeps the
equations testable in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Tuple

from .application import Application, Microservice
from .device import Device, Phase
from .network import NetworkModel
from .units import processing_time_s


@dataclass(frozen=True)
class PhaseTimes:
    """Durations of the three phases of one microservice execution."""

    deploy_s: float
    transfer_s: float
    compute_s: float

    @property
    def completion_s(self) -> float:
        """``CT = Td + Tc + Tp``."""
        return self.deploy_s + self.transfer_s + self.compute_s

    def __add__(self, other: "PhaseTimes") -> "PhaseTimes":
        return PhaseTimes(
            self.deploy_s + other.deploy_s,
            self.transfer_s + other.transfer_s,
            self.compute_s + other.compute_s,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Active (per phase) and static energy of one execution, in joules."""

    pull_j: float
    transfer_j: float
    compute_j: float
    static_j: float

    @property
    def active_j(self) -> float:
        """``Ea`` — energy above the static baseline."""
        return self.pull_j + self.transfer_j + self.compute_j

    @property
    def total_j(self) -> float:
        """``EC = Ea + Es``."""
        return self.active_j + self.static_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            self.pull_j + other.pull_j,
            self.transfer_j + other.transfer_j,
            self.compute_j + other.compute_j,
            self.static_j + other.static_j,
        )


ZERO_ENERGY = EnergyBreakdown(0.0, 0.0, 0.0, 0.0)
ZERO_TIMES = PhaseTimes(0.0, 0.0, 0.0)


def deployment_time_s(
    network: NetworkModel,
    registry: str,
    device: str,
    size_gb: float,
    cached: bool = False,
) -> float:
    """``Td``: image download time; zero when the image is already local.

    The paper defines deployment time only for images *"not already
    existing on a device"*; ``cached=True`` models the already-present
    case.
    """
    if cached or size_gb == 0:
        return 0.0
    return network.deployment_time_s(registry, device, size_gb)


def transmission_time_s(
    network: NetworkModel,
    incoming: Iterable[Tuple[str, float]],
    device: str,
    ingress_mb: float = 0.0,
) -> float:
    """``Tc``: sum of upstream dataflow transfer times into ``device``.

    Parameters
    ----------
    incoming:
        Pairs ``(src_device, size_mb)`` — one per in-flow, with the
        device its upstage producer ran on.  Co-located flows cost 0.
    device:
        The device hosting the downstage microservice.
    ingress_mb:
        External input payload (camera stream, S3 dataset) entering
        over the ingress channel.
    """
    total = sum(network.dataflow_time_s(src, device, mb) for src, mb in incoming)
    if ingress_mb > 0:
        total += network.ingress_time_s(device, ingress_mb)
    return total


def compute_time_s(service: Microservice, device: Device) -> float:
    """``Tp = CPU(m_i) / CPU_j``."""
    return processing_time_s(service.requirements.cpu_mi, device.spec.speed_mips)


def phase_times(
    service: Microservice,
    device: Device,
    network: NetworkModel,
    registry: str,
    incoming: Iterable[Tuple[str, float]] = (),
    cached: bool = False,
) -> PhaseTimes:
    """All three phase durations for one (m, r, d) choice."""
    return PhaseTimes(
        deploy_s=deployment_time_s(
            network, registry, device.name, service.cold_pull_gb, cached
        ),
        transfer_s=transmission_time_s(
            network, incoming, device.name, service.ingress_mb
        ),
        compute_s=compute_time_s(service, device),
    )


def utilization(service: Microservice, device: Device) -> float:
    """Fraction of the device's cores the microservice occupies."""
    return min(1.0, service.requirements.cores / device.spec.cores)


def energy_breakdown(
    times: PhaseTimes,
    device: Device,
    compute_utilization: float = 1.0,
) -> EnergyBreakdown:
    """Integrate the device power model over the phase durations."""
    power = device.power
    return EnergyBreakdown(
        pull_j=power.active_watts(Phase.PULL) * times.deploy_s,
        transfer_j=power.active_watts(Phase.TRANSFER) * times.transfer_s,
        compute_j=power.active_watts(Phase.COMPUTE, compute_utilization)
        * times.compute_s,
        static_j=power.static_watts * times.completion_s,
    )


@dataclass(frozen=True)
class CostRecord:
    """Full cost of executing one microservice under one (r, d) choice."""

    service: str
    registry: str
    device: str
    times: PhaseTimes
    energy: EnergyBreakdown

    @property
    def completion_s(self) -> float:
        return self.times.completion_s

    @property
    def energy_j(self) -> float:
        return self.energy.total_j


def microservice_cost(
    app: Application,
    name: str,
    registry: str,
    device: Device,
    network: NetworkModel,
    upstream_devices: Optional[Mapping[str, str]] = None,
    cached: bool = False,
    full_utilization: bool = True,
) -> CostRecord:
    """Evaluate ``CT`` and ``EC`` for placing ``name`` on ``device``.

    Parameters
    ----------
    app:
        The application DAG (provides the in-flows of ``name``).
    upstream_devices:
        Partial schedule mapping upstage microservice names to device
        names.  In-flows whose producer is unplaced are skipped — the
        scheduler calls this incrementally in topological order, so by
        the time a microservice is costed all its producers are placed.
    cached:
        Whether the image already resides on ``device`` (zero ``Td``).
    full_utilization:
        The paper executes microservices non-concurrently, giving each
        the full device (utilisation 1).  Set ``False`` to scale the
        compute power by the core fraction instead.
    """
    service = app.service(name)
    upstream_devices = upstream_devices or {}
    incoming = [
        (upstream_devices[flow.src], flow.size_mb)
        for flow in app.in_flows(name)
        if flow.src in upstream_devices
    ]
    times = phase_times(service, device, network, registry, incoming, cached)
    util = 1.0 if full_utilization else utilization(service, device)
    energy = energy_breakdown(times, device, util)
    return CostRecord(
        service=name,
        registry=registry,
        device=device.name,
        times=times,
        energy=energy,
    )


def total_energy_j(records: Sequence[CostRecord]) -> float:
    """``EC_total``: sum of per-microservice energies."""
    return sum(r.energy.total_j for r in records)


def total_completion_s(records: Sequence[CostRecord]) -> float:
    """Sum of per-microservice completion times (non-concurrent mode)."""
    return sum(r.times.completion_s for r in records)
