"""Formal models of DEEP (paper Sec. III): application, device, network,
registry, and the cost equations."""

from .application import (
    Application,
    CycleError,
    Dataflow,
    Microservice,
    ResourceRequirements,
)
from .device import Arch, Device, DeviceFleet, DeviceSpec, Phase, PowerModel
from .metrics import (
    CostRecord,
    EnergyBreakdown,
    PhaseTimes,
    compute_time_s,
    deployment_time_s,
    energy_breakdown,
    microservice_cost,
    phase_times,
    total_completion_s,
    total_energy_j,
    transmission_time_s,
)
from .network import INGRESS, Channel, NetworkModel
from .registry import RegistryCatalog, RegistryInfo, RegistryKind

__all__ = [
    "Application",
    "Arch",
    "Channel",
    "CostRecord",
    "CycleError",
    "Dataflow",
    "Device",
    "DeviceFleet",
    "DeviceSpec",
    "EnergyBreakdown",
    "INGRESS",
    "Microservice",
    "NetworkModel",
    "Phase",
    "PhaseTimes",
    "PowerModel",
    "RegistryCatalog",
    "RegistryInfo",
    "RegistryKind",
    "ResourceRequirements",
    "compute_time_s",
    "deployment_time_s",
    "energy_breakdown",
    "microservice_cost",
    "phase_times",
    "total_completion_s",
    "total_energy_j",
    "transmission_time_s",
]
