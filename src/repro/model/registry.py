"""Registry model of Sec. III-C: the set ``R`` of Docker registries.

This module holds the *model-level* view used by the cost equations and
the scheduler: a registry is a named source of images with channels to
devices.  The behavioural simulation (manifests, blobs, CDN, MinIO) lives
in :mod:`repro.registry`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Optional


class RegistryKind(enum.Enum):
    """Whether a registry is the public cloud hub or an edge-regional one."""

    HUB = "hub"
    REGIONAL = "regional"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RegistryInfo:
    """Model-level registry descriptor ``r_g``.

    Attributes
    ----------
    name:
        Unique registry name used in network channels and plans
        (e.g. ``"docker-hub"``, ``"aau-regional"``).
    kind:
        :class:`RegistryKind` — drives reporting (Table III columns).
    endpoint:
        Informational endpoint string (e.g.
        ``"https://hub.docker.com"`` or ``"dcloud2.itec.aau.at:9001"``).
    """

    name: str
    kind: RegistryKind
    endpoint: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("registry name must be non-empty")

    @property
    def is_hub(self) -> bool:
        return self.kind is RegistryKind.HUB

    @property
    def is_regional(self) -> bool:
        return self.kind is RegistryKind.REGIONAL


class RegistryCatalog:
    """Ordered, name-indexed collection of registries (the set ``R``)."""

    def __init__(self) -> None:
        self._registries: Dict[str, RegistryInfo] = {}

    @classmethod
    def of(cls, *registries: RegistryInfo) -> "RegistryCatalog":
        catalog = cls()
        for reg in registries:
            catalog.add(reg)
        return catalog

    def add(self, registry: RegistryInfo) -> None:
        if registry.name in self._registries:
            raise ValueError(f"duplicate registry {registry.name!r}")
        self._registries[registry.name] = registry

    def __len__(self) -> int:
        return len(self._registries)

    def __iter__(self) -> Iterator[RegistryInfo]:
        return iter(self._registries.values())

    def __contains__(self, name: object) -> bool:
        return name in self._registries

    def __getitem__(self, name: str) -> RegistryInfo:
        return self._registries[name]

    def names(self) -> list:
        return list(self._registries)

    def hub(self) -> Optional[RegistryInfo]:
        """The first HUB registry, if any."""
        return next((r for r in self if r.is_hub), None)

    def regional(self) -> Optional[RegistryInfo]:
        """The first REGIONAL registry, if any."""
        return next((r for r in self if r.is_regional), None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegistryCatalog({', '.join(self._registries)})"
