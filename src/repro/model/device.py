"""Device model of Sec. III-B: heterogeneous capacity-constrained devices.

A device ``d_j = (CORE_j, CPU_j, MEM_j, STOR_j)`` carries a
:class:`PowerModel` so that the energy equations of Sec. III-D
(``EC = Ea + Es``) can be evaluated: static power is drawn whenever the
device is on; additional active power is drawn while pulling an image
over the network or while computing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from .units import require_non_negative, require_positive


class Arch(enum.Enum):
    """Instruction-set architecture of a device / image platform.

    The paper tags every image with ``amd64`` (x86/AMD, the Intel
    "medium" device) or ``arm64`` (the Raspberry Pi "small" device).
    """

    AMD64 = "amd64"
    ARM64 = "arm64"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Phase(enum.Enum):
    """Execution phases of a microservice on a device.

    Each phase maps to a distinct power draw in :class:`PowerModel`:

    * ``IDLE``     — device on, nothing assigned (static power only);
    * ``PULL``     — downloading the container image from a registry;
    * ``TRANSFER`` — receiving/sending dataflow payloads;
    * ``COMPUTE``  — processing the dataflow (CPU-bound).
    """

    IDLE = "idle"
    PULL = "pull"
    TRANSFER = "transfer"
    COMPUTE = "compute"


@dataclass(frozen=True)
class PowerModel:
    """Two-term power model: static draw + per-phase active draw.

    ``power(phase) = static_watts + active[phase]`` where ``active`` is
    zero for :attr:`Phase.IDLE`.  This is the minimal model that
    supports the paper's decomposition ``EC = Ea + Es``: integrating
    ``static_watts`` over a window yields ``Es`` and integrating the
    phase-dependent surplus yields ``Ea``.

    Attributes
    ----------
    static_watts:
        Baseline draw of the powered-on device (``Es`` rate).
    compute_watts:
        Additional draw while computing at full allocated utilisation.
    pull_watts:
        Additional draw while pulling an image (NIC + storage writes).
    transfer_watts:
        Additional draw while moving dataflow payloads.
    """

    static_watts: float
    compute_watts: float
    pull_watts: float = 0.0
    transfer_watts: float = 0.0

    def __post_init__(self) -> None:
        require_non_negative(self.static_watts, "static_watts")
        require_non_negative(self.compute_watts, "compute_watts")
        require_non_negative(self.pull_watts, "pull_watts")
        require_non_negative(self.transfer_watts, "transfer_watts")

    def active_watts(self, phase: Phase, utilization: float = 1.0) -> float:
        """Active (above-static) draw for ``phase``.

        ``utilization`` scales the compute term only.  Values in
        ``[0, 1]`` model partial core allocation; values above 1 model
        workload *intensity* (e.g. AVX-heavy training draws more than
        the calibration baseline) — the per-microservice factors fitted
        by :mod:`repro.workloads.calibration` use this.
        """
        if utilization < 0:
            raise ValueError(f"utilization must be >= 0, got {utilization}")
        if phase is Phase.IDLE:
            return 0.0
        if phase is Phase.PULL:
            return self.pull_watts
        if phase is Phase.TRANSFER:
            return self.transfer_watts
        return self.compute_watts * utilization

    def total_watts(self, phase: Phase, utilization: float = 1.0) -> float:
        """Total draw (static + active) for ``phase``."""
        return self.static_watts + self.active_watts(phase, utilization)


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware description ``d_j = (CORE_j, CPU_j, MEM_j, STOR_j)``.

    Attributes
    ----------
    name:
        Unique device name (e.g. ``"medium"``, ``"small"``).
    arch:
        ISA of the device; images must provide a matching platform.
    cores:
        Number of CPU cores ``CORE_j``.
    speed_mips:
        Aggregate single-service processing speed ``CPU_j`` in MI/s.
    memory_gb:
        Memory capacity ``MEM_j``.
    storage_gb:
        Storage capacity ``STOR_j`` (holds images and scratch data).
    """

    name: str
    arch: Arch
    cores: int
    speed_mips: float
    memory_gb: float
    storage_gb: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        if self.cores < 1:
            raise ValueError(f"device {self.name!r}: cores must be >= 1")
        require_positive(self.speed_mips, "speed_mips")
        require_positive(self.memory_gb, "memory_gb")
        require_positive(self.storage_gb, "storage_gb")


@dataclass(frozen=True)
class Device:
    """A physical edge device: spec + power model + placement metadata.

    Attributes
    ----------
    spec:
        Hardware description.
    power:
        Power model used by the energy meters.
    region:
        Network region label, used by the CDN model of the simulated
        Docker Hub to select a point of presence.
    """

    spec: DeviceSpec
    power: PowerModel
    region: str = "edge"

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def arch(self) -> Arch:
        return self.spec.arch

    def with_power(self, power: PowerModel) -> "Device":
        """Return a copy with a different power model (calibration)."""
        return replace(self, power=power)

    def can_host(self, cores: int, memory_gb: float, storage_gb: float) -> bool:
        """Static feasibility: does the *empty* device satisfy the triple?

        Dynamic occupancy (images already stored, co-located services)
        is tracked by ``repro.devices.storage`` / the schedulers.
        """
        return (
            self.spec.cores >= cores
            and self.spec.memory_gb >= memory_gb
            and self.spec.storage_gb >= storage_gb
        )


class DeviceFleet:
    """An ordered, name-indexed collection of devices (the set ``D``)."""

    def __init__(self, devices: Optional[Dict[str, Device]] = None) -> None:
        self._devices: Dict[str, Device] = {}
        if devices:
            for dev in devices.values():
                self.add(dev)

    @classmethod
    def of(cls, *devices: Device) -> "DeviceFleet":
        """Build a fleet from positional devices."""
        fleet = cls()
        for dev in devices:
            fleet.add(dev)
        return fleet

    def add(self, device: Device) -> None:
        if device.name in self._devices:
            raise ValueError(f"duplicate device {device.name!r}")
        self._devices[device.name] = device

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices.values())

    def __contains__(self, name: object) -> bool:
        return name in self._devices

    def __getitem__(self, name: str) -> Device:
        return self._devices[name]

    def names(self) -> list:
        """Device names in insertion order."""
        return list(self._devices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeviceFleet({', '.join(self._devices)})"
