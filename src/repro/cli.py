"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.cli table2      # Table II benchmarks
    python -m repro.cli table3      # Table III distribution
    python -m repro.cli fig3a       # Figure 3a per-service energy
    python -m repro.cli fig3b       # Figure 3b method comparison
    python -m repro.cli ablations   # A1–A4
    python -m repro.cli p2p         # three-tier registry comparison
    python -m repro.cli p2p-contended  # analytic vs time-resolved pulls
    python -m repro.cli p2p-gossip  # omniscient vs gossip discovery
    python -m repro.cli p2p-chunked # single-source vs chunked swarm pulls
    python -m repro.cli all         # everything above
    python -m repro.cli calibration # dump the fitted constants

The swarm experiments accept ``--seed`` to rerun under a different
random workload/churn realisation.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List

from .experiments import ablations, cloud, figure3a, figure3b, p2p, table2, table3
from .experiments.runner import ExperimentResult
from .sim.rng import DEFAULT_SEED
from .workloads.calibration import calibrate
from .workloads.testbed import build_testbed


def _run_calibration_dump() -> str:
    cal = calibrate()
    lines = ["== Calibrated constants =="]
    for device, power in cal.power.items():
        lines.append(
            f"{device}: static={power.static_watts:.3f} W "
            f"compute={power.compute_watts:.3f} W "
            f"pull={power.pull_watts:.3f} W "
            f"transfer={power.transfer_watts:.3f} W "
            f"(fit rms {cal.fit_residual_j[device]:.1f} J)"
        )
    lines.append(
        f"hub bw: {dict(cal.config.hub_bw_mbps)} Mbit/s, "
        f"startup {cal.config.hub_startup_s}s; regional bw: "
        f"{dict(cal.config.regional_bw_mbps)} Mbit/s, startup "
        f"{cal.config.regional_startup_s}s"
    )
    for name, svc in cal.services.items():
        lines.append(
            f"{name:16s} cpu={svc.cpu_mi:10.0f} MI  input={svc.input_mb:8.1f} MB"
            f"  warm={svc.warm_fraction:.2f}"
        )
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the DEEP paper.",
    )
    parser.add_argument(
        "experiment",
        choices=["table2", "table3", "fig3a", "fig3b", "ablations", "cloud",
                 "p2p", "p2p-contended", "p2p-gossip", "p2p-chunked", "all",
                 "calibration"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=(
            "root seed for the stochastic swarm experiments "
            "(p2p / p2p-contended / p2p-gossip / p2p-chunked); other "
            "artefacts are deterministic and ignore it"
        ),
    )
    args = parser.parse_args(argv)

    if args.experiment == "calibration":
        print(_run_calibration_dump())
        return 0

    testbed = build_testbed()
    runs: Dict[str, Callable[[], ExperimentResult]] = {
        "table2": lambda: table2.run(testbed),
        "table3": lambda: table3.run(testbed),
        "fig3a": lambda: figure3a.run(testbed),
        "fig3b": lambda: figure3b.run(testbed),
        "cloud": lambda: cloud.run(testbed),
        "p2p": lambda: p2p.run(seed=args.seed),
        "p2p-contended": lambda: p2p.run_contended(seed=args.seed),
        "p2p-gossip": lambda: p2p.run_gossip(seed=args.seed),
        "p2p-chunked": lambda: p2p.run_chunked(seed=args.seed),
    }
    selected: List[str]
    if args.experiment == "all":
        selected = ["table2", "table3", "fig3a", "fig3b", "ablations", "cloud",
                    "p2p"]
    else:
        selected = [args.experiment]

    for name in selected:
        if name == "ablations":
            for result in (
                ablations.bandwidth_sweep(),
                ablations.cache_and_dedup(build_testbed()),
                ablations.solver_comparison(testbed),
                ablations.scaling(),
            ):
                print(result.to_text())
                print()
        else:
            print(runs[name]().to_text())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
