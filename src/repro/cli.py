"""Command-line entry point: regenerate any table/figure of the paper.

Usage::

    python -m repro.cli table2      # Table II benchmarks
    python -m repro.cli table3      # Table III distribution
    python -m repro.cli fig3a       # Figure 3a per-service energy
    python -m repro.cli fig3b       # Figure 3b method comparison
    python -m repro.cli ablations   # A1–A4
    python -m repro.cli p2p         # three-tier registry comparison
    python -m repro.cli p2p-contended  # analytic vs time-resolved pulls
    python -m repro.cli p2p-gossip  # omniscient vs gossip discovery
    python -m repro.cli p2p-chunked # single-source vs chunked swarm pulls
    python -m repro.cli all         # everything above
    python -m repro.cli calibration # dump the fitted constants

    python -m repro.cli scenario --list          # named scenario presets
    python -m repro.cli scenario p2p-gossip \\
        --set transfer.model=time-resolved \\
        --set churn.mean_uptime_s=600             # one overridden session

    python -m repro.cli sweep --list             # named sweep matrices
    python -m repro.cli sweep gossip-transport \\
        --workers 4 --cache-dir .sweep-cache     # a registered study
    python -m repro.cli sweep p2p-gossip \\
        --axis discovery.gossip_fanout=1,2,4 \\
        --seeds 1,2 --workers 4                  # an ad-hoc grid
    python -m repro.cli sweep my-grid.json       # a SweepSpec document

    python -m repro.cli lint                     # determinism lint
    python -m repro.cli lint src/repro --json    # machine-readable
    python -m repro.cli lint --list              # rule catalogue

The swarm experiments accept ``--seed`` to rerun under a different
random workload/churn realisation, and every experiment (plus the
``scenario`` and ``sweep`` subcommands) accepts ``--json`` to print
machine-readable structured results instead of text tables.  Sweeps
fan cells across a worker pool and resume from the content-addressed
results cache: re-running a finished sweep executes zero cells, and
editing one axis re-runs only the new cells.

Telemetry (see ``src/repro/telemetry/README.md``) hangs off three
flags shared by the experiments and the ``scenario`` subcommand::

    python -m repro.cli p2p --trace p2p.trace.json \\
        --metrics-out p2p.metrics.csv --profile
    python -m repro.cli scenario p2p-gossip --trace run.jsonl

``--trace FILE`` writes Chrome trace-event JSON (JSONL when FILE ends
in ``.jsonl``), ``--metrics-out FILE`` writes time-series CSV sampled
every 60 simulated seconds, and ``--profile`` records the transfer
engine's self-profile.  All three are observation-only: results are
bit-identical with and without them.

The swarm experiment list (``p2p`` …) is derived from the scenario
preset registry (:mod:`repro.scenarios`), so a newly registered
experiment automatically appears in the choices *and* in ``all`` —
it cannot be silently forgotten.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Callable, Dict, List

from . import scenarios, sweep, telemetry
from .experiments import ablations, cloud, figure3a, figure3b, p2p, table2, table3
from .experiments.runner import ExperimentResult
from .sim.rng import DEFAULT_SEED
from .workloads.calibration import calibrate
from .workloads.testbed import build_testbed

# p2p is imported for its side effect as well: importing it attaches
# the swarm experiment runners to the scenarios registry.
assert p2p is not None

#: The deterministic paper artefacts (seed-independent).
PAPER_TARGETS = ("table2", "table3", "fig3a", "fig3b", "ablations", "cloud")

#: Metrics sampling period ``--metrics-out`` uses when the scenario's
#: own ``telemetry.metrics_period_s`` does not say otherwise.
DEFAULT_METRICS_PERIOD_S = 60.0


def _write_trace_file(path: str, jsonl_text: str, chrome_doc: Dict) -> None:
    """``--trace FILE``: JSONL when the name says so, else Chrome JSON."""
    if path.endswith(".jsonl"):
        with open(path, "w") as handle:
            handle.write(jsonl_text)
    else:
        with open(path, "w") as handle:
            json.dump(chrome_doc, handle)
            handle.write("\n")


def _profile_text(label: str, summary: Dict) -> str:
    """One readable line per profiled engine."""
    prefix = f"engine profile [{label}]: " if label else "engine profile: "
    return (
        f"{prefix}{summary['recomputes']} recomputes "
        f"({summary['recompute_ns_total'] / 1e6:.1f} ms total, "
        f"max {summary['recompute_ns_max'] / 1e3:.0f} us), "
        f"{summary['transfers_rerated']} transfers rerated, "
        f"closure hist {summary['closure_size_hist']}"
    )


def all_targets() -> List[str]:
    """Every experiment ``all`` runs: paper artefacts + every swarm
    experiment attached to the scenario preset registry."""
    return list(PAPER_TARGETS) + list(scenarios.experiment_names())


def _calibration_dict() -> dict:
    """The fitted constants as a JSON-safe structure (--json)."""
    cal = calibrate()
    return {
        "power": {
            device: {
                "static_watts": power.static_watts,
                "compute_watts": power.compute_watts,
                "pull_watts": power.pull_watts,
                "transfer_watts": power.transfer_watts,
                "fit_rms_j": cal.fit_residual_j[device],
            }
            for device, power in cal.power.items()
        },
        "network": {
            "hub_bw_mbps": dict(cal.config.hub_bw_mbps),
            "hub_startup_s": cal.config.hub_startup_s,
            "regional_bw_mbps": dict(cal.config.regional_bw_mbps),
            "regional_startup_s": cal.config.regional_startup_s,
        },
        "services": {
            name: {
                "cpu_mi": svc.cpu_mi,
                "input_mb": svc.input_mb,
                "warm_fraction": svc.warm_fraction,
            }
            for name, svc in cal.services.items()
        },
    }


def _run_calibration_dump() -> str:
    """Text rendering of :func:`_calibration_dict` — one traversal, so
    the text and --json forms cannot drift apart."""
    data = _calibration_dict()
    lines = ["== Calibrated constants =="]
    for device, power in data["power"].items():
        lines.append(
            f"{device}: static={power['static_watts']:.3f} W "
            f"compute={power['compute_watts']:.3f} W "
            f"pull={power['pull_watts']:.3f} W "
            f"transfer={power['transfer_watts']:.3f} W "
            f"(fit rms {power['fit_rms_j']:.1f} J)"
        )
    net = data["network"]
    lines.append(
        f"hub bw: {net['hub_bw_mbps']} Mbit/s, "
        f"startup {net['hub_startup_s']}s; regional bw: "
        f"{net['regional_bw_mbps']} Mbit/s, startup "
        f"{net['regional_startup_s']}s"
    )
    for name, svc in data["services"].items():
        lines.append(
            f"{name:16s} cpu={svc['cpu_mi']:10.0f} MI  "
            f"input={svc['input_mb']:8.1f} MB"
            f"  warm={svc['warm_fraction']:.2f}"
        )
    return "\n".join(lines)


def _scenario_list_text() -> str:
    lines = ["== Scenario presets =="]
    for preset in scenarios.entries():
        lines.append(f"{preset.name:16s} [{preset.family}] {preset.description}")
    lines.append(
        "run one with: repro scenario <preset> "
        "[--set section.field=value ...] [--json]"
    )
    return "\n".join(lines)


def _outcome_text(preset: str, spec, outcome) -> str:
    """A readable one-session summary (the text form of --json)."""
    gb = 1e9
    lines = [
        f"== Scenario {preset} (mode={spec.mode}, seed={spec.seed}) ==",
        f"pulls={outcome.pulls} cache_hits={outcome.cache_hits} "
        f"hit_ratio={outcome.hit_ratio:.2f} "
        f"skipped={outcome.skipped_pulls} unfinished={outcome.unfinished_pulls}",
        f"origin_gb={outcome.origin_bytes / gb:.2f} "
        f"peer_gb={outcome.bytes_from_peers / gb:.2f} "
        f"replicated_gb={outcome.bytes_replicated / gb:.2f} "
        f"wasted_mb={outcome.bytes_wasted / 1e6:.1f}",
        f"transfer_s={outcome.transfer_s:.1f} "
        f"makespan_s={outcome.makespan_s:.1f} "
        f"longest_pull_s={outcome.longest_pull_s:.1f}",
    ]
    for registry, count in sorted(outcome.bytes_by_registry.items()):
        lines.append(f"bytes_from.{registry} = {count}")
    if outcome.stale_peer_misses or outcome.gossip_rounds:
        lines.append(
            f"gossip_rounds={outcome.gossip_rounds} "
            f"stale_peer_misses={outcome.stale_peer_misses}"
        )
    if outcome.departures or outcome.rejoins:
        lines.append(
            f"departures={outcome.departures} rejoins={outcome.rejoins}"
        )
    if outcome.replicator is not None:
        lines.append(
            f"replicator: {outcome.replicator.total_actions()} copies "
            f"({outcome.replicator.bytes_replicated / gb:.2f} GB), "
            f"converged={outcome.replicator.converged()}"
        )
    if outcome.engine_profile is not None:
        lines.append(_profile_text("", outcome.engine_profile))
    return "\n".join(lines)


def _run_scenario_command(args) -> int:
    if args.list:
        if args.preset or args.overrides:
            print(
                "--list does not take a preset or --set overrides",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps([
                {
                    "name": preset.name,
                    "family": preset.family,
                    "description": preset.description,
                }
                for preset in scenarios.entries()
            ], indent=2))
        else:
            print(_scenario_list_text())
        return 0
    if not args.preset:
        print(
            "scenario needs a preset name (or --list); known presets: "
            + ", ".join(scenarios.names()),
            file=sys.stderr,
        )
        return 2
    try:
        spec = scenarios.get(args.preset)
    except KeyError as error:
        print(error.args[0], file=sys.stderr)
        return 2
    import dataclasses

    spec = dataclasses.replace(spec, seed=args.seed)
    try:
        overrides = scenarios.parse_set_flags(tuple(args.overrides))
        spec = scenarios.with_overrides(spec, overrides)
    except (TypeError, ValueError) as error:
        # TypeError: a value of the wrong JSON type reached a spec
        # field's validation comparison (e.g. --set seed=abc).
        print(f"bad override: {error}", file=sys.stderr)
        return 2
    if args.trace or args.metrics_out or args.profile:
        # The flags merge *into* the spec's own telemetry section (a
        # --set telemetry.* override stays authoritative where given).
        spec = dataclasses.replace(
            spec,
            telemetry=scenarios.TelemetrySpec(
                trace=spec.telemetry.trace or args.trace is not None,
                metrics_period_s=(
                    spec.telemetry.metrics_period_s
                    if spec.telemetry.metrics_period_s is not None
                    else (
                        DEFAULT_METRICS_PERIOD_S if args.metrics_out else None
                    )
                ),
                profile=spec.telemetry.profile or args.profile,
            ),
        )
    session = scenarios.SimulationSession(spec)
    outcome = session.run()
    if args.trace:
        _write_trace_file(
            args.trace, session.trace.jsonl(), session.trace.chrome_trace()
        )
    if args.metrics_out:
        session.metrics.write_csv(args.metrics_out)
    if args.json:
        print(json.dumps(
            {
                "preset": args.preset,
                "spec": spec.to_dict(),
                "outcome": outcome.to_dict(),
            },
            indent=2,
        ))
    else:
        print(_outcome_text(args.preset, spec, outcome))
    return 0


def _sweep_list_text() -> str:
    lines = ["== Sweep presets =="]
    for preset in sweep.sweep_entries():
        lines.append(f"{preset.name:20s} {preset.description}")
    lines.append(
        "run one with: repro sweep <name> [--workers N] [--cache-dir DIR]; "
        "or build an ad-hoc grid from any scenario preset with "
        "--axis section.field=v1,v2 [--seeds 1,2]"
    )
    return "\n".join(lines)


def _sweep_text(result) -> str:
    """A readable aggregate table (the text form of --json)."""
    stats = result.stats
    lines = [
        f"== Sweep {result.sweep.name}: {stats.cells} cells "
        f"(executed {stats.executed}, cache hits {stats.cache_hits}, "
        f"deduped {stats.deduped}) "
        f"workers={stats.workers} wall={stats.wall_s:.1f}s "
        f"({stats.cells_per_s:.2f} cells/s) =="
    ]
    id_columns: List[str] = []
    # The empty-label variant is a hidden base bundle, not an identity.
    if any(label for label, _bundle in result.sweep.variants):
        id_columns.append("variant")
    id_columns.extend(path for path, _values in result.sweep.axes)
    id_columns.append("seed")
    headline = [
        "pulls", "hit_ratio", "origin_bytes", "bytes_from_peers",
        "makespan_s", "stale_peer_misses", "gossip_records_sent",
        "gossip_payloads_lost",
    ]
    columns = id_columns + [
        name for name in headline if any(name in row for row in result.rows)
    ]

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    table = [columns] + [
        [fmt(row.get(column, "")) for column in columns]
        for row in result.rows
    ]
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    for line in table:
        lines.append("  ".join(
            cell.rjust(width) for cell, width in zip(line, widths)
        ))
    return "\n".join(lines)


def _resolve_sweep_target(target: str) -> sweep.SweepSpec:
    """A sweep preset name, a scenario preset name, or a JSON file."""
    if target in sweep.sweep_names():
        return sweep.get_sweep(target)
    if target in scenarios.names():
        return sweep.SweepSpec(name=target, preset=target)
    if target.endswith(".json"):
        with open(target) as handle:
            return sweep.SweepSpec.from_dict(json.load(handle))
    raise KeyError(
        f"unknown sweep target {target!r}; known sweeps: "
        f"{', '.join(sweep.sweep_names())}; scenario presets: "
        f"{', '.join(scenarios.names())}; or a SweepSpec .json file"
    )


def _run_sweep_command(args) -> int:
    if args.list:
        if args.preset:
            print("--list does not take a sweep name", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps([
                {"name": preset.name, "description": preset.description}
                for preset in sweep.sweep_entries()
            ], indent=2))
        else:
            print(_sweep_list_text())
        return 0
    if not args.preset:
        print(
            "sweep needs a target (or --list); known sweeps: "
            + ", ".join(sweep.sweep_names()),
            file=sys.stderr,
        )
        return 2
    import dataclasses

    try:
        spec = _resolve_sweep_target(args.preset)
        if args.axis:
            extra = sweep.parse_axis_flags(tuple(args.axis))
            spec = dataclasses.replace(
                spec, axes=tuple(spec.axes) + tuple(extra.items())
            )
        if args.seeds:
            spec = dataclasses.replace(
                spec, seeds=sweep.parse_seed_flag(args.seeds)
            )
        result = sweep.run_sweep(
            spec, cache_dir=args.cache_dir, workers=args.workers
        )
    except (KeyError, ValueError, OSError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"sweep failed: {message}", file=sys.stderr)
        return 2
    if args.csv:
        result.to_csv(args.csv)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(_sweep_text(result))
    return 0


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The lint subcommand owns its own flag grammar (multiple path
        # arguments, repeatable --rule), so it dispatches before the
        # experiment parser; see src/repro/analysis/cli.py.
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the DEEP paper.",
    )
    parser.add_argument(
        "experiment",
        choices=all_targets() + [
            "all", "calibration", "scenario", "sweep", "lint",
        ],
        help=(
            "which artefact to regenerate (or 'scenario' for one preset, "
            "'sweep' for an experiment matrix, 'lint' for the static "
            "determinism analyzer)"
        ),
    )
    parser.add_argument(
        "preset",
        nargs="?",
        help=(
            "preset name for the scenario subcommand (see scenario "
            "--list), or the sweep target: a sweep preset, a scenario "
            "preset, or a SweepSpec .json file (see sweep --list)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=(
            "root seed for the stochastic swarm experiments "
            "(p2p / p2p-contended / p2p-gossip / p2p-chunked / scenario); "
            "other artefacts are deterministic and ignore it"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print machine-readable JSON instead of text tables",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="with 'scenario' or 'sweep': list the named presets and exit",
    )
    parser.add_argument(
        "--set",
        action="append",
        dest="overrides",
        default=[],
        metavar="SECTION.FIELD=VALUE",
        help=(
            "with 'scenario': override one spec field by dotted path "
            "(repeatable), e.g. --set transfer.model=time-resolved "
            "--set churn.mean_uptime_s=600"
        ),
    )
    parser.add_argument(
        "--axis",
        action="append",
        dest="axis",
        default=[],
        metavar="SECTION.FIELD=V1,V2",
        help=(
            "with 'sweep': add one grid axis by dotted path with a "
            "comma-separated value list (repeatable), e.g. "
            "--axis discovery.gossip_fanout=1,2,4"
        ),
    )
    parser.add_argument(
        "--seeds",
        metavar="S1,S2",
        help="with 'sweep': replace the sweep's seed list, e.g. --seeds 1,2",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="with 'sweep': worker-process pool size (default 1: inline)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "with 'sweep': content-addressed results cache directory; "
            "re-runs load finished cells from here instead of executing"
        ),
    )
    parser.add_argument(
        "--csv",
        metavar="FILE",
        help="with 'sweep': also write the aggregate rows as CSV",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="with 'sweep': also write the full JSON document to a file",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "write a sim-time telemetry trace of the run: Chrome "
            "trace-event JSON, or JSONL when FILE ends in .jsonl "
            "(experiments and the scenario subcommand)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        dest="metrics_out",
        metavar="FILE",
        help=(
            "write time-series metrics (inflight transfers, trunk "
            "utilisation, cache occupancy, gossip staleness) as CSV, "
            f"sampled every {DEFAULT_METRICS_PERIOD_S:.0f} simulated "
            "seconds unless telemetry.metrics_period_s overrides it"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "self-profile the transfer engine (recompute wall time, "
            "closure-size histogram, deadline-heap work counters)"
        ),
    )
    args = parser.parse_args(argv)

    if (
        (args.trace or args.metrics_out or args.profile)
        and args.experiment in ("sweep", "calibration")
    ):
        # Sweep cells run in pool workers (a process-wide capture
        # cannot see them) and calibration runs no simulation.
        print(
            "--trace/--metrics-out/--profile do not apply to the "
            f"{args.experiment} subcommand",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "scenario":
        return _run_scenario_command(args)
    if args.experiment == "sweep":
        return _run_sweep_command(args)
    if args.preset is not None:
        print(
            f"a preset argument only applies to the scenario/sweep "
            f"subcommands (got {args.preset!r})",
            file=sys.stderr,
        )
        return 2
    if args.overrides or args.list:
        print(
            "--set/--list only apply to the scenario/sweep subcommands",
            file=sys.stderr,
        )
        return 2
    if (args.axis or args.seeds or args.workers != 1 or args.cache_dir
            or args.csv or args.out):
        print(
            "--axis/--seeds/--workers/--cache-dir/--csv/--out only apply "
            "to the sweep subcommand",
            file=sys.stderr,
        )
        return 2

    if args.experiment == "calibration":
        if args.json:
            print(json.dumps(_calibration_dict(), indent=2))
        else:
            print(_run_calibration_dump())
        return 0

    testbed = build_testbed()
    runs: Dict[str, Callable[[], ExperimentResult]] = {
        "table2": lambda: table2.run(testbed),
        "table3": lambda: table3.run(testbed),
        "fig3a": lambda: figure3a.run(testbed),
        "fig3b": lambda: figure3b.run(testbed),
        "cloud": lambda: cloud.run(testbed),
    }
    for name in scenarios.experiment_names():
        runs[name] = (
            lambda _runner=scenarios.experiment(name): _runner(seed=args.seed)
        )
    selected: List[str]
    if args.experiment == "all":
        selected = all_targets()
    else:
        selected = [args.experiment]

    capture = None
    if args.trace or args.metrics_out or args.profile:
        # Experiment runners build their sessions internally, so the
        # flags reach them through a process-wide capture; every
        # session assembled inside the block registers its recorders
        # under a stable label (s0, s1, …).
        capture = telemetry.TelemetryCapture(
            trace=args.trace is not None,
            metrics_period_s=(
                DEFAULT_METRICS_PERIOD_S if args.metrics_out else None
            ),
            profile=args.profile,
        )

    # Text output streams per experiment (an `all` run shows tables as
    # they finish); only --json buffers, to emit one valid document.
    json_payload: List[Dict] = []
    with capture if capture is not None else contextlib.nullcontext():
        for name in selected:
            if name == "ablations":
                produced = [
                    ablations.bandwidth_sweep(),
                    ablations.cache_and_dedup(build_testbed()),
                    ablations.solver_comparison(testbed),
                    ablations.scaling(),
                ]
            else:
                produced = [runs[name]()]
            for result in produced:
                if args.json:
                    json_payload.append(result.to_dict())
                else:
                    print(result.to_text())
                    print()
    if capture is not None:
        if args.trace:
            _write_trace_file(
                args.trace, capture.jsonl(), capture.chrome_trace()
            )
        if args.metrics_out:
            with open(args.metrics_out, "w", newline="") as handle:
                handle.write(capture.metrics_csv())
        if args.profile and not args.json:
            for label, summary in capture.profile_summaries().items():
                print(_profile_text(label, summary))
    if args.json:
        print(json.dumps(
            json_payload[0] if len(json_payload) == 1 else json_payload,
            indent=2,
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
