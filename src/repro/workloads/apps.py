"""The paper's two case-study applications (Fig. 2, Table I).

Both DAGs have six microservices and the fork-join shape of Fig. 2:

* **video processing** — ``transcode → frame → {ha-train, la-train}``,
  each train feeding its inference stage
  (``ha-train → ha-infer``, ``la-train → la-infer``);
* **text processing** — ``retrieve → decompress → {ha-train,
  la-train}``, each train feeding its scoring stage.

Microservice names are the globally unique logical image names
(``vp-*`` / ``tp-*``), matching Table I's repositories and the
calibration keys.  Image sizes, processing loads, input payloads and
warm fractions come from the calibration; inter-service dataflow sizes
equal the downstream service's calibrated input payload (its benchmark
input *is* its upstream artefact).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..model.application import (
    Application,
    Dataflow,
    Microservice,
    ResourceRequirements,
)
from .calibration import Calibration, calibrate
from .table2 import TEXT, VIDEO, logical_image

#: (cores, memory_gb, scratch_gb) per microservice role.  Trains are the
#: heavy stages; everything fits both testbed devices (4 cores / 8 GB).
_ROLE_REQUIREMENTS: Dict[str, Tuple[int, float, float]] = {
    "transcode": (2, 1.0, 0.5),
    "frame": (2, 1.0, 0.5),
    "retrieve": (1, 0.5, 1.0),
    "decompress": (1, 1.0, 1.0),
    "ha-train": (4, 4.0, 1.0),
    "la-train": (4, 2.0, 1.0),
    "ha-infer": (2, 2.0, 0.5),
    "la-infer": (2, 1.0, 0.5),
    "ha-score": (2, 2.0, 0.5),
    "la-score": (2, 1.0, 0.5),
}

#: DAG edges per application, in (upstage role, downstage role) form.
_EDGES: Dict[str, List[Tuple[str, str]]] = {
    VIDEO: [
        ("transcode", "frame"),
        ("frame", "ha-train"),
        ("frame", "la-train"),
        ("ha-train", "ha-infer"),
        ("la-train", "la-infer"),
    ],
    TEXT: [
        ("retrieve", "decompress"),
        ("decompress", "ha-train"),
        ("decompress", "la-train"),
        ("ha-train", "ha-score"),
        ("la-train", "la-score"),
    ],
}

_ROLES: Dict[str, List[str]] = {
    VIDEO: ["transcode", "frame", "ha-train", "la-train", "ha-infer", "la-infer"],
    TEXT: ["retrieve", "decompress", "ha-train", "la-train", "ha-score", "la-score"],
}

#: Roles whose input arrives from outside the DAG (Fig. 2's sources).
_SOURCES: Dict[str, str] = {VIDEO: "transcode", TEXT: "retrieve"}


def _microservice(cal: Calibration, application: str, role: str) -> Microservice:
    svc = cal.service(application, role)
    cores, memory, scratch = _ROLE_REQUIREMENTS[role]
    is_source = _SOURCES[application] == role
    return Microservice(
        name=svc.name,
        image=svc.name,
        size_gb=svc.size_gb,
        requirements=ResourceRequirements(
            cores=cores,
            cpu_mi=svc.cpu_mi,
            memory_gb=memory,
            storage_gb=scratch,
        ),
        # Sources stream their input from outside (camera / S3); inner
        # services receive theirs as upstream dataflows instead.
        ingress_mb=svc.input_mb if is_source else 0.0,
        warm_fraction=svc.warm_fraction,
    )


def _build(cal: Calibration, application: str) -> Application:
    services = [_microservice(cal, application, role) for role in _ROLES[application]]
    flows = []
    for src_role, dst_role in _EDGES[application]:
        dst = cal.service(application, dst_role)
        flows.append(
            Dataflow(
                src=logical_image(application, src_role),
                dst=dst.name,
                # The downstream's benchmark input is its upstream
                # artefact: reuse the calibrated payload as edge size.
                size_mb=dst.input_mb,
            )
        )
    return Application(application, services, flows)


def video_processing(cal: Optional[Calibration] = None) -> Application:
    """Figure 2a's video-processing DAG, calibrated to Table II."""
    return _build(cal or calibrate(), VIDEO)


def text_processing(cal: Optional[Calibration] = None) -> Application:
    """Figure 2b's text-processing DAG, calibrated to Table II."""
    return _build(cal or calibrate(), TEXT)


def both_applications(cal: Optional[Calibration] = None) -> List[Application]:
    """Both case studies sharing one calibration."""
    shared = cal or calibrate()
    return [video_processing(shared), text_processing(shared)]
