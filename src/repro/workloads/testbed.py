"""The simulated testbed: devices, network, and both registries, wired.

Reproduces the paper's experimental set-up (Sec. IV):

* the two devices (medium Intel, small ARM) with calibrated power,
* Docker Hub with a CDN PoP per device region (wired vs wireless edge),
* the MinIO-backed regional registry holding mirrored copies of every
  image under the ``aau/`` namespace (Table I),
* bandwidth channels matching the calibration constants, including the
  per-pull startup overheads as channel RTTs, and
* the model-level :class:`~repro.core.environment.Environment` that
  schedulers consume plus the live registries the orchestrator pulls
  from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.environment import Environment
from ..model.device import Device, DeviceFleet
from ..model.network import NetworkModel
from ..model.registry import RegistryCatalog, RegistryInfo, RegistryKind
from ..registry.base import ImageReference, Registry, mirror_image
from ..registry.hub import DockerHub, PointOfPresence
from ..registry.images import OFFICIAL_BASES, BaseImage, build_image
from ..registry.minio import MinioStore
from ..registry.regional import RegionalRegistry
from ..devices.specs import medium_device, small_device
from .calibration import Calibration, calibrate
from .table2 import (
    ALL_ROWS,
    hub_repository,
    logical_image,
    regional_repository,
)

HUB_NAME = "docker-hub"
REGIONAL_NAME = "regional"

#: Device regions: the medium box sits on the wired edge segment, the
#: Pi on the wireless one — the hub's CDN serves them differently.
MEDIUM_REGION = "edge-wired"
SMALL_REGION = "edge-wireless"

#: Base image per microservice role: ML stages build on the fat
#: ``python:3.9``, plumbing stages on the slim one (Sec. IV-C's bases).
_ML_ROLES = ("ha-train", "la-train", "ha-infer", "la-infer", "ha-score", "la-score")


def _base_for(service: str) -> BaseImage:
    if service in _ML_ROLES:
        return OFFICIAL_BASES["python:3.9"]
    return OFFICIAL_BASES["python:3.9-slim"]


@dataclass
class Testbed:
    """Everything the experiments need, fully wired."""

    calibration: Calibration
    fleet: DeviceFleet
    network: NetworkModel
    catalog: RegistryCatalog
    hub: DockerHub
    regional: RegionalRegistry
    env: Environment
    #: (registry name, logical image) → pull reference.
    references: Dict[Tuple[str, str], ImageReference]

    def registry(self, name: str) -> Registry:
        if name == self.hub.name:
            return self.hub
        if name == self.regional.name:
            return self.regional
        raise KeyError(f"unknown registry {name!r}")

    def registries(self) -> List[Registry]:
        return [self.hub, self.regional]

    def reference(self, registry: str, image: str) -> ImageReference:
        try:
            return self.references[(registry, image)]
        except KeyError:
            raise KeyError(f"{image!r} not published on {registry!r}") from None

    def devices(self) -> List[Device]:
        return list(self.fleet)


def build_testbed(
    cal: Optional[Calibration] = None,
    regional_capacity_gb: float = 100.0,
) -> Testbed:
    """Construct the full simulated testbed from a calibration."""
    cal = cal or calibrate()
    cfg = cal.config

    # Devices with calibrated power models.
    medium = medium_device(cal.power["medium"], region=MEDIUM_REGION)
    small = small_device(cal.power["small"], region=SMALL_REGION)
    fleet = DeviceFleet.of(medium, small)

    # Docker Hub: one CDN PoP per edge segment, bandwidths from the
    # calibration constants.
    hub = DockerHub(
        name=HUB_NAME,
        pops=[
            PointOfPresence(
                "pop-wired", (MEDIUM_REGION,), cfg.hub_bw_mbps["medium"]
            ),
            PointOfPresence(
                "pop-wireless", (SMALL_REGION,), cfg.hub_bw_mbps["small"]
            ),
        ],
        origin_bandwidth_mbps=min(cfg.hub_bw_mbps.values()) * 0.5,
    )

    # Regional registry on a MinIO store (the paper's 100 GB example).
    regional = RegionalRegistry(
        name=REGIONAL_NAME, store=MinioStore(capacity_gb=regional_capacity_gb)
    )

    # Publish every Table I image to the hub, then mirror regionally.
    references: Dict[Tuple[str, str], ImageReference] = {}
    for row in ALL_ROWS:
        image = logical_image(row.application, row.service)
        hub_repo = hub_repository(row.application, row.service)
        regional_repo = regional_repository(row.application, row.service)
        mlist, blobs = build_image(
            hub_repo, row.size_gb, base=_base_for(row.service)
        )
        hub.push_image(hub_repo, "latest", mlist, blobs)
        mirror_image(hub, regional, hub_repo, "latest", regional_repo)
        references[(HUB_NAME, image)] = ImageReference(hub_repo)
        references[(REGIONAL_NAME, image)] = ImageReference(regional_repo)

    # Network: registry→device channels carry the per-pull startup
    # overhead as RTT; devices share a LAN; ingress feeds both devices.
    network = NetworkModel()
    for device in fleet:
        network.connect_registry(
            HUB_NAME,
            device.name,
            hub.effective_bandwidth_mbps(device.region),
            rtt_s=cfg.hub_startup_s,
        )
        network.connect_registry(
            REGIONAL_NAME,
            device.name,
            cfg.regional_bw_mbps[device.name],
            rtt_s=cfg.regional_startup_s,
        )
        network.connect_ingress(device.name, cfg.ingress_bw_mbps[device.name])
    network.connect_devices(medium.name, small.name, cfg.device_bw_mbps)

    catalog = RegistryCatalog.of(
        RegistryInfo(HUB_NAME, RegistryKind.HUB, "https://hub.docker.com"),
        RegistryInfo(
            REGIONAL_NAME,
            RegistryKind.REGIONAL,
            "https://dcloud2.itec.aau.at:9001",
        ),
    )

    def availability(registry: str, image: str) -> bool:
        return (registry, image) in references

    env = Environment(
        fleet=fleet,
        network=network,
        registries=catalog,
        availability=availability,
        intensity=cal.intensity,
    )
    return Testbed(
        calibration=cal,
        fleet=fleet,
        network=network,
        catalog=catalog,
        hub=hub,
        regional=regional,
        env=env,
        references=references,
    )
