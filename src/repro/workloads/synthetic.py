"""Synthetic workload generation for the scaling ablations.

The paper evaluates two six-microservice DAGs on two devices; the
scaling benchmarks (A4) need bigger instances.  This module generates

* layered random DAGs (fork-join shaped, like the case studies),
* random device fleets spanning the medium/small spectrum, and
* environments wiring them to hub + regional registries,

all from named, seeded RNG streams so every benchmark run sees the
same instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.environment import Environment
from ..model.application import (
    Application,
    Dataflow,
    Microservice,
    ResourceRequirements,
)
from ..model.device import Arch, Device, DeviceFleet, DeviceSpec, PowerModel
from ..model.network import NetworkModel
from ..model.registry import RegistryCatalog, RegistryInfo, RegistryKind
from ..sim.rng import RngRegistry, default_registry


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the generator (defaults echo the case studies' scale)."""

    layers: int = 4
    width: int = 2
    image_size_gb: Tuple[float, float] = (0.1, 6.0)
    cpu_mi: Tuple[float, float] = (3e5, 4.5e6)
    dataflow_mb: Tuple[float, float] = (10.0, 2000.0)
    edge_density: float = 0.6

    def __post_init__(self) -> None:
        if self.layers < 1 or self.width < 1:
            raise ValueError("layers and width must be >= 1")
        if not 0.0 < self.edge_density <= 1.0:
            raise ValueError("edge_density must be in (0, 1]")


def synthetic_application(
    name: str = "synthetic",
    config: Optional[SyntheticConfig] = None,
    rng: Optional[RngRegistry] = None,
) -> Application:
    """A layered random DAG.

    Every non-first-layer node gets at least one parent in the previous
    layer (connectivity), plus extra edges drawn with
    ``edge_density`` — the fork-join texture of the paper's apps.
    """
    cfg = config or SyntheticConfig()
    registry = rng or default_registry()
    stream = registry.stream(f"synthetic:{name}")

    services: List[Microservice] = []
    layers: List[List[str]] = []
    for layer in range(cfg.layers):
        row: List[str] = []
        for slot in range(cfg.width):
            node = f"{name}-l{layer}s{slot}"
            size = float(stream.uniform(*cfg.image_size_gb))
            cpu = float(stream.uniform(*cfg.cpu_mi))
            services.append(
                Microservice(
                    name=node,
                    image=node,
                    size_gb=round(size, 3),
                    requirements=ResourceRequirements(
                        cores=int(stream.integers(1, 5)),
                        cpu_mi=cpu,
                        memory_gb=float(stream.uniform(0.5, 4.0)),
                        storage_gb=float(stream.uniform(0.1, 1.0)),
                    ),
                    ingress_mb=(
                        float(stream.uniform(*cfg.dataflow_mb))
                        if layer == 0
                        else 0.0
                    ),
                )
            )
            row.append(node)
        layers.append(row)

    flows: List[Dataflow] = []
    for layer in range(1, cfg.layers):
        for dst in layers[layer]:
            parents = [
                src
                for src in layers[layer - 1]
                if stream.random() < cfg.edge_density
            ]
            if not parents:  # guarantee connectivity
                parents = [
                    layers[layer - 1][int(stream.integers(len(layers[layer - 1])))]
                ]
            for src in parents:
                flows.append(
                    Dataflow(
                        src=src,
                        dst=dst,
                        size_mb=round(float(stream.uniform(*cfg.dataflow_mb)), 1),
                    )
                )
    return Application(name, services, flows)


def synthetic_fleet(
    n_devices: int,
    rng: Optional[RngRegistry] = None,
) -> DeviceFleet:
    """A heterogeneous fleet interpolating medium ↔ small."""
    if n_devices < 1:
        raise ValueError("need at least one device")
    registry = rng or default_registry()
    stream = registry.stream(f"fleet:{n_devices}")
    fleet = DeviceFleet()
    for index in range(n_devices):
        # Mix of beefy amd64 boxes and constrained arm64 boards.
        beefy = index % 2 == 0
        speed = float(stream.uniform(24_000, 40_000) if beefy else stream.uniform(6_000, 12_000))
        fleet.add(
            Device(
                spec=DeviceSpec(
                    name=f"dev{index}",
                    arch=Arch.AMD64 if beefy else Arch.ARM64,
                    cores=8 if beefy else 4,
                    speed_mips=speed,
                    memory_gb=16.0 if beefy else 8.0,
                    storage_gb=float(stream.uniform(32, 128)),
                ),
                power=PowerModel(
                    static_watts=float(stream.uniform(0.3, 3.0)),
                    compute_watts=float(stream.uniform(4.0, 30.0)),
                    pull_watts=float(stream.uniform(0.2, 2.0)),
                    transfer_watts=float(stream.uniform(0.1, 2.0)),
                ),
                region="edge",
            )
        )
    return fleet


def synthetic_environment(
    n_devices: int = 4,
    rng: Optional[RngRegistry] = None,
    hub_bw_mbps: float = 44.0,
    regional_bw_mbps: float = 43.5,
    hub_startup_s: float = 1.5,
    regional_startup_s: float = 0.3,
    lan_bw_mbps: float = 100.0,
) -> Environment:
    """A model-level environment over a synthetic fleet.

    Uses the same two-registry structure (hub + regional) as the
    testbed so schedulers run unmodified on scaled instances.
    """
    registry = rng or default_registry()
    fleet = synthetic_fleet(n_devices, registry)
    network = NetworkModel()
    names = fleet.names()
    stream = registry.stream(f"net:{n_devices}")
    for i, a in enumerate(names):
        network.connect_registry(
            "docker-hub", a, hub_bw_mbps * float(stream.uniform(0.9, 1.1)),
            rtt_s=hub_startup_s,
        )
        network.connect_registry(
            "regional", a, regional_bw_mbps * float(stream.uniform(0.9, 1.1)),
            rtt_s=regional_startup_s,
        )
        network.connect_ingress(a, 200.0)
        for b in names[i + 1 :]:
            network.connect_devices(a, b, lan_bw_mbps)
    catalog = RegistryCatalog.of(
        RegistryInfo("docker-hub", RegistryKind.HUB),
        RegistryInfo("regional", RegistryKind.REGIONAL),
    )
    return Environment(fleet=fleet, network=network, registries=catalog)
