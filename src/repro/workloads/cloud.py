"""Cloud–edge extension (the paper's stated future work).

The conclusion of the paper: *"We plan to extend this energy-aware
nash-based model to schedule the computation between cloud and edge."*
This module builds that extension on the existing machinery — no
scheduler changes are needed, because DEEP's game already ranges over
arbitrary device fleets:

* a **cloud VM** joins the fleet: much faster than the edge devices,
  but with a high static draw (the attributed share of a datacenter
  server) and far from the data;
* the cloud sits **next to Docker Hub** (same backbone: image pulls
  are near-free) but behind a thin WAN link for dataflows to/from the
  edge, so shipping data to the compute competes against shipping the
  image to the data — exactly the tension the cloud–edge literature
  studies;
* the regional registry remains edge-local and does not serve the
  cloud VM (pulling from an edge registry into the cloud would
  traverse the same WAN).

:func:`cloud_environment` wires this as a drop-in
:class:`~repro.core.environment.Environment`, and
:func:`cloud_offload_report` quantifies when DEEP starts offloading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.environment import Environment
from ..core.scheduler import DeepScheduler, ScheduleResult
from ..model.application import Application
from ..model.device import Arch, Device, DeviceFleet, DeviceSpec, PowerModel
from ..model.network import NetworkModel
from .calibration import Calibration, calibrate
from .testbed import HUB_NAME, MEDIUM_REGION, REGIONAL_NAME, SMALL_REGION, Testbed

CLOUD_NAME = "cloud"
CLOUD_REGION = "cloud-dc"


@dataclass(frozen=True)
class CloudConfig:
    """Knobs of the cloud tier.

    Defaults model a mid-size VM: ~4× the medium edge box's speed, a
    datacenter-attributed static draw an order of magnitude above the
    edge devices', gigabit proximity to Docker Hub, and a thin WAN to
    the edge site.
    """

    speed_mips: float = 144_000.0
    cores: int = 16
    memory_gb: float = 64.0
    storage_gb: float = 500.0
    static_watts: float = 20.0
    compute_watts: float = 60.0
    pull_watts: float = 4.0
    transfer_watts: float = 4.0
    #: Hub → cloud bandwidth (same backbone).
    hub_bw_mbps: float = 1000.0
    hub_startup_s: float = 0.2
    #: WAN between the edge site and the cloud (dataflows).
    wan_bw_mbps: float = 25.0
    #: Cloud ingress (data sources reachable from the DC).
    ingress_bw_mbps: float = 400.0


def cloud_device(config: Optional[CloudConfig] = None) -> Device:
    """The cloud VM as a :class:`Device`."""
    cfg = config or CloudConfig()
    return Device(
        spec=DeviceSpec(
            name=CLOUD_NAME,
            arch=Arch.AMD64,
            cores=cfg.cores,
            speed_mips=cfg.speed_mips,
            memory_gb=cfg.memory_gb,
            storage_gb=cfg.storage_gb,
        ),
        power=PowerModel(
            static_watts=cfg.static_watts,
            compute_watts=cfg.compute_watts,
            pull_watts=cfg.pull_watts,
            transfer_watts=cfg.transfer_watts,
        ),
        region=CLOUD_REGION,
    )


def cloud_environment(
    testbed: Testbed,
    config: Optional[CloudConfig] = None,
) -> Environment:
    """The testbed's environment extended with the cloud tier.

    Returns a *new* environment; the testbed is not mutated.  The
    cloud VM reaches Docker Hub only (the regional registry is
    edge-local), and reaches both edge devices over the WAN.
    """
    cfg = config or CloudConfig()
    cal = testbed.calibration

    fleet = DeviceFleet()
    for device in testbed.fleet:
        fleet.add(device)
    fleet.add(cloud_device(cfg))

    # Rebuild the network: edge channels as in the testbed, plus the
    # cloud's hub/WAN/ingress links.
    network = NetworkModel()
    for device in testbed.fleet:
        network.connect_registry(
            HUB_NAME,
            device.name,
            cal.config.hub_bw_mbps[device.name],
            rtt_s=cal.config.hub_startup_s,
        )
        network.connect_registry(
            REGIONAL_NAME,
            device.name,
            cal.config.regional_bw_mbps[device.name],
            rtt_s=cal.config.regional_startup_s,
        )
        network.connect_ingress(device.name, cal.config.ingress_bw_mbps[device.name])
        network.connect_devices(device.name, CLOUD_NAME, cfg.wan_bw_mbps)
    network.connect_devices("medium", "small", cal.config.device_bw_mbps)
    network.connect_registry(
        HUB_NAME, CLOUD_NAME, cfg.hub_bw_mbps, rtt_s=cfg.hub_startup_s
    )
    network.connect_ingress(CLOUD_NAME, cfg.ingress_bw_mbps)

    def intensity(service: str, device: str) -> float:
        if device == CLOUD_NAME:
            # Cloud workloads run at the calibrated medium-device
            # intensity (same ISA, same software stack).
            return cal.intensity(service, "medium")
        return cal.intensity(service, device)

    return Environment(
        fleet=fleet,
        network=network,
        registries=testbed.catalog,
        availability=testbed.env.availability,
        intensity=intensity,
    )


@dataclass
class OffloadPoint:
    """DEEP's behaviour at one cloud static-power setting."""

    cloud_static_watts: float
    cloud_share: float
    total_energy_j: float
    edge_only_energy_j: float

    @property
    def offloads(self) -> bool:
        return self.cloud_share > 0.0


def cloud_offload_report(
    testbed: Testbed,
    app: Application,
    static_watts_grid: Optional[List[float]] = None,
    config: Optional[CloudConfig] = None,
) -> List[OffloadPoint]:
    """Sweep the cloud's attributed static power and watch DEEP decide.

    With a cheap (lightly attributed) cloud, DEEP offloads the
    compute-heavy training stages; as the attributed static share
    rises, the cloud loses its energy case and DEEP pulls work back to
    the edge — the crossover the paper's future work asks about.
    """
    base = config or CloudConfig()
    grid = static_watts_grid or [2.0, 5.0, 10.0, 20.0, 40.0]
    edge_only = DeepScheduler().schedule(app, testbed.env).total_energy_j
    points: List[OffloadPoint] = []
    for static in grid:
        cfg = CloudConfig(
            speed_mips=base.speed_mips,
            cores=base.cores,
            memory_gb=base.memory_gb,
            storage_gb=base.storage_gb,
            static_watts=static,
            compute_watts=base.compute_watts,
            pull_watts=base.pull_watts,
            transfer_watts=base.transfer_watts,
            hub_bw_mbps=base.hub_bw_mbps,
            hub_startup_s=base.hub_startup_s,
            wan_bw_mbps=base.wan_bw_mbps,
            ingress_bw_mbps=base.ingress_bw_mbps,
        )
        env = cloud_environment(testbed, cfg)
        result = DeepScheduler().schedule(app, env)
        cloud_services = sum(
            1 for a in result.plan if a.device == CLOUD_NAME
        )
        points.append(
            OffloadPoint(
                cloud_static_watts=static,
                cloud_share=cloud_services / len(result.plan),
                total_energy_j=result.total_energy_j,
                edge_only_energy_j=edge_only,
            )
        )
    return points
