"""The paper's Table II, embedded as typed records.

Table II reports, per microservice: image size [GB], processing time
``Tp`` [s], completion time ``CT`` [s], and energy ``EC`` [J] measured
on the medium (Intel, pyRAPL) and small (RPi 4, wall meter) devices.
Values are min–max ranges over the paper's runs.

These numbers are the reproduction's calibration target *and* its
acceptance oracle: the calibration fits model constants so simulated
``Tp``/``CT``/``EC`` land inside (or near) the ranges, and the Table II
experiment re-measures them through the full simulator stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

VIDEO = "video-processing"
TEXT = "text-processing"


@dataclass(frozen=True)
class Range:
    """A published min–max measurement range."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"inverted range [{self.lo}, {self.hi}]")

    @property
    def mid(self) -> float:
        return 0.5 * (self.lo + self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float, slack: float = 0.0) -> bool:
        """Is ``value`` inside the range, widened by ``slack`` (fraction)?"""
        pad = slack * max(self.mid, 1e-12)
        return self.lo - pad <= value <= self.hi + pad

    def deviation(self, value: float) -> float:
        """Relative distance outside the range (0 when inside)."""
        if self.contains(value):
            return 0.0
        edge = self.lo if value < self.lo else self.hi
        return abs(value - edge) / max(abs(edge), 1e-12)


@dataclass(frozen=True)
class BenchmarkRow:
    """One Table II line."""

    application: str
    service: str
    size_gb: float
    tp_s: Range
    ct_s: Range
    ec_medium_j: Range
    ec_small_j: Range

    def ec_for(self, device: str) -> Range:
        if device == "medium":
            return self.ec_medium_j
        if device == "small":
            return self.ec_small_j
        raise KeyError(f"Table II has no EC column for device {device!r}")


def _row(app, service, size, tp, ct, ec_med, ec_small) -> BenchmarkRow:
    return BenchmarkRow(
        application=app,
        service=service,
        size_gb=size,
        tp_s=Range(*tp),
        ct_s=Range(*ct),
        ec_medium_j=Range(*ec_med),
        ec_small_j=Range(*ec_small),
    )


#: Table II verbatim (video processing block).
VIDEO_ROWS: List[BenchmarkRow] = [
    _row(VIDEO, "transcode", 0.17, (17.5, 19), (82, 85), (856, 859), (340, 355)),
    _row(VIDEO, "frame", 0.70, (10, 20), (147, 184), (355, 378), (557, 679)),
    _row(VIDEO, "ha-train", 5.78, (121, 124), (1071, 1421), (3240, 3288), (4654, 5472)),
    _row(VIDEO, "la-train", 5.78, (87, 97), (1058, 1297), (1834, 1849), (3995, 4700)),
    _row(VIDEO, "ha-infer", 3.53, (38, 41), (356, 435), (849, 850), (1423, 1602)),
    _row(VIDEO, "la-infer", 3.54, (38, 40), (350, 429), (819, 842), (1400, 1590)),
]

#: Table II verbatim (text processing block).
TEXT_ROWS: List[BenchmarkRow] = [
    _row(TEXT, "retrieve", 0.14, (42, 58), (331, 334), (144, 173), (1136, 1183)),
    _row(TEXT, "decompress", 0.78, (27, 55), (290, 331), (415, 432), (1037, 1143)),
    _row(TEXT, "ha-train", 2.36, (139, 144), (427, 507), (3482, 3728), (1638, 1903)),
    _row(TEXT, "la-train", 2.36, (87, 89), (288, 363), (1622, 1642), (870, 985)),
    _row(TEXT, "ha-score", 0.63, (74, 76), (177, 211), (1228, 1319), (675, 786)),
    _row(TEXT, "la-score", 0.63, (75, 78), (175, 210), (1295, 1299), (670, 785)),
]

ALL_ROWS: List[BenchmarkRow] = VIDEO_ROWS + TEXT_ROWS


def rows_for(application: str) -> List[BenchmarkRow]:
    """Table II block for one application."""
    rows = [r for r in ALL_ROWS if r.application == application]
    if not rows:
        raise KeyError(f"unknown application {application!r}")
    return rows


def row(application: str, service: str) -> BenchmarkRow:
    """One Table II line by (application, service)."""
    for r in rows_for(application):
        if r.service == service:
            return r
    raise KeyError(f"no Table II row for {application}/{service}")


#: Table I: image repository names on each registry.  The logical image
#: name (our ``Microservice.image``) maps to per-registry references.
HUB_NAMESPACE = "sina88"
REGIONAL_NAMESPACE = "aau"

IMAGE_PREFIX: Dict[str, str] = {VIDEO: "vp", TEXT: "tp"}


def logical_image(application: str, service: str) -> str:
    """Registry-agnostic image name, e.g. ``vp-ha-train``."""
    return f"{IMAGE_PREFIX[application]}-{service}"


def hub_repository(application: str, service: str) -> str:
    """Docker Hub repository per Table I, e.g. ``sina88/vp-ha-train``."""
    return f"{HUB_NAMESPACE}/{logical_image(application, service)}"


def regional_repository(application: str, service: str) -> str:
    """Regional repository per Table I, e.g. ``aau/vp-ha-train``."""
    return f"{REGIONAL_NAMESPACE}/{logical_image(application, service)}"
