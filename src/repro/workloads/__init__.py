"""Workloads: Table II data, the two case-study DAGs, Table-II-fitted
calibration, the wired testbed, and synthetic scaling instances."""

from .apps import both_applications, text_processing, video_processing
from .calibration import (
    CalibratedService,
    Calibration,
    CalibrationConfig,
    calibrate,
)
from .synthetic import (
    SyntheticConfig,
    synthetic_application,
    synthetic_environment,
    synthetic_fleet,
)
from .table2 import (
    ALL_ROWS,
    TEXT,
    TEXT_ROWS,
    VIDEO,
    VIDEO_ROWS,
    BenchmarkRow,
    Range,
    hub_repository,
    logical_image,
    regional_repository,
    row,
    rows_for,
)
from .testbed import HUB_NAME, REGIONAL_NAME, Testbed, build_testbed

__all__ = [
    "ALL_ROWS",
    "BenchmarkRow",
    "CalibratedService",
    "Calibration",
    "CalibrationConfig",
    "HUB_NAME",
    "REGIONAL_NAME",
    "Range",
    "SyntheticConfig",
    "TEXT",
    "TEXT_ROWS",
    "Testbed",
    "VIDEO",
    "VIDEO_ROWS",
    "both_applications",
    "build_testbed",
    "calibrate",
    "hub_repository",
    "logical_image",
    "regional_repository",
    "row",
    "rows_for",
    "synthetic_application",
    "synthetic_environment",
    "synthetic_fleet",
    "text_processing",
    "video_processing",
]
