"""Calibration: fitting model constants to the paper's Table II.

The paper publishes measurement *ranges*, not model parameters.  This
module recovers a parameter set under which the simulator reproduces
those ranges:

1. **Processing loads.**  ``CPU(m_i) = Tp_mid × CPU_bench`` where the
   benchmark device is the one hosting the majority of the app's
   microservices in Table III (medium for video, small for text) — the
   documented assumption about where ``Tp`` was measured.
2. **Input payloads and warm fractions.**  The benchmark-device slack
   ``CT_mid − Tp_mid − startup`` is what deployment + data transfer
   took.  When it exceeds a cold full-image pull, the surplus becomes
   the service's benchmark input payload (camera stream, S3 dataset,
   upstream artefacts): ``input_mb = surplus × BW_ingress / 8``.  When
   the slack is *smaller* than a cold pull — true for the infer/score
   services and the text trains, whose published CT is physically too
   short for their image size at any plausible bandwidth — the
   benchmarked pull must have been partially warm (layers shared with
   a previously pulled sibling image, e.g. HA/LA pairs), and the
   deficit is fitted as the image's ``warm_fraction``.
3. **Power models.**  Per device, bounded least squares
   (``scipy.optimize.lsq_linear``) over the 12 microservices fits
   ``EC ≈ P_static·CT + P_pull·Td + P_transfer·Tc + P_compute·Tp``
   with floors on the static/pull/transfer terms (a zero static or
   pull power would make registry choice energy-neutral, which both
   physics and the paper's Fig. 3b deltas contradict).
4. **Compute intensities.**  A per-(microservice, device) multiplier on
   the compute power absorbs the remaining EC residual (clamped), so
   per-service simulated energy matches the published midpoints —
   physically: different workloads draw different package power.

Registry channel constants encode the reproduction's key insight: the
paper's pure-bandwidth deployment model cannot generate its own
Table III (a hybrid split requires *some* asymmetry), so hub channels
carry a realistic per-pull startup overhead (auth + manifest round
trips, modelled as channel RTT) while the LAN-local regional registry's
is negligible.  With near-equal bandwidths this makes the hub win on
large images over fast links and the regional registry win on small
images and on the weaker device — exactly Table III's split, with the
sub-percent energy deltas of Fig. 3b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from ..devices.specs import MEDIUM_SPEED_MIPS, SMALL_SPEED_MIPS
from ..model.device import PowerModel
from . import table2
from .table2 import ALL_ROWS, TEXT, VIDEO, BenchmarkRow, logical_image


@dataclass(frozen=True)
class CalibrationConfig:
    """Tunable constants of the calibration (ablation knobs)."""

    #: Docker Hub effective bandwidth per device [Mbit/s].  The CDN PoP
    #: serves the wired medium box slightly faster than the regional
    #: registry does; on the wireless Pi segment both are equal.
    hub_bw_mbps: Mapping[str, float] = field(
        default_factory=lambda: {"medium": 44.0, "small": 43.5}
    )
    #: Regional registry bandwidth per device [Mbit/s].
    regional_bw_mbps: Mapping[str, float] = field(
        default_factory=lambda: {"medium": 43.4, "small": 43.5}
    )
    #: Per-pull startup overhead (DNS/auth/manifest round trips).  The
    #: hub's is larger (WAN round trips); this is what makes the
    #: regional registry win on small images and on the weaker device,
    #: producing Table III's hybrid split with Fig. 3b's tiny deltas.
    hub_startup_s: float = 1.5
    regional_startup_s: float = 0.3
    #: External-ingress bandwidth per device [Mbit/s].
    ingress_bw_mbps: Mapping[str, float] = field(
        default_factory=lambda: {"medium": 200.0, "small": 150.0}
    )
    #: Device↔device LAN bandwidth [Mbit/s].
    device_bw_mbps: float = 100.0
    #: Device processing speeds [MI/s].
    speed_mips: Mapping[str, float] = field(
        default_factory=lambda: {
            "medium": MEDIUM_SPEED_MIPS,
            "small": SMALL_SPEED_MIPS,
        }
    )
    #: Which device each application was benchmarked on (Table III
    #: majority assumption).
    bench_device: Mapping[str, str] = field(
        default_factory=lambda: {VIDEO: "medium", TEXT: "small"}
    )
    #: Clamp bounds for the per-service compute-intensity multiplier.
    intensity_bounds: Tuple[float, float] = (0.05, 50.0)
    #: Lower bounds on (static, pull, transfer, compute) watts in the
    #: power fit — keeps deployment time energy-relevant on both
    #: devices (pyRAPL never reads a 0 W idle package).
    power_floors_w: Tuple[float, float, float, float] = (0.3, 0.2, 0.1, 0.0)
    #: Upper bounds on (static, pull, transfer) watts per device.  The
    #: medium device is metered with pyRAPL, which sees only the CPU
    #: package: its idle/pull draw is a fraction of a watt, and capping
    #: it keeps the registry-choice energy deltas at the paper's
    #: sub-percent scale.  The wall-metered small device is unbounded.
    power_ceilings_w: Mapping[str, Tuple[Optional[float], Optional[float], Optional[float]]] = field(
        default_factory=lambda: {
            "medium": (0.4, 0.3, 0.2),
            "small": (None, None, None),
        }
    )

    def hub_deploy_s(self, device: str, size_gb: float) -> float:
        """Simulated cold ``Td`` from the hub (startup + bytes/BW)."""
        return self.hub_startup_s + size_gb * 8000.0 / self.hub_bw_mbps[device]

    def regional_deploy_s(self, device: str, size_gb: float) -> float:
        return (
            self.regional_startup_s
            + size_gb * 8000.0 / self.regional_bw_mbps[device]
        )


@dataclass(frozen=True)
class CalibratedService:
    """Fitted per-microservice constants."""

    application: str
    service: str
    name: str  # globally unique logical name, e.g. "vp-ha-train"
    size_gb: float
    cpu_mi: float
    input_mb: float
    warm_fraction: float = 0.0

    @property
    def cold_pull_gb(self) -> float:
        return self.size_gb * (1.0 - self.warm_fraction)


@dataclass
class Calibration:
    """Complete fitted parameter set."""

    config: CalibrationConfig
    services: Dict[str, CalibratedService]  # keyed by logical name
    power: Dict[str, PowerModel]  # keyed by device name
    intensities: Dict[Tuple[str, str], float]  # (logical name, device)
    fit_residual_j: Dict[str, float]  # per-device nnls residual norm

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def service(self, application: str, service: str) -> CalibratedService:
        return self.services[logical_image(application, service)]

    def intensity(self, name: str, device: str) -> float:
        """IntensityFn-compatible lookup (1.0 for unknown pairs)."""
        return self.intensities.get((name, device), 1.0)

    def predicted_times(
        self, name: str, device: str
    ) -> Tuple[float, float, float]:
        """(Td_hub, Tc, Tp) on ``device`` under the benchmark setup."""
        svc = self.services[name]
        cfg = self.config
        td = cfg.hub_deploy_s(device, svc.cold_pull_gb)
        tc = svc.input_mb * 8.0 / cfg.ingress_bw_mbps[device]
        tp = svc.cpu_mi / cfg.speed_mips[device]
        return td, tc, tp

    def predicted_energy_j(self, name: str, device: str) -> float:
        """Model EC on ``device`` (hub pull, calibrated intensity)."""
        td, tc, tp = self.predicted_times(name, device)
        p = self.power[device]
        scale = self.intensity(name, device)
        return (
            p.static_watts * (td + tc + tp)
            + p.pull_watts * td
            + p.transfer_watts * tc
            + p.compute_watts * scale * tp
        )


#: Fraction of each service's EC budget the non-compute (static + pull
#: + transfer) terms may consume.  Keeping headroom guarantees the
#: per-service compute intensity never clamps, so every EC midpoint is
#: reproducible exactly.
_FIXED_BUDGET_FRACTION = 0.85


def _fit_power(
    rows: List[BenchmarkRow],
    device: str,
    cfg: CalibrationConfig,
    services: Mapping[str, CalibratedService],
) -> Tuple[PowerModel, float]:
    """Constrained fit of the four power coefficients for one device.

    Stage 1 (LP): choose (static, pull, transfer) watts as large as
    possible — physically, attribute as much energy as defensible to
    the non-compute phases — subject to every service's fixed energy
    staying under :data:`_FIXED_BUDGET_FRACTION` of its published EC
    midpoint, and to the configured floors.  Stage 2: a one-parameter
    least squares assigns the compute power; the per-service intensity
    multipliers then absorb the (guaranteed non-negative) residuals.
    """
    design: List[List[float]] = []
    target: List[float] = []
    for r in rows:
        svc = services[logical_image(r.application, r.service)]
        td = cfg.hub_deploy_s(device, svc.cold_pull_gb)
        tc = svc.input_mb * 8.0 / cfg.ingress_bw_mbps[device]
        tp = svc.cpu_mi / cfg.speed_mips[device]
        design.append([td + tc + tp, td, tc, tp])
        target.append(r.ec_for(device).mid)
    design_arr = np.asarray(design)
    target_arr = np.asarray(target)

    fixed_cols = design_arr[:, :3]  # CT, Td, Tc
    budget = _FIXED_BUDGET_FRACTION * target_arr
    floors = np.asarray(cfg.power_floors_w[:3])
    ceilings = cfg.power_ceilings_w.get(device, (None, None, None))
    # Maximise total fixed-phase energy (relative weighting keeps the
    # small rows from being dominated) within every service's budget.
    objective = -(fixed_cols / target_arr[:, None]).sum(axis=0)
    lp = linprog(
        c=objective,
        A_ub=fixed_cols,
        b_ub=budget,
        bounds=list(zip(floors, ceilings)),
        method="highs",
    )
    if not lp.success:
        raise RuntimeError(
            f"power fit infeasible for {device!r}: {lp.message} "
            f"(floors {tuple(floors)} exceed some service's EC budget)"
        )
    static, pull, transfer = (float(v) for v in lp.x)

    residual = target_arr - fixed_cols @ lp.x  # >= 0.15 * target by LP
    tp_col = design_arr[:, 3]
    compute = float(np.sum(residual * tp_col) / np.sum(tp_col * tp_col))
    rms = float(
        np.sqrt(np.mean((residual - compute * tp_col) ** 2))
    )
    return (
        PowerModel(
            static_watts=static,
            compute_watts=max(compute, cfg.power_floors_w[3]),
            pull_watts=pull,
            transfer_watts=transfer,
        ),
        rms,
    )


def calibrate(config: Optional[CalibrationConfig] = None) -> Calibration:
    """Run the full calibration pipeline against Table II."""
    cfg = config or CalibrationConfig()
    devices = list(cfg.speed_mips)

    # Steps 1–2: loads, input payloads, and warm fractions.
    services: Dict[str, CalibratedService] = {}
    for r in ALL_ROWS:
        name = logical_image(r.application, r.service)
        bench = cfg.bench_device[r.application]
        cpu = r.tp_s.mid * cfg.speed_mips[bench]
        slack_s = max(0.0, r.ct_s.mid - r.tp_s.mid - cfg.hub_startup_s)
        cold_pull_s = r.size_gb * 8000.0 / cfg.hub_bw_mbps[bench]
        if slack_s >= cold_pull_s:
            payload = (slack_s - cold_pull_s) * cfg.ingress_bw_mbps[bench] / 8.0
            warm = 0.0
        else:
            payload = 0.0
            warm = 1.0 - slack_s / cold_pull_s
        services[name] = CalibratedService(
            application=r.application,
            service=r.service,
            name=name,
            size_gb=r.size_gb,
            cpu_mi=cpu,
            input_mb=payload,
            warm_fraction=warm,
        )

    # Step 3: per-device power models.
    power: Dict[str, PowerModel] = {}
    residuals: Dict[str, float] = {}
    for device in devices:
        power[device], residuals[device] = _fit_power(
            ALL_ROWS, device, cfg, services
        )

    # Step 4: per-(service, device) compute intensity.
    lo, hi = cfg.intensity_bounds
    intensities: Dict[Tuple[str, str], float] = {}
    for r in ALL_ROWS:
        name = logical_image(r.application, r.service)
        svc = services[name]
        for device in devices:
            p = power[device]
            td = cfg.hub_deploy_s(device, svc.cold_pull_gb)
            tc = svc.input_mb * 8.0 / cfg.ingress_bw_mbps[device]
            tp = svc.cpu_mi / cfg.speed_mips[device]
            fixed = (
                p.static_watts * (td + tc + tp)
                + p.pull_watts * td
                + p.transfer_watts * tc
            )
            compute_j = p.compute_watts * tp
            if compute_j <= 0:
                intensities[(name, device)] = 1.0
                continue
            scale = (r.ec_for(device).mid - fixed) / compute_j
            intensities[(name, device)] = float(np.clip(scale, lo, hi))

    return Calibration(
        config=cfg,
        services=services,
        power=power,
        intensities=intensities,
        fit_residual_j=residuals,
    )
