"""Structured, sim-time-stamped trace recording and export.

:class:`TraceRecorder` is the sink every instrumented component writes
to: the transfer engine (transfer lifecycle + fair-share reallocations),
gossip rounds, churn transitions, replicator cycles, and the chunked
endgame.  Components hold an ``Optional[TraceRecorder]`` and guard each
hook with ``if trace is not None`` — this module deliberately imports
nothing from the rest of the package, so instrumentation can never
create an import cycle.

Two export formats:

* **JSONL** — one event per line, ``{"t_s", "kind", "device",
  ...detail}``, the machine-readable archive format;
* **Chrome trace-event JSON** — ``{"traceEvents": [...]}``, loadable in
  Perfetto / ``chrome://tracing``: each device is a *process*, each
  transfer source a *track* (thread) inside its destination device, and
  matched ``transfer.start``/``transfer.finish|cancel`` pairs become
  complete ("X") spans.  Everything else renders as instant ("i")
  events.

Timestamps are **simulated seconds** throughout (microseconds in the
Chrome export, per the trace-event spec).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Trace kinds whose start/end pair renders as a Chrome "X" span,
#: matched on ``detail["id"]``.
SPAN_START = "transfer.start"
SPAN_ENDS = ("transfer.finish", "transfer.cancel")

#: The synthetic Chrome process carrying device-less events (engine
#: reallocations, gossip rounds, replicator cycles).
_SIM_PROCESS = "@sim"


@dataclass(slots=True)
class TraceEvent:
    """One structured trace record on the simulated clock.

    The recorder stores plain tuples on the hot path and materialises
    these objects lazily at read time, so event construction cost never
    lands inside the simulated run — part of the tracing overhead
    budget the overhead test pins.
    """

    t_s: float
    kind: str
    device: str
    detail: Mapping[str, Any] = field(default_factory=dict)

    def to_json_obj(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "t_s": self.t_s, "kind": self.kind, "device": self.device,
        }
        data.update(self.detail)
        return data


def _json_obj(row: Tuple[float, str, str, Dict[str, Any]]) -> Dict[str, Any]:
    data: Dict[str, Any] = {"t_s": row[0], "kind": row[1], "device": row[2]}
    data.update(row[3])
    return data


class TraceRecorder:
    """Append-only sink of trace records.

    ``label`` names the session the recorder belongs to; merged
    multi-session exports (see :mod:`repro.telemetry.capture`) prefix
    Chrome process names with it so sessions stay distinguishable.
    """

    def __init__(self, label: str = "") -> None:
        self.label = label
        # (t_s, kind, device, detail) — a tuple append is the whole
        # per-event hot-path cost; TraceEvent wrappers are built lazily.
        self._raw: List[Tuple[float, str, str, Dict[str, Any]]] = []

    # -- recording ------------------------------------------------------
    def record(
        self, t_s: float, kind: str, device: str = "", **detail: Any
    ) -> None:
        """Append one event; ``detail`` must be JSON-safe."""
        self._raw.append((t_s, kind, device, detail))

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._raw)

    @property
    def events(self) -> List[TraceEvent]:
        return [TraceEvent(*row) for row in self._raw]

    def events_of(self, kind: str) -> List[TraceEvent]:
        return [TraceEvent(*row) for row in self._raw if row[1] == kind]

    def devices(self) -> List[str]:
        """Distinct non-empty device names, sorted."""
        return sorted({row[2] for row in self._raw if row[2]})

    # -- JSONL export ---------------------------------------------------
    def jsonl(self) -> str:
        """One JSON object per line (empty string when no events)."""
        return "\n".join(
            json.dumps(_json_obj(row), sort_keys=True) for row in self._raw
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w") as handle:
            text = self.jsonl()
            if text:
                handle.write(text + "\n")

    # -- Chrome trace-event export --------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """This recorder's events as a Chrome trace-event document."""
        return chrome_trace([self])

    def write_chrome(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, sort_keys=True)
            handle.write("\n")


def chrome_trace(recorders: Sequence[TraceRecorder]) -> Dict[str, Any]:
    """Merge recorders into one Chrome trace-event JSON document.

    Mapping: each device of each recorder becomes a *process* (pid),
    named ``label/device`` when the recorder carries a label.  Inside a
    device, each transfer *source* becomes a thread (tid) — transfers
    from one seeder to one destination share a track, which is exactly
    the per-link view the engine schedules.  ``transfer.start`` events
    matched (by ``id``) with a ``transfer.finish`` / ``transfer.cancel``
    become complete "X" spans; unmatched starts close at the trace's
    last timestamp.  All other kinds render as instant "i" events on
    the device process (or the per-recorder ``@sim`` process for
    device-less records).  ``ts``/``dur`` are microseconds.
    """
    trace_events: List[Dict[str, Any]] = []
    pid_of: Dict[Tuple[str, str], int] = {}
    tid_of: Dict[Tuple[int, str], int] = {}

    def pid(label: str, device: str) -> int:
        key = (label, device or _SIM_PROCESS)
        if key not in pid_of:
            pid_of[key] = len(pid_of) + 1
            name = key[1] if not label else f"{label}/{key[1]}"
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid_of[key],
                "tid": 0, "args": {"name": name},
            })
        return pid_of[key]

    def tid(process: int, track: str) -> int:
        key = (process, track)
        if key not in tid_of:
            tid_of[key] = len([k for k in tid_of if k[0] == process]) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": process,
                "tid": tid_of[key], "args": {"name": track},
            })
        return tid_of[key]

    for recorder in recorders:
        events = recorder.events
        horizon_us = max((e.t_s for e in events), default=0.0) * 1e6
        open_spans: Dict[Any, Tuple[TraceEvent, Dict[str, Any]]] = {}
        for event in events:
            detail = dict(event.detail)
            if event.kind == SPAN_START:
                process = pid(recorder.label, event.device)
                track = str(detail.get("src", ""))
                span = {
                    "name": f"{track}->{event.device}",
                    "cat": "transfer",
                    "ph": "X",
                    "ts": event.t_s * 1e6,
                    "dur": 0.0,
                    "pid": process,
                    "tid": tid(process, track or "transfer"),
                    "args": detail,
                }
                trace_events.append(span)
                if "id" in detail:
                    open_spans[detail["id"]] = (event, span)
            elif event.kind in SPAN_ENDS:
                opened = open_spans.pop(detail.get("id"), None)
                if opened is not None:
                    start, span = opened
                    span["dur"] = (event.t_s - start.t_s) * 1e6
                    span["args"].update(detail)
                    if event.kind == "transfer.cancel":
                        span["args"]["cancelled"] = True
                else:
                    # An end without a recorded start (e.g. tracing was
                    # attached mid-run): keep it visible as an instant.
                    process = pid(recorder.label, event.device)
                    trace_events.append({
                        "name": event.kind, "cat": "transfer", "ph": "i",
                        "ts": event.t_s * 1e6, "pid": process, "tid": 0,
                        "s": "t", "args": detail,
                    })
            else:
                process = pid(recorder.label, event.device)
                trace_events.append({
                    "name": event.kind,
                    "cat": event.kind.split(".", 1)[0],
                    "ph": "i",
                    "ts": event.t_s * 1e6,
                    "pid": process,
                    "tid": 0,
                    "s": "t" if event.device else "g",
                    "args": detail,
                })
        # Spans the run's horizon cut off: close them at the last
        # timestamp so the viewer still shows the occupied track.
        for start, span in open_spans.values():
            span["dur"] = max(0.0, horizon_us - start.t_s * 1e6)
            span["args"]["unfinished"] = True
    return {"traceEvents": trace_events}


def merged_jsonl(recorders: Sequence[TraceRecorder]) -> str:
    """JSONL of several recorders; each line carries its ``session``
    label when the recorder has one."""
    lines: List[str] = []
    for recorder in recorders:
        for row in recorder._raw:
            obj = _json_obj(row)
            if recorder.label:
                obj["session"] = recorder.label
            lines.append(json.dumps(obj, sort_keys=True))
    return "\n".join(lines)
