"""Engine self-profiling: wall-clock and work counters.

:class:`EngineProfile` is attached to a
:class:`~repro.sim.transfers.TransferEngine` (``engine.profile``) when
``TelemetrySpec.profile`` is on.  The engine notes, per fair-share
recompute, the wall-clock nanoseconds spent and the dirty-closure size,
and counts every deadline-heap push / pop / lazy invalidation per shard
— the concrete work the incremental and region-sharded solvers exist
to reduce.  A summary lands on ``ModeOutcome.engine_profile`` (and,
flattened, in sweep rows), so a perf regression in the solvers becomes
a measurable diff instead of an anecdote.

All counters are *work* counters except the ``_ns`` aggregates, which
are wall-clock and therefore nondeterministic — the sweep aggregate's
byte-identity surface and the differential outcome tests exclude them.
"""

from __future__ import annotations

from typing import Any, Dict, List

#: Heap label of the incremental mode's single global deadline heap.
GLOBAL_HEAP = "@global"

#: Heap label of the sharded mode's shard-front heap.
FRONT_HEAP = "@front"


def closure_bucket(size: int) -> str:
    """Power-of-two histogram bucket label for a closure size.

    0 stays ``"0"``; anything else lands in the next power of two at
    or above it (1, 2, 4, 8, …) — a fixed, scale-free bucketing that
    keeps the histogram a handful of keys at any swarm size.
    """
    if size <= 0:
        return "0"
    return str(1 << (size - 1).bit_length())


class EngineProfile:
    """Recompute timings, closure-size histogram, heap work counters."""

    def __init__(self) -> None:
        self.recomputes = 0
        self.recompute_ns_total = 0
        self.recompute_ns_max = 0
        self.transfers_rerated = 0
        # int power-of-two buckets; rendered as strings in summary().
        self._closure_hist: Dict[int, int] = {}
        # shard -> [pushes, pops, invalidations]; flat lists keep the
        # per-heap-op cost to one dict lookup + one index increment.
        self._heaps: Dict[str, List[int]] = {}

    # -- recompute timing ----------------------------------------------
    def note_recompute(self, ns: int, closure_size: int) -> None:
        self.recomputes += 1
        self.recompute_ns_total += ns
        if ns > self.recompute_ns_max:
            self.recompute_ns_max = ns
        self.transfers_rerated += closure_size
        bucket = (
            1 << (closure_size - 1).bit_length() if closure_size > 0 else 0
        )
        self._closure_hist[bucket] = self._closure_hist.get(bucket, 0) + 1

    # -- deadline-heap work --------------------------------------------
    def heap_push(self, shard: str) -> None:
        try:
            self._heaps[shard][0] += 1
        except KeyError:
            self._heaps[shard] = [1, 0, 0]

    def heap_pop(self, shard: str) -> None:
        """A *due* entry popped for draining."""
        try:
            self._heaps[shard][1] += 1
        except KeyError:
            self._heaps[shard] = [0, 1, 0]

    def heap_invalidate(self, shard: str) -> None:
        """A stale (token-mismatched / stamp-mismatched) entry pruned."""
        try:
            self._heaps[shard][2] += 1
        except KeyError:
            self._heaps[shard] = [0, 0, 1]

    # -- export ---------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-safe summary for ``ModeOutcome.engine_profile``.

        ``closure_size_hist`` keys are the bucket labels of
        :func:`closure_bucket`; ``heaps`` keys are shard names, with
        :data:`GLOBAL_HEAP` for the incremental mode's single heap and
        :data:`FRONT_HEAP` for the sharded mode's front heap.
        """
        return {
            "recomputes": self.recomputes,
            "recompute_ns_total": self.recompute_ns_total,
            "recompute_ns_max": self.recompute_ns_max,
            "transfers_rerated": self.transfers_rerated,
            "closure_size_hist": {
                str(bucket): count
                for bucket, count in sorted(self._closure_hist.items())
            },
            "heaps": {
                shard: {
                    "pushes": counters[0],
                    "pops": counters[1],
                    "invalidations": counters[2],
                }
                for shard, counters in sorted(self._heaps.items())
            },
        }
