"""Process-wide telemetry capture for multi-session runs.

The experiment entry points (``repro p2p`` …) build their
:class:`~repro.scenarios.session.SimulationSession` objects internally
from default specs, so the CLI's ``--trace`` / ``--metrics-out`` /
``--profile`` flags cannot reach them through ``TelemetrySpec``.
:class:`TelemetryCapture` is the side channel: the CLI activates one
(``with TelemetryCapture(trace=True):``), every session assembled while
it is active checks :func:`active_capture`, enables the requested
recorders, and registers them back under a stable per-session label
(``s0``, ``s1``, …).  After the run the capture exports everything
merged — one Chrome trace with session-prefixed process names, one
JSONL stream with a ``session`` field, one CSV with a ``session``
column.

A capture never *disables* anything: a session whose spec already asks
for telemetry keeps it, and captures only add.  Captures are
observation-only like the rest of the package, so running under one
changes no outcome (pinned by the differential tests).  Nesting is
rejected — two active captures would silently split the registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsSampler, merged_csv
from .profile import EngineProfile
from .recorder import TraceRecorder, chrome_trace, merged_jsonl

_ACTIVE: Optional["TelemetryCapture"] = None


def active_capture() -> Optional["TelemetryCapture"]:
    """The capture currently in scope, if any (sessions check this)."""
    return _ACTIVE


class TelemetryCapture:
    """One ``with``-scoped collection window over session telemetry."""

    def __init__(
        self,
        trace: bool = False,
        metrics_period_s: Optional[float] = None,
        profile: bool = False,
    ) -> None:
        if metrics_period_s is not None and metrics_period_s <= 0:
            raise ValueError(
                f"metrics_period_s must be > 0, got {metrics_period_s}"
            )
        self.trace = trace
        self.metrics_period_s = metrics_period_s
        self.profile = profile
        self.traces: List[TraceRecorder] = []
        self.samplers: List[MetricsSampler] = []
        self.profiles: List[Tuple[str, EngineProfile]] = []
        self._labels = 0

    # -- activation -----------------------------------------------------
    def __enter__(self) -> "TelemetryCapture":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a TelemetryCapture is already active")
        _ACTIVE = self
        return self

    def __exit__(self, *exc_info: Any) -> None:
        global _ACTIVE
        _ACTIVE = None

    # -- session registration ------------------------------------------
    def next_label(self) -> str:
        label = f"s{self._labels}"
        self._labels += 1
        return label

    def adopt(
        self,
        trace: Optional[TraceRecorder],
        sampler: Optional[MetricsSampler],
        profile: Optional[EngineProfile],
        label: str,
    ) -> None:
        """Register one session's live recorders under its label."""
        if trace is not None:
            self.traces.append(trace)
        if sampler is not None:
            self.samplers.append(sampler)
        if profile is not None:
            self.profiles.append((label, profile))

    # -- merged exports -------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.traces)

    def jsonl(self) -> str:
        return merged_jsonl(self.traces)

    def metrics_csv(self) -> str:
        return merged_csv(self.samplers)

    def profile_summaries(self) -> Dict[str, Dict[str, Any]]:
        return {label: prof.summary() for label, prof in self.profiles}
