"""Opt-in observability: traces, time-series metrics, self-profiling.

The unified telemetry layer of the swarm stack.  Three sinks:

* :class:`TraceRecorder` — structured sim-time span/event records from
  the transfer engine, gossip, churn, the replicator, and the chunked
  endgame; exportable as JSONL and Chrome trace-event JSON
  (:func:`chrome_trace`, Perfetto-viewable);
* :class:`MetricsSampler` — periodic tidy ``(t_s, metric, scope,
  value)`` rows: inflight transfers, per-region link utilisation,
  cache occupancy, gossip view staleness;
* :class:`EngineProfile` — wall-clock and work counters inside the
  transfer engine (per-recompute ns, dirty-closure size histogram,
  per-shard heap push/pop/invalidation counts).

Everything hangs off the ``telemetry`` section of a
:class:`~repro.scenarios.spec.ScenarioSpec` (default fully off —
bit-identical outcomes, enforced by differential tests) or off a
process-wide :class:`TelemetryCapture` (the CLI's ``--trace`` /
``--metrics-out`` / ``--profile`` path for multi-session experiments).

This package imports nothing from the rest of :mod:`repro`:
instrumented modules hold duck-typed ``Optional`` sinks, and only
:mod:`repro.scenarios.session` and :mod:`repro.cli` construct the
concrete classes — so the observability layer can never create an
import cycle or perturb what it observes.  See ``README.md`` here for
the record schema and the Chrome-trace mapping.
"""

from .capture import TelemetryCapture, active_capture
from .metrics import ALL_SCOPE, METRICS_SCHEMA, MetricsSampler, merged_csv
from .profile import FRONT_HEAP, GLOBAL_HEAP, EngineProfile, closure_bucket
from .recorder import (
    TraceEvent,
    TraceRecorder,
    chrome_trace,
    merged_jsonl,
)

__all__ = [
    "ALL_SCOPE",
    "EngineProfile",
    "FRONT_HEAP",
    "GLOBAL_HEAP",
    "METRICS_SCHEMA",
    "MetricsSampler",
    "TelemetryCapture",
    "TraceEvent",
    "TraceRecorder",
    "active_capture",
    "chrome_trace",
    "closure_bucket",
    "merged_csv",
    "merged_jsonl",
]
